// Design ablation (§7.1 / §7.5): the paper argues Flood's advantage comes
// from the learned layout, not from the column-store extras. This bench
// disables each §7.1 implementation optimization on the *same learned
// layout*:
//
//   full            exact ranges + run merging + per-cell PLMs (default)
//   no-exact        every scanned point re-checked against the filter
//   no-merge        one scan range per cell (no run coalescing)
//   no-plm          binary-search refinement instead of per-cell models
//   none            all three disabled
//
// Paper shape to check: the gaps between variants are small relative to
// the gap between any variant and the baselines (Fig. 7) — the layout is
// what matters.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  std::vector<std::string> header{"variant"};
  for (const auto& ds : AllDatasetNames()) header.push_back(ds);
  std::map<std::string, std::vector<std::string>> cells;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(100);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 202)
            .Split(0.5, 203);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    auto learned = BuildFlood(ds.table, train);
    FLOOD_CHECK(learned.ok());
    const GridLayout layout = learned->index->layout();

    auto run_variant = [&](const std::string& label, bool exact, bool merge,
                           bool plm) {
      FloodIndex::Options o;
      o.layout = layout;
      o.max_cells = uint64_t{1} << 24;
      o.enable_exact_ranges = exact;
      o.enable_run_merging = merge;
      o.use_cell_models = plm;
      FloodIndex index(o);
      FLOOD_CHECK(index.Build(ds.table, ctx).ok());
      const RunResult r = RunWorkload(index, test);
      cells[label].push_back(FormatMs(r.avg_ms));
      rows.push_back({"Ablation/" + ds_name + "/" + label, r.avg_ms, {}});
    };
    run_variant("full", true, true, true);
    run_variant("no-exact", false, true, true);
    run_variant("no-merge", true, false, true);
    run_variant("no-plm", true, true, false);
    run_variant("none", false, false, false);
  }

  std::vector<std::vector<std::string>> out;
  for (const std::string& label :
       {"full", "no-exact", "no-merge", "no-plm", "none"}) {
    std::vector<std::string> row{label};
    for (const auto& c : cells[label]) row.push_back(c);
    out.push_back(row);
  }
  PrintTable(
      "Design ablation (§7.1): scan-path optimizations on the learned "
      "layout, avg query time (ms)",
      header, out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
