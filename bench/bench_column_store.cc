// §7.1: column-store substrate checks.
//
//  (1) Compression: block-delta encoding vs raw 64-bit columns on the four
//      datasets (paper reports 77% compression on its evaluation data).
//  (2) Scan throughput: compressed vs plain full scans (the paper's
//      MonetDB-parity experiment; MonetDB is unavailable offline, so the
//      claim exercised is that the compressed store scans at a competitive
//      rate — see DESIGN.md "Substitutions").
//  (3) The cumulative-aggregate column: SUM over exact ranges in O(1).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace flood {
namespace bench {
namespace {

void BM_ScanCompressed(benchmark::State& state) {
  const BenchDataset& ds = GetDataset("tpch");
  const Column& col = ds.table.column(0);
  for (auto _ : state) {
    int64_t sum = 0;
    col.ForEach(0, col.size(), [&sum](size_t, Value v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col.size()));
}

void BM_ScanPlain(benchmark::State& state) {
  const BenchDataset& ds = GetDataset("tpch");
  static const std::vector<Value>* plain =
      new std::vector<Value>(ds.table.DecodeColumn(0));
  for (auto _ : state) {
    int64_t sum = 0;
    for (Value v : *plain) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(plain->size()));
}

void BM_RandomAccessCompressed(benchmark::State& state) {
  const BenchDataset& ds = GetDataset("tpch");
  const Column& col = ds.table.column(0);
  Rng rng(5);
  std::vector<size_t> idx(4096);
  for (auto& i : idx) {
    i = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(col.size()) - 1));
  }
  size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.Get(idx[k++ & 4095]));
  }
}

void BM_PrefixSumRange(benchmark::State& state) {
  const BenchDataset& ds = GetDataset("tpch");
  static const PrefixSums* sums =
      new PrefixSums(ds.table.DecodeColumn(6));
  const size_t n = ds.table.num_rows();
  Rng rng(6);
  size_t k = 0;
  std::vector<std::pair<size_t, size_t>> ranges(1024);
  for (auto& r : ranges) {
    size_t a = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t b = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (a > b) std::swap(a, b);
    r = {a, b};
  }
  for (auto _ : state) {
    const auto& [a, b] = ranges[k++ & 1023];
    benchmark::DoNotOptimize(sums->RangeSum(a, b));
  }
}

void PrintCompressionTable() {
  std::vector<std::vector<std::string>> out;
  for (const std::string& name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(name);
    const size_t raw = ds.table.UncompressedBytes();
    const size_t enc = ds.table.MemoryUsageBytes();
    out.push_back({name, FormatBytes(raw), FormatBytes(enc),
                   Format(100.0 * (1.0 - static_cast<double>(enc) /
                                             static_cast<double>(raw)),
                          1) +
                       "%"});
  }
  PrintTable(
      "Sec 7.1: block-delta compression (paper: 77% on its datasets)",
      {"dataset", "raw", "encoded", "compression"}, out);
}

}  // namespace
}  // namespace bench
}  // namespace flood

BENCHMARK(flood::bench::BM_ScanCompressed);
BENCHMARK(flood::bench::BM_ScanPlain);
BENCHMARK(flood::bench::BM_RandomAccessCompressed);
BENCHMARK(flood::bench::BM_PrefixSumRange);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flood::bench::PrintCompressionTable();
  return 0;
}
