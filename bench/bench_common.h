#ifndef FLOOD_BENCH_BENCH_COMMON_H_
#define FLOOD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/layout_optimizer.h"
#include "data/datasets.h"
#include "query/executor.h"

namespace flood {
namespace bench {

// ---------------------------------------------------------------------------
// Scale control. The paper runs 30M-300M rows on a 64 GB server; default
// bench scale here regenerates every figure on a single laptop core in
// minutes. FLOOD_BENCH_SCALE multiplies the row counts (e.g. 10 or 100 to
// approach paper scale); FLOOD_BENCH_QUERIES overrides the workload size.
// ---------------------------------------------------------------------------

inline double ScaleFactor() {
  const char* env = std::getenv("FLOOD_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline size_t ScaledRows(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * ScaleFactor());
}

inline size_t NumQueries(size_t fallback = 100) {
  const char* env = std::getenv("FLOOD_BENCH_QUERIES");
  if (env == nullptr) return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

/// Max worker threads for the throughput benches. FLOOD_BENCH_THREADS
/// overrides; the default is one per hardware thread.
inline size_t BenchThreads() {
  const char* env = std::getenv("FLOOD_BENCH_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return ThreadPool::DefaultConcurrency();
}

/// Base row counts (paper rows in parentheses): sales 30M, tpch 300M,
/// osm 105M, perfmon 230M — scaled to the same 1 : 10 : 3.5 : 7.7 shape.
inline size_t BaseRows(const std::string& name) {
  if (name == "sales") return 150'000;
  if (name == "tpch") return 600'000;
  if (name == "osm") return 400'000;
  if (name == "perfmon") return 450'000;
  return 200'000;
}

/// Cached dataset registry (one instance per process). Thread-safe: the
/// cache mutates under a mutex, and std::map never invalidates element
/// references, so returned references stay valid for the process lifetime.
inline const BenchDataset& GetDataset(const std::string& name) {
  static std::mutex* mu = new std::mutex();
  static std::map<std::string, BenchDataset>* cache =
      new std::map<std::string, BenchDataset>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = cache->find(name);
  if (it != cache->end()) return it->second;
  const size_t n = ScaledRows(BaseRows(name));
  BenchDataset ds;
  if (name == "sales") {
    ds = MakeSalesDataset(n, 101);
  } else if (name == "tpch") {
    ds = MakeTpchDataset(n, 102);
  } else if (name == "osm") {
    ds = MakeOsmDataset(n, 103);
  } else if (name == "perfmon") {
    ds = MakePerfmonDataset(n, 104);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    std::abort();
  }
  return (*cache)[name] = std::move(ds);
}

inline const std::vector<std::string>& AllDatasetNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"sales", "tpch", "osm", "perfmon"};
  return *names;
}

/// Dataset axis shared by the sweep benches (throughput, serving):
/// FLOOD_BENCH_DATASETS="sales,tpch" widens it, "all" runs every dataset,
/// unset defaults to sales (the acceptance dataset).
inline std::vector<std::string> DatasetSweep() {
  const char* env = std::getenv("FLOOD_BENCH_DATASETS");
  if (env == nullptr) return {"sales"};
  const std::string spec(env);
  if (spec == "all") return AllDatasetNames();
  std::vector<std::string> names;
  std::stringstream ss(spec);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names.empty() ? std::vector<std::string>{"sales"} : names;
}

// ---------------------------------------------------------------------------
// Cost model: calibrated once per process on a synthetic dataset — §7.6
// shows the weights transfer across datasets, so benches share one model.
// ---------------------------------------------------------------------------

inline const CostModel& SharedCostModel() {
  static const CostModel* model = [] {
    const BenchDataset calib = MakeUniformDataset(60'000, 4, 999);
    Workload queries;
    {
      QueryGenerator gen(calib.table, 1000);
      std::vector<QueryTypeSpec> specs;
      for (size_t k = 1; k <= 3; ++k) {
        QueryTypeSpec spec;
        for (size_t dim = 0; dim < k; ++dim) spec.range_dims.push_back(dim);
        specs.push_back(spec);
      }
      queries = gen.GenerateWorkload(specs, 60, 0.002);
    }
    CostModel::CalibrationOptions opts;
    opts.num_layouts = 8;
    opts.max_queries = 60;
    opts.max_cells = 1 << 14;
    StatusOr<CostModel> m = CostModel::Calibrate(calib.table, queries, opts);
    FLOOD_CHECK(m.ok());
    return new CostModel(std::move(*m));
  }();
  return *model;
}

// ---------------------------------------------------------------------------
// Index construction.
// ---------------------------------------------------------------------------

inline const std::vector<std::string>& AllBaselineNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"FullScan",    "Clustered", "RStarTree",
                                   "ZOrder",      "UBtree",    "Hyperoctree",
                                   "KdTree",      "GridFile"};
  return *names;
}

/// Builds a baseline through the IndexRegistry (any registered name or
/// alias works). `page_size` tunes page-structured indexes (ignored by the
/// others). Returns an error status when construction fails (e.g. Grid
/// File budget on skewed data -> paper's "N/A").
inline StatusOr<std::unique_ptr<MultiDimIndex>> BuildBaseline(
    const std::string& name, const Table& table, const BuildContext& ctx,
    size_t page_size = 1024) {
  IndexOptions opts;
  opts.SetInt("page_size", static_cast<int64_t>(page_size));
  const StatusOr<std::string> canonical =
      IndexRegistry::Global().Resolve(name);
  if (canonical.ok() && *canonical == "grid_file") {
    // The grid file needs roomier pages to stay inside its directory
    // budget on the bench datasets.
    opts.SetInt("page_size",
                static_cast<int64_t>(std::max<size_t>(page_size, 512)));
  }
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(name, opts);
  if (!index.ok()) return index.status();
  FLOOD_RETURN_IF_ERROR((*index)->Build(table, ctx));
  return index;
}

/// Learns a layout and builds Flood with bench-scale optimizer settings.
inline StatusOr<OptimizedFlood> BuildFlood(const Table& table,
                                           const Workload& train,
                                           uint64_t max_cells = 0) {
  LayoutOptimizer::Options opts;
  opts.data_sample_size = 20'000;
  opts.query_sample_size = 50;
  opts.max_cells =
      max_cells > 0 ? max_cells
                    : std::max<uint64_t>(256, table.num_rows() / 16);
  return BuildOptimizedFlood(table, train, SharedCostModel(), opts);
}

// ---------------------------------------------------------------------------
// Workload execution and reporting.
// ---------------------------------------------------------------------------

struct RunResult {
  double avg_ms = 0;       ///< Average end-to-end query time.
  double avg_index_ms = 0; ///< Avg projection/traversal (+refine) time.
  double avg_scan_ms = 0;
  QueryStats stats;        ///< Accumulated counters.
  size_t queries = 0;
};

inline RunResult RunWorkload(const MultiDimIndex& index,
                             const Workload& workload) {
  RunResult r;
  r.queries = workload.size();
  for (const Query& q : workload) {
    (void)ExecuteAggregate(index, q, &r.stats);
  }
  const double nq = std::max<double>(1.0, static_cast<double>(r.queries));
  r.avg_ms = static_cast<double>(r.stats.total_ns) / nq / 1e6;
  r.avg_index_ms =
      static_cast<double>(r.stats.index_ns + r.stats.refine_ns) / nq / 1e6;
  r.avg_scan_ms = static_cast<double>(r.stats.scan_ns) / nq / 1e6;
  return r;
}

/// Facade flavor: runs the workload through Database::RunBatch — the
/// delta-aware public path, so staged writes are reflected — and reports
/// the same averages from the batch's merged stats.
inline RunResult RunWorkload(Database& db, const Workload& workload) {
  const BatchResult batch = db.RunBatch(workload);
  FLOOD_CHECK(batch.status.ok());
  RunResult r;
  r.queries = workload.size();
  r.stats = batch.stats;
  const double nq = std::max<double>(1.0, static_cast<double>(r.queries));
  r.avg_ms = static_cast<double>(r.stats.total_ns) / nq / 1e6;
  r.avg_index_ms =
      static_cast<double>(r.stats.index_ns + r.stats.refine_ns) / nq / 1e6;
  r.avg_scan_ms = static_cast<double>(r.stats.scan_ns) / nq / 1e6;
  return r;
}

/// Opens a Database over `table` with the given registry index name and
/// training workload (the facade-era BuildBaseline/BuildFlood).
inline StatusOr<Database> OpenDatabase(const std::string& index_name,
                                       const Table& table,
                                       const Workload& train,
                                       DatabaseOptions options = {}) {
  options.index_name = index_name;
  options.training_workload = train;
  return Database::Open(table, std::move(options));
}

/// Tries `candidates` page sizes on a training workload sample and returns
/// the fastest (the paper's "we tuned the baseline approaches as much as
/// possible per workload").
inline size_t TunePageSize(const std::string& name, const Table& table,
                           const BuildContext& ctx, const Workload& train,
                           const std::vector<size_t>& candidates) {
  size_t best = candidates.front();
  double best_ms = -1;
  const Workload probe = train.Sample(20, 777);
  for (size_t page : candidates) {
    auto index = BuildBaseline(name, table, ctx, page);
    if (!index.ok()) continue;
    const RunResult r = RunWorkload(**index, probe);
    if (best_ms < 0 || r.avg_ms < best_ms) {
      best_ms = r.avg_ms;
      best = page;
    }
  }
  return best;
}

/// Fixed-width markdown-ish table printer shared by every bench binary.
inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::vector<size_t> width(header.size());
  for (size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&width](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::printf("|");
  for (size_t c = 0; c < width.size(); ++c) {
    std::printf("%s|", std::string(width[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) print_row(row);
  std::fflush(stdout);
}

inline std::string FormatMs(double ms) {
  char buf[64];
  if (ms >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  } else if (ms >= 1) {
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", ms);
  }
  return buf;
}

inline std::string FormatBytes(size_t bytes) {
  char buf[64];
  if (bytes >= (size_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1 << 30));
  } else if (bytes >= (size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fkB",
                  static_cast<double>(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

inline std::string Format(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// ---------------------------------------------------------------------------
// google-benchmark integration: experiments run once (deterministically) in
// main(); each measured configuration is then registered as a manual-time
// benchmark so results also appear in the standard benchmark report.
// ---------------------------------------------------------------------------

struct BenchRow {
  std::string name;  ///< e.g. "Fig7/tpch/Flood".
  double ms = 0;     ///< Reported as the iteration time.
  std::vector<std::pair<std::string, double>> counters;
};

}  // namespace bench
}  // namespace flood

#endif  // FLOOD_BENCH_BENCH_COMMON_H_
