// Fig. 10 (§7.4 "Dynamic Query Workload Changes"): a sequence of random
// TPC-H workloads ("hours"). Baselines stay tuned for the original OLAP
// workload; Flood runs each new workload first on its stale layout (the
// paper's start-of-hour spike), then re-learns and reruns. Also exercises
// the §8 CostMonitor shift detector.
//
// Paper shape to check: Flood's stale-layout time spikes, recovery after
// retraining beats the best baseline (paper: >5x median), retraining takes
// seconds, and the monitor flags the shift.

#include "bench/bench_main.h"
#include "core/cost_model.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const BenchDataset& ds = GetDataset("tpch");
  const size_t nq = NumQueries(60);
  const size_t num_phases = 10;  // Paper: 30 one-hour workloads.

  const Workload tuning = MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq, 82);
  BuildContext ctx;
  ctx.workload = &tuning;
  ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

  std::map<std::string, std::unique_ptr<MultiDimIndex>> baselines;
  for (const std::string& name :
       {"ZOrder", "UBtree", "Hyperoctree", "KdTree", "GridFile"}) {
    auto index = BuildBaseline(name, ds.table, ctx, 1024);
    if (index.ok()) baselines[name] = std::move(*index);
  }

  auto flood = BuildFlood(ds.table, tuning);
  FLOOD_CHECK(flood.ok());
  std::unique_ptr<FloodIndex> current = std::move(flood->index);

  CostMonitor monitor(/*degradation_threshold=*/1.5, /*ewma_alpha=*/0.2);
  {
    const RunResult base = RunWorkload(*current, tuning);
    monitor.Rebase(base.avg_ms * 1e6);
  }

  std::vector<std::vector<std::string>> out;
  double flood_total = 0;
  double best_baseline_total = 0;
  size_t monitor_hits = 0;

  for (size_t phase = 0; phase < num_phases; ++phase) {
    const Workload random =
        MakeRandomWorkload(ds, nq * 2, /*max_query_types=*/10, 900 + phase);
    const auto [train, test] = random.Split(0.5, 901 + phase);

    // Stale layout: the start-of-hour spike.
    const RunResult stale = RunWorkload(*current, test);
    for (const Query& q : test) {
      QueryStats st;
      (void)ExecuteAggregate(*current, q, &st);
      monitor.Observe(static_cast<double>(st.total_ns));
    }
    const bool flagged = monitor.ShouldRetrain();
    monitor_hits += flagged ? 1 : 0;

    // Retrain (the paper assumes this happens on a separate instance).
    auto relearned = BuildFlood(ds.table, train);
    FLOOD_CHECK(relearned.ok());
    current = std::move(relearned->index);
    const RunResult fresh = RunWorkload(*current, test);
    monitor.Rebase(fresh.avg_ms * 1e6);
    flood_total += fresh.avg_ms;

    double best_ms = -1;
    std::string best_name;
    std::vector<std::string> row{std::to_string(phase),
                                 FormatMs(stale.avg_ms),
                                 FormatMs(fresh.avg_ms),
                                 Format(relearned->learn.learning_seconds, 2),
                                 flagged ? "yes" : "no"};
    for (auto& [name, index] : baselines) {
      const RunResult r = RunWorkload(*index, test);
      if (best_ms < 0 || r.avg_ms < best_ms) {
        best_ms = r.avg_ms;
        best_name = name;
      }
    }
    best_baseline_total += best_ms;
    row.push_back(FormatMs(best_ms) + " (" + best_name + ")");
    row.push_back(Format(best_ms / fresh.avg_ms, 1) + "x");
    out.push_back(row);

    rows.push_back({"Fig10/phase" + std::to_string(phase) + "/FloodStale",
                    stale.avg_ms, {}});
    rows.push_back({"Fig10/phase" + std::to_string(phase) + "/FloodFresh",
                    fresh.avg_ms,
                    {{"learn_s", relearned->learn.learning_seconds},
                     {"monitor_flagged", flagged ? 1.0 : 0.0}}});
    rows.push_back({"Fig10/phase" + std::to_string(phase) + "/BestBaseline",
                    best_ms, {}});
  }

  PrintTable("Fig 10: random workload phases (Flood re-learns per phase)",
             {"phase", "flood stale", "flood fresh", "learn s",
              "shift flagged", "best baseline", "speedup"},
             out);
  std::printf(
      "\nFig 10 summary: Flood fresh avg %.3f ms vs best-baseline avg %.3f "
      "ms (%.1fx); monitor flagged %zu/%zu phases\n",
      flood_total / num_phases, best_baseline_total / num_phases,
      best_baseline_total / flood_total, monitor_hits, num_phases);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
