// Fig. 10 (§7.4 "Dynamic Query Workload Changes") through the public
// flood::Database facade: a sequence of random TPC-H workloads ("hours").
// Baselines stay tuned for the original OLAP workload; Flood runs each new
// workload first on its stale layout (the paper's start-of-hour spike),
// then Retrain() re-learns and reruns. Also exercises the §8 CostMonitor
// shift detector, fed from the batch's per-query latencies.
//
// Paper shape to check: Flood's stale-layout time spikes, recovery after
// retraining beats the best baseline (paper: >5x median), retraining takes
// seconds, and the monitor flags the shift.
//
// Part 2 (§8 "Insertions"): the online write path. Rows stream in through
// Database::Insert, queries run against base index + delta between
// compactions, and the auto_retrain_fraction policy drains the delta.
// Shape to check: per-query latency grows roughly linearly with the staged
// row count (the delta pass is a linear scan) and snaps back to the
// baseline after each automatic compaction.

#include "bench/bench_main.h"
#include "core/cost_model.h"

namespace flood {
namespace bench {
namespace {

void RunWorkloadPhases(std::vector<BenchRow>& rows) {
  const BenchDataset& ds = GetDataset("tpch");
  const size_t nq = NumQueries(60);
  const size_t num_phases = 10;  // Paper: 30 one-hour workloads.

  const Workload tuning = MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq, 82);

  std::map<std::string, Database> baselines;
  for (const std::string& name :
       {"ZOrder", "UBtree", "Hyperoctree", "KdTree", "GridFile"}) {
    // Same page-size tuning the pre-facade BuildBaseline applied.
    DatabaseOptions options;
    options.index_options.SetInt("page_size", 1024);
    StatusOr<Database> db = OpenDatabase(name, ds.table, tuning, options);
    if (db.ok()) baselines.emplace(name, std::move(*db));
  }

  StatusOr<Database> flood = OpenDatabase("flood", ds.table, tuning);
  FLOOD_CHECK(flood.ok());

  CostMonitor monitor(/*degradation_threshold=*/1.5, /*ewma_alpha=*/0.2);
  {
    const RunResult base = RunWorkload(*flood, tuning);
    monitor.Rebase(base.avg_ms * 1e6);
  }

  std::vector<std::vector<std::string>> out;
  double flood_total = 0;
  double best_baseline_total = 0;
  size_t monitor_hits = 0;

  for (size_t phase = 0; phase < num_phases; ++phase) {
    const Workload random =
        MakeRandomWorkload(ds, nq * 2, /*max_query_types=*/10, 900 + phase);
    const auto [train, test] = random.Split(0.5, 901 + phase);

    // Stale layout: the start-of-hour spike. One batch serves both the
    // timing row and the monitor's per-query latency feed.
    const BatchResult stale_batch = flood->RunBatch(test);
    FLOOD_CHECK(stale_batch.status.ok());
    const double stale_ms = stale_batch.AvgExecutedLatencyMs();
    for (const QueryResult& r : stale_batch.results) {
      if (!r.skipped_empty) {
        monitor.Observe(static_cast<double>(r.stats.total_ns));
      }
    }
    const bool flagged = monitor.ShouldRetrain();
    monitor_hits += flagged ? 1 : 0;

    // Retrain through the facade (the paper assumes this happens on a
    // separate instance; here it is wall-clocked in place).
    const Stopwatch retrain_watch;
    FLOOD_CHECK(flood->Retrain(train).ok());
    const double learn_s = retrain_watch.ElapsedSeconds();
    const RunResult fresh = RunWorkload(*flood, test);
    monitor.Rebase(fresh.avg_ms * 1e6);
    flood_total += fresh.avg_ms;

    double best_ms = -1;
    std::string best_name;
    std::vector<std::string> row{std::to_string(phase), FormatMs(stale_ms),
                                 FormatMs(fresh.avg_ms), Format(learn_s, 2),
                                 flagged ? "yes" : "no"};
    for (auto& [name, db] : baselines) {
      const RunResult r = RunWorkload(db, test);
      if (best_ms < 0 || r.avg_ms < best_ms) {
        best_ms = r.avg_ms;
        best_name = name;
      }
    }
    best_baseline_total += best_ms;
    row.push_back(FormatMs(best_ms) + " (" + best_name + ")");
    row.push_back(Format(best_ms / fresh.avg_ms, 1) + "x");
    out.push_back(row);

    rows.push_back({"Fig10/phase" + std::to_string(phase) + "/FloodStale",
                    stale_ms, {}});
    rows.push_back({"Fig10/phase" + std::to_string(phase) + "/FloodFresh",
                    fresh.avg_ms,
                    {{"learn_s", learn_s},
                     {"monitor_flagged", flagged ? 1.0 : 0.0}}});
    rows.push_back({"Fig10/phase" + std::to_string(phase) + "/BestBaseline",
                    best_ms, {}});
  }

  PrintTable("Fig 10: random workload phases (Flood re-learns per phase)",
             {"phase", "flood stale", "flood fresh", "learn s",
              "shift flagged", "best baseline", "speedup"},
             out);
  std::printf(
      "\nFig 10 summary: Flood fresh avg %.3f ms vs best-baseline avg %.3f "
      "ms (%.1fx); monitor flagged %zu/%zu phases\n",
      flood_total / num_phases, best_baseline_total / num_phases,
      best_baseline_total / flood_total, monitor_hits, num_phases);
}

void RunOnlineWrites(std::vector<BenchRow>& rows) {
  const BenchDataset& ds = GetDataset("sales");
  const size_t nq = NumQueries(60);
  const Workload workload =
      MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq, 83);

  DatabaseOptions options;
  options.auto_retrain_fraction = 0.05;  // Compact past 5% staged rows.
  StatusOr<Database> db = OpenDatabase("flood", ds.table, workload, options);
  FLOOD_CHECK(db.ok());

  // The insert stream: recycled rows of the dataset itself, so the data
  // distribution (and the learned layout's fit) is unchanged.
  const size_t num_dims = ds.table.num_dims();
  std::vector<std::vector<Value>> stream;
  Rng rng(84);
  const size_t per_step = ds.table.num_rows() / 50;  // 2% per step.
  const size_t num_steps = 8;
  for (size_t i = 0; i < per_step * num_steps; ++i) {
    const RowId src = static_cast<RowId>(
        rng.UniformInt(0, static_cast<int64_t>(ds.table.num_rows()) - 1));
    std::vector<Value> row(num_dims);
    for (size_t d = 0; d < num_dims; ++d) row[d] = ds.table.Get(src, d);
    stream.push_back(std::move(row));
  }

  std::vector<std::vector<std::string>> out;
  const double base_ms = RunWorkload(*db, workload).avg_ms;
  out.push_back({"-", "0", FormatMs(base_ms), "0", "0"});

  size_t offset = 0;
  double last_ms = base_ms;
  for (size_t step = 0; step < num_steps; ++step) {
    const Stopwatch insert_watch;
    const std::span<const std::vector<Value>> chunk(stream.data() + offset,
                                                    per_step);
    FLOOD_CHECK(db->InsertBatch(chunk).ok());
    offset += per_step;
    const double insert_s = insert_watch.ElapsedSeconds();

    const RunResult r = RunWorkload(*db, workload);
    last_ms = r.avg_ms;
    const double delta_per_query =
        static_cast<double>(r.stats.delta_rows_scanned) /
        static_cast<double>(std::max<size_t>(1, r.queries));
    out.push_back({std::to_string(step),
                   std::to_string(db->pending_writes()), FormatMs(r.avg_ms),
                   Format(delta_per_query, 0),
                   std::to_string(db->compactions())});
    rows.push_back(
        {"Fig10/online/step" + std::to_string(step),
         r.avg_ms,
         {{"staged_rows", static_cast<double>(db->pending_writes())},
          {"delta_rows_per_query", delta_per_query},
          {"compactions", static_cast<double>(db->compactions())},
          {"insert_chunk_s", insert_s}}});
  }
  PrintTable(
      "Fig 10b: online inserts through the facade (auto-retrain at 5%)",
      {"step", "staged rows", "avg query ms", "delta rows/query",
       "compactions"},
      out);
  std::printf(
      "\nFig 10b summary: %zu rows streamed in, %llu automatic "
      "compaction(s), final avg %.3f ms vs %.3f ms pre-insert\n",
      offset, static_cast<unsigned long long>(db->compactions()),
      last_ms, base_ms);
}

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  RunWorkloadPhases(rows);
  RunOnlineWrites(rows);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
