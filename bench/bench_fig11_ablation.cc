// Fig. 11 (§7.4): incremental ablation of Flood's components on all four
// datasets:
//   Simple Grid   d-dim histogram grid, equal-width columns ~ selectivity
//   +Sort Dim     (d-1)-dim grid + sorted last dimension
//   +Flattening   CDF-based column boundaries
//   +Learning     cost-model-optimized layout (full Flood)
//
// Paper shape to check: sort-dim helps modestly; flattening is the big win
// on skewed datasets (osm, perfmon: 20-30x) and ~neutral on uniform ones
// (sales, tpch); learning provides major gains everywhere.

#include <cmath>

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

/// Heuristic column counts ~ proportional to (inverse) selectivity, the
/// paper's "Simple Grid" baseline configuration.
std::vector<uint32_t> HeuristicColumns(const BenchDataset& ds,
                                       const Workload& train,
                                       const DataSample& sample,
                                       const std::vector<size_t>& dims,
                                       uint64_t target_cells) {
  std::vector<double> weight(dims.size());
  double total = 0;
  for (size_t i = 0; i < dims.size(); ++i) {
    const double sel = std::max(1e-6, train.AvgSelectivity(dims[i], sample));
    weight[i] = sel < 0.999 ? -std::log(sel) : 0.0;
    total += weight[i];
  }
  std::vector<uint32_t> cols(dims.size(), 1);
  const double log_target = std::log(static_cast<double>(target_cells));
  for (size_t i = 0; i < dims.size(); ++i) {
    if (total <= 0) {
      cols[i] = static_cast<uint32_t>(std::max(
          1.0, std::exp(log_target / static_cast<double>(dims.size()))));
    } else if (weight[i] > 0) {
      cols[i] = static_cast<uint32_t>(
          std::max(1.0, std::exp(log_target * weight[i] / total)));
    }
  }
  return cols;
}

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  std::vector<std::string> header{"variant"};
  for (const auto& ds : AllDatasetNames()) header.push_back(ds);
  std::map<std::string, std::vector<std::string>> cells;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t d = ds.table.num_dims();
    const size_t nq = NumQueries(100);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 92).Split(0.5, 93);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);
    const uint64_t target_cells =
        std::max<uint64_t>(64, ds.table.num_rows() / 64);

    auto run_variant = [&](const std::string& label,
                           const FloodIndex::Options& options) {
      FloodIndex index(options);
      const Status s = index.Build(ds.table, ctx);
      FLOOD_CHECK(s.ok());
      const RunResult r = RunWorkload(index, test);
      cells[label].push_back(FormatMs(r.avg_ms));
      rows.push_back({"Fig11/" + ds_name + "/" + label, r.avg_ms, {}});
    };

    std::vector<size_t> all_dims(d);
    for (size_t i = 0; i < d; ++i) all_dims[i] = i;

    // Simple Grid: all d dims gridded, no sort dim, equal-width columns.
    {
      FloodIndex::Options o;
      o.layout.dim_order = all_dims;
      o.layout.use_sort_dim = false;
      o.layout.columns =
          HeuristicColumns(ds, train, ctx.sample, all_dims, target_cells);
      o.flatten_mode = Flattener::Mode::kLinear;
      o.max_cells = uint64_t{1} << 24;
      run_variant("SimpleGrid", o);
    }
    // +Sort Dim: last (least selective) dim becomes the sort dimension.
    std::vector<size_t> by_sel = ctx.DimsBySelectivity(d);
    std::vector<size_t> grid_dims(by_sel.begin(), by_sel.end() - 1);
    const size_t sort_dim = by_sel.back();
    FloodIndex::Options sorted;
    sorted.layout.dim_order = grid_dims;
    sorted.layout.dim_order.push_back(sort_dim);
    sorted.layout.use_sort_dim = true;
    sorted.layout.columns =
        HeuristicColumns(ds, train, ctx.sample, grid_dims, target_cells);
    sorted.flatten_mode = Flattener::Mode::kLinear;
    sorted.max_cells = uint64_t{1} << 24;
    run_variant("+SortDim", sorted);

    // +Flattening: same layout, CDF columns.
    FloodIndex::Options flattened = sorted;
    flattened.flatten_mode = Flattener::Mode::kCdf;
    run_variant("+Flattening", flattened);

    // +Learning: full Flood.
    {
      auto flood = BuildFlood(ds.table, train);
      FLOOD_CHECK(flood.ok());
      const RunResult r = RunWorkload(*flood->index, test);
      cells["+Learning"].push_back(FormatMs(r.avg_ms));
      rows.push_back({"Fig11/" + ds_name + "/+Learning", r.avg_ms, {}});
    }
  }

  std::vector<std::vector<std::string>> out;
  for (const std::string& label :
       {"SimpleGrid", "+SortDim", "+Flattening", "+Learning"}) {
    std::vector<std::string> row{label};
    for (const auto& c : cells[label]) row.push_back(c);
    out.push_back(row);
  }
  PrintTable("Fig 11: component ablation, avg query time (ms)", header, out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
