// Fig. 12 (§7.5): scaling with (a) dataset size — TPC-H subsampled over a
// decade of sizes, same workload — and (b) query selectivity, 0.001%..10%.
//
// Paper shape to check: Flood's time grows sub-linearly with rows (the
// dashed line in the paper is linear scaling); Flood wins at every
// selectivity with the gap narrowing at 10%.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const std::vector<std::string> index_set = {
      "FullScan", "Clustered", "ZOrder", "UBtree",
      "Hyperoctree", "KdTree", "GridFile"};

  // ---- (a) dataset size -------------------------------------------------
  {
    std::vector<std::string> header{"rows"};
    for (const auto& n : index_set) header.push_back(n);
    header.push_back("Flood");
    std::vector<std::vector<std::string>> out;

    const size_t base = ScaledRows(600'000);
    for (double frac : {0.125, 0.25, 0.5, 1.0}) {
      const size_t n = static_cast<size_t>(static_cast<double>(base) * frac);
      const BenchDataset ds = MakeTpchDataset(n, 102);
      const size_t nq = NumQueries(60);
      const auto [train, test] =
          MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 112)
              .Split(0.5, 113);
      BuildContext ctx;
      ctx.workload = &train;
      ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

      std::vector<std::string> row{std::to_string(n)};
      for (const auto& name : index_set) {
        auto index = BuildBaseline(name, ds.table, ctx, 1024);
        if (!index.ok()) {
          row.push_back("N/A");
          continue;
        }
        const RunResult r = RunWorkload(**index, test);
        row.push_back(FormatMs(r.avg_ms));
        rows.push_back({"Fig12a/rows" + std::to_string(n) + "/" + name,
                        r.avg_ms, {}});
      }
      auto flood = BuildFlood(ds.table, train);
      FLOOD_CHECK(flood.ok());
      const RunResult r = RunWorkload(*flood->index, test);
      row.push_back(FormatMs(r.avg_ms));
      rows.push_back({"Fig12a/rows" + std::to_string(n) + "/Flood",
                      r.avg_ms,
                      {{"cells", static_cast<double>(
                            flood->index->num_cells())}}});
      out.push_back(row);
    }
    PrintTable("Fig 12a: avg query time (ms) vs dataset size (TPC-H)",
               header, out);
  }

  // ---- (b) query selectivity ---------------------------------------------
  {
    const BenchDataset& ds = GetDataset("tpch");
    std::vector<std::string> header{"selectivity"};
    for (const auto& n : index_set) header.push_back(n);
    header.push_back("Flood");
    std::vector<std::vector<std::string>> out;

    for (double sel : {0.00001, 0.0001, 0.001, 0.01, 0.1}) {
      const size_t nq = NumQueries(60);
      const auto [train, test] =
          MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 122, sel)
              .Split(0.5, 123);
      BuildContext ctx;
      ctx.workload = &train;
      ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

      char label[32];
      std::snprintf(label, sizeof(label), "%g%%", sel * 100);
      std::vector<std::string> row{label};
      for (const auto& name : index_set) {
        auto index = BuildBaseline(name, ds.table, ctx, 1024);
        if (!index.ok()) {
          row.push_back("N/A");
          continue;
        }
        const RunResult r = RunWorkload(**index, test);
        row.push_back(FormatMs(r.avg_ms));
        rows.push_back({std::string("Fig12b/sel") + label + "/" + name,
                        r.avg_ms, {}});
      }
      auto flood = BuildFlood(ds.table, train);
      FLOOD_CHECK(flood.ok());
      const RunResult r = RunWorkload(*flood->index, test);
      row.push_back(FormatMs(r.avg_ms));
      rows.push_back({std::string("Fig12b/sel") + label + "/Flood",
                      r.avg_ms, {}});
      out.push_back(row);
    }
    PrintTable("Fig 12b: avg query time (ms) vs query selectivity (TPC-H)",
               header, out);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
