// Fig. 13 (§7.5): scaling with dimensionality. Uniform synthetic data,
// d in {4, 8, 12, 16}; queries filter the first k dims (k uniform in
// [1, d]) at fixed total selectivity. Reports (a) absolute query time and
// (b) the ratio to a full scan (the curse-of-dimensionality view).
//
// Paper shape to check: Flood stays fastest at high d and degrades more
// slowly than the other multi-dim indexes; the clustered index's relative
// standing improves with d.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const std::vector<std::string> index_set = {
      "FullScan", "Clustered", "ZOrder", "UBtree",
      "Hyperoctree", "KdTree"};

  std::vector<std::string> header{"dims"};
  for (const auto& n : index_set) header.push_back(n);
  header.push_back("Flood");
  std::vector<std::vector<std::string>> out_ms;
  std::vector<std::vector<std::string>> out_ratio;

  const size_t n = ScaledRows(250'000);
  for (size_t d : {size_t{4}, size_t{8}, size_t{12}, size_t{16}}) {
    const BenchDataset ds = MakeUniformDataset(n, d, 132);
    const size_t nq = NumQueries(60);
    const auto [train, test] =
        Workload(MakeDimensionSweepWorkload(ds, nq * 2, 133).queries())
            .Split(0.5, 134);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    double full_scan_ms = 1;
    std::vector<std::string> row_ms{std::to_string(d)};
    std::vector<std::string> row_ratio{std::to_string(d)};
    for (const auto& name : index_set) {
      auto index = BuildBaseline(name, ds.table, ctx, 1024);
      if (!index.ok()) {
        row_ms.push_back("N/A");
        row_ratio.push_back("N/A");
        continue;
      }
      const RunResult r = RunWorkload(**index, test);
      if (name == "FullScan") full_scan_ms = r.avg_ms;
      row_ms.push_back(FormatMs(r.avg_ms));
      row_ratio.push_back(Format(full_scan_ms / r.avg_ms, 1) + "x");
      rows.push_back({"Fig13/d" + std::to_string(d) + "/" + name,
                      r.avg_ms, {}});
    }
    auto flood = BuildFlood(ds.table, train);
    FLOOD_CHECK(flood.ok());
    const RunResult r = RunWorkload(*flood->index, test);
    row_ms.push_back(FormatMs(r.avg_ms));
    row_ratio.push_back(Format(full_scan_ms / r.avg_ms, 1) + "x");
    rows.push_back({"Fig13/d" + std::to_string(d) + "/Flood",
                    r.avg_ms,
                    {{"grid_dims_used",
                      [&] {
                        double used = 0;
                        const GridLayout& l = flood->index->layout();
                        for (uint32_t c : l.columns) used += c > 1 ? 1 : 0;
                        return used;
                      }()}}});
    std::printf("d=%zu: Flood layout %s\n", d,
                flood->index->layout().ToString().c_str());
    out_ms.push_back(row_ms);
    out_ratio.push_back(row_ratio);
  }

  PrintTable("Fig 13a: avg query time (ms) vs dimensions", header, out_ms);
  PrintTable("Fig 13b: speedup over full scan vs dimensions", header,
             out_ratio);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
