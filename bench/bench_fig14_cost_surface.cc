// Fig. 14 (§7.6 "Finding the Optimum"): fix the learned layout's shape and
// scale its column counts proportionally, sweeping the total cell count.
// Scan time falls (less overscan) while index time rises (more cells);
// total time is U-shaped and the learned optimum should sit near the
// bottom. Also reports scan overhead and time-per-scan (Fig. 14b).
//
// Paper shape to check: U-shaped total time; the optimizer's chosen cell
// count lands near the measured minimum.

#include <cmath>

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const BenchDataset& ds = GetDataset("tpch");
  const size_t nq = NumQueries(80);
  const auto [train, test] =
      MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 142).Split(0.5, 143);
  BuildContext ctx;
  ctx.workload = &train;
  ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

  auto learned = BuildFlood(ds.table, train);
  FLOOD_CHECK(learned.ok());
  const GridLayout base = learned->index->layout();
  const double learned_cells = static_cast<double>(base.NumCells());

  std::vector<std::vector<std::string>> out;
  double best_ms = -1;
  double best_cells = 0;
  for (double scale :
       {1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0, 64.0}) {
    // Scale columns proportionally in every gridded dimension.
    GridLayout layout = base;
    const size_t k = layout.NumGridDims();
    size_t gridded = 0;
    for (uint32_t c : layout.columns) gridded += c > 1 ? 1 : 0;
    if (gridded == 0) gridded = k;
    const double per_dim =
        std::pow(scale, 1.0 / static_cast<double>(std::max<size_t>(1, gridded)));
    for (auto& c : layout.columns) {
      if (c > 1 || scale > 1.0) {
        c = static_cast<uint32_t>(
            std::max(1.0, std::round(static_cast<double>(c) * per_dim)));
      }
    }
    FloodIndex::Options o;
    o.layout = layout;
    o.max_cells = uint64_t{1} << 24;
    FloodIndex index(o);
    const Status s = index.Build(ds.table, ctx);
    if (!s.ok()) continue;
    const RunResult r = RunWorkload(index, test);
    if (best_ms < 0 || r.avg_ms < best_ms) {
      best_ms = r.avg_ms;
      best_cells = static_cast<double>(index.num_cells());
    }
    out.push_back({std::to_string(index.num_cells()), FormatMs(r.avg_ms),
                   FormatMs(r.avg_scan_ms), FormatMs(r.avg_index_ms),
                   Format(r.stats.ScanOverhead(), 1),
                   Format(r.stats.TimePerScannedPoint(), 2),
                   scale == 1.0 ? "<== learned" : ""});
    rows.push_back({"Fig14/cells" + std::to_string(index.num_cells()),
                    r.avg_ms,
                    {{"scan_ms", r.avg_scan_ms},
                     {"index_ms", r.avg_index_ms},
                     {"scan_overhead", r.stats.ScanOverhead()}}});
  }

  PrintTable("Fig 14: cost surface along the cell-count axis (TPC-H)",
             {"cells", "total ms", "scan ms", "index ms", "scan overhead",
              "ns/scan", "note"},
             out);
  std::printf(
      "\nFig 14 summary: learned layout has %.0f cells; measured optimum "
      "%.0f cells (%.2f ms). Learned-vs-optimum time ratio should be ~1.\n",
      learned_cells, best_cells, best_ms);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
