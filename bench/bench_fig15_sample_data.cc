// Fig. 15 (§7.7 "Sampling records"): layout learning time and resulting
// query time as the optimizer's *data* sample shrinks. The hyperoctree's
// creation time is shown for comparison, as in the paper.
//
// Paper shape to check: query time stays flat down to sub-percent samples
// while learning time drops dramatically.

#include "bench/bench_main.h"
#include "common/timer.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(60);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 152).Split(0.5, 153);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    // Hyperoctree creation-time yardstick.
    double octree_create_s = 0;
    {
      Stopwatch sw;
      auto octree = BuildBaseline("Hyperoctree", ds.table, ctx, 1024);
      octree_create_s = sw.ElapsedSeconds();
      FLOOD_CHECK(octree.ok());
    }

    std::vector<std::vector<std::string>> out;
    for (size_t sample :
         {size_t{1000}, size_t{5000}, size_t{20'000}, size_t{100'000},
          ds.table.num_rows()}) {
      if (sample > ds.table.num_rows()) continue;
      LayoutOptimizer::Options opts;
      opts.data_sample_size = sample;
      opts.query_sample_size = 50;
      opts.max_cells = std::max<uint64_t>(256, ds.table.num_rows() / 16);
      auto flood =
          BuildOptimizedFlood(ds.table, train, SharedCostModel(), opts);
      FLOOD_CHECK(flood.ok());
      const RunResult r = RunWorkload(*flood->index, test);
      const double pct = 100.0 * static_cast<double>(sample) /
                         static_cast<double>(ds.table.num_rows());
      out.push_back({std::to_string(sample) + " (" + Format(pct, 2) + "%)",
                     Format(flood->learn.learning_seconds, 3),
                     FormatMs(r.avg_ms)});
      rows.push_back({"Fig15/" + ds_name + "/sample" + std::to_string(sample),
                      r.avg_ms,
                      {{"learn_s", flood->learn.learning_seconds}}});
    }
    out.push_back({"(hyperoctree creation)", Format(octree_create_s, 3),
                   "-"});
    PrintTable("Fig 15 (" + ds_name +
                   "): data-sample size vs learning time & query time",
               {"sample rows", "learning s", "avg query ms"}, out);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
