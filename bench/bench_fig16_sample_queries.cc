// Fig. 16 (§7.7 "Sampling queries"): layout learning time and resulting
// query time as the optimizer's *query* sample shrinks (data sample held
// small, as in the paper's conservative setting).
//
// Paper shape to check: a handful of queries per query type suffices;
// variance grows as the sample shrinks.

#include "bench/bench_main.h"
#include "common/timer.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(60);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 162).Split(0.5, 163);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    std::vector<std::vector<std::string>> out;
    for (size_t sample : {size_t{3}, size_t{5}, size_t{10}, size_t{25},
                          train.size()}) {
      // Three trials to expose the variance the paper highlights.
      double worst_ms = 0;
      double best_ms = -1;
      double learn_s = 0;
      for (uint64_t trial = 0; trial < 3; ++trial) {
        LayoutOptimizer::Options opts;
        opts.data_sample_size = 20'000;
        opts.query_sample_size = sample;
        opts.seed = 7 + trial * 31;
        opts.max_cells = std::max<uint64_t>(256, ds.table.num_rows() / 16);
        auto flood =
            BuildOptimizedFlood(ds.table, train, SharedCostModel(), opts);
        FLOOD_CHECK(flood.ok());
        const RunResult r = RunWorkload(*flood->index, test);
        worst_ms = std::max(worst_ms, r.avg_ms);
        best_ms = best_ms < 0 ? r.avg_ms : std::min(best_ms, r.avg_ms);
        learn_s += flood->learn.learning_seconds;
      }
      out.push_back({std::to_string(std::min(sample, train.size())),
                     Format(learn_s / 3, 3), FormatMs(best_ms),
                     FormatMs(worst_ms)});
      rows.push_back({"Fig16/" + ds_name + "/queries" +
                          std::to_string(std::min(sample, train.size())),
                      worst_ms,
                      {{"learn_s", learn_s / 3},
                       {"best_ms", best_ms}}});
    }
    PrintTable("Fig 16 (" + ds_name +
                   "): query-sample size vs learning time & query time",
               {"sample queries", "learning s", "best avg ms",
                "worst avg ms"},
               out);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
