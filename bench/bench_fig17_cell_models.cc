// Fig. 17 (§7.8 "Per-cell Models"): (a) lookup time — model inference plus
// rectification search — of the PLM, the RMI and plain binary search on
// OSM-like timestamp data and staggered-uniform data at several sizes;
// (b) the PLM's delta-controlled size/speed trade-off.
//
// This is a genuine micro-benchmark, so unlike the experiment harnesses it
// uses live google-benchmark timing loops.
//
// Paper shape to check: PLM ~ RMI, both up to ~4x faster than binary
// search; lower delta -> bigger model, faster lookups; delta = 50 is a
// reasonable middle.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "data/distributions.h"
#include "learned/plm.h"
#include "learned/rmi.h"
#include "learned/search_util.h"

namespace flood {
namespace bench {
namespace {

std::vector<Value> MakeData(const std::string& kind, size_t n) {
  Rng rng(177);
  std::vector<Value> v;
  if (kind == "osm") {
    // Recency-skewed timestamps, like the OSM evaluation data.
    v = RecencySkewedColumn(n, 1'104'537'600, 1'567'296'000, 3.5, rng);
  } else {
    // Staggered uniform: uniform over identically sized disjoint intervals.
    v.reserve(n);
    const size_t blocks = 16;
    for (size_t i = 0; i < n; ++i) {
      const Value block = static_cast<Value>(i % blocks);
      v.push_back(block * 10'000'000 + rng.UniformInt(0, 1'000'000));
    }
  }
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<Value> MakeProbes(const std::vector<Value>& data, size_t n) {
  Rng rng(178);
  std::vector<Value> probes(n);
  for (auto& p : probes) {
    p = data[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(data.size()) - 1))];
  }
  return probes;
}

struct Workbench {
  std::vector<Value> data;
  std::vector<Value> probes;
  Plm plm;
  Rmi rmi;
};

const Workbench& GetWorkbench(const std::string& kind, size_t n,
                              double delta) {
  static std::map<std::string, Workbench>* cache =
      new std::map<std::string, Workbench>();
  const std::string key =
      kind + "/" + std::to_string(n) + "/" + std::to_string(delta);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  Workbench wb;
  wb.data = MakeData(kind, n);
  wb.probes = MakeProbes(wb.data, 4096);
  wb.plm = Plm::Train(wb.data, delta);
  wb.rmi = Rmi::Train(wb.data, std::max<size_t>(8, n / 512));
  return (*cache)[key] = std::move(wb);
}

void BM_PlmLookup(benchmark::State& state, const std::string& kind,
                  size_t n, double delta) {
  const Workbench& wb = GetWorkbench(kind, n, delta);
  const auto get = [&wb](size_t i) { return wb.data[i]; };
  size_t i = 0;
  for (auto _ : state) {
    const Value v = wb.probes[i++ & 4095];
    benchmark::DoNotOptimize(
        GallopLowerBound(get, wb.plm.Predict(v), wb.data.size(), v));
  }
  state.counters["model_kB"] =
      static_cast<double>(wb.plm.MemoryUsageBytes()) / 1024.0;
  state.counters["segments"] = static_cast<double>(wb.plm.num_segments());
}

void BM_RmiLookup(benchmark::State& state, const std::string& kind,
                  size_t n) {
  const Workbench& wb = GetWorkbench(kind, n, 50.0);
  const auto get = [&wb](size_t i) { return wb.data[i]; };
  size_t i = 0;
  for (auto _ : state) {
    const Value v = wb.probes[i++ & 4095];
    const Rmi::Bounds b = wb.rmi.Lookup(v);
    benchmark::DoNotOptimize(BinaryLowerBound(get, b.lo, b.hi, v));
  }
  state.counters["model_kB"] =
      static_cast<double>(wb.rmi.MemoryUsageBytes()) / 1024.0;
}

void BM_BinaryLookup(benchmark::State& state, const std::string& kind,
                     size_t n) {
  const Workbench& wb = GetWorkbench(kind, n, 50.0);
  const auto get = [&wb](size_t i) { return wb.data[i]; };
  size_t i = 0;
  for (auto _ : state) {
    const Value v = wb.probes[i++ & 4095];
    benchmark::DoNotOptimize(BinaryLowerBound(get, 0, wb.data.size(), v));
  }
}

void RegisterAll() {
  for (const std::string kind : {"osm", "staggered"}) {
    for (size_t n : {size_t{30'000}, size_t{500'000}, size_t{2'000'000}}) {
      const std::string suffix = kind + "/" + std::to_string(n);
      benchmark::RegisterBenchmark(
          ("Fig17a/PLM/" + suffix).c_str(),
          [kind, n](benchmark::State& s) { BM_PlmLookup(s, kind, n, 50.0); });
      benchmark::RegisterBenchmark(
          ("Fig17a/RMI/" + suffix).c_str(),
          [kind, n](benchmark::State& s) { BM_RmiLookup(s, kind, n); });
      benchmark::RegisterBenchmark(
          ("Fig17a/Binary/" + suffix).c_str(),
          [kind, n](benchmark::State& s) { BM_BinaryLookup(s, kind, n); });
    }
  }
  // Fig. 17b: the delta trade-off on the large OSM-like dataset.
  for (double delta : {5.0, 20.0, 50.0, 150.0, 500.0}) {
    benchmark::RegisterBenchmark(
        ("Fig17b/PLM/delta=" + std::to_string(static_cast<int>(delta)))
            .c_str(),
        [delta](benchmark::State& s) {
          BM_PlmLookup(s, "osm", 2'000'000, delta);
        });
  }
}

}  // namespace
}  // namespace bench
}  // namespace flood

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  flood::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
