// Fig. 5 + §4.1.2: why the cost model uses machine learning.
//
//  (a) Fig. 5: the empirical per-point scan weight w_s is not constant —
//      binned against number of scanned points and average run length it
//      varies by orders of magnitude, non-monotonically.
//  (b) §4.1.2 ablation: per-query time prediction error of (1) the
//      analytic constant-weight model, (2) linear-regression weights,
//      (3) random-forest weights, plus a single direct-time forest.
//
// Paper shape to check: w_s varies strongly with both features; the
// forest-of-weights model has the lowest error (paper: analytic ~9x and
// linear ~4x worse); the direct time model underperforms the factored one.

#include <cmath>

#include "bench/bench_main.h"
#include "ml/random_forest.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const BenchDataset& ds = GetDataset("tpch");
  const Workload queries =
      MakeWorkload(ds, WorkloadKind::kOlapSkewed, 80, 192);

  CostModel::CalibrationOptions opts;
  opts.num_layouts = 10;
  opts.max_queries = 80;
  opts.max_cells = 1 << 14;
  StatusOr<std::vector<CostModel::Example>> examples_or =
      CostModel::GenerateExamples(ds.table, queries, opts);
  FLOOD_CHECK(examples_or.ok());
  const std::vector<CostModel::Example>& examples = *examples_or;
  std::printf("calibration examples: %zu\n", examples.size());

  // ---- Fig. 5: w_s binned against two features ---------------------------
  auto bin_table = [&](auto feature, const std::string& fname,
                       const std::vector<double>& edges) {
    std::vector<double> sum(edges.size() + 1, 0);
    std::vector<double> mn(edges.size() + 1, 1e30);
    std::vector<double> mx(edges.size() + 1, 0);
    std::vector<size_t> count(edges.size() + 1, 0);
    for (const auto& ex : examples) {
      const double f = feature(ex);
      size_t b = 0;
      while (b < edges.size() && f >= edges[b]) ++b;
      sum[b] += ex.ws;
      mn[b] = std::min(mn[b], ex.ws);
      mx[b] = std::max(mx[b], ex.ws);
      count[b] += 1;
    }
    std::vector<std::vector<std::string>> out;
    for (size_t b = 0; b <= edges.size(); ++b) {
      if (count[b] == 0) continue;
      const std::string lo = b == 0 ? "0" : Format(edges[b - 1], 0);
      const std::string hi =
          b == edges.size() ? "inf" : Format(edges[b], 0);
      out.push_back({lo + ".." + hi, std::to_string(count[b]),
                     Format(sum[b] / static_cast<double>(count[b]), 2),
                     Format(mn[b], 2), Format(mx[b], 2)});
    }
    PrintTable("Fig 5: w_s (ns/point) binned by " + fname,
               {fname, "examples", "mean w_s", "min", "max"}, out);
  };
  bin_table([](const CostModel::Example& ex) { return ex.features.ns; },
            "num scanned points", {1e3, 1e4, 1e5, 1e6});
  bin_table(
      [](const CostModel::Example& ex) { return ex.features.avg_run_length; },
      "avg scan run length", {1e1, 1e2, 1e3, 1e4});

  // ---- §4.1.2: predictor ablation on held-out examples -------------------
  std::vector<CostModel::Example> train_ex;
  std::vector<CostModel::Example> test_ex;
  for (size_t i = 0; i < examples.size(); ++i) {
    (i % 4 == 3 ? test_ex : train_ex).push_back(examples[i]);
  }
  auto mean_abs_rel_error = [&](auto predict) {
    double total = 0;
    size_t n = 0;
    for (const auto& ex : test_ex) {
      if (ex.total_ns <= 0) continue;
      total += std::fabs(predict(ex) - ex.total_ns) / ex.total_ns;
      ++n;
    }
    return total / static_cast<double>(std::max<size_t>(1, n));
  };

  std::vector<std::vector<std::string>> out;
  double forest_err = 0;
  for (CostModel::Predictor p :
       {CostModel::Predictor::kConstant, CostModel::Predictor::kLinear,
        CostModel::Predictor::kForest}) {
    const CostModel model = CostModel::Train(train_ex, p);
    const double err = mean_abs_rel_error([&model](const auto& ex) {
      return model.PredictQueryTimeNs(ex.features);
    });
    if (p == CostModel::Predictor::kForest) forest_err = err;
    const char* name = p == CostModel::Predictor::kConstant ? "constants"
                       : p == CostModel::Predictor::kLinear ? "linear"
                                                            : "forest";
    out.push_back({name, Format(err * 100, 1) + "%"});
    rows.push_back({std::string("Sec412/") + name, err * 1000.0, {}});
  }
  // Direct single-model time prediction (the paper argues against it).
  {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto& ex : train_ex) {
      x.push_back(ex.features.ToVector());
      y.push_back(ex.total_ns);
    }
    const RandomForest direct = RandomForest::Fit(x, y, {}, 5);
    const double err = mean_abs_rel_error([&direct](const auto& ex) {
      return direct.Predict(ex.features.ToVector());
    });
    out.push_back({"direct-time forest", Format(err * 100, 1) + "%"});
    rows.push_back({"Sec412/direct", err * 1000.0, {}});
  }
  PrintTable("Sec 4.1.2: held-out mean |relative error| of query-time "
             "prediction",
             {"weight predictor", "mean rel err"}, out);
  std::printf("\nforest err %.1f%% (paper: constants ~9x, linear ~4x worse "
              "than forest)\n",
              forest_err * 100);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
