// Fig. 7 + Tab. 1 (§7.4): overall query time of Flood vs every baseline on
// all four datasets, each index tuned for the workload. Also prints the
// dataset characteristics table.
//
// Paper shape to check: Flood fastest or on-par everywhere; the runner-up
// *changes* per dataset (clustered on sales, Z-order/hyperoctree on tpch,
// hyperoctree on osm, z-order on perfmon); full scan slowest.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  std::vector<std::vector<std::string>> table1;
  std::map<std::string, std::map<std::string, double>> fig7;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(120);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 42)
            .Split(0.5, 43);
    table1.push_back({ds_name, std::to_string(ds.table.num_rows()),
                      std::to_string(test.size()),
                      std::to_string(ds.table.num_dims()),
                      FormatBytes(ds.table.MemoryUsageBytes())});

    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    for (const std::string& index_name : AllBaselineNames()) {
      size_t page = 1024;
      if (index_name != "FullScan" && index_name != "Clustered" &&
          index_name != "UBtree") {
        page = TunePageSize(index_name, ds.table, ctx, train,
                            {256, 1024, 4096});
      }
      auto index = BuildBaseline(index_name, ds.table, ctx, page);
      if (!index.ok()) {
        std::printf("%s/%s: N/A (%s)\n", ds_name.c_str(),
                    index_name.c_str(), index.status().ToString().c_str());
        fig7[ds_name][index_name] = -1;
        continue;
      }
      const RunResult r = RunWorkload(**index, test);
      fig7[ds_name][index_name] = r.avg_ms;
      rows.push_back({"Fig7/" + ds_name + "/" + index_name,
                      r.avg_ms,
                      {{"scan_overhead", r.stats.ScanOverhead()},
                       {"index_MB", static_cast<double>(
                                        (*index)->IndexSizeBytes()) / 1e6}}});
    }

    auto flood = BuildFlood(ds.table, train);
    FLOOD_CHECK(flood.ok());
    const RunResult r = RunWorkload(*flood->index, test);
    fig7[ds_name]["Flood"] = r.avg_ms;
    rows.push_back({"Fig7/" + ds_name + "/Flood",
                    r.avg_ms,
                    {{"scan_overhead", r.stats.ScanOverhead()},
                     {"index_MB", static_cast<double>(
                                      flood->index->IndexSizeBytes()) / 1e6},
                     {"learn_s", flood->learn.learning_seconds}}});
    std::printf("%s: Flood layout = %s\n", ds_name.c_str(),
                flood->index->layout().ToString().c_str());
  }

  PrintTable("Table 1: dataset and query characteristics",
             {"dataset", "records", "queries", "dims", "size"}, table1);

  std::vector<std::string> header{"index"};
  for (const auto& ds : AllDatasetNames()) header.push_back(ds);
  std::vector<std::vector<std::string>> out;
  std::vector<std::string> names = AllBaselineNames();
  names.push_back("Flood");
  for (const auto& index_name : names) {
    std::vector<std::string> row{index_name};
    for (const auto& ds : AllDatasetNames()) {
      const double ms = fig7[ds][index_name];
      row.push_back(ms < 0 ? "N/A" : FormatMs(ms));
    }
    out.push_back(row);
  }
  PrintTable("Fig 7: average query time (ms) per index per dataset", header,
             out);

  // Speedup-vs-Flood summary (the paper's headline ratios).
  std::vector<std::vector<std::string>> speedups;
  for (const auto& index_name : names) {
    std::vector<std::string> row{index_name};
    for (const auto& ds : AllDatasetNames()) {
      const double ms = fig7[ds][index_name];
      const double flood_ms = fig7[ds]["Flood"];
      row.push_back(ms < 0 ? "N/A" : Format(ms / flood_ms, 1) + "x");
    }
    speedups.push_back(row);
  }
  PrintTable("Fig 7 (derived): slowdown relative to Flood", header,
             speedups);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
