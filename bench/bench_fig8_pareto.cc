// Fig. 8 (§7.4): index size vs average query time — each index swept over
// its tuning knob (page size; for Flood, the PLM error budget delta and the
// cell budget), tracing the size/speed Pareto frontier.
//
// Paper shape to check: Flood sits below-left of every baseline's curve
// (faster at a fraction of the size); the hyperoctree needs 20x+ Flood's
// footprint for comparable time on osm.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(80);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 62).Split(0.5, 63);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    std::vector<std::vector<std::string>> out;
    auto emit = [&](const std::string& name, const std::string& config,
                    size_t bytes, double ms) {
      out.push_back({name, config, FormatBytes(bytes), FormatMs(ms)});
      rows.push_back({"Fig8/" + ds_name + "/" + name + "/" + config,
                      ms,
                      {{"index_bytes", static_cast<double>(bytes)}}});
    };

    for (const std::string& index_name :
         {"Clustered", "RStarTree", "ZOrder", "UBtree", "Hyperoctree",
          "KdTree", "GridFile"}) {
      for (size_t page : {size_t{256}, size_t{1024}, size_t{4096},
                          size_t{16384}}) {
        auto index = BuildBaseline(index_name, ds.table, ctx, page);
        if (!index.ok()) {
          out.push_back({index_name, "page=" + std::to_string(page), "N/A",
                         "N/A"});
          continue;
        }
        const RunResult r = RunWorkload(**index, test);
        emit(index_name, "page=" + std::to_string(page),
             (*index)->IndexSizeBytes(), r.avg_ms);
        // Page size is a no-op for UBtree/Clustered: one point suffices.
        if (index_name == "UBtree" || index_name == "Clustered") break;
      }
    }

    // Flood sweep: learn the layout once, then trade size for speed via
    // the per-cell model budget (delta) — §7.8's knob.
    auto learned = BuildFlood(ds.table, train);
    FLOOD_CHECK(learned.ok());
    for (double delta : {10.0, 50.0, 200.0, 1000.0}) {
      FloodIndex::Options o;
      o.layout = learned->index->layout();
      o.plm_delta = delta;
      o.max_cells = uint64_t{1} << 22;
      FloodIndex index(o);
      FLOOD_CHECK(index.Build(ds.table, ctx).ok());
      const RunResult r = RunWorkload(index, test);
      emit("Flood", "delta=" + Format(delta, 0), index.IndexSizeBytes(),
           r.avg_ms);
    }

    PrintTable("Fig 8 (" + ds_name + "): index size vs avg query time",
               {"index", "config", "size", "avg ms"}, out);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
