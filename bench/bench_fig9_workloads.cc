// Fig. 9 (§7.4 "Different Workload Characteristics"): baselines stay tuned
// for the default OLAP workload while the live workload changes to the
// paper's eight variants; Flood re-learns its layout per workload.
//
//   FD fewer dims | MD all dims | O skewed OLAP | Ou uniform OLAP |
//   O1/O2 point lookups on one/two keys | OO mixed | ST single type
//
// Paper shape to check: Flood wins every column; the gap is largest on
// workloads unlike the tuning workload (e.g. O1/O2 point lookups).

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

struct Variant {
  const char* label;
  WorkloadKind kind;
};

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const std::vector<Variant> variants = {
      {"FD", WorkloadKind::kFewerDims},  {"MD", WorkloadKind::kManyDims},
      {"OO", WorkloadKind::kMixed},      {"O", WorkloadKind::kOlapSkewed},
      {"Ou", WorkloadKind::kOlapUniform},{"O1", WorkloadKind::kOltpSingleKey},
      {"O2", WorkloadKind::kOltpTwoKey}, {"ST", WorkloadKind::kSingleType},
  };

  for (const std::string& ds_name : {std::string("tpch"),
                                     std::string("osm")}) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(80);

    // Baselines are tuned once, for the default OLAP workload.
    const Workload tuning =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq, 72);
    BuildContext ctx;
    ctx.workload = &tuning;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    std::map<std::string, std::unique_ptr<MultiDimIndex>> baselines;
    for (const std::string& name :
         {"ZOrder", "UBtree", "Hyperoctree", "KdTree", "GridFile"}) {
      auto index = BuildBaseline(name, ds.table, ctx, 1024);
      if (index.ok()) baselines[name] = std::move(*index);
    }

    std::vector<std::string> header{"index"};
    for (const auto& v : variants) header.push_back(v.label);
    std::map<std::string, std::vector<std::string>> cells;

    for (const Variant& v : variants) {
      const auto [train, test] =
          MakeWorkload(ds, v.kind, nq * 2, 73).Split(0.5, 74);
      for (auto& [name, index] : baselines) {
        const RunResult r = RunWorkload(*index, test);
        cells[name].push_back(FormatMs(r.avg_ms));
        rows.push_back({"Fig9/" + ds_name + "/" + v.label + "/" + name,
                        r.avg_ms,
                        {}});
      }
      // Flood re-learns for each workload (its headline capability).
      auto flood = BuildFlood(ds.table, train);
      FLOOD_CHECK(flood.ok());
      const RunResult r = RunWorkload(*flood->index, test);
      cells["Flood"].push_back(FormatMs(r.avg_ms));
      rows.push_back({"Fig9/" + ds_name + "/" + v.label + "/Flood",
                      r.avg_ms,
                      {{"learn_s", flood->learn.learning_seconds}}});
    }

    std::vector<std::vector<std::string>> out;
    for (const std::string& name :
         {"Flood", "ZOrder", "UBtree", "Hyperoctree", "KdTree", "GridFile"}) {
      if (cells.count(name) == 0) continue;
      std::vector<std::string> row{name};
      for (const auto& c : cells[name]) row.push_back(c);
      out.push_back(row);
    }
    PrintTable("Fig 9 (" + ds_name +
                   "): avg query time (ms) across workload variants",
               header, out);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
