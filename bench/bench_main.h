#ifndef FLOOD_BENCH_BENCH_MAIN_H_
#define FLOOD_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace flood {
namespace bench {

/// Registers pre-computed experiment results as manual-time benchmarks
/// (one "iteration" each) so they show up in google-benchmark's report.
inline void RegisterResults(const std::vector<BenchRow>& rows) {
  for (const BenchRow& row : rows) {
    const double seconds = row.ms / 1000.0;
    auto counters = row.counters;
    benchmark::RegisterBenchmark(
        row.name.c_str(),
        [seconds, counters](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(seconds);
          }
          for (const auto& [k, v] : counters) {
            state.counters[k] = v;
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

/// Removes every "--<name>=<value>" occurrence from argv and returns the
/// last value seen ("" when absent). Custom bench axes (e.g. bench_serving
/// --shards=1,2,4) must be consumed BEFORE benchmark::Initialize, which
/// rejects flags it doesn't know.
inline std::string ConsumeFlag(int* argc, char** argv,
                               const std::string& name) {
  const std::string prefix = "--" + name + "=";
  std::string value;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const std::string arg = argv[r];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      argv[w++] = argv[r];
    }
  }
  argv[w] = nullptr;
  *argc = w;
  return value;
}

/// Shared main: run the experiment (expensive part, exactly once), register
/// its rows, emit the google-benchmark report, then print the paper-style
/// tables.
#define FLOOD_BENCH_MAIN(ExperimentFn)                                   \
  int main(int argc, char** argv) {                                      \
    benchmark::Initialize(&argc, argv);                                  \
    std::vector<::flood::bench::BenchRow> rows__ = ExperimentFn();       \
    ::flood::bench::RegisterResults(rows__);                             \
    benchmark::RunSpecifiedBenchmarks();                                 \
    benchmark::Shutdown();                                               \
    return 0;                                                            \
  }

/// As FLOOD_BENCH_MAIN, with a pre-parse hook that may consume custom
/// flags (via ConsumeFlag) before google-benchmark sees argv.
#define FLOOD_BENCH_MAIN_ARGS(ExperimentFn, PreParseFn)                  \
  int main(int argc, char** argv) {                                      \
    PreParseFn(&argc, argv);                                             \
    benchmark::Initialize(&argc, argv);                                  \
    std::vector<::flood::bench::BenchRow> rows__ = ExperimentFn();       \
    ::flood::bench::RegisterResults(rows__);                             \
    benchmark::RunSpecifiedBenchmarks();                                 \
    benchmark::Shutdown();                                               \
    return 0;                                                            \
  }

}  // namespace bench
}  // namespace flood

#endif  // FLOOD_BENCH_BENCH_MAIN_H_
