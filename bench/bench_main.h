#ifndef FLOOD_BENCH_BENCH_MAIN_H_
#define FLOOD_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace flood {
namespace bench {

/// Registers pre-computed experiment results as manual-time benchmarks
/// (one "iteration" each) so they show up in google-benchmark's report.
inline void RegisterResults(const std::vector<BenchRow>& rows) {
  for (const BenchRow& row : rows) {
    const double seconds = row.ms / 1000.0;
    auto counters = row.counters;
    benchmark::RegisterBenchmark(
        row.name.c_str(),
        [seconds, counters](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(seconds);
          }
          for (const auto& [k, v] : counters) {
            state.counters[k] = v;
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

/// Shared main: run the experiment (expensive part, exactly once), register
/// its rows, emit the google-benchmark report, then print the paper-style
/// tables.
#define FLOOD_BENCH_MAIN(ExperimentFn)                                   \
  int main(int argc, char** argv) {                                      \
    benchmark::Initialize(&argc, argv);                                  \
    std::vector<::flood::bench::BenchRow> rows__ = ExperimentFn();       \
    ::flood::bench::RegisterResults(rows__);                             \
    benchmark::RunSpecifiedBenchmarks();                                 \
    benchmark::Shutdown();                                               \
    return 0;                                                            \
  }

}  // namespace bench
}  // namespace flood

#endif  // FLOOD_BENCH_BENCH_MAIN_H_
