// Persistence benchmarks (BENCH_persist): the economics of storing a
// learned layout instead of re-learning it.
//
//   * ColdOpen      — Database::Open(table): optimizer + flattening +
//                     training, the full §4 pipeline.
//   * Save          — snapshot write cost and on-disk size.
//   * SnapshotOpen  — Database::Open(path): restore pages, pin the layout,
//                     skip the optimizer. The acceptance claim measured
//                     here is speedup_vs_cold > 1.
//   * WalAppend     — single-row durable insert rate under both
//                     durability levels (group commit = 1 write/fsync per
//                     call), plus batch group-commit rate.
//   * WalReplay     — reopen cost with a record tail to replay.
//
// Env knobs: FLOOD_BENCH_DATASETS ("all" or comma list; default sales),
// FLOOD_BENCH_QUERIES (training/eval workload size).

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "bench/bench_main.h"
#include "persist/wal.h"

namespace flood {
namespace bench {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") +
         "/flood_bench_persist_" + std::to_string(::getpid()) + "_" + name;
}

double FileMegabytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0.0;
  return static_cast<double>(st.st_size) / 1e6;
}

std::vector<std::string> DatasetSweep() {
  const char* env = std::getenv("FLOOD_BENCH_DATASETS");
  if (env == nullptr) return {"sales"};
  const std::string spec(env);
  if (spec == "all") return AllDatasetNames();
  std::vector<std::string> names;
  std::stringstream ss(spec);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names.empty() ? std::vector<std::string>{"sales"} : names;
}

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  std::vector<std::vector<std::string>> out;

  for (const std::string& ds_name : DatasetSweep()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(100);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 311).Split(0.5,
                                                                      312);
    const std::string snap_path = TempPath(ds_name + ".snap");

    // Cold open: the optimizer runs. Best-of-2 against scheduler noise.
    DatabaseOptions options;
    options.index_name = "flood";
    options.training_workload = train;
    double cold_ms = 0;
    StatusOr<Database> db = Status::Internal("unopened");
    for (int rep = 0; rep < 2; ++rep) {
      const Stopwatch sw;
      StatusOr<Database> attempt = Database::Open(ds.table, options);
      const double ms = sw.ElapsedMillis();
      FLOOD_CHECK(attempt.ok());
      if (rep == 0 || ms < cold_ms) cold_ms = ms;
      db = std::move(attempt);
    }
    const BatchResult baseline = db->RunBatch(test);
    FLOOD_CHECK(baseline.status.ok());

    const Stopwatch save_sw;
    FLOOD_CHECK(db->Save(snap_path).ok());
    const double save_ms = save_sw.ElapsedMillis();
    const double snapshot_mb = FileMegabytes(snap_path);

    // Snapshot open: layout pinned, optimizer skipped. Best-of-3.
    double snap_ms = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const Stopwatch sw;
      StatusOr<Database> restored = Database::Open(snap_path);
      const double ms = sw.ElapsedMillis();
      FLOOD_CHECK(restored.ok());
      if (rep == 0 || ms < snap_ms) snap_ms = ms;
      // Round-trip invariant, continuously enforced by the bench too.
      const BatchResult check = restored->RunBatch(test);
      FLOOD_CHECK(check.status.ok());
      for (size_t i = 0; i < test.size(); ++i) {
        FLOOD_CHECK(check.results[i].count == baseline.results[i].count);
        FLOOD_CHECK(check.results[i].sum == baseline.results[i].sum);
      }
    }
    const double speedup = snap_ms > 0 ? cold_ms / snap_ms : 0;

    rows.push_back({"Persist/" + ds_name + "/ColdOpen", cold_ms, {}});
    rows.push_back(
        {"Persist/" + ds_name + "/Save", save_ms, {{"snapshot_mb",
                                                    snapshot_mb}}});
    rows.push_back({"Persist/" + ds_name + "/SnapshotOpen",
                    snap_ms,
                    {{"speedup_vs_cold", speedup},
                     {"snapshot_mb", snapshot_mb}}});
    out.push_back({ds_name, Format(cold_ms, 1), Format(save_ms, 1),
                   Format(snap_ms, 1), Format(speedup, 1) + "x",
                   Format(snapshot_mb, 2) + "MB"});
    std::remove(snap_path.c_str());
  }

  // WAL micro-bench on the first dataset: durable single-row insert rate
  // and group-commit batch rate, then replay cost at reopen.
  {
    const BenchDataset& ds = GetDataset(DatasetSweep().front());
    const std::string wal_path = TempPath("bench.wal");
    for (const bool sync : {false, true}) {
      const std::string label = sync ? "sync" : "async";
      const size_t n = sync ? 300 : 5000;
      std::remove(wal_path.c_str());
      DatabaseOptions options;
      options.index_name = "full_scan";
      options.wal_path = wal_path;
      options.durability = sync ? Durability::kSync : Durability::kAsync;
      StatusOr<Database> db = Database::Open(ds.table, options);
      FLOOD_CHECK(db.ok());
      std::vector<Value> row(ds.table.num_dims(), 1);
      const Stopwatch sw;
      for (size_t i = 0; i < n; ++i) {
        row[0] = static_cast<Value>(i);
        FLOOD_CHECK(db->Insert(row).ok());
      }
      const double append_ms = sw.ElapsedMillis();
      const double per_s =
          append_ms > 0 ? static_cast<double>(n) / (append_ms / 1e3) : 0;
      rows.push_back({"Persist/wal/Append_" + label,
                      append_ms,
                      {{"inserts_per_s", per_s},
                       {"records", static_cast<double>(n)}}});

      // Replay the n-record tail on reopen.
      db = Status::Internal("closed");
      const Stopwatch replay_sw;
      StatusOr<Database> reopened = Database::Open(ds.table, options);
      const double replay_ms = replay_sw.ElapsedMillis();
      FLOOD_CHECK(reopened.ok());
      FLOOD_CHECK(reopened->delta_inserts() == n);
      rows.push_back({"Persist/wal/Replay_" + label,
                      replay_ms,
                      {{"records", static_cast<double>(n)}}});
    }
    std::remove(wal_path.c_str());
  }

  PrintTable("Persistence: cold open vs snapshot open",
             {"dataset", "cold open (ms)", "save (ms)", "snap open (ms)",
              "speedup", "snapshot"},
             out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
