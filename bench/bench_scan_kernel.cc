// Scan-kernel micro-benchmark: naive row-at-a-time vs scalar block-decoded
// vs SIMD (AVX2/AVX-512 runtime-dispatched) kernels with zone-map pruning
// (query/scan_util.h), reported as rows/s over block-delta-compressed
// columns.
//
// Scenarios: a mid-selectivity 2-dim range filter over each standard
// dataset (zone maps help only incidentally — this measures the decode +
// predicate-evaluation win, the simd kernel's target regime), plus a
// "sorted" table filtered on its sort key (zone maps skip or exact-accept
// nearly every block, so all kernels converge).
//
// FLOOD_SCAN_KERNEL=naive|block|simd restricts the run to one kernel (the
// same toggle every index honors); by default all three run, block rows
// carry speedup_vs_naive, and simd rows carry speedup_vs_block (the
// regression-gated >=2x headline). FLOOD_BENCH_SCAN_SECONDS tunes the
// per-cell measurement budget (default 0.3).

#include <optional>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "query/scan_util.h"
#include "query/visitor.h"

namespace flood {
namespace bench {
namespace {

double MeasureSeconds() {
  const char* env = std::getenv("FLOOD_BENCH_SCAN_SECONDS");
  if (env == nullptr) return 0.3;
  const double v = std::atof(env);
  return v > 0 ? v : 0.3;
}

const char* KernelName(ScanKernel k) {
  if (k == ScanKernel::kNaive) return "naive";
  return k == ScanKernel::kSimd ? "simd" : "block";
}

/// Which kernels to measure: all three by default, one if
/// FLOOD_SCAN_KERNEL pins it.
std::vector<ScanKernel> KernelsToRun() {
  const char* env = std::getenv("FLOOD_SCAN_KERNEL");
  if (env != nullptr && std::strcmp(env, "naive") == 0) {
    return {ScanKernel::kNaive};
  }
  if (env != nullptr && std::strcmp(env, "block") == 0) {
    return {ScanKernel::kBlock};
  }
  if (env != nullptr && std::strcmp(env, "simd") == 0) {
    return {ScanKernel::kSimd};
  }
  return {ScanKernel::kNaive, ScanKernel::kBlock, ScanKernel::kSimd};
}

struct Scenario {
  std::string name;
  const Table* table;
  Query query;
};

/// A range over the middle `frac` of a dimension's value span.
ValueRange MidBand(const Table& t, size_t dim, double frac) {
  const double mn = static_cast<double>(t.min_value(dim));
  const double mx = static_cast<double>(t.max_value(dim));
  const double mid = (mn + mx) / 2;
  const double half = (mx - mn) * frac / 2;
  return {static_cast<Value>(mid - half), static_cast<Value>(mid + half)};
}

struct KernelResult {
  double rows_per_s = 0;
  double ms_per_pass = 0;
  uint64_t matched = 0;
  double blocks_skipped = 0;  ///< Per pass.
  double blocks_exact = 0;    ///< Per pass.
  double simd_blocks = 0;     ///< Per pass (simd kernel only).
};

KernelResult Measure(const Scenario& s, ScanKernel kernel) {
  const ScanKernel previous = ActiveScanKernel();
  SetScanKernel(kernel);
  const std::vector<size_t> dims = FilteredDims(s.query);
  const size_t n = s.table->num_rows();
  {
    // Warm-up pass (page in the encoded words).
    CountVisitor v;
    ScanRange(*s.table, s.query, 0, n, false, dims, v, nullptr);
  }
  const int64_t budget_ns =
      static_cast<int64_t>(MeasureSeconds() * 1e9);
  KernelResult r;
  QueryStats stats;
  size_t passes = 0;
  uint64_t matched = 0;
  const Stopwatch sw;
  do {
    CountVisitor v;
    ScanRange(*s.table, s.query, 0, n, false, dims, v, &stats);
    matched = v.count();
    ++passes;
  } while (sw.ElapsedNanos() < budget_ns);
  const double seconds = static_cast<double>(sw.ElapsedNanos()) / 1e9;
  const double rows =
      static_cast<double>(passes) * static_cast<double>(n);
  r.rows_per_s = rows / seconds;
  r.ms_per_pass = seconds * 1000.0 / static_cast<double>(passes);
  r.matched = matched;
  r.blocks_skipped = static_cast<double>(stats.blocks_skipped) /
                     static_cast<double>(passes);
  r.blocks_exact = static_cast<double>(stats.blocks_exact) /
                   static_cast<double>(passes);
  r.simd_blocks = static_cast<double>(stats.simd_blocks) /
                  static_cast<double>(passes);
  SetScanKernel(previous);
  return r;
}

std::vector<BenchRow> RunScanKernelBench() {
  std::vector<Scenario> scenarios;
  for (const std::string& name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(name);
    Query q(ds.table.num_dims());
    // Mid-selectivity filters on the first two dimensions: most blocks
    // survive the zone maps, so the decode path dominates.
    const ValueRange r0 = MidBand(ds.table, 0, 0.5);
    const ValueRange r1 = MidBand(ds.table, 1, 0.6);
    q.SetRange(0, r0.lo, r0.hi);
    q.SetRange(1, r1.lo, r1.hi);
    scenarios.push_back({name, &ds.table, q});
  }
  // Zone-map showcase: a table sorted on dim 0, filtered to a 10% band of
  // the sort key — nearly every block is skipped or exact-accepted.
  static const Table* sorted_table = [] {
    const size_t n = ScaledRows(400'000);
    Rng rng(777);
    std::vector<Value> key(n);
    for (size_t i = 0; i < n; ++i) key[i] = static_cast<Value>(i);
    std::vector<Value> payload(n);
    for (auto& v : payload) v = rng.UniformInt(0, 1'000'000);
    StatusOr<Table> t = Table::FromColumns(
        {std::move(key), std::move(payload)},
        Column::Encoding::kBlockDelta);
    FLOOD_CHECK(t.ok());
    return new Table(std::move(*t));
  }();
  {
    const size_t n = sorted_table->num_rows();
    Query q(2);
    q.SetRange(0, static_cast<Value>(n / 2),
               static_cast<Value>(n / 2 + n / 10));
    scenarios.push_back({"sorted_zonemap", sorted_table, q});
  }

  const std::vector<ScanKernel> kernels = KernelsToRun();
  std::vector<BenchRow> rows;
  std::vector<std::vector<std::string>> table_out;
  for (const Scenario& s : scenarios) {
    std::optional<KernelResult> naive;
    std::optional<KernelResult> block;
    std::optional<KernelResult> simd;
    for (ScanKernel k : kernels) {
      const KernelResult r = Measure(s, k);
      if (k == ScanKernel::kNaive) {
        naive = r;
      } else if (k == ScanKernel::kBlock) {
        block = r;
      } else {
        simd = r;
      }
      BenchRow row;
      row.name = "ScanKernel/" + s.name + "/" + KernelName(k);
      row.ms = r.ms_per_pass;
      row.counters = {
          {"rows_per_s", r.rows_per_s},
          {"blocks_skipped", r.blocks_skipped},
          {"blocks_exact", r.blocks_exact},
      };
      if (k != ScanKernel::kNaive && naive.has_value()) {
        row.counters.push_back(
            {"speedup_vs_naive", r.rows_per_s / naive->rows_per_s});
      }
      if (k == ScanKernel::kSimd) {
        row.counters.push_back({"simd_blocks", r.simd_blocks});
        if (block.has_value()) {
          row.counters.push_back(
              {"speedup_vs_block", r.rows_per_s / block->rows_per_s});
        }
      }
      rows.push_back(std::move(row));
    }
    const double simd_speedup = (block.has_value() && simd.has_value())
                                    ? simd->rows_per_s / block->rows_per_s
                                    : 0.0;
    const KernelResult& shown = simd.has_value()
                                    ? *simd
                                    : block.has_value() ? *block : *naive;
    table_out.push_back(
        {s.name,
         naive.has_value() ? Format(naive->rows_per_s / 1e6) : "-",
         block.has_value() ? Format(block->rows_per_s / 1e6) : "-",
         simd.has_value() ? Format(simd->rows_per_s / 1e6) : "-",
         simd_speedup > 0 ? Format(simd_speedup) + "x" : "-",
         Format(shown.blocks_skipped, 0), Format(shown.blocks_exact, 0),
         std::to_string(shown.matched)});
  }
  PrintTable("Scan kernel: naive vs block vs simd + zone maps "
             "(rows/s, higher is better)",
             {"scenario", "naive Mrows/s", "block Mrows/s", "simd Mrows/s",
              "simd/block", "blk skipped", "blk exact", "matched"},
             table_out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::RunScanKernelBench);
