// Wire-level serving throughput: QPS and latency percentiles of the
// binary protocol through a real flood::serve::Server on a loopback
// Unix-domain socket, swept over client connections x batching strategy.
//
// Three strategies per connection count:
//   single    — 1 query per frame, strict request/reply (no pipelining):
//               every query pays a full wire round-trip AND its own
//               RunBatchAsync submission (one reader-lock acquisition
//               per query).
//   pipelined — 1 query per frame, `kWindow` frames written back-to-back:
//               the server's per-connection batching folds each read
//               burst into ONE RunBatchAsync group, amortizing the
//               reader lock and the pool handoff across the window.
//   framebatch— `kWindow` queries per frame, strict request/reply:
//               client-side batching; one round-trip per window.
//
// Shape to check: pipelined and framebatch beat single by a wide margin
// (that gap IS the per-connection batching win the serving tier exists
// for), and aggregate QPS grows with connections until the database's
// worker pool saturates.
//
// A second sweep covers the sharded router (PR 9): the same pipelined
// wire workload against a serve::Router over N in-process shards,
// N in {1, 2, 4} by default (--shards=1,2,4 or FLOOD_BENCH_SHARDS
// overrides). Reported per point: QPS plus the router's pruning counters
// (subqueries_sent / subqueries_pruned) — the JSON evidence that the
// shard map is skipping shards, not broadcasting.
//
// Env knobs: FLOOD_BENCH_QUERIES (queries per strategy per connection
// count), FLOOD_BENCH_THREADS (database pool width),
// FLOOD_BENCH_DATASETS (dataset axis, shared with bench_throughput),
// FLOOD_BENCH_SHARDS (shard axis, same grammar as --shards).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "api/sharded_database.h"
#include "bench/bench_main.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

namespace flood {
namespace bench {
namespace {

/// Pipelining window (frames in flight per connection) and framebatch
/// frame size. Must stay under the server's per-connection in-flight cap.
constexpr size_t kWindow = 8;

const std::vector<size_t>& ConnectionSweep() {
  static const std::vector<size_t>* sweep =
      new std::vector<size_t>{1, 2, 4};
  return *sweep;
}

/// Shard axis for the router sweep; mutated once by ParseArgs.
std::vector<size_t> g_shards_sweep = {1, 2, 4};

/// Consumes --shards=1,2,4 (FLOOD_BENCH_SHARDS as fallback) before
/// google-benchmark parses argv.
void ParseArgs(int* argc, char** argv) {
  std::string spec = ConsumeFlag(argc, argv, "shards");
  if (spec.empty()) {
    const char* env = std::getenv("FLOOD_BENCH_SHARDS");
    if (env != nullptr) spec = env;
  }
  if (spec.empty()) return;
  std::vector<size_t> sweep;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const long v = std::atol(spec.substr(pos, comma - pos).c_str());
    if (v > 0) sweep.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  if (!sweep.empty()) g_shards_sweep = std::move(sweep);
}

struct StrategyResult {
  double qps = 0;
  double wall_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t shed = 0;  ///< kOverloaded replies (excluded from QPS).
};

/// One client thread's work: `quota` queries against `address`, grouped
/// `frame_batch` queries per frame, `window` frames in flight. Records
/// per-reply round-trip latencies (ns) into `latencies` — the shared
/// obs::HistogramData replaces the hand-rolled percentile sort this
/// bench used to carry (same log-bucketed readout as the server).
void RunClient(const std::string& address, const Workload& workload,
               size_t quota, size_t frame_batch, size_t window,
               obs::HistogramData* latencies, uint64_t* ok_queries,
               uint64_t* shed) {
  StatusOr<serve::Client> client = serve::Client::Connect(address);
  FLOOD_CHECK(client.ok());
  const std::vector<Query>& pool = workload.queries();
  size_t next_query = 0;
  auto take = [&](size_t n) {
    std::vector<Query> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(pool[next_query++ % pool.size()]);
    }
    return batch;
  };

  size_t sent_queries = 0;
  uint64_t next_id = 1;
  while (sent_queries < quota) {
    // Fill the window...
    std::vector<std::pair<uint64_t, Stopwatch>> inflight;
    for (size_t w = 0; w < window && sent_queries < quota; ++w) {
      const size_t n = std::min(frame_batch, quota - sent_queries);
      const uint64_t id = next_id++;
      inflight.emplace_back(id, Stopwatch());
      FLOOD_CHECK(client->SendRunBatch(id, take(n)).ok());
      sent_queries += n;
    }
    // ...then drain it.
    for (size_t w = 0; w < inflight.size(); ++w) {
      StatusOr<serve::BatchResultResponse> reply = client->ReadBatchReply();
      FLOOD_CHECK(reply.ok());
      if (reply->code == serve::WireCode::kOverloaded) {
        ++*shed;
        continue;
      }
      FLOOD_CHECK(reply->code == serve::WireCode::kOk);
      *ok_queries += reply->results.size();
      // Replies can arrive out of order; match the send time by id.
      for (auto& [id, watch] : inflight) {
        if (id == reply->request_id) {
          latencies->Record(watch.ElapsedNanos());
          break;
        }
      }
    }
  }
}

StrategyResult RunStrategy(const std::string& address,
                           const Workload& workload, size_t connections,
                           size_t queries_per_conn, size_t frame_batch,
                           size_t window) {
  std::vector<obs::HistogramData> latencies(connections);
  std::vector<uint64_t> ok(connections, 0);
  std::vector<uint64_t> shed(connections, 0);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      RunClient(address, workload, queries_per_conn, frame_batch, window,
                &latencies[c], &ok[c], &shed[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = wall.ElapsedMillis();

  StrategyResult r;
  uint64_t total_ok = 0;
  obs::HistogramData all;
  for (size_t c = 0; c < connections; ++c) {
    total_ok += ok[c];
    r.shed += shed[c];
    all.Merge(latencies[c]);
  }
  r.wall_ms = wall_ms;
  r.qps = wall_ms > 0 ? static_cast<double>(total_ok) / (wall_ms / 1e3) : 0;
  r.p50_ms = static_cast<double>(all.Percentile(50)) / 1e6;
  r.p95_ms = static_cast<double>(all.Percentile(95)) / 1e6;
  r.p99_ms = static_cast<double>(all.Percentile(99)) / 1e6;
  return r;
}

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const size_t threads = BenchThreads();

  struct Strategy {
    const char* name;
    size_t frame_batch;
    size_t window;
  };
  const std::vector<Strategy> strategies = {
      {"single", 1, 1},
      {"pipelined", 1, kWindow},
      {"framebatch", kWindow, 1},
  };

  std::vector<std::string> header{"dataset", "conns"};
  for (const Strategy& s : strategies) {
    header.push_back(std::string(s.name) + " QPS");
  }
  header.push_back("pipelined/single");
  header.push_back("p95 piped (ms)");
  std::vector<std::vector<std::string>> table;

  for (const std::string& ds_name : DatasetSweep()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(2'000);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, 400, 311).Split(0.5,
                                                                    312);
    DatabaseOptions options;
    options.num_threads = threads;
    StatusOr<Database> db = OpenDatabase("flood", ds.table, train,
                                         std::move(options));
    FLOOD_CHECK(db.ok());

    serve::ServerOptions sopts;
    sopts.uds_path = "/tmp/flood_bench_serving_" +
                     std::to_string(::getpid()) + "_" + ds_name + ".sock";
    // The bench measures batching, not shedding: keep admission control
    // out of the way (kWindow in-flight frames per connection is normal
    // pipelining, not overload).
    sopts.max_inflight_batches = 256;
    sopts.max_inflight_per_connection = 4 * kWindow;
    StatusOr<std::unique_ptr<serve::Server>> server =
        serve::Server::Create(&*db, std::move(sopts));
    FLOOD_CHECK(server.ok());
    (*server)->Start();
    const std::string address = "unix:" + (*server)->uds_path();

    for (size_t conns : ConnectionSweep()) {
      const size_t per_conn = std::max<size_t>(kWindow, nq / conns);
      std::vector<std::string> row{ds_name, std::to_string(conns)};
      double single_qps = 0;
      double piped_qps = 0;
      double piped_p95 = 0;
      for (const Strategy& s : strategies) {
        // Warm-up (index caches, socket buffers), then the measured run.
        (void)RunStrategy(address, test, conns, per_conn / 4 + 1,
                          s.frame_batch, s.window);
        const StrategyResult r = RunStrategy(address, test, conns,
                                             per_conn, s.frame_batch,
                                             s.window);
        FLOOD_CHECK(r.shed == 0);
        if (std::string(s.name) == "single") single_qps = r.qps;
        if (std::string(s.name) == "pipelined") {
          piped_qps = r.qps;
          piped_p95 = r.p95_ms;
        }
        row.push_back(Format(r.qps, 0));
        rows.push_back(
            {"Serving/" + ds_name + "/c" + std::to_string(conns) + "/" +
                 s.name,
             r.wall_ms,
             {{"qps", r.qps},
              {"connections", static_cast<double>(conns)},
              {"frame_batch", static_cast<double>(s.frame_batch)},
              {"window", static_cast<double>(s.window)},
              {"p50_ms", r.p50_ms},
              {"p95_ms", r.p95_ms},
              {"p99_ms", r.p99_ms}}});
      }
      row.push_back(single_qps > 0 ? Format(piped_qps / single_qps, 2) + "x"
                                   : "N/A");
      row.push_back(FormatMs(piped_p95));
      table.push_back(row);
    }

    (*server)->Shutdown();
    (*server)->Join();
  }

  PrintTable("Wire-protocol serving QPS (connections x batching strategy)",
             header, table);

  // --- Sharded router sweep: same wire workload through a Router --------
  const std::vector<std::string> shard_header{
      "dataset", "shards", "QPS",           "p95 (ms)",
      "sent",    "pruned", "prune fraction"};
  std::vector<std::vector<std::string>> shard_table;
  constexpr size_t kRouterConns = 2;

  for (const std::string& ds_name : DatasetSweep()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(2'000);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, 400, 311).Split(0.5,
                                                                    312);
    // Shard on the dimension the workload filters most often — the
    // router can only prune shards whose key range misses the sort-dim
    // filter, so an unfiltered sort dim degenerates to broadcast.
    size_t sort_dim = 0;
    for (size_t d = 1; d < ds.table.num_dims(); ++d) {
      if (train.FilterFrequency(d) > train.FilterFrequency(sort_dim)) {
        sort_dim = d;
      }
    }
    for (const size_t shards : g_shards_sweep) {
      ShardedDatabaseOptions opts;
      opts.num_shards = shards;
      opts.sort_dim = sort_dim;
      opts.shard_options.index_name = "flood";
      opts.shard_options.training_workload = train;
      // Split the pool across shards so every point uses comparable total
      // parallelism (the axis measures routing, not extra threads).
      opts.shard_options.num_threads = std::max<size_t>(1, threads / shards);
      StatusOr<ShardedDatabase> db = ShardedDatabase::Open(ds.table, opts);
      FLOOD_CHECK(db.ok());
      std::unique_ptr<serve::Router> router = serve::Router::Over(&*db);

      serve::ServerOptions sopts;
      sopts.uds_path = "/tmp/flood_bench_router_" +
                       std::to_string(::getpid()) + "_" + ds_name + "_" +
                       std::to_string(shards) + ".sock";
      sopts.max_inflight_batches = 256;
      sopts.max_inflight_per_connection = 4 * kWindow;
      StatusOr<std::unique_ptr<serve::Server>> server =
          serve::Server::Create(router.get(), std::move(sopts));
      FLOOD_CHECK(server.ok());
      (*server)->Start();
      const std::string address = "unix:" + (*server)->uds_path();

      const size_t per_conn = std::max<size_t>(kWindow, nq / kRouterConns);
      // Warm-up, then measure; counters are deltas over the measured run.
      (void)RunStrategy(address, test, kRouterConns, per_conn / 4 + 1, 1,
                        kWindow);
      const serve::RouterCounters before = router->counters();
      const StrategyResult r =
          RunStrategy(address, test, kRouterConns, per_conn, 1, kWindow);
      const serve::RouterCounters after = router->counters();
      FLOOD_CHECK(r.shed == 0);

      const double sent = static_cast<double>(after.subqueries_sent -
                                              before.subqueries_sent);
      const double pruned = static_cast<double>(after.subqueries_pruned -
                                                before.subqueries_pruned);
      const double prune_frac =
          sent + pruned > 0 ? pruned / (sent + pruned) : 0.0;

      shard_table.push_back({ds_name, std::to_string(shards),
                             Format(r.qps, 0), FormatMs(r.p95_ms),
                             Format(sent, 0), Format(pruned, 0),
                             Format(prune_frac, 2)});
      rows.push_back(
          {"ServingSharded/" + ds_name + "/s" + std::to_string(shards),
           r.wall_ms,
           {{"qps", r.qps},
            {"shards", static_cast<double>(shards)},
            {"connections", static_cast<double>(kRouterConns)},
            {"p50_ms", r.p50_ms},
            {"p95_ms", r.p95_ms},
            {"p99_ms", r.p99_ms},
            {"subqueries_sent", sent},
            {"subqueries_pruned", pruned},
            {"prune_fraction", prune_frac}}});

      (*server)->Shutdown();
      (*server)->Join();
    }
  }

  PrintTable("Sharded router QPS (pipelined, " +
                 std::to_string(kRouterConns) + " connections x shards)",
             shard_header, shard_table);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN_ARGS(flood::bench::Run, flood::bench::ParseArgs)
