// Tab. 2 (§7.4 "Performance Breakdown"): scan overhead (SO), time per
// scanned point (TPS, ns), scan time (ST, ms), index time (IT, ms) and
// total time (TT, ms) for every index on every dataset.
//
// Paper shape to check: indexes spend the vast majority of time scanning;
// Flood has the lowest SO on most datasets and the lowest ST everywhere;
// Z-order-based indexes pay a high TPS (Z-value computation); tree indexes
// pay the highest IT (traversal).

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(100);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 52).Split(0.5, 53);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    std::vector<std::vector<std::string>> out;
    auto emit = [&](const std::string& name, const RunResult& r) {
      const double nqd = static_cast<double>(r.queries);
      const double so = r.stats.ScanOverhead();
      const double tps = r.stats.TimePerScannedPoint();
      const double st = r.avg_scan_ms;
      const double it = r.avg_index_ms;
      out.push_back({name, Format(so, 2), Format(tps, 2), FormatMs(st),
                     Format(it, 4), FormatMs(r.avg_ms)});
      rows.push_back({"Tab2/" + ds_name + "/" + name,
                      r.avg_ms,
                      {{"SO", so},
                       {"TPS_ns", tps},
                       {"ST_ms", st},
                       {"IT_ms", it},
                       {"queries", nqd}}});
    };

    for (const std::string& index_name : AllBaselineNames()) {
      auto index = BuildBaseline(index_name, ds.table, ctx, 1024);
      if (!index.ok()) {
        out.push_back({index_name, "N/A", "N/A", "N/A", "N/A", "N/A"});
        continue;
      }
      emit(index_name, RunWorkload(**index, test));
    }
    auto flood = BuildFlood(ds.table, train);
    FLOOD_CHECK(flood.ok());
    emit("Flood", RunWorkload(*flood->index, test));

    PrintTable(
        "Table 2 (" + ds_name + "): SO | TPS (ns) | ST (ms) | IT (ms) | TT",
        {"index", "SO", "TPS", "ST", "IT", "TT"}, out);
  }
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
