// Tab. 3 (§7.6 "Robustness of the model"): calibrate the cost model on
// each dataset, use each model to learn layouts for all datasets, and run
// the resulting 4x4 layouts on the corresponding test workloads.
//
// Paper shape to check: query times are similar no matter which dataset
// calibrated the weights (mostly within ~10% of the diagonal) — the
// weights calibrate to the hardware, not the data.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const auto& names = AllDatasetNames();

  // Calibrate one cost model per dataset (on its own workload).
  std::map<std::string, CostModel> models;
  for (const auto& name : names) {
    const BenchDataset& ds = GetDataset(name);
    const Workload calib_queries =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, 40, 172);
    CostModel::CalibrationOptions opts;
    opts.num_layouts = 6;
    opts.max_queries = 40;
    opts.max_cells = 1 << 13;
    StatusOr<CostModel> m =
        CostModel::Calibrate(ds.table, calib_queries, opts);
    FLOOD_CHECK(m.ok());
    models[name] = std::move(*m);
  }

  // Learn layouts with every model; evaluate on the target's workload.
  std::vector<std::string> header{"model \\ layout for"};
  for (const auto& n : names) header.push_back(n);

  auto run_cell = [&](const std::string& model_name,
                      const std::string& target_name) {
    const BenchDataset& ds = GetDataset(target_name);
    const size_t nq = NumQueries(60);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 173)
            .Split(0.5, 174);
    LayoutOptimizer::Options opts;
    opts.data_sample_size = 20'000;
    opts.query_sample_size = 50;
    opts.max_cells = std::max<uint64_t>(256, ds.table.num_rows() / 16);
    auto flood =
        BuildOptimizedFlood(ds.table, train, models[model_name], opts);
    FLOOD_CHECK(flood.ok());
    return RunWorkload(*flood->index, test).avg_ms;
  };

  // Diagonal first, so off-diagonal cells can report % vs it.
  std::map<std::string, double> diagonal_ms;
  for (const auto& name : names) diagonal_ms[name] = run_cell(name, name);

  std::vector<std::vector<std::string>> out;
  for (const auto& model_name : names) {
    std::vector<std::string> row{model_name};
    for (const auto& target_name : names) {
      const double ms = model_name == target_name
                            ? diagonal_ms[target_name]
                            : run_cell(model_name, target_name);
      const double diag = diagonal_ms[target_name];
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s (%+.0f%%)",
                    FormatMs(ms).c_str(), 100.0 * (ms - diag) / diag);
      row.push_back(model_name == target_name ? FormatMs(ms) : cell);
      rows.push_back({"Tab3/model_" + model_name + "/layout_" + target_name,
                      ms, {}});
    }
    out.push_back(row);
  }
  PrintTable(
      "Table 3: query time (ms) when layouts are learned with cost models "
      "calibrated on other datasets (%% vs diagonal)",
      header, out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
