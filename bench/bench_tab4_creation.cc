// Tab. 4 (§7.7): index creation time per index per dataset. Flood's time
// splits into learning (layout optimization on samples) and loading
// (building the physical index).
//
// Paper shape to check: Flood's total creation time is competitive — same
// order of magnitude as the tree baselines, far from the worst.

#include "bench/bench_main.h"
#include "common/timer.h"

namespace flood {
namespace bench {
namespace {

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  std::vector<std::string> header{"index"};
  for (const auto& n : AllDatasetNames()) header.push_back(n);
  std::map<std::string, std::vector<std::string>> cells;

  for (const std::string& ds_name : AllDatasetNames()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(60);
    const Workload train =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq, 182);
    BuildContext ctx;
    ctx.workload = &train;
    ctx.sample = DataSample::FromTable(ds.table, 10'000, 7);

    auto flood = BuildFlood(ds.table, train);
    FLOOD_CHECK(flood.ok());
    cells["Flood Learning"].push_back(
        Format(flood->learn.learning_seconds, 3));
    cells["Flood Loading"].push_back(Format(flood->load_seconds, 3));
    cells["Flood Total"].push_back(Format(
        flood->learn.learning_seconds + flood->load_seconds, 3));
    rows.push_back({"Tab4/" + ds_name + "/Flood",
                    (flood->learn.learning_seconds + flood->load_seconds) *
                        1000.0,
                    {{"learn_s", flood->learn.learning_seconds},
                     {"load_s", flood->load_seconds}}});

    for (const std::string& name : AllBaselineNames()) {
      if (name == "FullScan") continue;
      Stopwatch sw;
      auto index = BuildBaseline(name, ds.table, ctx, 1024);
      const double seconds = sw.ElapsedSeconds();
      if (!index.ok()) {
        cells[name].push_back("N/A");
        continue;
      }
      cells[name].push_back(Format(seconds, 3));
      rows.push_back({"Tab4/" + ds_name + "/" + name, seconds * 1000.0, {}});
    }
  }

  std::vector<std::vector<std::string>> out;
  for (const std::string& name :
       {"Flood Learning", "Flood Loading", "Flood Total", "Clustered",
        "ZOrder", "UBtree", "Hyperoctree", "KdTree", "GridFile",
        "RStarTree"}) {
    std::vector<std::string> row{name};
    for (const auto& c : cells[name]) row.push_back(c);
    out.push_back(row);
  }
  PrintTable("Table 4: index creation time (seconds)", header, out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
