// Parallel-execution scaling: aggregate QPS of Database::RunBatch as the
// worker-thread count grows, across index types and datasets. This is the
// measurement behind the threading PR — speedup is reported, not asserted.
//
// Shape to check: near-linear QPS scaling to the physical core count for
// every index (queries are embarrassingly parallel; the batch is sharded
// contiguously, so the only shared state is the read-only index).
//
// Env knobs: FLOOD_BENCH_THREADS caps the sweep (default: hardware
// threads); FLOOD_BENCH_DATASETS="sales,tpch" or "all" widens the dataset
// axis (default: sales, the acceptance dataset); FLOOD_BENCH_QUERIES sets
// the batch size.

#include "bench/bench_main.h"

namespace flood {
namespace bench {
namespace {

std::vector<size_t> ThreadSweep() {
  const size_t max_threads = BenchThreads();
  std::vector<size_t> sweep;
  for (size_t t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

std::vector<BenchRow> Run() {
  std::vector<BenchRow> rows;
  const std::vector<size_t> threads = ThreadSweep();
  const std::vector<std::string> index_set = {"flood", "kdtree", "zorder",
                                              "full_scan"};

  std::vector<std::string> header{"dataset", "index"};
  for (size_t t : threads) header.push_back("t=" + std::to_string(t));
  header.push_back("speedup@max");
  header.push_back("p95@max (ms)");
  std::vector<std::vector<std::string>> out;

  for (const std::string& ds_name : DatasetSweep()) {
    const BenchDataset& ds = GetDataset(ds_name);
    const size_t nq = NumQueries(400);
    const auto [train, test] =
        MakeWorkload(ds, WorkloadKind::kOlapSkewed, nq * 2, 211).Split(0.5,
                                                                       212);
    for (const std::string& index_name : index_set) {
      std::vector<std::string> row{ds_name, index_name};
      double serial_qps = 0;
      // Summary columns stay N/A unless the max-thread run itself
      // succeeded AND a serial baseline exists to divide by.
      std::string speedup_cell = "N/A";
      std::string p95_cell = "N/A";
      for (size_t t : threads) {
        DatabaseOptions options;
        options.index_name = index_name;
        options.training_workload = train;
        options.num_threads = t;
        StatusOr<Database> db = Database::Open(ds.table, std::move(options));
        if (!db.ok()) {
          row.push_back("N/A");
          continue;
        }
        // Warm-up pass, then the measured batch.
        (void)db->RunBatch(test);
        const BatchResult batch = db->RunBatch(test);
        FLOOD_CHECK(batch.status.ok());
        const double qps = batch.Qps();
        if (t == 1) serial_qps = qps;
        const double speedup = serial_qps > 0 ? qps / serial_qps : 0;
        const double p95 = batch.P95LatencyMs();
        if (t == threads.back()) {
          if (serial_qps > 0) speedup_cell = Format(speedup, 2) + "x";
          p95_cell = FormatMs(p95);
        }
        row.push_back(Format(qps, 0));
        rows.push_back(
            {"Throughput/" + ds_name + "/" + index_name + "/t" +
                 std::to_string(t),
             batch.wall_ms,
             {{"qps", qps},
              {"threads", static_cast<double>(t)},
              {"speedup_vs_serial", speedup},
              {"p50_ms", batch.P50LatencyMs()},
              {"p95_ms", p95},
              {"p99_ms", batch.P99LatencyMs()},
              {"avg_executed_ms", batch.AvgExecutedLatencyMs()}}});
      }
      row.push_back(speedup_cell);
      row.push_back(p95_cell);
      out.push_back(row);
    }
  }
  PrintTable("Batch throughput (QPS) vs worker threads", header, out);
  return rows;
}

}  // namespace
}  // namespace bench
}  // namespace flood

FLOOD_BENCH_MAIN(flood::bench::Run)
