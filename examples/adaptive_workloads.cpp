// Adaptive workloads (§7.4 Fig. 10 + §8): a long-running service whose
// query mix shifts and whose table keeps growing. The CostMonitor detects
// the drift, Database::Retrain re-learns the layout online, and the
// facade's write path (Insert/Delete staged in a delta buffer, drained by
// Compact or the auto-retrain policy) absorbs writes between rebuilds —
// every query already reflects them.
//
//   $ ./examples/adaptive_workloads

#include <cstdio>

#include "api/database.h"
#include "core/cost_model.h"
#include "data/datasets.h"

int main() {
  using namespace flood;

  std::printf("generating TPC-H lineitem (600k rows)...\n");
  const BenchDataset tpch = MakeTpchDataset(600'000, 21);

  // Phase 1: date-oriented reporting workload. auto_retrain_fraction keeps
  // the delta below 2% of the base rows by compacting automatically.
  const Workload phase1 =
      MakeWorkload(tpch, WorkloadKind::kOlapSkewed, 120, 22);
  DatabaseOptions options;
  options.index_name = "flood";
  options.training_workload = phase1;
  options.auto_retrain_fraction = 0.02;
  auto db = Database::Open(tpch.table, std::move(options));
  FLOOD_CHECK(db.ok());
  std::printf("phase-1 %s\n", db->Describe().c_str());

  CostMonitor monitor(/*degradation_threshold=*/1.5, /*ewma_alpha=*/0.1);
  {
    const BatchResult warmup = db->RunBatch(phase1);
    const double baseline = static_cast<double>(warmup.stats.total_ns) /
                            static_cast<double>(phase1.size());
    monitor.Rebase(baseline);
    std::printf("phase-1 avg query: %.3f ms\n", baseline / 1e6);
  }

  // The workload shifts to a dimension phase 1 never filtered — one the
  // learned layout will have deprioritized, the worst case for it and
  // exactly what §8's shift detection is for.
  size_t shifted_dim = 1;
  for (size_t dim = 0; dim < tpch.table.num_dims(); ++dim) {
    if (phase1.FilterFrequency(dim) < phase1.FilterFrequency(shifted_dim)) {
      shifted_dim = dim;
    }
  }
  Workload phase2;
  {
    QueryGenerator gen(tpch.table, 23);
    QueryTypeSpec spec;
    spec.range_dims = {shifted_dim};
    phase2 = gen.GenerateWorkload({spec}, 120, 0.001);
  }
  std::printf("\n-- workload shifts to dim %zu (%s), which phase 1 never "
              "filtered --\n",
              shifted_dim, tpch.table.name(shifted_dim).c_str());
  for (const Query& q : phase2) {
    const QueryResult r = db->Run(q);
    monitor.Observe(static_cast<double>(r.stats.total_ns));
    if (monitor.ShouldRetrain()) break;
  }
  std::printf("monitor: rolling %.3f ms vs baseline %.3f ms -> retrain=%s\n",
              monitor.ewma_ns() / 1e6, monitor.baseline_ns() / 1e6,
              monitor.ShouldRetrain() ? "YES" : "no");

  if (monitor.ShouldRetrain()) {
    const double stale_ms = db->RunBatch(phase2).AvgLatencyMs();
    FLOOD_CHECK(db->Retrain(phase2).ok());
    const double fresh_ms = db->RunBatch(phase2).AvgLatencyMs();
    std::printf("re-learned %s\n", db->Describe().c_str());
    std::printf("phase-2 avg: stale %.3f ms -> fresh %.3f ms (%.1fx)\n",
                stale_ms, fresh_ms, stale_ms / fresh_ms);
  }

  // Online inserts through the facade: staged in the delta buffer, merged
  // into every query immediately — no stale reads, no manual buffer.
  std::printf("\n-- online inserts through Database::Insert --\n");
  Rng rng(24);
  const Query q = QueryBuilder(7).Range(0, 1000, 1002).Count().Build();
  const uint64_t before = db->Run(q).count;
  for (int i = 0; i < 10'000; ++i) {
    FLOOD_CHECK(db->Insert({rng.UniformInt(0, 2526),
                            rng.UniformInt(0, 2556), rng.UniformInt(1, 50),
                            rng.UniformInt(0, 10),
                            rng.UniformInt(1, 2'400'000),
                            rng.UniformInt(1, 100'000),
                            rng.UniformInt(900, 52'500)})
                    .ok());
  }
  const QueryResult staged = db->Run(q);
  std::printf("count %llu -> %llu immediately after insert "
              "(%zu rows still staged, %llu compactions so far, "
              "%llu delta rows scanned by that query)\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(staged.count),
              db->pending_writes(),
              static_cast<unsigned long long>(db->compactions()),
              static_cast<unsigned long long>(
                  staged.stats.delta_rows_scanned));

  // Drain the rest explicitly: compaction merges the staged rows into a
  // fresh table, re-learns the layout from the recorded workload, and
  // swaps the rebuilt index in.
  FLOOD_CHECK(db->Compact().ok());
  const QueryResult compacted = db->Run(q);
  std::printf("after Compact(): %llu rows (table now %zu rows, 0 staged, "
              "%llu delta rows scanned)\n",
              static_cast<unsigned long long>(compacted.count),
              db->num_rows(),
              static_cast<unsigned long long>(
                  compacted.stats.delta_rows_scanned));
  FLOOD_CHECK(compacted.count == staged.count);

  // Deletes are tombstones until the next compaction.
  const std::vector<Value> victim = db->GetRow(0);
  auto deleted = db->Delete(victim);
  FLOOD_CHECK(deleted.ok());
  std::printf("deleted %zu row(s) equal to row 0; logical rows now %zu\n",
              *deleted, db->num_rows());
  return 0;
}
