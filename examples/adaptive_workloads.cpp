// Adaptive workloads (§7.4 Fig. 10 + §8): a long-running service whose
// query mix shifts. The CostMonitor detects the drift, the layout is
// re-learned online, and a DeltaBuffer absorbs inserts between rebuilds.
//
//   $ ./examples/adaptive_workloads

#include <cstdio>

#include "core/cost_model.h"
#include "core/delta_buffer.h"
#include "core/layout_optimizer.h"
#include "data/datasets.h"
#include "query/executor.h"

int main() {
  using namespace flood;

  std::printf("generating TPC-H lineitem (600k rows)...\n");
  const BenchDataset tpch = MakeTpchDataset(600'000, 21);

  // Phase 1: date-oriented reporting workload.
  const Workload phase1 =
      MakeWorkload(tpch, WorkloadKind::kOlapSkewed, 120, 22);
  auto built = BuildOptimizedFlood(tpch.table, phase1, CostModel::Default());
  FLOOD_CHECK(built.ok());
  std::printf("phase-1 layout: %s\n",
              built->index->layout().ToString().c_str());

  CostMonitor monitor(/*degradation_threshold=*/1.5, /*ewma_alpha=*/0.1);
  {
    QueryStats stats;
    for (const Query& q : phase1) {
      (void)ExecuteAggregate(*built->index, q, &stats);
    }
    const double baseline =
        static_cast<double>(stats.total_ns) / phase1.size();
    monitor.Rebase(baseline);
    std::printf("phase-1 avg query: %.3f ms\n", baseline / 1e6);
  }

  // The workload shifts to a dimension the learned layout *excluded*
  // (column count 1, not the sort dimension) — the worst case for the
  // current layout, exactly what §8's shift detection is for.
  size_t shifted_dim = 1;
  {
    const GridLayout& layout = built->index->layout();
    for (size_t i = 0; i < layout.NumGridDims(); ++i) {
      if (layout.columns[i] == 1) {
        shifted_dim = layout.grid_dim(i);
        break;
      }
    }
  }
  Workload phase2;
  {
    QueryGenerator gen(tpch.table, 23);
    QueryTypeSpec spec;
    spec.range_dims = {shifted_dim};
    phase2 = gen.GenerateWorkload({spec}, 120, 0.001);
  }
  std::printf("\n-- workload shifts to dim %zu (%s), which the layout "
              "excluded --\n",
              shifted_dim, tpch.table.name(shifted_dim).c_str());
  for (const Query& q : phase2) {
    QueryStats stats;
    (void)ExecuteAggregate(*built->index, q, &stats);
    monitor.Observe(static_cast<double>(stats.total_ns));
    if (monitor.ShouldRetrain()) break;
  }
  std::printf("monitor: rolling %.3f ms vs baseline %.3f ms -> retrain=%s\n",
              monitor.ewma_ns() / 1e6, monitor.baseline_ns() / 1e6,
              monitor.ShouldRetrain() ? "YES" : "no");

  if (monitor.ShouldRetrain()) {
    auto relearned =
        BuildOptimizedFlood(tpch.table, phase2, CostModel::Default());
    FLOOD_CHECK(relearned.ok());
    QueryStats before;
    QueryStats after;
    for (const Query& q : phase2) {
      (void)ExecuteAggregate(*built->index, q, &before);
      (void)ExecuteAggregate(*relearned->index, q, &after);
    }
    std::printf("re-learned layout: %s\n",
                relearned->index->layout().ToString().c_str());
    std::printf("phase-2 avg: stale %.3f ms -> fresh %.3f ms (%.1fx, "
                "learned in %.2fs)\n",
                static_cast<double>(before.total_ns) / phase2.size() / 1e6,
                static_cast<double>(after.total_ns) / phase2.size() / 1e6,
                static_cast<double>(before.total_ns) /
                    static_cast<double>(after.total_ns),
                relearned->learn.learning_seconds);
    built = std::move(*relearned);
  }

  // Inserts between rebuilds: buffer + combined query, then merge.
  std::printf("\n-- inserts via DeltaBuffer --\n");
  DeltaBuffer buffer(tpch.table.num_dims());
  Rng rng(24);
  for (int i = 0; i < 10'000; ++i) {
    FLOOD_CHECK(buffer
                    .Insert({rng.UniformInt(0, 2526),
                             rng.UniformInt(0, 2556), rng.UniformInt(1, 50),
                             rng.UniformInt(0, 10),
                             rng.UniformInt(1, 2'400'000),
                             rng.UniformInt(1, 100'000),
                             rng.UniformInt(900, 52'500)})
                    .ok());
  }
  Query q = QueryBuilder(7).Range(0, 1000, 1002).Count().Build();
  CountVisitor main_count;
  built->index->Execute(q, main_count, nullptr);
  CountVisitor delta_count;
  buffer.Scan(q, delta_count, tpch.table.num_rows(), nullptr);
  std::printf("combined count (index %llu + buffer %llu) = %llu\n",
              static_cast<unsigned long long>(main_count.count()),
              static_cast<unsigned long long>(delta_count.count()),
              static_cast<unsigned long long>(main_count.count() +
                                              delta_count.count()));

  auto merged = buffer.MergeInto(tpch.table);
  FLOOD_CHECK(merged.ok());
  FloodIndex::Options opts;
  opts.layout = built->index->layout();
  FloodIndex rebuilt(opts);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(*merged, 10'000, 25);
  FLOOD_CHECK(rebuilt.Build(*merged, ctx).ok());
  const AggResult merged_result = ExecuteAggregate(rebuilt, q, nullptr);
  std::printf("after merge + rebuild: %llu rows (table now %zu rows)\n",
              static_cast<unsigned long long>(merged_result.count),
              merged->num_rows());
  return 0;
}
