// Adaptive workloads (§7.4 Fig. 10 + §8): a long-running service whose
// query mix shifts. The CostMonitor detects the drift, Database::Retrain
// re-learns the layout online, and a DeltaBuffer absorbs inserts between
// rebuilds.
//
//   $ ./examples/adaptive_workloads

#include <cstdio>

#include "api/database.h"
#include "core/cost_model.h"
#include "core/delta_buffer.h"
#include "core/flood_index.h"
#include "data/datasets.h"
#include "query/visitor.h"

int main() {
  using namespace flood;

  std::printf("generating TPC-H lineitem (600k rows)...\n");
  const BenchDataset tpch = MakeTpchDataset(600'000, 21);

  // Phase 1: date-oriented reporting workload.
  const Workload phase1 =
      MakeWorkload(tpch, WorkloadKind::kOlapSkewed, 120, 22);
  DatabaseOptions options;
  options.index_name = "flood";
  options.training_workload = phase1;
  auto db = Database::Open(tpch.table, std::move(options));
  FLOOD_CHECK(db.ok());
  std::printf("phase-1 %s\n", db->Describe().c_str());

  CostMonitor monitor(/*degradation_threshold=*/1.5, /*ewma_alpha=*/0.1);
  {
    const BatchResult warmup = db->RunBatch(phase1);
    const double baseline = static_cast<double>(warmup.stats.total_ns) /
                            static_cast<double>(phase1.size());
    monitor.Rebase(baseline);
    std::printf("phase-1 avg query: %.3f ms\n", baseline / 1e6);
  }

  // The workload shifts to a dimension the learned layout *excluded*
  // (column count 1, not the sort dimension) — the worst case for the
  // current layout, exactly what §8's shift detection is for.
  size_t shifted_dim = 1;
  {
    const auto* flood_index = dynamic_cast<const FloodIndex*>(&db->index());
    FLOOD_CHECK(flood_index != nullptr);
    const GridLayout& layout = flood_index->layout();
    for (size_t i = 0; i < layout.NumGridDims(); ++i) {
      if (layout.columns[i] == 1) {
        shifted_dim = layout.grid_dim(i);
        break;
      }
    }
  }
  Workload phase2;
  {
    QueryGenerator gen(tpch.table, 23);
    QueryTypeSpec spec;
    spec.range_dims = {shifted_dim};
    phase2 = gen.GenerateWorkload({spec}, 120, 0.001);
  }
  std::printf("\n-- workload shifts to dim %zu (%s), which the layout "
              "excluded --\n",
              shifted_dim, tpch.table.name(shifted_dim).c_str());
  for (const Query& q : phase2) {
    const QueryResult r = db->Run(q);
    monitor.Observe(static_cast<double>(r.stats.total_ns));
    if (monitor.ShouldRetrain()) break;
  }
  std::printf("monitor: rolling %.3f ms vs baseline %.3f ms -> retrain=%s\n",
              monitor.ewma_ns() / 1e6, monitor.baseline_ns() / 1e6,
              monitor.ShouldRetrain() ? "YES" : "no");

  if (monitor.ShouldRetrain()) {
    const double stale_ms = db->RunBatch(phase2).AvgLatencyMs();
    FLOOD_CHECK(db->Retrain(phase2).ok());
    const double fresh_ms = db->RunBatch(phase2).AvgLatencyMs();
    std::printf("re-learned %s\n", db->Describe().c_str());
    std::printf("phase-2 avg: stale %.3f ms -> fresh %.3f ms (%.1fx)\n",
                stale_ms, fresh_ms, stale_ms / fresh_ms);
  }

  // Inserts between rebuilds: buffer + combined query, then merge.
  std::printf("\n-- inserts via DeltaBuffer --\n");
  DeltaBuffer buffer(tpch.table.num_dims());
  Rng rng(24);
  for (int i = 0; i < 10'000; ++i) {
    FLOOD_CHECK(buffer
                    .Insert({rng.UniformInt(0, 2526),
                             rng.UniformInt(0, 2556), rng.UniformInt(1, 50),
                             rng.UniformInt(0, 10),
                             rng.UniformInt(1, 2'400'000),
                             rng.UniformInt(1, 100'000),
                             rng.UniformInt(900, 52'500)})
                    .ok());
  }
  Query q = QueryBuilder(7).Range(0, 1000, 1002).Count().Build();
  const uint64_t main_count = db->Run(q).count;
  CountVisitor delta_count;
  buffer.Scan(q, delta_count, tpch.table.num_rows(), nullptr);
  std::printf("combined count (index %llu + buffer %llu) = %llu\n",
              static_cast<unsigned long long>(main_count),
              static_cast<unsigned long long>(delta_count.count()),
              static_cast<unsigned long long>(main_count +
                                              delta_count.count()));

  // Merge the buffer and reopen on the widened table, pinning the layout
  // we just learned (GridLayout::Serialize travels through the options
  // map, so no optimizer run is needed).
  auto merged = buffer.MergeInto(tpch.table);
  FLOOD_CHECK(merged.ok());
  const auto* flood_index = dynamic_cast<const FloodIndex*>(&db->index());
  FLOOD_CHECK(flood_index != nullptr);
  DatabaseOptions reopen;
  reopen.index_name = "flood";
  reopen.index_options.Set("layout", flood_index->layout().Serialize());
  auto rebuilt = Database::Open(std::move(*merged), std::move(reopen));
  FLOOD_CHECK(rebuilt.ok());
  const QueryResult merged_result = rebuilt->Run(q);
  std::printf("after merge + rebuild: %llu rows (table now %zu rows)\n",
              static_cast<unsigned long long>(merged_result.count),
              rebuilt->num_rows());
  return 0;
}
