// Geospatial analytics on OpenStreetMap-like data: answering the paper's
// §7.3 questions ("how many nodes were added in a time interval?", "how
// many landmarks of a category in a lat-lon rectangle?"), with dictionary
// encoding for the category strings. Queries run through the
// flood::Database facade; the kNN drill-down uses the FloodIndex escape
// hatch, since grid-based kNN is a Flood-specific extension (§6).
//
//   $ ./examples/geospatial

#include <cstdio>
#include <string>

#include "api/database.h"
#include "core/knn.h"
#include "data/datasets.h"
#include "storage/dictionary.h"

int main() {
  using namespace flood;

  std::printf("generating OSM-like dataset...\n");
  const BenchDataset osm = MakeOsmDataset(1'000'000, 13);
  // Dims: 0 id, 1 timestamp, 2 lat, 3 lon, 4 record_type, 5 category.

  // The simulator emits integer category codes; a real ingest pipeline
  // dictionary-encodes tag strings. Demonstrate the mapping for the query
  // below ("school" happens to be category code 17 in our vocabulary).
  Dictionary categories;
  for (int code = 0; code < 100; ++code) {
    categories.Encode("category_" + std::to_string(code));
  }
  const Value school = categories.Lookup("category_17");

  const auto [train, test] =
      MakeWorkload(osm, WorkloadKind::kOlapSkewed, 160, 14).Split(0.5, 15);
  DatabaseOptions options;
  options.index_name = "flood";
  options.training_workload = train;
  auto db = Database::Open(osm.table, std::move(options));
  FLOOD_CHECK(db.ok());
  std::printf("%s\n\n", db->Describe().c_str());

  // "How many records were added in the last 90 days of the data?"
  {
    const Value t_end = osm.table.max_value(1);
    Query q = QueryBuilder(6)
                  .Range(1, t_end - 90 * 86'400, t_end)
                  .Count()
                  .Build();
    const QueryResult r = db->Run(q);
    std::printf("records added in the last 90 days: %llu (%.3f ms)\n",
                static_cast<unsigned long long>(r.count),
                static_cast<double>(r.stats.total_ns) / 1e6);
  }

  // "How many 'school' landmarks in a Boston-sized lat-lon rectangle?"
  {
    Query q = QueryBuilder(6)
                  .Range(2, 42'200'000, 42'500'000)    // lat (micro-deg)
                  .Range(3, -71'200'000, -70'900'000)  // lon
                  .Equals(5, school)
                  .Count()
                  .Build();
    const QueryResult r = db->Run(q);
    std::printf("'%s' landmarks in the rectangle: %llu (%.3f ms, scanned "
                "%llu of %zu rows)\n",
                categories.Decode(school).c_str(),
                static_cast<unsigned long long>(r.count),
                static_cast<double>(r.stats.total_ns) / 1e6,
                static_cast<unsigned long long>(r.stats.points_scanned),
                osm.table.num_rows());
  }

  // A nearest-landmark-style drill-down: shrink the rectangle until the
  // count is small enough to materialize row ids.
  {
    Value half_width = 400'000;
    const Value lat0 = 40'750'000;
    const Value lon0 = -73'990'000;
    while (half_width > 1000) {
      Query q = QueryBuilder(6)
                    .Range(2, lat0 - half_width, lat0 + half_width)
                    .Range(3, lon0 - half_width, lon0 + half_width)
                    .Build();
      if (db->Run(q).count <= 64) {
        const QueryResult rows = db->Collect(q);
        std::printf("drill-down: %zu rows within +/-%lld micro-deg; first "
                    "row id %llu\n",
                    rows.rows.size(), static_cast<long long>(half_width),
                    rows.rows.empty()
                        ? 0ULL
                        : static_cast<unsigned long long>(rows.rows[0]));
        break;
      }
      half_width /= 2;
    }
  }

  // k-nearest-neighbors (paper §6's grid-based kNN extension): the five
  // records closest to a point in (lat, lon) space.
  {
    const auto* flood_index = dynamic_cast<const FloodIndex*>(&db->index());
    FLOOD_CHECK(flood_index != nullptr);
    KnnEngine knn(flood_index, /*dims=*/{2, 3});
    std::vector<Value> point(6, 0);
    point[2] = 40'750'000;   // lat
    point[3] = -73'990'000;  // lon
    const auto neighbors = knn.Search(point, 5);
    std::printf("\n5 nearest records to (40.75, -73.99):\n");
    for (const auto& nb : neighbors) {
      std::printf("  row %llu at (%.4f, %.4f), distance %.0f micro-deg "
                  "(visited %zu cells)\n",
                  static_cast<unsigned long long>(nb.row),
                  static_cast<double>(db->data().Get(nb.row, 2)) / 1e6,
                  static_cast<double>(db->data().Get(nb.row, 3)) / 1e6,
                  nb.distance, knn.last_cells_visited());
    }
  }
  return 0;
}
