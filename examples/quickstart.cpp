// Quickstart: open a flood::Database over an in-memory table, let it learn
// a Flood layout from a handful of example queries, and run aggregations —
// no concrete index types, no visitor wiring.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "common/rng.h"

using flood::Database;
using flood::DatabaseOptions;
using flood::IndexRegistry;
using flood::Query;
using flood::QueryBuilder;
using flood::QueryResult;
using flood::Rng;
using flood::Table;
using flood::Value;
using flood::Workload;

int main() {
  // 1. A table: three columns (x, y, value), one million rows.
  const size_t n = 1'000'000;
  Rng rng(42);
  std::vector<Value> x(n);
  std::vector<Value> y(n);
  std::vector<Value> value(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformInt(0, 999'999);
    y[i] = rng.UniformInt(0, 999'999);
    value[i] = rng.UniformInt(1, 100);
  }
  auto table = Table::FromColumns({x, y, value},
                                  flood::Column::Encoding::kBlockDelta,
                                  {"x", "y", "value"});
  if (!table.ok()) {
    std::fprintf(stderr, "table: %s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. A training workload: the kinds of queries the app will run. Flood
  //    learns which dimensions matter and how selective they are.
  Workload train;
  for (int i = 0; i < 30; ++i) {
    const Value x0 = rng.UniformInt(0, 900'000);
    const Value y0 = rng.UniformInt(0, 950'000);
    train.Add(QueryBuilder(3)
                  .Range(0, x0, x0 + 10'000)   // Tight filter on x.
                  .Range(1, y0, y0 + 50'000)   // Looser filter on y.
                  .Sum(2)
                  .Build());
  }

  // 3. Open the database. The index is chosen by registry name — any of
  //    IndexRegistry::Global().Names() works here; "flood" learns its
  //    layout from the training workload.
  DatabaseOptions options;
  options.index_name = "flood";
  options.training_workload = train;
  auto db = Database::Open(std::move(*table), std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("opened database: %s, index size %zu bytes\n",
              db->Describe().c_str(), db->IndexSizeBytes());

  // 4. Query it: Run() returns a typed result (count/sum) plus stats.
  const Query q = QueryBuilder(3)
                      .Range(0, 250'000, 260'000)
                      .Range(1, 500'000, 550'000)
                      .Sum(2)
                      .Build();
  const QueryResult result = db->Run(q);
  std::printf("SUM(value) over x in [250k,260k], y in [500k,550k]: %lld "
              "(%llu rows)\n",
              static_cast<long long>(result.sum),
              static_cast<unsigned long long>(result.count));
  std::printf("query took %.3f ms, scanned %llu points for %llu matches "
              "(overhead %.1fx)\n",
              static_cast<double>(result.stats.total_ns) / 1e6,
              static_cast<unsigned long long>(result.stats.points_scanned),
              static_cast<unsigned long long>(result.stats.points_matched),
              result.stats.ScanOverhead());

  // 5. Batches amortize dispatch and aggregate the stats for you. With
  //    DatabaseOptions{.num_threads = 0} the batch would fan out over one
  //    worker per hardware thread — same results, higher QPS.
  const auto batch = db->RunBatch(train);
  std::printf("replayed the %zu training queries: avg %.3f ms, p95 %.3f "
              "ms, %.0f QPS\n",
              batch.results.size(), batch.AvgLatencyMs(),
              batch.P95LatencyMs(), batch.Qps());

  // 6. Row retrieval without visitor plumbing.
  Query narrow = QueryBuilder(3)
                     .Range(0, 250'000, 254'000)
                     .Range(1, 500'000, 510'000)
                     .Build();
  const QueryResult rows = db->Collect(narrow);
  std::printf("narrow box holds %zu rows (ids in index storage order)\n",
              rows.rows.size());

  // 7. The same three lines work for every registered index.
  std::printf("\nregistered indexes:");
  for (const auto& name : IndexRegistry::Global().Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
