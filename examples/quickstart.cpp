// Quickstart: build a Flood index over an in-memory table, learn its
// layout from a handful of example queries, and run aggregations.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/layout_optimizer.h"
#include "query/executor.h"

using flood::AggResult;
using flood::CostModel;
using flood::Query;
using flood::QueryBuilder;
using flood::QueryStats;
using flood::Rng;
using flood::Table;
using flood::Value;
using flood::Workload;

int main() {
  // 1. A table: three columns (x, y, value), one million rows.
  const size_t n = 1'000'000;
  Rng rng(42);
  std::vector<Value> x(n);
  std::vector<Value> y(n);
  std::vector<Value> value(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.UniformInt(0, 999'999);
    y[i] = rng.UniformInt(0, 999'999);
    value[i] = rng.UniformInt(1, 100);
  }
  auto table = Table::FromColumns({x, y, value},
                                  flood::Column::Encoding::kBlockDelta,
                                  {"x", "y", "value"});
  if (!table.ok()) {
    std::fprintf(stderr, "table: %s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. A training workload: the kinds of queries the app will run. Flood
  //    learns which dimensions matter and how selective they are.
  Workload train;
  for (int i = 0; i < 30; ++i) {
    const Value x0 = rng.UniformInt(0, 900'000);
    const Value y0 = rng.UniformInt(0, 950'000);
    train.Add(QueryBuilder(3)
                  .Range(0, x0, x0 + 10'000)   // Tight filter on x.
                  .Range(1, y0, y0 + 50'000)   // Looser filter on y.
                  .Sum(2)
                  .Build());
  }

  // 3. Learn the layout and build the index. CostModel::Default() ships
  //    analytic weights; CostModel::Calibrate() tunes them to your machine.
  const CostModel cost_model = CostModel::Default();
  auto built = flood::BuildOptimizedFlood(*table, train, cost_model);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::printf("learned layout: %s (%llu cells) in %.2fs\n",
              built->index->layout().ToString().c_str(),
              static_cast<unsigned long long>(built->index->num_cells()),
              built->learn.learning_seconds);

  // 4. Query it.
  const Query q = QueryBuilder(3)
                      .Range(0, 250'000, 260'000)
                      .Range(1, 500'000, 550'000)
                      .Sum(2)
                      .Build();
  QueryStats stats;
  const AggResult result = flood::ExecuteAggregate(*built->index, q, &stats);
  std::printf("SUM(value) over x in [250k,260k], y in [500k,550k]: %lld "
              "(%llu rows)\n",
              static_cast<long long>(result.sum),
              static_cast<unsigned long long>(result.count));
  std::printf("query took %.3f ms, scanned %llu points for %llu matches "
              "(overhead %.1fx)\n",
              static_cast<double>(stats.total_ns) / 1e6,
              static_cast<unsigned long long>(stats.points_scanned),
              static_cast<unsigned long long>(stats.points_matched),
              stats.ScanOverhead());
  return 0;
}
