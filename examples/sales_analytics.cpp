// Sales analytics: the paper's motivating OLAP scenario — an analyst
// dashboard issuing revenue/report queries over a sales table. Shows the
// speedup of a learned layout over a full scan and a single-dimension
// clustered index on the same queries.
//
//   $ ./examples/sales_analytics

#include <cstdio>

#include "baselines/clustered_index.h"
#include "baselines/full_scan.h"
#include "common/timer.h"
#include "core/layout_optimizer.h"
#include "data/datasets.h"
#include "query/executor.h"

namespace {

double RunAll(const flood::MultiDimIndex& index,
              const flood::Workload& queries) {
  flood::QueryStats stats;
  for (const flood::Query& q : queries) {
    (void)flood::ExecuteAggregate(index, q, &stats);
  }
  return static_cast<double>(stats.total_ns) / 1e6 /
         static_cast<double>(queries.size());
}

}  // namespace

int main() {
  using namespace flood;

  std::printf("generating sales dataset...\n");
  const BenchDataset sales = MakeSalesDataset(1'000'000, 7);
  const auto [train, test] =
      MakeWorkload(sales, WorkloadKind::kOlapSkewed, 200, 8).Split(0.5, 9);

  BuildContext ctx;
  ctx.workload = &train;
  ctx.sample = DataSample::FromTable(sales.table, 10'000, 1);

  FullScanIndex full_scan;
  FLOOD_CHECK(full_scan.Build(sales.table, ctx).ok());
  ClusteredColumnIndex clustered;  // Sorts by the most selective dimension.
  FLOOD_CHECK(clustered.Build(sales.table, ctx).ok());

  auto flood_built =
      BuildOptimizedFlood(sales.table, train, CostModel::Default());
  FLOOD_CHECK(flood_built.ok());
  std::printf("Flood layout: %s (learned in %.2fs)\n\n",
              flood_built->index->layout().ToString().c_str(),
              flood_built->learn.learning_seconds);

  // Example report: monthly revenue for bulk orders (quantity >= 50).
  {
    const Value month_start = 3 * 365 + 120;
    Query report = QueryBuilder(sales.table.num_dims())
                       .Range(5, month_start, month_start + 29)  // date
                       .Range(3, 50, 100)                        // quantity
                       .Sum(4)                                   // unit_price
                       .Build();
    QueryStats stats;
    const AggResult r =
        ExecuteAggregate(*flood_built->index, report, &stats);
    std::printf("bulk-order revenue for one month: %lld cents over %llu "
                "orders (%.3f ms)\n",
                static_cast<long long>(r.sum),
                static_cast<unsigned long long>(r.count),
                static_cast<double>(stats.total_ns) / 1e6);
  }

  // Dashboard refresh: the analyst's whole test workload on each engine.
  const double scan_ms = RunAll(full_scan, test);
  const double clustered_ms = RunAll(clustered, test);
  const double flood_ms = RunAll(*flood_built->index, test);
  std::printf("\navg query time over %zu analyst queries:\n", test.size());
  std::printf("  full scan        %8.3f ms\n", scan_ms);
  std::printf("  clustered index  %8.3f ms (%.0fx vs scan)\n", clustered_ms,
              scan_ms / clustered_ms);
  std::printf("  flood            %8.3f ms (%.0fx vs scan, %.1fx vs "
              "clustered)\n",
              flood_ms, scan_ms / flood_ms, clustered_ms / flood_ms);
  return 0;
}
