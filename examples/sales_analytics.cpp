// Sales analytics: the paper's motivating OLAP scenario — an analyst
// dashboard issuing revenue/report queries over a sales table. Shows the
// speedup of a learned layout over a full scan and a single-dimension
// clustered index on the same queries, with every engine opened through
// the flood::Database facade by registry name.
//
//   $ ./examples/sales_analytics

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "data/datasets.h"

int main() {
  using namespace flood;

  std::printf("generating sales dataset...\n");
  const BenchDataset sales = MakeSalesDataset(1'000'000, 7);
  const auto [train, test] =
      MakeWorkload(sales, WorkloadKind::kOlapSkewed, 200, 8).Split(0.5, 9);

  // One database per engine; the training workload tunes each of them
  // (Flood learns its layout, the clustered index picks its sort
  // dimension, SUM dims get prefix sums).
  std::vector<Database> engines;
  for (const std::string& name : {"full_scan", "clustered", "flood"}) {
    DatabaseOptions options;
    options.index_name = name;
    options.training_workload = train;
    auto db = Database::Open(sales.table, std::move(options));
    FLOOD_CHECK(db.ok());
    engines.push_back(std::move(*db));
  }
  Database& flood_db = engines.back();
  std::printf("Flood layout: %s\n\n", flood_db.Describe().c_str());

  // Example report: monthly revenue for bulk orders (quantity >= 50).
  {
    const Value month_start = 3 * 365 + 120;
    Query report = QueryBuilder(sales.table.num_dims())
                       .Range(5, month_start, month_start + 29)  // date
                       .Range(3, 50, 100)                        // quantity
                       .Sum(4)                                   // unit_price
                       .Build();
    const QueryResult r = flood_db.Run(report);
    std::printf("bulk-order revenue for one month: %lld cents over %llu "
                "orders (%.3f ms)\n",
                static_cast<long long>(r.sum),
                static_cast<unsigned long long>(r.count),
                static_cast<double>(r.stats.total_ns) / 1e6);
  }

  // Dashboard refresh: the analyst's whole test workload on each engine.
  std::vector<double> avg_ms;
  for (Database& db : engines) {
    avg_ms.push_back(db.RunBatch(test).AvgLatencyMs());
  }
  const double scan_ms = avg_ms[0];
  const double clustered_ms = avg_ms[1];
  const double flood_ms = avg_ms[2];
  std::printf("\navg query time over %zu analyst queries:\n", test.size());
  std::printf("  full scan        %8.3f ms\n", scan_ms);
  std::printf("  clustered index  %8.3f ms (%.0fx vs scan)\n", clustered_ms,
              scan_ms / clustered_ms);
  std::printf("  flood            %8.3f ms (%.0fx vs scan, %.1fx vs "
              "clustered)\n",
              flood_ms, scan_ms / flood_ms, clustered_ms / flood_ms);
  return 0;
}
