// serve_client: round-trip the flood wire protocol end to end.
//
// With no arguments, this example is fully self-contained: it builds a
// small database, starts a flood::serve::Server on a Unix-domain socket
// in this process, connects a Client, and runs Ping -> RunBatch ->
// Insert -> RunBatch -> Stats before draining the server.
//
// With an address argument it skips the in-process server and talks to
// an already-running flood_serve instead:
//
//   $ ./examples/serve_client                      # self-contained demo
//   $ ./examples/serve_client unix:/tmp/flood.sock # against flood_serve
//   $ ./examples/serve_client 127.0.0.1:7878

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "serve/client.h"
#include "serve/server.h"

using flood::Database;
using flood::DatabaseOptions;
using flood::Query;
using flood::QueryBuilder;
using flood::Rng;
using flood::Table;
using flood::Value;
using flood::Workload;
using flood::serve::Client;
using flood::serve::Server;
using flood::serve::ServerOptions;
using flood::serve::WireCode;

namespace {

int Fail(const flood::Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Somewhere to connect to: the given address, or an in-process
  //    server over a small learned database on a temp UDS path.
  std::string address;
  std::unique_ptr<Database> db;
  std::unique_ptr<Server> server;
  if (argc > 1) {
    address = argv[1];
  } else {
    const size_t n = 100'000;
    Rng rng(7);
    std::vector<Value> x(n), y(n), value(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.UniformInt(0, 99'999);
      y[i] = rng.UniformInt(0, 99'999);
      value[i] = rng.UniformInt(1, 100);
    }
    auto table = Table::FromColumns({x, y, value},
                                    flood::Column::Encoding::kBlockDelta,
                                    {"x", "y", "value"});
    if (!table.ok()) return Fail(table.status(), "table");

    Workload train;
    for (int i = 0; i < 20; ++i) {
      const Value x0 = rng.UniformInt(0, 90'000);
      train.Add(QueryBuilder(3)
                    .Range(0, x0, x0 + 5'000)
                    .Range(1, 0, 50'000)
                    .Count()
                    .Build());
    }
    DatabaseOptions options;
    options.index_name = "flood";
    options.training_workload = train;
    options.num_threads = 4;
    auto opened = Database::Open(*table, std::move(options));
    if (!opened.ok()) return Fail(opened.status(), "open");
    db = std::make_unique<Database>(std::move(*opened));

    ServerOptions sopts;
    sopts.uds_path =
        "/tmp/flood_serve_client_demo." + std::to_string(::getpid());
    auto created = Server::Create(db.get(), std::move(sopts));
    if (!created.ok()) return Fail(created.status(), "serve");
    server = std::move(*created);
    server->Start();
    address = "unix:" + server->uds_path();
    std::printf("in-process server on %s\n", address.c_str());
  }

  // 2. Connect and ping. Finite deadlines + a short connect retry: a
  //    typo'd or dead address fails within seconds instead of hanging,
  //    and a server still coming up gets a couple of chances.
  flood::serve::ClientOptions copts;
  copts.connect_timeout_ms = 5'000;
  copts.send_timeout_ms = 5'000;
  copts.recv_timeout_ms = 10'000;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff_ms = 100;
  auto client = Client::Connect(address, copts);
  if (!client.ok()) return Fail(client.status(), "connect");
  if (flood::Status s = client->Ping(); !s.ok()) return Fail(s, "ping");
  std::printf("ping ok\n");

  auto health = client->Health();
  if (!health.ok()) return Fail(health.status(), "health");
  std::printf("health: ready=%d draining=%d persist_poisoned=%d\n",
              health->ready ? 1 : 0, health->draining ? 1 : 0,
              health->persist_poisoned ? 1 : 0);

  // 3. A batch of aggregations, executed server-side in ONE RunBatch.
  std::vector<Query> queries;
  queries.push_back(
      QueryBuilder(3).Range(0, 10'000, 20'000).Count().Build());
  queries.push_back(QueryBuilder(3)
                        .Range(0, 10'000, 20'000)
                        .Range(1, 0, 50'000)
                        .Sum(2)
                        .Build());
  auto reply = client->RunBatch(queries);
  if (!reply.ok()) return Fail(reply.status(), "run batch");
  if (reply->code != WireCode::kOk) {
    std::fprintf(stderr, "batch failed: %s\n", reply->message.c_str());
    return 1;
  }
  std::printf("count(x in [10k,20k])            = %llu\n",
              static_cast<unsigned long long>(reply->results[0].count));
  std::printf("sum(value | x,y filtered)        = %lld\n",
              static_cast<long long>(reply->results[1].sum));

  // 4. Writes go over the same connection; queries see them immediately.
  if (flood::Status s = client->Insert({15'000, 25'000, 1});
      !s.ok()) {
    return Fail(s, "insert");
  }
  auto after = client->RunBatch({&queries[0], 1});
  if (!after.ok()) return Fail(after.status(), "run batch after insert");
  std::printf("count after one insert           = %llu (+1)\n",
              static_cast<unsigned long long>(after->results[0].count));

  // 5. Server introspection over the wire.
  auto stats = client->Stats();
  if (!stats.ok()) return Fail(stats.status(), "stats");
  for (const auto& [key, val] : *stats) {
    if (key == "serve.frames_decoded" || key == "serve.batches_submitted" ||
        key == "db.pending_writes") {
      std::printf("%-32s = %.0f\n", key.c_str(), val);
    }
  }

  // 6. Clean drain (only for the in-process server).
  if (server != nullptr) {
    server->Shutdown();
    server->Join();
    std::printf("server drained cleanly\n");
  }
  return 0;
}
