#include "api/database.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <utility>

#include "api/index_registry.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "persist/snapshot.h"
#include "query/executor.h"
#include "query/visitor.h"

namespace flood {

double BatchResult::LatencyPercentileMs(double p) const {
  // One histogram implementation for every percentile reader in the repo
  // (obs::HistogramData) instead of a private sort: the readout is the
  // bucket upper bound clamped to the exact max, so p100 is still the
  // exact slowest query and every p is within one log-linear bucket
  // (<= 25%) of the sorted value.
  obs::HistogramData hist;
  for (const QueryResult& r : results) {
    if (!r.skipped_empty) hist.Record(r.stats.total_ns);
  }
  return static_cast<double>(hist.Percentile(p)) / 1e6;
}

StatusOr<Database> Database::Open(const Table& table,
                                  DatabaseOptions options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot open a database on an empty table");
  }
  StatusOr<std::string> canonical =
      IndexRegistry::Global().Resolve(options.index_name);
  if (!canonical.ok()) return canonical.status();

  Database db(std::move(options), *canonical);
  StatusOr<std::unique_ptr<MultiDimIndex>> index = db.BuildIndex(
      table, db.options_.training_workload.has_value()
                 ? &*db.options_.training_workload
                 : nullptr);
  if (!index.ok()) return index.status();
  db.index_ = std::move(*index);
  db.num_dims_ = table.num_dims();
  db.write_ = std::make_unique<WriteState>(table.num_dims());
  db.num_threads_ = db.options_.num_threads == 0
                        ? ThreadPool::DefaultConcurrency()
                        : db.options_.num_threads;
  if (db.num_threads_ > 1) {
    db.pool_ = std::make_unique<ThreadPool>(db.num_threads_);
  }
  if (!db.options_.wal_path.empty()) {
    // Fresh-table open at epoch 0: an existing log at this path (same
    // table, previous run, never snapshotted) is replayed; a log from a
    // later checkpoint is rejected (open from that snapshot instead).
    const std::string wal_path = std::move(db.options_.wal_path);
    db.options_.wal_path.clear();
    FLOOD_RETURN_IF_ERROR(db.AttachWal(wal_path));
  }
  return db;
}

StatusOr<Database> Database::Open(const std::string& snapshot_path,
                                  DatabaseOptions options) {
  StatusOr<persist::SnapshotData> snap = persist::ReadSnapshot(snapshot_path);
  if (!snap.ok()) return snap.status();

  // Structural knobs come from the snapshot; caller-set index_options keys
  // override individually, runtime knobs (threads, WAL, compaction policy)
  // stay the caller's.
  // `runtime_options` is what the database keeps for future rebuilds
  // (Compact/Retrain must stay free to RElearn the layout); `build_options`
  // additionally pins the snapshot's learned layout so this one Build
  // skips the optimizer. A layout the caller pinned explicitly lands in
  // both via the override loop.
  IndexOptions runtime_options;
  for (const auto& [key, value] : snap->index_options) {
    runtime_options.Set(key, value);
  }
  for (const std::string& key : options.index_options.Keys()) {
    runtime_options.Set(key, *options.index_options.Get(key));
  }
  IndexOptions build_options = runtime_options;
  if (!snap->layout.empty() && !options.index_options.Has("layout")) {
    build_options.Set("layout", snap->layout);
  }
  options.index_name = snap->index_name;
  options.index_options = std::move(build_options);
  options.sample_size = static_cast<size_t>(snap->sample_size);
  options.sample_seed = snap->sample_seed;
  if (!options.training_workload.has_value() && snap->workload.has_value()) {
    options.training_workload = std::move(snap->workload);
  }
  std::string wal_path = std::move(options.wal_path);
  options.wal_path.clear();

  StatusOr<Database> db = Open(snap->base, std::move(options));
  if (!db.ok()) return db.status();
  // Drop the injected pin: the *next* compaction relearns the layout from
  // the recorded/training workload like any cold-opened database would.
  db->options_.index_options = std::move(runtime_options);

  // Restore the staged delta. Inserts are replayed verbatim; tombstones
  // were stored as distinct key tuples and are re-resolved against the
  // rebuilt index (Delete(key) tombstoned *every* base match, so the key
  // set reproduces the exact tombstone set in any deterministic rebuild).
  for (const std::vector<Value>& row : snap->delta_inserts) {
    FLOOD_RETURN_IF_ERROR(db->write_->delta.Insert(row));
  }
  for (const std::vector<Value>& key : snap->tombstone_keys) {
    (void)db->TombstoneKeyLocked(key);
  }
  db->write_->snapshot_path = snapshot_path;
  db->write_->epoch = snap->epoch;
  if (!wal_path.empty()) {
    FLOOD_RETURN_IF_ERROR(db->AttachWal(wal_path));
  }
  return db;
}

StatusOr<std::unique_ptr<MultiDimIndex>> Database::BuildIndex(
    const Table& table, const Workload* workload) const {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(index_name_, options_.index_options);
  if (!index.ok()) return index.status();
  BuildContext ctx;
  ctx.workload = workload;
  ctx.sample =
      DataSample::FromTable(table, options_.sample_size, options_.sample_seed);
  FLOOD_RETURN_IF_ERROR((*index)->Build(table, ctx));
  return index;
}

Status Database::ValidateArity(const Query& query) const {
  // Arity mismatches would read past the column array deep in the scan
  // loops; catch them at the API boundary instead.
  if (query.num_dims() != num_dims_) {
    return Status::InvalidArgument(
        "query has " + std::to_string(query.num_dims()) +
        " dims, table has " + std::to_string(num_dims_));
  }
  return Status::OK();
}

void Database::MergeDeltaAggregate(const Query& query,
                                   QueryResult* result) const {
  const DeltaBuffer& delta = write_->delta;
  if (delta.pending() == 0) return;
  const Stopwatch timer;
  const bool is_sum = query.agg().kind == AggSpec::Kind::kSum;
  const size_t agg_dim = query.agg().dim;
  // Wrapping uint64 accumulation, matching SumVisitor's overflow
  // semantics; COUNT subtraction is safe because every subtracted
  // tombstone was counted by the base execution.
  uint64_t count = result->count;
  uint64_t sum = static_cast<uint64_t>(result->sum);
  size_t matched = 0;
  delta.ForEachMatch(query, &result->stats, [&](size_t i) {
    ++count;
    ++matched;
    if (is_sum) sum += static_cast<uint64_t>(delta.Get(i, agg_dim));
  });
  result->stats.points_matched += matched;
  // Tombstoned base matches: subtract their contribution, including from
  // points_matched, which reports *logical* matches delivered to the
  // caller (the base execution counted them physically).
  const Table& base = index_->data();
  const std::vector<RowId>& tombstones = delta.tombstones();
  result->stats.delta_rows_scanned += tombstones.size();
  for (RowId r : tombstones) {
    if (query.Matches(base, r)) {
      --count;
      --result->stats.points_matched;
      if (is_sum) sum -= static_cast<uint64_t>(base.Get(r, agg_dim));
    }
  }
  const int64_t ns = timer.ElapsedNanos();
  result->stats.scan_ns += ns;
  result->stats.delta_ns += ns;
  result->stats.total_ns += ns;
  result->count = count;
  result->sum = static_cast<int64_t>(sum);
}

QueryResult Database::ExecuteQueryLocked(const Query& query) const {
  QueryResult result;
  result.kind = query.agg().kind == AggSpec::Kind::kSum
                    ? QueryResult::Kind::kSum
                    : QueryResult::Kind::kCount;
  if (query.IsEmpty()) {
    result.skipped_empty = true;
    return result;
  }
  const AggResult agg = ExecuteAggregate(*index_, query, &result.stats);
  result.count = agg.count;
  result.sum = agg.sum;
  MergeDeltaAggregate(query, &result);
  return result;
}

QueryResult Database::ExecuteQuery(const Query& query) const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return ExecuteQueryLocked(query);
}

void Database::RecordQueryLocked(const Query& query) {
  const size_t cap = options_.workload_history;
  if (cap == 0) return;
  if (telemetry_->history.size() < cap) {
    telemetry_->history.push_back(query);
  } else {
    telemetry_->history[telemetry_->history_next] = query;
  }
  telemetry_->history_next = (telemetry_->history_next + 1) % cap;
}

void Database::NoteQueryMetrics(const QueryResult& result) const {
  obs::DbMetrics& m = obs::GlobalDbMetrics();
  if (result.skipped_empty) {
    m.empty_skipped->Add(1);
    return;
  }
  const QueryStats& s = result.stats;
  m.queries->Add(1);
  m.query_ns->Record(s.total_ns);
  m.plan_ns->Record(s.index_ns);
  m.scan_ns->Record(s.scan_ns);
  m.delta_merge_ns->Record(s.delta_ns);
  m.points_scanned->Add(s.points_scanned);
  m.blocks_skipped->Add(s.blocks_skipped);
  m.blocks_exact->Add(s.blocks_exact);
  m.simd_blocks->Add(s.simd_blocks);
  m.delta_rows_scanned->Add(s.delta_rows_scanned);
  if (options_.slow_query_ns > 0 && s.total_ns > options_.slow_query_ns) {
    m.slow_queries->Add(1);
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "slow_query threshold_ns=%lld total_ns=%lld plan_ns=%lld "
        "scan_ns=%lld delta_ns=%lld refine_ns=%lld points_scanned=%llu "
        "points_matched=%llu cells_visited=%llu ranges_scanned=%llu "
        "blocks_skipped=%llu blocks_exact=%llu simd_blocks=%llu "
        "delta_rows_scanned=%llu",
        static_cast<long long>(options_.slow_query_ns),
        static_cast<long long>(s.total_ns),
        static_cast<long long>(s.index_ns),
        static_cast<long long>(s.scan_ns),
        static_cast<long long>(s.delta_ns),
        static_cast<long long>(s.refine_ns),
        static_cast<unsigned long long>(s.points_scanned),
        static_cast<unsigned long long>(s.points_matched),
        static_cast<unsigned long long>(s.cells_visited),
        static_cast<unsigned long long>(s.ranges_scanned),
        static_cast<unsigned long long>(s.blocks_skipped),
        static_cast<unsigned long long>(s.blocks_exact),
        static_cast<unsigned long long>(s.simd_blocks),
        static_cast<unsigned long long>(s.delta_rows_scanned));
    if (options_.slow_query_log) {
      options_.slow_query_log(line);
    } else {
      std::fprintf(stderr, "%s\n", line);
    }
  }
}

void Database::RecordTelemetry(const Query& query,
                               const QueryResult& result) {
  NoteQueryMetrics(result);
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  ++telemetry_->queries_run;
  if (result.skipped_empty) {
    ++telemetry_->empty_skipped;
    return;
  }
  telemetry_->stats.RecordQuery(result.stats);
  RecordQueryLocked(query);
}

StatusOr<QueryResult> Database::TryRun(const Query& query) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(query));
  QueryResult result = ExecuteQuery(query);
  RecordTelemetry(query, result);
  return result;
}

StatusOr<QueryResult> Database::TryCollect(const Query& query) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(query));
  QueryResult result;
  result.kind = QueryResult::Kind::kRows;
  if (query.IsEmpty()) {
    result.skipped_empty = true;
  } else {
    std::shared_lock<std::shared_mutex> lock(write_->mu);
    CollectVisitor visitor;
    index_->Execute(query, visitor, &result.stats);
    const DeltaBuffer& delta = write_->delta;
    if (delta.pending() > 0) {
      const Stopwatch timer;
      if (delta.num_tombstones() > 0) {
        const size_t before = visitor.mutable_rows().size();
        std::erase_if(visitor.mutable_rows(),
                      [&delta](RowId r) { return delta.IsTombstoned(r); });
        // points_matched reports logical matches, like the row set.
        result.stats.points_matched -=
            before - visitor.mutable_rows().size();
        result.stats.delta_rows_scanned += delta.num_tombstones();
      }
      // Tombstone ids are always < base, so the erase above can never hit
      // the staged ids Scan appends here.
      delta.Scan(query, visitor,
                 static_cast<RowId>(index_->data().num_rows()),
                 &result.stats);
      const int64_t ns = timer.ElapsedNanos();
      result.stats.scan_ns += ns;
      result.stats.delta_ns += ns;
      result.stats.total_ns += ns;
    }
    result.rows = std::move(visitor.mutable_rows());
    result.count = result.rows.size();
  }
  RecordTelemetry(query, result);
  return result;
}

QueryResult Database::Run(const Query& query) {
  StatusOr<QueryResult> result = TryRun(query);
  FLOOD_CHECK(result.ok());
  return std::move(result).value();
}

QueryResult Database::Collect(const Query& query) {
  StatusOr<QueryResult> result = TryCollect(query);
  FLOOD_CHECK(result.ok());
  return std::move(result).value();
}

void Database::RunShard(std::span<const Query> queries, size_t begin,
                        size_t end, QueryResult* results,
                        ShardAccum* acc) const {
  // One shared-lock acquisition per shard, not per query: workers don't
  // hammer the seam's cache line on cheap queries. The cost is that a
  // writer waits for the slowest in-flight shard instead of a single
  // query before it can stage.
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  for (size_t i = begin; i < end; ++i) {
    results[i] = ExecuteQueryLocked(queries[i]);
    NoteQueryMetrics(results[i]);
    if (results[i].skipped_empty) {
      ++acc->empty_skipped;
    } else {
      acc->stats.RecordQuery(results[i].stats);
    }
  }
}

Status Database::ValidateBatch(std::span<const Query> queries) const {
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status arity = ValidateArity(queries[i]);
    if (!arity.ok()) {
      return Status::InvalidArgument("batch query " + std::to_string(i) +
                                     ": " + arity.message());
    }
  }
  return Status::OK();
}

BatchResult Database::RunBatch(std::span<const Query> queries) {
  BatchResult batch;
  batch.status = ValidateBatch(queries);
  if (!batch.status.ok()) return batch;

  const Stopwatch wall;
  const size_t n = queries.size();
  batch.results.resize(n);
  const size_t shards =
      pool_ != nullptr ? std::min(pool_->num_threads(), n) : 1;
  std::vector<ShardAccum> accums(std::max<size_t>(1, shards));
  if (shards <= 1) {
    RunShard(queries, 0, n, batch.results.data(), &accums[0]);
  } else {
    // Contiguous shards keep results[i] aligned with queries[i] for free
    // and let each worker stream through its slice of the results array.
    QueryResult* const results = batch.results.data();
    ParallelFor(*pool_, n, shards,
                [this, queries, results, &accums](size_t s, size_t begin,
                                                  size_t end) {
                  RunShard(queries, begin, end, results, &accums[s]);
                });
  }
  // Deterministic merge: always in shard order, whatever order the workers
  // actually finished in.
  for (const ShardAccum& acc : accums) {
    batch.stats.Merge(acc.stats);
    batch.empty_skipped += acc.empty_skipped;
  }
  batch.wall_ms = wall.ElapsedMillis();

  FoldBatchTelemetry(queries, batch);
  return batch;
}

BatchResult Database::RunBatch(const Workload& workload) {
  return RunBatch(std::span<const Query>(workload.queries()));
}

void Database::FoldBatchTelemetry(std::span<const Query> queries,
                                  const BatchResult& batch) {
  {
    obs::DbMetrics& m = obs::GlobalDbMetrics();
    m.batch_ns->Record(static_cast<int64_t>(batch.wall_ms * 1e6));
    m.batch_queries->Record(static_cast<int64_t>(queries.size()));
  }
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  telemetry_->stats.Merge(batch.stats);
  telemetry_->queries_run += queries.size();
  telemetry_->empty_skipped += batch.empty_skipped;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!batch.results[i].skipped_empty) RecordQueryLocked(queries[i]);
  }
}

void Database::RunBatchAsync(std::span<const Query> queries,
                             std::function<void(BatchResult)> on_done) {
  {
    Status status = ValidateBatch(queries);
    if (!status.ok()) {
      BatchResult batch;
      batch.status = std::move(status);
      on_done(std::move(batch));
      return;
    }
  }
  if (pool_ == nullptr) {
    // No pool (num_threads == 1): the synchronous path, completed before
    // this returns.
    on_done(RunBatch(queries));
    return;
  }

  // Shared completion state: shards decrement `remaining`, and whichever
  // worker hits zero merges, folds telemetry, and fires the callback. No
  // shard ever waits on another shard (the ThreadPool forbids that), so
  // any number of async batches can be in flight on one pool.
  struct AsyncBatch {
    std::vector<Query> queries;  ///< Owned copy; outlives the caller's span.
    BatchResult batch;
    std::vector<ShardAccum> accums;
    std::atomic<size_t> remaining{0};
    Stopwatch wall;  ///< Starts at submission: wall_ms includes queue wait.
    std::function<void(BatchResult)> on_done;
  };
  auto state = std::make_shared<AsyncBatch>();
  state->queries.assign(queries.begin(), queries.end());
  state->on_done = std::move(on_done);
  const size_t n = state->queries.size();
  state->batch.results.resize(n);
  const size_t shards = std::max<size_t>(1, std::min(pool_->num_threads(), n));
  state->accums.resize(shards);
  state->remaining.store(shards, std::memory_order_relaxed);

  // Same contiguous near-equal carve as ParallelFor, so the async result
  // is field-for-field what the synchronous RunBatch would have produced.
  const size_t base = n / shards;
  const size_t extra = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t end = begin + base + (s < extra ? 1 : 0);
    pool_->Submit([this, state, s, begin, end] {
      RunShard(state->queries, begin, end, state->batch.results.data(),
               &state->accums[s]);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        for (const ShardAccum& acc : state->accums) {
          state->batch.stats.Merge(acc.stats);
          state->batch.empty_skipped += acc.empty_skipped;
        }
        state->batch.wall_ms = state->wall.ElapsedMillis();
        FoldBatchTelemetry(state->queries, state->batch);
        state->on_done(std::move(state->batch));
      }
    });
    begin = end;
  }
}

std::future<BatchResult> Database::RunBatchAsync(
    std::span<const Query> queries) {
  auto promise = std::make_shared<std::promise<BatchResult>>();
  std::future<BatchResult> future = promise->get_future();
  RunBatchAsync(queries, [promise](BatchResult batch) {
    promise->set_value(std::move(batch));
  });
  return future;
}

// --- Writes ---------------------------------------------------------------

Status Database::Insert(const std::vector<Value>& row) {
  if (row.size() != num_dims_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table has " +
        std::to_string(num_dims_) + " dims");
  }
  std::unique_lock<std::shared_mutex> lock(write_->mu);
  FLOOD_RETURN_IF_ERROR(write_->wal_error);
  if (write_->wal != nullptr) {
    // Log-before-mutate: a WAL failure acknowledges (and stages) nothing.
    write_->wal->AppendInsert(row);
    FLOOD_RETURN_IF_ERROR(write_->wal->Commit());
  }
  FLOOD_RETURN_IF_ERROR(write_->delta.Insert(row));
  MaybeAutoCompactLocked();
  return Status::OK();
}

Status Database::InsertBatch(std::span<const std::vector<Value>> rows) {
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != num_dims_) {
      return Status::InvalidArgument(
          "batch row " + std::to_string(i) + " has " +
          std::to_string(rows[i].size()) + " values, table has " +
          std::to_string(num_dims_) + " dims");
    }
  }
  std::unique_lock<std::shared_mutex> lock(write_->mu);
  FLOOD_RETURN_IF_ERROR(write_->wal_error);
  if (write_->wal != nullptr) {
    // Group commit: the whole batch rides one write() (+ one fsync under
    // Durability::kSync) before any row is staged.
    for (const std::vector<Value>& row : rows) {
      write_->wal->AppendInsert(row);
    }
    FLOOD_RETURN_IF_ERROR(write_->wal->Commit());
  }
  for (const std::vector<Value>& row : rows) {
    FLOOD_RETURN_IF_ERROR(write_->delta.Insert(row));
  }
  MaybeAutoCompactLocked();
  return Status::OK();
}

StatusOr<size_t> Database::Delete(const std::vector<Value>& key) {
  if (key.size() != num_dims_) {
    return Status::InvalidArgument(
        "key has " + std::to_string(key.size()) + " values, table has " +
        std::to_string(num_dims_) + " dims");
  }
  std::unique_lock<std::shared_mutex> lock(write_->mu);
  if (!write_->wal_error.ok()) return write_->wal_error;
  if (write_->wal != nullptr) {
    write_->wal->AppendDelete(key);
    FLOOD_RETURN_IF_ERROR(write_->wal->Commit());
  }
  size_t deleted = write_->delta.EraseMatching(key);
  deleted += TombstoneKeyLocked(key);
  MaybeAutoCompactLocked();
  return deleted;
}

size_t Database::TombstoneKeyLocked(const std::vector<Value>& key) {
  // Tombstone every base row equal to the key, located with an exact-match
  // query through the (immutable) index. AddTombstone refuses duplicates,
  // so deleting the same key twice cannot subtract a base match twice.
  Query probe(num_dims_);
  for (size_t dim = 0; dim < num_dims_; ++dim) probe.SetEquals(dim, key[dim]);
  CollectVisitor visitor;
  index_->Execute(probe, visitor, nullptr);
  size_t added = 0;
  for (RowId r : visitor.rows()) {
    if (write_->delta.AddTombstone(r)) ++added;
  }
  return added;
}

Status Database::CompactLocked(const Workload* workload) {
  // Lets tests force a compaction failure without corrupting anything —
  // the auto-compaction backoff policy below is exercised through here.
  FLOOD_FAILPOINT("db.compact");
  // The whole body runs under the exclusive lock: its duration IS the
  // pause queries and writes observe.
  const Stopwatch pause;
  struct PauseRecorder {
    const Stopwatch& watch;
    ~PauseRecorder() {
      obs::GlobalDbMetrics().compaction_pause_ns->Record(watch.ElapsedNanos());
    }
  } pause_recorder{pause};
  Workload recorded;
  if (workload == nullptr) {
    {
      std::lock_guard<std::mutex> lock(telemetry_->mu);
      recorded = Workload(telemetry_->history);
    }
    if (!recorded.empty()) {
      workload = &recorded;
    } else if (options_.training_workload.has_value()) {
      workload = &*options_.training_workload;
    }
  }
  DeltaBuffer& delta = write_->delta;
  if (delta.pending() == 0) {
    // Nothing staged: a pure relearn over the current storage copy (the
    // pre-write-path Retrain). Every Build re-clusters its input, so the
    // index's own table serves as the source.
    StatusOr<std::unique_ptr<MultiDimIndex>> index =
        BuildIndex(index_->data(), workload);
    if (!index.ok()) return index.status();
    index_ = std::move(*index);
  } else {
    StatusOr<Table> merged = delta.Materialize(index_->data());
    if (!merged.ok()) return merged.status();
    if (merged->num_rows() == 0) {
      return Status::FailedPrecondition(
          "compaction would leave the table empty");
    }
    StatusOr<std::unique_ptr<MultiDimIndex>> index =
        BuildIndex(*merged, workload);
    if (!index.ok()) return index.status();
    // Point of no return: swap the rebuilt index in, then drop the staged
    // writes it now contains.
    index_ = std::move(*index);
    delta.Clear();
  }
  ++write_->compactions;
  write_->auto_compact_retry_at = 0;  // A success clears any backoff.
  if (!write_->snapshot_path.empty()) {
    // Checkpoint: re-snapshot the compacted state, then truncate the WAL.
    // A failure here surfaces but loses nothing — compaction is logically
    // invisible, so the previous snapshot plus the untruncated WAL still
    // reproduce the exact logical state.
    FLOOD_RETURN_IF_ERROR(SaveLocked(write_->snapshot_path));
  }
  return Status::OK();
}

Status Database::SaveLocked(const std::string& path) {
  const Stopwatch checkpoint;
  struct CheckpointRecorder {
    const Stopwatch& watch;
    ~CheckpointRecorder() {
      obs::GlobalDbMetrics().checkpoint_ns->Record(watch.ElapsedNanos());
    }
  } checkpoint_recorder{checkpoint};
  persist::SnapshotContents contents;
  contents.epoch = write_->epoch + 1;
  contents.index_name = index_name_;
  for (const std::string& key : options_.index_options.Keys()) {
    contents.index_options.emplace_back(key, *options_.index_options.Get(key));
  }
  contents.layout = index_->SerializedLayout();
  contents.index_properties = index_->DebugProperties();
  contents.sample_size = options_.sample_size;
  contents.sample_seed = options_.sample_seed;
  const Table& base = index_->data();
  contents.base = &base;
  contents.workload = options_.training_workload.has_value()
                          ? &*options_.training_workload
                          : nullptr;
  const DeltaBuffer& delta = write_->delta;
  contents.delta_inserts.reserve(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) {
    std::vector<Value> row(num_dims_);
    for (size_t d = 0; d < num_dims_; ++d) row[d] = delta.Get(i, d);
    contents.delta_inserts.push_back(std::move(row));
  }
  // Tombstones travel as distinct key tuples, not row ids: Delete(key)
  // tombstoned every base match, so the key set identifies the same rows
  // in any deterministic rebuild order of the restored table.
  for (RowId r : delta.tombstones()) {
    std::vector<Value> key(num_dims_);
    for (size_t d = 0; d < num_dims_; ++d) key[d] = base.Get(r, d);
    contents.tombstone_keys.push_back(std::move(key));
  }
  std::sort(contents.tombstone_keys.begin(), contents.tombstone_keys.end());
  contents.tombstone_keys.erase(
      std::unique(contents.tombstone_keys.begin(),
                  contents.tombstone_keys.end()),
      contents.tombstone_keys.end());

  const Status written = persist::WriteSnapshot(path, contents);
  if (!written.ok()) {
    // Persistence is poisoned (ENOSPC, EIO, ...): the snapshot on disk is
    // stale but intact (the write was atomic), the WAL still acknowledges
    // writes, and reads are untouched. Recorded so the serving tier's
    // kHealth response can tell load balancers durability is degraded.
    write_->last_checkpoint = written;
    return written;
  }
  write_->last_checkpoint = Status::OK();
  // The snapshot is durable: advance the checkpoint and fold the WAL into
  // it. A crash (or failure) between these two steps is safe — the WAL is
  // then stale (lower epoch) and discarded on the next open, because its
  // records are inside the snapshot just written.
  write_->epoch = contents.epoch;
  write_->snapshot_path = path;
  if (write_->wal != nullptr) {
    const Status reset = write_->wal->Reset(write_->epoch);
    if (!reset.ok()) {
      // The on-disk log no longer pairs with the snapshot just written:
      // its lower-epoch records would be discarded by recovery, so any
      // further acknowledgement through it would be a lie. Detach the
      // writer and refuse writes until a reopen re-establishes the pair.
      write_->wal.reset();
      write_->wal_error = Status::Internal(
          "wal detached: checkpoint truncation failed (" + reset.message() +
          "); writes are refused so no acknowledged record can be lost — "
          "reopen from " + path + " to recover");
      return write_->wal_error;
    }
  }
  return Status::OK();
}

Status Database::Save(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(write_->mu);
  return SaveLocked(path);
}

Status Database::ApplyWalRecordLocked(const persist::WalRecord& record) {
  if (record.values.size() != num_dims_) {
    return Status::InvalidArgument(
        "wal record has " + std::to_string(record.values.size()) +
        " values, table has " + std::to_string(num_dims_) +
        " dims (is this the right log for this database?)");
  }
  if (record.type == persist::WalRecordType::kInsert) {
    return write_->delta.Insert(record.values);
  }
  (void)write_->delta.EraseMatching(record.values);
  (void)TombstoneKeyLocked(record.values);
  return Status::OK();
}

Status Database::AttachWal(const std::string& path) {
  const bool sync = options_.durability == Durability::kSync;
  StatusOr<persist::WalContents> contents = persist::ReadWal(path);
  if (!contents.ok() &&
      contents.status().code() != StatusCode::kNotFound) {
    return contents.status();
  }
  if (contents.ok() && contents->epoch > write_->epoch) {
    return Status::FailedPrecondition(
        "wal " + path + " is at checkpoint epoch " +
        std::to_string(contents->epoch) + ", ahead of this database (epoch " +
        std::to_string(write_->epoch) +
        "); open from the latest snapshot instead");
  }
  if (contents.ok() && contents->epoch == write_->epoch) {
    // The log extends the current state: replay the intact records, chop
    // any torn tail (bytes of a commit that never returned), and append
    // after it.
    for (const persist::WalRecord& record : contents->records) {
      FLOOD_RETURN_IF_ERROR(ApplyWalRecordLocked(record));
    }
    if (contents->torn_tail) {
      FLOOD_RETURN_IF_ERROR(persist::TruncateWal(path, contents->valid_bytes));
    }
    StatusOr<persist::WalWriter> writer = persist::WalWriter::Append(
        path, contents->epoch, sync, contents->valid_bytes);
    if (!writer.ok()) return writer.status();
    write_->wal =
        std::make_unique<persist::WalWriter>(std::move(*writer));
  } else {
    // Missing — or stale (lower epoch): those records are already folded
    // into the snapshot this database was opened from. Start fresh.
    StatusOr<persist::WalWriter> writer =
        persist::WalWriter::Create(path, write_->epoch, sync);
    if (!writer.ok()) return writer.status();
    write_->wal =
        std::make_unique<persist::WalWriter>(std::move(*writer));
  }
  options_.wal_path = path;
  return Status::OK();
}

void Database::MaybeAutoCompactLocked() {
  const double fraction = options_.auto_retrain_fraction;
  if (fraction <= 0.0) return;
  const size_t pending = write_->delta.pending();
  const double base = static_cast<double>(index_->data().num_rows());
  if (static_cast<double>(pending) <= fraction * base) return;
  // Backoff: a failed attempt costs O(base rows) under the exclusive
  // lock, so don't re-try on every write — only once the delta has
  // doubled since the failure. The error is kept readable via
  // last_auto_compact_status(); reads stay correct either way.
  if (write_->auto_compact_retry_at != 0 &&
      pending < write_->auto_compact_retry_at) {
    return;
  }
  const Status status = CompactLocked(nullptr);
  write_->last_auto_compact = status;
  write_->auto_compact_retry_at = status.ok() ? 0 : pending * 2;
}

Status Database::Compact() {
  std::unique_lock<std::shared_mutex> lock(write_->mu);
  return CompactLocked(nullptr);
}

Status Database::Retrain(const Workload& workload) {
  std::unique_lock<std::shared_mutex> lock(write_->mu);
  // Adopt the new workload *before* compacting: CompactLocked's checkpoint
  // snapshots options_.training_workload, and persisting the old one next
  // to the freshly retrained layout would silently revert the layout at
  // the first post-restore compaction.
  std::optional<Workload> previous = std::move(options_.training_workload);
  options_.training_workload = workload;
  const uint64_t compactions_before = write_->compactions;
  const Status status = CompactLocked(&workload);
  if (!status.ok() && write_->compactions == compactions_before) {
    // The rebuild itself failed (nothing swapped): restore the previous
    // fallback workload too. If only the checkpoint step failed, the live
    // index IS retrained, so the new workload stays.
    options_.training_workload = std::move(previous);
  }
  return status;
}

// --- Introspection --------------------------------------------------------

std::string Database::index_display_name() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return std::string(index_->name());
}

std::string Database::Describe() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return index_->Describe();
}

std::vector<std::pair<std::string, double>> Database::IndexProperties()
    const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return index_->DebugProperties();
}

size_t Database::IndexSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return index_->IndexSizeBytes();
}

const Table& Database::data() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return index_->data();
}

const MultiDimIndex& Database::index() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return *index_;
}

size_t Database::num_rows() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return index_->data().num_rows() - write_->delta.num_tombstones() +
         write_->delta.size();
}

size_t Database::base_rows() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return index_->data().num_rows();
}

size_t Database::pending_writes() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->delta.pending();
}

size_t Database::delta_inserts() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->delta.size();
}

size_t Database::delta_tombstones() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->delta.num_tombstones();
}

uint64_t Database::compactions() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->compactions;
}

Status Database::last_auto_compact_status() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->last_auto_compact;
}

uint64_t Database::persist_epoch() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->epoch;
}

std::string Database::snapshot_path() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->snapshot_path;
}

bool Database::wal_attached() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->wal != nullptr;
}

uint64_t Database::wal_records_committed() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  return write_->wal != nullptr ? write_->wal->records_committed() : 0;
}

Status Database::persistence_status() const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  // A detached WAL is the more severe condition (writes are refused);
  // report it first.
  if (!write_->wal_error.ok()) return write_->wal_error;
  return write_->last_checkpoint;
}

StatusOr<std::vector<Value>> Database::TryGetRow(RowId row) const {
  std::shared_lock<std::shared_mutex> lock(write_->mu);
  const Table& base = index_->data();
  std::vector<Value> values(num_dims_);
  if (static_cast<size_t>(row) < base.num_rows()) {
    for (size_t dim = 0; dim < num_dims_; ++dim) {
      values[dim] = base.Get(row, dim);
    }
  } else {
    const size_t i = static_cast<size_t>(row) - base.num_rows();
    if (i >= write_->delta.size()) {
      return Status::OutOfRange(
          "row id " + std::to_string(row) + " is past the staged rows (" +
          std::to_string(base.num_rows()) + " base + " +
          std::to_string(write_->delta.size()) +
          " staged); collected ids go stale at the next write/compaction");
    }
    for (size_t dim = 0; dim < num_dims_; ++dim) {
      values[dim] = write_->delta.Get(i, dim);
    }
  }
  return values;
}

std::vector<Value> Database::GetRow(RowId row) const {
  StatusOr<std::vector<Value>> values = TryGetRow(row);
  FLOOD_CHECK(values.ok());
  return std::move(values).value();
}

Workload Database::RecordedWorkload() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return Workload(telemetry_->history);
}

// --- Telemetry ------------------------------------------------------------

QueryStats Database::cumulative_stats() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return telemetry_->stats;
}

uint64_t Database::queries_run() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return telemetry_->queries_run;
}

uint64_t Database::empty_queries_skipped() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return telemetry_->empty_skipped;
}

}  // namespace flood
