#include "api/database.h"

#include <string>
#include <utility>

#include "api/index_registry.h"
#include "common/timer.h"
#include "query/executor.h"
#include "query/visitor.h"

namespace flood {

double BatchResult::LatencyPercentileMs(double p) const {
  std::vector<int64_t> latencies;
  latencies.reserve(results.size());
  for (const QueryResult& r : results) {
    if (!r.skipped_empty) latencies.push_back(r.stats.total_ns);
  }
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  p = std::clamp(p, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(latencies.size())));
  const size_t idx = rank > 0 ? rank - 1 : 0;
  return static_cast<double>(latencies[idx]) / 1e6;
}

StatusOr<Database> Database::Open(const Table& table,
                                  DatabaseOptions options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot open a database on an empty table");
  }
  StatusOr<std::string> canonical =
      IndexRegistry::Global().Resolve(options.index_name);
  if (!canonical.ok()) return canonical.status();

  Database db(std::move(options), *canonical);
  StatusOr<std::unique_ptr<MultiDimIndex>> index = db.BuildIndex(
      table, db.options_.training_workload.has_value()
                 ? &*db.options_.training_workload
                 : nullptr);
  if (!index.ok()) return index.status();
  db.index_ = std::move(*index);
  db.num_threads_ = db.options_.num_threads == 0
                        ? ThreadPool::DefaultConcurrency()
                        : db.options_.num_threads;
  if (db.num_threads_ > 1) {
    db.pool_ = std::make_unique<ThreadPool>(db.num_threads_);
  }
  return db;
}

StatusOr<std::unique_ptr<MultiDimIndex>> Database::BuildIndex(
    const Table& table, const Workload* workload) const {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(index_name_, options_.index_options);
  if (!index.ok()) return index.status();
  BuildContext ctx;
  ctx.workload = workload;
  ctx.sample =
      DataSample::FromTable(table, options_.sample_size, options_.sample_seed);
  FLOOD_RETURN_IF_ERROR((*index)->Build(table, ctx));
  return index;
}

Status Database::ValidateArity(const Query& query) const {
  // Arity mismatches would read past the column array deep in the scan
  // loops; catch them at the API boundary instead.
  if (query.num_dims() != num_dims()) {
    return Status::InvalidArgument(
        "query has " + std::to_string(query.num_dims()) +
        " dims, table has " + std::to_string(num_dims()));
  }
  return Status::OK();
}

QueryResult Database::ExecuteQuery(const Query& query) const {
  QueryResult result;
  result.kind = query.agg().kind == AggSpec::Kind::kSum
                    ? QueryResult::Kind::kSum
                    : QueryResult::Kind::kCount;
  if (query.IsEmpty()) {
    result.skipped_empty = true;
    return result;
  }
  const AggResult agg = ExecuteAggregate(*index_, query, &result.stats);
  result.count = agg.count;
  result.sum = agg.sum;
  return result;
}

void Database::RecordTelemetry(const QueryResult& result) {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  ++telemetry_->queries_run;
  if (result.skipped_empty) {
    ++telemetry_->empty_skipped;
    return;
  }
  telemetry_->stats.RecordQuery(result.stats);
}

StatusOr<QueryResult> Database::TryRun(const Query& query) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(query));
  QueryResult result = ExecuteQuery(query);
  RecordTelemetry(result);
  return result;
}

StatusOr<QueryResult> Database::TryCollect(const Query& query) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(query));
  QueryResult result;
  result.kind = QueryResult::Kind::kRows;
  if (query.IsEmpty()) {
    result.skipped_empty = true;
  } else {
    CollectVisitor visitor;
    index_->Execute(query, visitor, &result.stats);
    result.rows = std::move(visitor.mutable_rows());
    result.count = result.rows.size();
  }
  RecordTelemetry(result);
  return result;
}

QueryResult Database::Run(const Query& query) {
  StatusOr<QueryResult> result = TryRun(query);
  FLOOD_CHECK(result.ok());
  return std::move(result).value();
}

QueryResult Database::Collect(const Query& query) {
  StatusOr<QueryResult> result = TryCollect(query);
  FLOOD_CHECK(result.ok());
  return std::move(result).value();
}

void Database::RunShard(std::span<const Query> queries, size_t begin,
                        size_t end, QueryResult* results,
                        ShardAccum* acc) const {
  for (size_t i = begin; i < end; ++i) {
    results[i] = ExecuteQuery(queries[i]);
    if (results[i].skipped_empty) {
      ++acc->empty_skipped;
    } else {
      acc->stats.RecordQuery(results[i].stats);
    }
  }
}

BatchResult Database::RunBatch(std::span<const Query> queries) {
  BatchResult batch;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Status arity = ValidateArity(queries[i]);
    if (!arity.ok()) {
      batch.status = Status::InvalidArgument(
          "batch query " + std::to_string(i) + ": " + arity.message());
      return batch;
    }
  }

  const Stopwatch wall;
  const size_t n = queries.size();
  batch.results.resize(n);
  const size_t shards =
      pool_ != nullptr ? std::min(pool_->num_threads(), n) : 1;
  std::vector<ShardAccum> accums(std::max<size_t>(1, shards));
  if (shards <= 1) {
    RunShard(queries, 0, n, batch.results.data(), &accums[0]);
  } else {
    // Contiguous shards keep results[i] aligned with queries[i] for free
    // and let each worker stream through its slice of the results array.
    QueryResult* const results = batch.results.data();
    ParallelFor(*pool_, n, shards,
                [this, queries, results, &accums](size_t s, size_t begin,
                                                  size_t end) {
                  RunShard(queries, begin, end, results, &accums[s]);
                });
  }
  // Deterministic merge: always in shard order, whatever order the workers
  // actually finished in.
  for (const ShardAccum& acc : accums) {
    batch.stats.Merge(acc.stats);
    batch.empty_skipped += acc.empty_skipped;
  }
  batch.wall_ms = wall.ElapsedMillis();

  {
    std::lock_guard<std::mutex> lock(telemetry_->mu);
    telemetry_->stats.Merge(batch.stats);
    telemetry_->queries_run += n;
    telemetry_->empty_skipped += batch.empty_skipped;
  }
  return batch;
}

BatchResult Database::RunBatch(const Workload& workload) {
  return RunBatch(std::span<const Query>(workload.queries()));
}

QueryStats Database::cumulative_stats() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return telemetry_->stats;
}

uint64_t Database::queries_run() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return telemetry_->queries_run;
}

uint64_t Database::empty_queries_skipped() const {
  std::lock_guard<std::mutex> lock(telemetry_->mu);
  return telemetry_->empty_skipped;
}

Status Database::Retrain(const Workload& workload) {
  // The index's storage copy is a row permutation of the original table,
  // and every Build re-clusters its input, so it serves as the source.
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      BuildIndex(index_->data(), &workload);
  if (!index.ok()) return index.status();
  index_ = std::move(*index);
  options_.training_workload = workload;
  return Status::OK();
}

}  // namespace flood
