#include "api/database.h"

#include <utility>

#include "api/index_registry.h"
#include "query/executor.h"
#include "query/visitor.h"

namespace flood {

StatusOr<Database> Database::Open(const Table& table,
                                  DatabaseOptions options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot open a database on an empty table");
  }
  StatusOr<std::string> canonical =
      IndexRegistry::Global().Resolve(options.index_name);
  if (!canonical.ok()) return canonical.status();

  Database db(std::move(options), *canonical);
  StatusOr<std::unique_ptr<MultiDimIndex>> index = db.BuildIndex(
      table, db.options_.training_workload.has_value()
                 ? &*db.options_.training_workload
                 : nullptr);
  if (!index.ok()) return index.status();
  db.index_ = std::move(*index);
  return db;
}

StatusOr<std::unique_ptr<MultiDimIndex>> Database::BuildIndex(
    const Table& table, const Workload* workload) const {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(index_name_, options_.index_options);
  if (!index.ok()) return index.status();
  BuildContext ctx;
  ctx.workload = workload;
  ctx.sample =
      DataSample::FromTable(table, options_.sample_size, options_.sample_seed);
  FLOOD_RETURN_IF_ERROR((*index)->Build(table, ctx));
  return index;
}

QueryResult Database::Run(const Query& query) {
  // Arity mismatches would read past the column array deep in the scan
  // loops; fail loudly at the API boundary instead.
  FLOOD_CHECK(query.num_dims() == num_dims());
  QueryResult result;
  result.kind = query.agg().kind == AggSpec::Kind::kSum
                    ? QueryResult::Kind::kSum
                    : QueryResult::Kind::kCount;
  ++queries_run_;
  if (query.IsEmpty()) {
    ++empty_queries_skipped_;
    return result;
  }
  const AggResult agg = ExecuteAggregate(*index_, query, &result.stats);
  result.count = agg.count;
  result.sum = agg.sum;
  cumulative_stats_.Add(result.stats);
  return result;
}

QueryResult Database::Collect(const Query& query) {
  FLOOD_CHECK(query.num_dims() == num_dims());
  QueryResult result;
  result.kind = QueryResult::Kind::kRows;
  ++queries_run_;
  if (query.IsEmpty()) {
    ++empty_queries_skipped_;
    return result;
  }
  CollectVisitor visitor;
  index_->Execute(query, visitor, &result.stats);
  result.rows = std::move(visitor.mutable_rows());
  result.count = result.rows.size();
  cumulative_stats_.Add(result.stats);
  return result;
}

BatchResult Database::RunBatch(std::span<const Query> queries) {
  BatchResult batch;
  batch.results.reserve(queries.size());
  const uint64_t skipped_before = empty_queries_skipped_;
  for (const Query& query : queries) {
    batch.results.push_back(Run(query));
    batch.stats.Add(batch.results.back().stats);
  }
  batch.empty_skipped =
      static_cast<size_t>(empty_queries_skipped_ - skipped_before);
  return batch;
}

BatchResult Database::RunBatch(const Workload& workload) {
  return RunBatch(std::span<const Query>(workload.queries()));
}

Status Database::Retrain(const Workload& workload) {
  // The index's storage copy is a row permutation of the original table,
  // and every Build re-clusters its input, so it serves as the source.
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      BuildIndex(index_->data(), &workload);
  if (!index.ok()) return index.status();
  index_ = std::move(*index);
  options_.training_workload = workload;
  return Status::OK();
}

}  // namespace flood
