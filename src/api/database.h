#ifndef FLOOD_API_DATABASE_H_
#define FLOOD_API_DATABASE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/index_options.h"
#include "common/status.h"
#include "query/multidim_index.h"
#include "query/query.h"
#include "query/query_stats.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Typed result of one query through the Database facade.
struct QueryResult {
  enum class Kind { kCount, kSum, kRows };

  Kind kind = Kind::kCount;
  uint64_t count = 0;          ///< Matching rows (always populated).
  int64_t sum = 0;             ///< Populated when kind == kSum.
  std::vector<RowId> rows;     ///< Populated when kind == kRows (storage
                               ///< order of the index; set semantics).
  QueryStats stats;            ///< Per-query counters and timings.
};

/// Result of a batched execution: per-query results plus the aggregate
/// statistics the benches report (avg latency, scan overhead, ...).
struct BatchResult {
  std::vector<QueryResult> results;
  QueryStats stats;         ///< Accumulated over the batch.
  size_t empty_skipped = 0; ///< Queries short-circuited by Query::IsEmpty.

  double AvgLatencyMs() const {
    if (results.empty()) return 0.0;
    return static_cast<double>(stats.total_ns) /
           static_cast<double>(results.size()) / 1e6;
  }
};

/// How Database::Open builds its index.
struct DatabaseOptions {
  /// Registry key ("flood", "kdtree", "rtree", "grid_file", "zorder",
  /// "octree", "ubtree", "clustered", "full_scan", or an alias).
  std::string index_name = "flood";
  /// Forwarded to the index factory (page sizes, flatten mode, ...).
  IndexOptions index_options;
  /// Training workload: Flood learns its layout from it, baselines use it
  /// for their tuning knobs (sort-dimension selection, dimension ordering
  /// by selectivity), and SUM-aggregated dimensions get prefix-sum side
  /// columns. Without it every index falls back to workload-free defaults.
  std::optional<Workload> training_workload;
  /// Row-sample size used for selectivity estimates at build time.
  size_t sample_size = 20'000;
  uint64_t sample_seed = 7;
};

/// The front door of the library: owns a table and one index over it, and
/// executes queries with the visitor wiring hidden behind typed results.
///
///   auto db = Database::Open(std::move(table),
///                            {.index_name = "flood",
///                             .training_workload = train});
///   if (!db.ok()) { ... }
///   QueryResult r = db->Run(QueryBuilder(3).Range(0, lo, hi).Sum(2).Build());
///
/// Adding an index or enumerating all of them goes through IndexRegistry;
/// nothing above this layer names a concrete index type.
class Database {
 public:
  /// Builds the chosen index over `table`; the index keeps its own
  /// clustered copy, so the caller's table is not retained. Errors:
  /// unknown index name, factory option errors, and index Build failures
  /// (e.g. the Grid File directory budget on skewed data).
  static StatusOr<Database> Open(const Table& table,
                                 DatabaseOptions options = {});

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one aggregation query (COUNT or SUM per `query.agg()`).
  /// Empty-range queries short-circuit to a zero result without touching
  /// the index.
  QueryResult Run(const Query& query);

  /// Executes `query` and returns the matching row ids (kind == kRows).
  /// Row ids refer to the index's storage order, i.e. rows of data().
  QueryResult Collect(const Query& query);

  /// Runs the batch back-to-back and returns per-query results plus
  /// aggregate stats; the seam future PRs widen into parallel execution.
  BatchResult RunBatch(std::span<const Query> queries);
  BatchResult RunBatch(const Workload& workload);

  /// Rebuilds the index with a new training workload (layout drift,
  /// changed aggregation dims), re-clustering from the current storage
  /// copy — no second copy of the table is kept. Keeps the index type and
  /// options; on failure the old index is left in place.
  Status Retrain(const Workload& workload);

  // --- Introspection ------------------------------------------------------

  /// Canonical registry key the database was opened with.
  const std::string& index_name() const { return index_name_; }
  /// The index's self-reported display name (e.g. "RStarTree").
  std::string_view index_display_name() const { return index_->name(); }
  /// One-line physical-layout description (Flood: the learned grid).
  std::string Describe() const { return index_->Describe(); }
  /// Structural counters (leaf counts, cells, ...) from the index.
  std::vector<std::pair<std::string, double>> IndexProperties() const {
    return index_->DebugProperties();
  }
  size_t IndexSizeBytes() const { return index_->IndexSizeBytes(); }

  /// The table in the index's storage order.
  const Table& data() const { return index_->data(); }
  size_t num_rows() const { return index_->data().num_rows(); }
  size_t num_dims() const { return index_->data().num_dims(); }

  /// Escape hatch for advanced callers (kNN engine, custom visitors).
  const MultiDimIndex& index() const { return *index_; }

  // --- Telemetry ----------------------------------------------------------

  /// Counters and timings accumulated over every query since Open.
  const QueryStats& cumulative_stats() const { return cumulative_stats_; }
  uint64_t queries_run() const { return queries_run_; }
  uint64_t empty_queries_skipped() const { return empty_queries_skipped_; }

 private:
  Database(DatabaseOptions options, std::string index_name)
      : options_(std::move(options)), index_name_(std::move(index_name)) {}

  /// Builds an index of the configured type over `table` with `workload`
  /// as the training context.
  StatusOr<std::unique_ptr<MultiDimIndex>> BuildIndex(
      const Table& table, const Workload* workload) const;

  DatabaseOptions options_;
  std::unique_ptr<MultiDimIndex> index_;
  std::string index_name_;

  QueryStats cumulative_stats_;
  uint64_t queries_run_ = 0;
  uint64_t empty_queries_skipped_ = 0;
};

}  // namespace flood

#endif  // FLOOD_API_DATABASE_H_
