#ifndef FLOOD_API_DATABASE_H_
#define FLOOD_API_DATABASE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/index_options.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "query/multidim_index.h"
#include "query/query.h"
#include "query/query_stats.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Typed result of one query through the Database facade.
struct QueryResult {
  enum class Kind { kCount, kSum, kRows };

  Kind kind = Kind::kCount;
  uint64_t count = 0;          ///< Matching rows (always populated).
  int64_t sum = 0;             ///< Populated when kind == kSum.
  std::vector<RowId> rows;     ///< Populated when kind == kRows (storage
                               ///< order of the index; set semantics).
  QueryStats stats;            ///< Per-query counters and timings.
  bool skipped_empty = false;  ///< Short-circuited by Query::IsEmpty —
                               ///< zero result, index never touched.
};

/// Result of a batched execution: per-query results plus the aggregate
/// statistics the benches report (latency distribution, QPS, scan
/// overhead, ...). `results[i]` always corresponds to `queries[i]`,
/// regardless of how many threads executed the batch.
struct BatchResult {
  std::vector<QueryResult> results;
  QueryStats stats;         ///< Merged over executed (non-empty) queries.
  size_t empty_skipped = 0; ///< Queries short-circuited by Query::IsEmpty.
  double wall_ms = 0.0;     ///< End-to-end batch wall time (QPS basis).
  /// Batch-level validation outcome. A query whose arity doesn't match the
  /// table fails the whole batch *before any worker starts*: `status` is
  /// the error and `results` stays empty.
  Status status = Status::OK();

  size_t attempted() const { return results.size(); }
  size_t executed() const { return results.size() - empty_skipped; }

  /// Mean latency per *attempted* query: summed per-query execution time
  /// over every query in the batch, including empty-skipped ones (which
  /// cost ~nothing). With num_threads > 1 the numerator is CPU time
  /// across workers, so this does NOT equal wall_ms / size() — compare
  /// wall-clock throughput via Qps() instead.
  double AvgLatencyMs() const {
    if (results.empty()) return 0.0;
    return static_cast<double>(stats.total_ns) /
           static_cast<double>(results.size()) / 1e6;
  }

  /// Mean latency per *executed* query: same numerator over only the
  /// queries that reached the index. >= AvgLatencyMs whenever the batch
  /// contained empty queries; use this one to compare index performance.
  double AvgExecutedLatencyMs() const {
    if (executed() == 0) return 0.0;
    return static_cast<double>(stats.total_ns) /
           static_cast<double>(executed()) / 1e6;
  }

  /// Nearest-rank latency percentile (p in (0, 100]) over executed
  /// queries' end-to-end times. Empty-skipped queries are excluded.
  double LatencyPercentileMs(double p) const;

  double P50LatencyMs() const { return LatencyPercentileMs(50.0); }
  double P95LatencyMs() const { return LatencyPercentileMs(95.0); }
  double P99LatencyMs() const { return LatencyPercentileMs(99.0); }

  /// Aggregate throughput: attempted queries per second of batch wall time
  /// (so it reflects parallel speedup, unlike the per-query latencies).
  double Qps() const {
    if (wall_ms <= 0.0) return 0.0;
    return static_cast<double>(results.size()) / (wall_ms / 1e3);
  }
};

/// How Database::Open builds its index and executes batches.
struct DatabaseOptions {
  /// Registry key ("flood", "kdtree", "rtree", "grid_file", "zorder",
  /// "octree", "ubtree", "clustered", "full_scan", or an alias).
  std::string index_name = "flood";
  /// Forwarded to the index factory (page sizes, flatten mode, ...).
  IndexOptions index_options;
  /// Training workload: Flood learns its layout from it, baselines use it
  /// for their tuning knobs (sort-dimension selection, dimension ordering
  /// by selectivity), and SUM-aggregated dimensions get prefix-sum side
  /// columns. Without it every index falls back to workload-free defaults.
  std::optional<Workload> training_workload;
  /// Row-sample size used for selectivity estimates at build time.
  size_t sample_size = 20'000;
  uint64_t sample_seed = 7;
  /// Worker threads for RunBatch: 1 (default) executes serially on the
  /// calling thread — bit-for-bit the pre-threading path; 0 sizes the pool
  /// to hardware_concurrency; N > 1 uses a fixed pool of N workers.
  /// Results and merged stats are identical at every setting (only the
  /// timing fields vary run to run).
  size_t num_threads = 1;
};

/// The front door of the library: owns a table and one index over it, and
/// executes queries with the visitor wiring hidden behind typed results.
///
///   auto db = Database::Open(std::move(table),
///                            {.index_name = "flood",
///                             .training_workload = train});
///   if (!db.ok()) { ... }
///   QueryResult r = db->Run(QueryBuilder(3).Range(0, lo, hi).Sum(2).Build());
///
/// Adding an index or enumerating all of them goes through IndexRegistry;
/// nothing above this layer names a concrete index type.
///
/// Thread safety: a Database may serve reads from many threads — the index
/// is immutable after Open and MultiDimIndex::Execute is const and
/// re-entrant — and RunBatch itself fans a batch out over the configured
/// pool. Telemetry folds are mutex-guarded (once per Run / once per batch,
/// never per worker-query). Retrain is NOT safe concurrently with queries.
class Database {
 public:
  /// Builds the chosen index over `table`; the index keeps its own
  /// clustered copy, so the caller's table is not retained. Errors:
  /// unknown index name, factory option errors, and index Build failures
  /// (e.g. the Grid File directory budget on skewed data).
  static StatusOr<Database> Open(const Table& table,
                                 DatabaseOptions options = {});

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one aggregation query (COUNT or SUM per `query.agg()`).
  /// Empty-range queries short-circuit to a zero result without touching
  /// the index. Returns InvalidArgument when the query's dimensionality
  /// doesn't match the table.
  StatusOr<QueryResult> TryRun(const Query& query);

  /// Executes `query` and returns the matching row ids (kind == kRows).
  /// Row ids refer to the index's storage order, i.e. rows of data().
  /// Returns InvalidArgument on a dimensionality mismatch.
  StatusOr<QueryResult> TryCollect(const Query& query);

  /// Convenience wrappers for callers that construct queries with the
  /// table's arity by design: as TryRun/TryCollect but a dimensionality
  /// mismatch aborts via FLOOD_CHECK instead of returning an error.
  QueryResult Run(const Query& query);
  QueryResult Collect(const Query& query);

  /// Runs the batch and returns per-query results plus aggregate stats;
  /// with num_threads != 1 the span is sharded contiguously across the
  /// pool and per-worker stats are folded in shard order at batch end.
  /// `results[i]` always matches `queries[i]`. Arity mismatches fail the
  /// whole batch (BatchResult::status) before any worker starts.
  BatchResult RunBatch(std::span<const Query> queries);
  BatchResult RunBatch(const Workload& workload);

  /// Rebuilds the index with a new training workload (layout drift,
  /// changed aggregation dims), re-clustering from the current storage
  /// copy — no second copy of the table is kept. Keeps the index type and
  /// options; on failure the old index is left in place. Not safe
  /// concurrently with in-flight queries.
  Status Retrain(const Workload& workload);

  // --- Introspection ------------------------------------------------------

  /// Canonical registry key the database was opened with.
  const std::string& index_name() const { return index_name_; }
  /// The index's self-reported display name (e.g. "RStarTree").
  std::string_view index_display_name() const { return index_->name(); }
  /// One-line physical-layout description (Flood: the learned grid).
  std::string Describe() const { return index_->Describe(); }
  /// Structural counters (leaf counts, cells, ...) from the index.
  std::vector<std::pair<std::string, double>> IndexProperties() const {
    return index_->DebugProperties();
  }
  size_t IndexSizeBytes() const { return index_->IndexSizeBytes(); }

  /// Resolved RunBatch parallelism (DatabaseOptions::num_threads with
  /// 0 already expanded to the hardware thread count).
  size_t num_threads() const { return num_threads_; }

  /// The table in the index's storage order.
  const Table& data() const { return index_->data(); }
  size_t num_rows() const { return index_->data().num_rows(); }
  size_t num_dims() const { return index_->data().num_dims(); }

  /// Escape hatch for advanced callers (kNN engine, custom visitors).
  const MultiDimIndex& index() const { return *index_; }

  // --- Telemetry ----------------------------------------------------------

  /// Counters and timings accumulated over every executed query since
  /// Open. Returned by value: the accumulator is folded under a mutex, so
  /// a snapshot is the only race-free view while batches are in flight.
  QueryStats cumulative_stats() const;
  uint64_t queries_run() const;
  uint64_t empty_queries_skipped() const;

 private:
  /// Mutex-guarded telemetry accumulators, heap-held so Database stays
  /// movable. Folded once per Run/Collect and once per RunBatch — never
  /// per query inside a worker.
  struct Telemetry {
    mutable std::mutex mu;
    QueryStats stats;
    uint64_t queries_run = 0;
    uint64_t empty_skipped = 0;
  };

  /// Per-worker batch accumulator; folded into the BatchResult and the
  /// telemetry in shard order after the last worker finishes. Cache-line
  /// aligned so neighboring workers' per-query counter writes don't
  /// false-share.
  struct alignas(64) ShardAccum {
    QueryStats stats;
    uint64_t empty_skipped = 0;
  };

  Database(DatabaseOptions options, std::string index_name)
      : options_(std::move(options)),
        index_name_(std::move(index_name)),
        telemetry_(new Telemetry()) {}

  /// Builds an index of the configured type over `table` with `workload`
  /// as the training context.
  StatusOr<std::unique_ptr<MultiDimIndex>> BuildIndex(
      const Table& table, const Workload* workload) const;

  Status ValidateArity(const Query& query) const;

  /// Executes one aggregation query with no telemetry side effects;
  /// const and re-entrant (the unit of work RunBatch parallelizes).
  QueryResult ExecuteQuery(const Query& query) const;

  /// Runs queries[begin, end) into results[begin, end), accumulating into
  /// `acc`. Each worker owns one disjoint shard and one accumulator, so
  /// the hot path is synchronization-free.
  void RunShard(std::span<const Query> queries, size_t begin, size_t end,
                QueryResult* results, ShardAccum* acc) const;

  void RecordTelemetry(const QueryResult& result);

  DatabaseOptions options_;
  std::unique_ptr<MultiDimIndex> index_;
  std::string index_name_;

  size_t num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< Null when num_threads_ == 1.
  std::unique_ptr<Telemetry> telemetry_;
};

}  // namespace flood

#endif  // FLOOD_API_DATABASE_H_
