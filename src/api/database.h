#ifndef FLOOD_API_DATABASE_H_
#define FLOOD_API_DATABASE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/index_options.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/delta_buffer.h"
#include "persist/wal.h"
#include "query/multidim_index.h"
#include "query/query.h"
#include "query/query_stats.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Typed result of one query through the Database facade.
struct QueryResult {
  enum class Kind { kCount, kSum, kRows };

  Kind kind = Kind::kCount;
  uint64_t count = 0;          ///< Matching rows (always populated).
  int64_t sum = 0;             ///< Populated when kind == kSum.
  std::vector<RowId> rows;     ///< Populated when kind == kRows (storage
                               ///< order of the index; set semantics).
  QueryStats stats;            ///< Per-query counters and timings.
  bool skipped_empty = false;  ///< Short-circuited by Query::IsEmpty —
                               ///< zero result, index never touched.
};

/// Result of a batched execution: per-query results plus the aggregate
/// statistics the benches report (latency distribution, QPS, scan
/// overhead, ...). `results[i]` always corresponds to `queries[i]`,
/// regardless of how many threads executed the batch.
struct BatchResult {
  std::vector<QueryResult> results;
  QueryStats stats;         ///< Merged over executed (non-empty) queries.
  size_t empty_skipped = 0; ///< Queries short-circuited by Query::IsEmpty.
  double wall_ms = 0.0;     ///< End-to-end batch wall time (QPS basis).
  /// Batch-level validation outcome. A query whose arity doesn't match the
  /// table fails the whole batch *before any worker starts*: `status` is
  /// the error and `results` stays empty.
  Status status = Status::OK();

  size_t attempted() const { return results.size(); }
  size_t executed() const { return results.size() - empty_skipped; }

  /// Mean latency per *attempted* query: summed per-query execution time
  /// over every query in the batch, including empty-skipped ones (which
  /// cost ~nothing). With num_threads > 1 the numerator is CPU time
  /// across workers, so this does NOT equal wall_ms / size() — compare
  /// wall-clock throughput via Qps() instead.
  double AvgLatencyMs() const {
    if (results.empty()) return 0.0;
    return static_cast<double>(stats.total_ns) /
           static_cast<double>(results.size()) / 1e6;
  }

  /// Mean latency per *executed* query: same numerator over only the
  /// queries that reached the index. >= AvgLatencyMs whenever the batch
  /// contained empty queries; use this one to compare index performance.
  double AvgExecutedLatencyMs() const {
    if (executed() == 0) return 0.0;
    return static_cast<double>(stats.total_ns) /
           static_cast<double>(executed()) / 1e6;
  }

  /// Nearest-rank latency percentile (p in (0, 100]) over executed
  /// queries' end-to-end times; empty-skipped queries are excluded.
  /// Computed through obs::HistogramData (the process-wide histogram
  /// type), so the readout is the upper bound of the log-linear bucket
  /// holding the rank — within 25% of the exact-sort value by
  /// construction, and p >= 100 is the exact maximum. Every percentile
  /// reader in the repo (this, the serving metrics, bench_serving) now
  /// shares that one implementation.
  double LatencyPercentileMs(double p) const;

  double P50LatencyMs() const { return LatencyPercentileMs(50.0); }
  double P95LatencyMs() const { return LatencyPercentileMs(95.0); }
  double P99LatencyMs() const { return LatencyPercentileMs(99.0); }

  /// Aggregate throughput: attempted queries per second of batch wall time
  /// (so it reflects parallel speedup, unlike the per-query latencies).
  double Qps() const {
    if (wall_ms <= 0.0) return 0.0;
    return static_cast<double>(results.size()) / (wall_ms / 1e3);
  }
};

/// How durable an acknowledged write is when a WAL is configured
/// (DatabaseOptions::wal_path).
enum class Durability {
  /// One write() per commit, no fsync: acknowledged writes survive
  /// process death (crash, SIGKILL) but not OS/power failure.
  kAsync,
  /// write() + fsync() per commit: acknowledged writes also survive
  /// OS/power failure. Group commit keeps this to one fsync per
  /// Insert/InsertBatch/Delete call, not per record.
  kSync,
};

/// How Database::Open builds its index and executes batches.
struct DatabaseOptions {
  /// Registry key ("flood", "kdtree", "rtree", "grid_file", "zorder",
  /// "octree", "ubtree", "clustered", "full_scan", or an alias).
  std::string index_name = "flood";
  /// Forwarded to the index factory (page sizes, flatten mode, ...).
  IndexOptions index_options;
  /// Training workload: Flood learns its layout from it, baselines use it
  /// for their tuning knobs (sort-dimension selection, dimension ordering
  /// by selectivity), and SUM-aggregated dimensions get prefix-sum side
  /// columns. Without it every index falls back to workload-free defaults.
  std::optional<Workload> training_workload;
  /// Row-sample size used for selectivity estimates at build time.
  size_t sample_size = 20'000;
  uint64_t sample_seed = 7;
  /// Worker threads for RunBatch: 1 (default) executes serially on the
  /// calling thread — bit-for-bit the pre-threading path; 0 sizes the pool
  /// to hardware_concurrency; N > 1 uses a fixed pool of N workers.
  /// Results and merged stats are identical at every setting (only the
  /// timing fields vary run to run).
  size_t num_threads = 1;
  /// Online-write compaction policy (§8): when > 0, a write that leaves
  /// more than `auto_retrain_fraction * base rows` staged writes (buffered
  /// inserts + tombstones) triggers an automatic compaction — the delta is
  /// drained into a fresh table, the layout is relearned from the recorded
  /// workload (falling back to training_workload), and the rebuilt index
  /// is swapped in. 0 disables; writes then stage until Compact()/Retrain()
  /// is called explicitly. The triggering write holds the exclusive side
  /// of the delta seam for the rebuild, so queries issued meanwhile wait.
  double auto_retrain_fraction = 0.0;
  /// Capacity of the recorded-query ring that auto/explicit compaction
  /// retrains on (most recent executed queries win). 0 disables recording,
  /// so compaction falls back to the Open-time training workload.
  size_t workload_history = 256;
  /// Write-ahead log for durable writes ("" = none). Every
  /// Insert/InsertBatch/Delete appends its records here *before* mutating
  /// the delta buffer; on reopen (same table, or the pairing snapshot) the
  /// intact tail is replayed, so no acknowledged write is lost. An
  /// existing file at this path is validated against the database's
  /// checkpoint epoch — see src/persist/README.md for the recovery rules.
  std::string wal_path;
  /// Crash-durability level of WAL commits (meaningless without wal_path).
  Durability durability = Durability::kAsync;
  /// Slow-query tracing: a query whose end-to-end time exceeds this many
  /// nanoseconds emits one structured log line with its stage breakdown
  /// (plan/scan/delta/refine ns) and zone-map/SIMD counters, and bumps
  /// the flood_db_slow_queries_total metric. 0 (default) disables.
  int64_t slow_query_ns = 0;
  /// Where slow-query lines go; null logs to stderr. Must be callable
  /// from pool workers (it runs on whichever thread executed the query)
  /// and must not call back into this database.
  std::function<void(const std::string&)> slow_query_log;
};

/// The front door of the library: owns a table and one index over it, and
/// executes queries with the visitor wiring hidden behind typed results.
///
///   auto db = Database::Open(std::move(table),
///                            {.index_name = "flood",
///                             .training_workload = train});
///   if (!db.ok()) { ... }
///   QueryResult r = db->Run(QueryBuilder(3).Range(0, lo, hi).Sum(2).Build());
///
/// Adding an index or enumerating all of them goes through IndexRegistry;
/// nothing above this layer names a concrete index type.
///
/// Online writes (§8): Insert/InsertBatch stage rows in a DeltaBuffer in
/// front of the immutable built index; Delete records tombstones against
/// base rows (and erases matching staged inserts). Every query merges the
/// staged writes with the base index's result — staged rows are filtered
/// through the same predicate, tombstoned base matches are subtracted —
/// so reads are never stale. Compact()/Retrain() (or the automatic
/// auto_retrain_fraction policy) drain the delta into a fresh table,
/// relearn the layout, and atomically swap the rebuilt index.
///
/// Thread safety: reads and writes are separated by a reader-writer seam
/// on the delta. Queries (Run/Collect/RunBatch workers) take a shared
/// lock for the duration of one query; Insert/Delete/Compact/Retrain take
/// the exclusive lock. The built index itself stays immutable between
/// compactions — MultiDimIndex::Execute remains const and re-entrant, so
/// concurrent readers share it with no further synchronization — and a
/// compaction holds the exclusive lock while it rebuilds, so in-flight
/// queries always see a consistent (index, delta) pair. Telemetry folds
/// are mutex-guarded (once per Run / once per batch, never per
/// worker-query).
class Database {
 public:
  /// Builds the chosen index over `table`; the index keeps its own
  /// clustered copy, so the caller's table is not retained. Errors:
  /// unknown index name, factory option errors, and index Build failures
  /// (e.g. the Grid File directory budget on skewed data).
  static StatusOr<Database> Open(const Table& table,
                                 DatabaseOptions options = {});

  /// Opens a database from a snapshot written by Save(): restores the
  /// base table (bit-exact column pages, index storage order), rebuilds
  /// the index with the snapshot's *pinned layout* — skipping the layout
  /// optimizer, the expensive part of a cold Open — restores the staged
  /// delta, and (with options.wal_path) replays the WAL tail.
  ///
  /// Structural knobs come from the snapshot: index_name, index_options
  /// (caller-set keys override individually), the layout, sample
  /// size/seed, and the training workload (unless the caller passes one).
  /// Runtime knobs come from `options`: num_threads, wal_path, durability,
  /// auto_retrain_fraction, workload_history.
  ///
  /// `path` becomes this database's checkpoint target: Compact()/Retrain()
  /// (and auto-compaction) re-snapshot it and truncate the WAL.
  static StatusOr<Database> Open(const std::string& snapshot_path,
                                 DatabaseOptions options = {});

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one aggregation query (COUNT or SUM per `query.agg()`) over
  /// the base index plus the staged writes. Empty-range queries
  /// short-circuit to a zero result without touching the index. Returns
  /// InvalidArgument when the query's dimensionality doesn't match the
  /// table.
  StatusOr<QueryResult> TryRun(const Query& query);

  /// Executes `query` and returns the matching row ids (kind == kRows).
  /// Ids below base_rows() refer to the index's storage order (rows of
  /// data()); ids >= base_rows() address staged inserts — resolve either
  /// kind with GetRow(). Tombstoned base rows are suppressed. The ids are
  /// a snapshot: the next Delete or compaction (explicit or automatic)
  /// re-numbers staged rows, and a compaction re-clusters base rows too —
  /// resolve ids before the next write, or after an explicit Compact().
  /// Returns InvalidArgument on a dimensionality mismatch.
  StatusOr<QueryResult> TryCollect(const Query& query);

  /// Convenience wrappers for callers that construct queries with the
  /// table's arity by design: as TryRun/TryCollect but a dimensionality
  /// mismatch aborts via FLOOD_CHECK instead of returning an error.
  QueryResult Run(const Query& query);
  QueryResult Collect(const Query& query);

  /// Runs the batch and returns per-query results plus aggregate stats;
  /// with num_threads != 1 the span is sharded contiguously across the
  /// pool and per-worker stats are folded in shard order at batch end.
  /// `results[i]` always matches `queries[i]`. Arity mismatches fail the
  /// whole batch (BatchResult::status) before any worker starts.
  BatchResult RunBatch(std::span<const Query> queries);
  BatchResult RunBatch(const Workload& workload);

  /// Submits the batch for execution on the pool and returns immediately;
  /// the future is fulfilled (by the last worker to finish) with exactly
  /// the BatchResult a synchronous RunBatch of the same span would have
  /// produced — same sharding, same deterministic shard-order stats merge,
  /// same telemetry fold. The queries are copied, so the caller's span may
  /// die as soon as this returns.
  ///
  /// Concurrency: async batches interleave freely with each other and with
  /// Run/Collect/Insert/Delete/Compact — each shard takes the shared side
  /// of the delta seam like any query, so a batch submitted before a
  /// compaction may observe the index either side of the swap, but never a
  /// torn state. With num_threads == 1 (no pool) the batch executes
  /// synchronously on the calling thread and the returned future is
  /// already ready.
  ///
  /// Lifetime: the Database must not be destroyed or moved while async
  /// batches are in flight (the pool drains at destruction, but the shards
  /// dereference this object — wait on or drop your futures first; see
  /// also the serving tier's drain in src/serve/server.h).
  std::future<BatchResult> RunBatchAsync(std::span<const Query> queries);

  /// Event-loop flavor: as RunBatchAsync, but `on_done` fires exactly once
  /// with the finished result, on whichever pool worker completed the
  /// batch last (or on the calling thread when there is no pool, before
  /// this returns). The callback must not call back into batch submission
  /// of this database from a pool worker and must not block — hand the
  /// result off (e.g. write an eventfd) and return. This is the primitive
  /// the epoll server in src/serve uses to get completion wakeups without
  /// a future-polling thread.
  void RunBatchAsync(std::span<const Query> queries,
                     std::function<void(BatchResult)> on_done);

  // --- Persistence --------------------------------------------------------

  /// Writes a snapshot of the full logical state (base table in storage
  /// order, learned layout + build knobs, staged delta) to `path`,
  /// atomically — a crash mid-save leaves any previous snapshot intact.
  /// On success `path` becomes the checkpoint target for future
  /// compactions and, when a WAL is attached, the WAL is truncated (its
  /// records are folded into the snapshot). Open(path) restores without
  /// re-running the optimizer. Blocks writers and readers for the
  /// duration (exclusive side of the delta seam).
  Status Save(const std::string& path);

  /// Checkpoint epoch pairing this database with its snapshot/WAL files
  /// (bumped by every successful Save / checkpointing compaction).
  uint64_t persist_epoch() const;
  /// The checkpoint target ("" until Save() or Open(path)).
  std::string snapshot_path() const;
  /// True when a WAL is attached and acknowledging writes.
  bool wal_attached() const;
  /// Records appended + committed through this database's WAL (excludes
  /// records replayed at open).
  uint64_t wal_records_committed() const;

  /// Health of the durability machinery: OK when the last checkpoint
  /// succeeded (or none ran) and the WAL (if any) is acknowledging writes.
  /// Non-OK ("poisoned") after a failed checkpoint or a WAL detach —
  /// reads keep serving either way; see persistence_poisoned() for the
  /// boolean the serving tier reports in kHealth responses.
  Status persistence_status() const;
  bool persistence_poisoned() const { return !persistence_status().ok(); }

  // --- Writes -------------------------------------------------------------

  /// Stages one row (`row` must have num_dims() values) in the delta
  /// buffer; visible to every subsequent query. With a WAL attached, the
  /// row is appended and committed to the log *before* the delta mutates;
  /// a WAL failure returns the error and stages nothing. May trigger an
  /// automatic compaction (see DatabaseOptions::auto_retrain_fraction); a
  /// failed auto-compaction keeps the staged writes (reads stay correct)
  /// and is retried at the next threshold crossing.
  Status Insert(const std::vector<Value>& row);

  /// Stages many rows under one exclusive-lock acquisition; the
  /// auto-retrain policy is evaluated once at the end of the batch, and a
  /// WAL commits the whole batch as one group (one write/fsync).
  Status InsertBatch(std::span<const std::vector<Value>> rows);

  /// Deletes every row equal to `key` (full-tuple equality): staged
  /// inserts are erased, and matching base rows are tombstoned so queries
  /// suppress them until the next compaction removes them physically.
  /// Returns the number of logical rows deleted.
  StatusOr<size_t> Delete(const std::vector<Value>& key);

  /// Drains the staged writes into a fresh table, relearns the layout
  /// from the recorded workload (falling back to the Open-time training
  /// workload), rebuilds the index, and swaps it in. No-op writes-wise
  /// when nothing is staged (still relearns). On failure the old index
  /// AND the staged writes are left in place — no write is ever lost.
  ///
  /// With a snapshot path configured (Save() succeeded or Open(path)),
  /// a successful compaction is also the WAL truncation point: the fresh
  /// state is re-snapshotted and the log reset. A *failed* snapshot
  /// surfaces its error but loses nothing — the previous snapshot + the
  /// untruncated WAL still reproduce the exact logical state.
  Status Compact();

  /// Compaction with an explicit new training workload (layout drift,
  /// changed aggregation dims): drains the delta like Compact() but
  /// relearns from `workload`, which also becomes the fallback workload
  /// for future compactions. On failure the old index and staged writes
  /// are left in place.
  Status Retrain(const Workload& workload);

  // --- Introspection ------------------------------------------------------

  /// Canonical registry key the database was opened with.
  const std::string& index_name() const { return index_name_; }
  /// The index's self-reported display name (e.g. "RStarTree"). A copy:
  /// a view could outlive the index it points into once a compaction
  /// swaps it (current implementations return literals, future ones may
  /// not).
  std::string index_display_name() const;
  /// One-line physical-layout description (Flood: the learned grid).
  std::string Describe() const;
  /// Structural counters (leaf counts, cells, ...) from the index.
  std::vector<std::pair<std::string, double>> IndexProperties() const;
  size_t IndexSizeBytes() const;

  /// Resolved RunBatch parallelism (DatabaseOptions::num_threads with
  /// 0 already expanded to the hardware thread count).
  size_t num_threads() const { return num_threads_; }

  /// The base table in the index's storage order. Excludes staged writes.
  /// The returned reference lives inside the current index, so it is
  /// invalidated by any compaction (explicit or auto-retrain) — do not
  /// call or hold it concurrently with writes that may compact; the
  /// shared lock inside only makes the pointer read itself safe.
  const Table& data() const;

  /// Logical row count: base rows − tombstones + staged inserts.
  size_t num_rows() const;
  /// Rows in the built index's storage copy (excludes staged writes).
  size_t base_rows() const;
  size_t num_dims() const { return num_dims_; }

  /// Staged-write introspection (all consistent snapshots).
  size_t pending_writes() const;    ///< Staged inserts + tombstones.
  size_t delta_inserts() const;     ///< Staged inserted rows.
  size_t delta_tombstones() const;  ///< Tombstoned base rows.
  uint64_t compactions() const;     ///< Completed compactions/retrains.
  /// Outcome of the most recent *automatic* compaction attempt (writes
  /// swallow the error to stay correct — staged writes are kept and
  /// retried with backoff); OK when none has run or the last succeeded.
  Status last_auto_compact_status() const;

  /// One full row by the id space TryCollect reports: ids < base_rows()
  /// read the base storage copy, larger ids read the staged inserts.
  /// Ids come from the same snapshot regime as TryCollect — a Delete or
  /// compaction re-numbers them, after which a stale staged id resolves
  /// to a different row or, past the staged count, to OutOfRange. GetRow
  /// is the FLOOD_CHECK-on-error convenience, like Run vs TryRun.
  StatusOr<std::vector<Value>> TryGetRow(RowId row) const;
  std::vector<Value> GetRow(RowId row) const;

  /// Snapshot of the recorded-query ring compaction retrains on (most
  /// recent executed queries, up to DatabaseOptions::workload_history).
  Workload RecordedWorkload() const;

  /// Escape hatch for advanced callers (kNN engine, custom visitors).
  /// Base index only: results ignore staged writes. Same lifetime caveat
  /// as data(): a compaction destroys the object behind the reference,
  /// so don't call or hold it concurrently with writes that may compact.
  const MultiDimIndex& index() const;

  // --- Telemetry ----------------------------------------------------------

  /// Counters and timings accumulated over every executed query since
  /// Open. Returned by value: the accumulator is folded under a mutex, so
  /// a snapshot is the only race-free view while batches are in flight.
  QueryStats cumulative_stats() const;
  uint64_t queries_run() const;
  uint64_t empty_queries_skipped() const;

 private:
  /// Mutex-guarded telemetry accumulators, heap-held so Database stays
  /// movable. Folded once per Run/Collect and once per RunBatch — never
  /// per query inside a worker. Also holds the recorded-query ring that
  /// compaction retrains on.
  struct Telemetry {
    mutable std::mutex mu;
    QueryStats stats;
    uint64_t queries_run = 0;
    uint64_t empty_skipped = 0;
    std::vector<Query> history;  ///< Ring of recent executed queries.
    size_t history_next = 0;     ///< Ring write cursor.
  };

  /// The write side of the reader-writer seam, heap-held so Database
  /// stays movable. `mu` shared-locks every query for its full duration
  /// and exclusive-locks every write, so the (index_, delta) pair only
  /// changes while no query is in flight.
  struct WriteState {
    explicit WriteState(size_t num_dims) : delta(num_dims) {}
    mutable std::shared_mutex mu;
    DeltaBuffer delta;
    /// Durability state (see src/persist/README.md): the WAL acknowledging
    /// writes (null = none), the checkpoint snapshot target ("" until a
    /// Save/Open(path)), and the epoch pairing snapshot and WAL files.
    std::unique_ptr<persist::WalWriter> wal;
    std::string snapshot_path;
    uint64_t epoch = 0;
    /// Non-OK after a checkpoint failed to truncate the WAL: the log on
    /// disk no longer pairs with the snapshot epoch, so writes are
    /// refused (instead of acknowledging records recovery would discard)
    /// until the database is reopened from the fresh snapshot.
    Status wal_error = Status::OK();
    /// Outcome of the most recent checkpoint attempt (SaveLocked). Non-OK
    /// poisons persistence-health reporting: reads keep serving and — when
    /// the WAL is still attached — writes stay durable, but the snapshot
    /// on disk is stale (e.g. ENOSPC mid-checkpoint), so restores pay a
    /// longer WAL replay. Cleared by the next successful checkpoint.
    Status last_checkpoint = Status::OK();
    uint64_t compactions = 0;
    /// Outcome of the most recent automatic compaction attempt; OK when
    /// none has run yet.
    Status last_auto_compact = Status::OK();
    /// Backoff after a failed auto-compaction: don't retry (each attempt
    /// is O(base rows) under the exclusive lock) until the delta has
    /// grown to this many staged writes. 0 = no backoff pending.
    size_t auto_compact_retry_at = 0;
  };

  /// Per-worker batch accumulator; folded into the BatchResult and the
  /// telemetry in shard order after the last worker finishes. Cache-line
  /// aligned so neighboring workers' per-query counter writes don't
  /// false-share.
  struct alignas(64) ShardAccum {
    QueryStats stats;
    uint64_t empty_skipped = 0;
  };

  Database(DatabaseOptions options, std::string index_name)
      : options_(std::move(options)),
        index_name_(std::move(index_name)),
        telemetry_(new Telemetry()) {}

  /// Builds an index of the configured type over `table` with `workload`
  /// as the training context.
  StatusOr<std::unique_ptr<MultiDimIndex>> BuildIndex(
      const Table& table, const Workload* workload) const;

  Status ValidateArity(const Query& query) const;

  /// Batch-level arity validation: the error names the first offending
  /// query, and the whole batch is rejected before any worker starts.
  Status ValidateBatch(std::span<const Query> queries) const;

  /// Executes one aggregation query with no telemetry side effects;
  /// const and re-entrant (the unit of work RunBatch parallelizes).
  /// Takes the shared side of the delta seam for its full duration.
  QueryResult ExecuteQuery(const Query& query) const;

  /// As ExecuteQuery, but the caller already holds the delta seam
  /// (either side) — the loop body of RunShard.
  QueryResult ExecuteQueryLocked(const Query& query) const;

  /// Folds the staged writes into an aggregate result: staged inserts
  /// matching the predicate are added, tombstoned base matches are
  /// subtracted. Caller holds the delta lock (either side).
  void MergeDeltaAggregate(const Query& query, QueryResult* result) const;

  /// Compaction core; caller holds the exclusive lock. `workload` nullptr
  /// means "recorded history, then Open-time training workload".
  Status CompactLocked(const Workload* workload);

  /// Snapshot + WAL-truncate checkpoint; caller holds the exclusive lock.
  Status SaveLocked(const std::string& path);

  /// Opens/validates/replays options_.wal_path against the current epoch
  /// and attaches the writer; exclusive access assumed (called from Open).
  Status AttachWal(const std::string& path);

  /// Applies one replayed WAL record to the delta; exclusive access
  /// assumed.
  Status ApplyWalRecordLocked(const persist::WalRecord& record);

  /// Tombstones every base row equal to `key` (exact-match probe through
  /// the immutable index); returns how many were newly tombstoned. Caller
  /// holds the exclusive lock.
  size_t TombstoneKeyLocked(const std::vector<Value>& key);

  /// Runs the auto_retrain_fraction policy after a write; caller holds
  /// the exclusive lock.
  void MaybeAutoCompactLocked();

  /// Runs queries[begin, end) into results[begin, end), accumulating into
  /// `acc`. Each worker owns one disjoint shard and one accumulator, and
  /// takes the shared side of the delta seam once for the whole shard, so
  /// the per-query hot path is synchronization-free (writers wait for the
  /// slowest in-flight shard).
  void RunShard(std::span<const Query> queries, size_t begin, size_t end,
                QueryResult* results, ShardAccum* acc) const;

  void RecordTelemetry(const Query& query, const QueryResult& result);

  /// Lock-free per-query observability fold: process-wide histograms and
  /// counters (src/obs/) plus the slow-query trace. Called once per
  /// executed query, on the thread that ran it — from RunShard's loop for
  /// batches, from RecordTelemetry for single Run/Collect.
  void NoteQueryMetrics(const QueryResult& result) const;

  /// Folds a finished batch into the cumulative telemetry + history ring;
  /// called once per batch, from RunBatch or the last async shard.
  void FoldBatchTelemetry(std::span<const Query> queries,
                          const BatchResult& batch);

  /// Appends one executed query to the history ring; caller holds the
  /// telemetry mutex.
  void RecordQueryLocked(const Query& query);

  DatabaseOptions options_;
  std::unique_ptr<MultiDimIndex> index_;
  std::string index_name_;

  size_t num_dims_ = 0;
  size_t num_threads_ = 1;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<WriteState> write_;
  /// Null when num_threads_ == 1. Declared last on purpose: ~ThreadPool
  /// drains every queued task, and RunBatchAsync shards dereference the
  /// members above — destroying the pool first keeps them alive until the
  /// last in-flight shard has run.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace flood

#endif  // FLOOD_API_DATABASE_H_
