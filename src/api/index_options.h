#ifndef FLOOD_API_INDEX_OPTIONS_H_
#define FLOOD_API_INDEX_OPTIONS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flood {

/// A generic string-keyed options map for index construction through the
/// IndexRegistry. Factories read the keys they understand and ignore the
/// rest, so one options bag can be handed to any index (e.g. a bench tuning
/// "page_size" across every page-structured baseline).
///
/// Well-known keys (consumed by the built-in factories):
///   page_size, leaf_capacity, fanout, max_depth, max_directory_entries,
///   sort_dim, rmi_leaves,
///   target_cells, layout, flatten_mode ("cdf"|"linear"), use_cell_models,
///   plm_delta, plm_min_cell_size, max_cells, seed, learn_layout,
///   enable_run_merging, enable_exact_ranges.
class IndexOptions {
 public:
  IndexOptions() = default;

  IndexOptions& Set(const std::string& key, std::string value) {
    kv_[key] = std::move(value);
    return *this;
  }
  IndexOptions& SetInt(const std::string& key, int64_t v) {
    return Set(key, std::to_string(v));
  }
  IndexOptions& SetDouble(const std::string& key, double v) {
    return Set(key, std::to_string(v));
  }
  IndexOptions& SetBool(const std::string& key, bool v) {
    return Set(key, v ? "true" : "false");
  }

  bool Has(const std::string& key) const { return kv_.count(key) > 0; }

  std::optional<std::string> Get(const std::string& key) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = kv_.find(key);
    if (it == kv_.end() || it->second.empty()) return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    return (end == nullptr || *end != '\0') ? fallback
                                            : static_cast<int64_t>(v);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = kv_.find(key);
    if (it == kv_.end() || it->second.empty()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    return (end == nullptr || *end != '\0') ? fallback : v;
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const std::string& s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
    if (s == "false" || s == "0" || s == "no" || s == "off") return false;
    return fallback;
  }

  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    keys.reserve(kv_.size());
    for (const auto& [k, v] : kv_) keys.push_back(k);
    return keys;
  }

  bool empty() const { return kv_.empty(); }
  size_t size() const { return kv_.size(); }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace flood

#endif  // FLOOD_API_INDEX_OPTIONS_H_
