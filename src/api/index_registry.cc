#include "api/index_registry.h"

#include <algorithm>
#include <cctype>

namespace flood {

IndexRegistry& IndexRegistry::Global() {
  static IndexRegistry* registry = new IndexRegistry();
  return *registry;
}

std::string IndexRegistry::Normalize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '_' || c == '-') continue;
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

Status IndexRegistry::Register(const std::string& name,
                               IndexFactory factory) {
  const std::string key = Normalize(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.count(key) > 0 || aliases_.count(key) > 0) {
    return Status::FailedPrecondition("index already registered: " + name);
  }
  factories_[key] = std::move(factory);
  canonical_name_[key] = name;
  return Status::OK();
}

Status IndexRegistry::RegisterAlias(const std::string& alias,
                                    const std::string& canonical) {
  const std::string alias_key = Normalize(alias);
  const std::string canonical_key = Normalize(canonical);
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.count(canonical_key) == 0) {
    return Status::NotFound("alias target not registered: " + canonical);
  }
  if (factories_.count(alias_key) > 0 || aliases_.count(alias_key) > 0) {
    return Status::FailedPrecondition("index already registered: " + alias);
  }
  aliases_[alias_key] = canonical_key;
  return Status::OK();
}

bool IndexRegistry::Contains(const std::string& name) const {
  const std::string key = Normalize(name);
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(key) > 0 || aliases_.count(key) > 0;
}

StatusOr<std::string> IndexRegistry::Resolve(const std::string& name) const {
  const std::string key = Normalize(name);
  std::lock_guard<std::mutex> lock(mu_);
  std::string resolved = key;
  auto alias = aliases_.find(key);
  if (alias != aliases_.end()) resolved = alias->second;
  auto it = canonical_name_.find(resolved);
  if (it == canonical_name_.end()) {
    std::string known;
    for (const auto& [k, display] : canonical_name_) {
      if (!known.empty()) known += ", ";
      known += display;
    }
    return Status::NotFound("unknown index \"" + name +
                            "\"; registered: " + known);
  }
  return it->second;
}

namespace {

/// The factories read these through GetInt/GetDouble/GetBool, which fall
/// back to the default on a parse failure — so a typo'd value ("4k",
/// "2048 ") would silently configure the default. Reject it here instead.
Status ValidateWellKnownOptions(const IndexOptions& options) {
  static constexpr const char* kIntKeys[] = {
      "page_size",    "leaf_capacity",     "fanout",
      "max_depth",    "max_directory_entries", "sort_dim",
      "rmi_leaves",   "target_cells",      "plm_min_cell_size",
      "max_cells",    "seed"};
  static constexpr const char* kDoubleKeys[] = {"plm_delta"};
  static constexpr const char* kBoolKeys[] = {
      "use_cell_models", "learn_layout", "enable_run_merging",
      "enable_exact_ranges"};
  // A malformed value returns the fallback for *both* probe fallbacks —
  // impossible for a parsed value, since it would have to equal both.
  for (const char* key : kIntKeys) {
    if (options.Has(key) &&
        options.GetInt(key, 0) == 0 && options.GetInt(key, 1) == 1) {
      return Status::InvalidArgument(std::string("option \"") + key +
                                     "\" has non-integer value \"" +
                                     *options.Get(key) + "\"");
    }
  }
  for (const char* key : kDoubleKeys) {
    if (options.Has(key) &&
        options.GetDouble(key, 0.0) == 0.0 &&
        options.GetDouble(key, 1.0) == 1.0) {
      return Status::InvalidArgument(std::string("option \"") + key +
                                     "\" has non-numeric value \"" +
                                     *options.Get(key) + "\"");
    }
  }
  for (const char* key : kBoolKeys) {
    if (options.Has(key) &&
        options.GetBool(key, false) == false &&
        options.GetBool(key, true) == true) {
      return Status::InvalidArgument(std::string("option \"") + key +
                                     "\" has non-boolean value \"" +
                                     *options.Get(key) + "\"");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<MultiDimIndex>> IndexRegistry::Create(
    const std::string& name, const IndexOptions& options) const {
  StatusOr<std::string> canonical = Resolve(name);
  if (!canonical.ok()) return canonical.status();
  FLOOD_RETURN_IF_ERROR(ValidateWellKnownOptions(options));
  IndexFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    factory = factories_.at(Normalize(*canonical));
  }
  return factory(options);
}

std::vector<std::string> IndexRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(canonical_name_.size());
    for (const auto& [key, display] : canonical_name_) {
      names.push_back(display);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace flood
