#ifndef FLOOD_API_INDEX_REGISTRY_H_
#define FLOOD_API_INDEX_REGISTRY_H_

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/index_options.h"
#include "common/status.h"
#include "query/multidim_index.h"

namespace flood {

/// Constructs an (unbuilt) index from a generic options map. Factories
/// validate only their own keys; Build() happens later, once the caller has
/// a table and a BuildContext.
using IndexFactory =
    std::function<StatusOr<std::unique_ptr<MultiDimIndex>>(
        const IndexOptions&)>;

/// Process-wide, string-keyed catalogue of every index implementation.
///
/// Each index registers itself from its own translation unit via a static
/// IndexRegistrar, so adding an index touches exactly one file and every
/// bench/test/example that enumerates Names() picks it up automatically.
/// Canonical keys of the built-ins:
///   "flood", "kdtree", "rtree", "grid_file", "zorder", "octree",
///   "ubtree", "clustered", "full_scan".
/// Lookup is case-insensitive and ignores '_'/'-', and legacy display names
/// ("RStarTree", "Hyperoctree", ...) are registered as aliases.
class IndexRegistry {
 public:
  /// The process-wide registry instance.
  static IndexRegistry& Global();

  /// Registers `factory` under canonical key `name`. Re-registering a name
  /// is an error (kFailedPrecondition).
  Status Register(const std::string& name, IndexFactory factory);

  /// Registers `alias` to resolve to the already-registered `canonical`.
  Status RegisterAlias(const std::string& alias,
                       const std::string& canonical);

  /// True if `name` (canonical or alias, any spelling) is registered.
  bool Contains(const std::string& name) const;

  /// Resolves `name` to its canonical key, or kNotFound listing the
  /// registered names.
  StatusOr<std::string> Resolve(const std::string& name) const;

  /// Creates an unbuilt index. kNotFound for unknown names;
  /// kInvalidArgument when a well-known numeric/boolean option carries a
  /// value that does not parse (a typo would otherwise be silently
  /// replaced by the default); factory errors (e.g. malformed "layout")
  /// pass through.
  StatusOr<std::unique_ptr<MultiDimIndex>> Create(
      const std::string& name, const IndexOptions& options = {}) const;

  /// Sorted canonical names (no aliases).
  std::vector<std::string> Names() const;

 private:
  IndexRegistry() = default;

  /// Lowercases and strips '_'/'-' so "grid_file", "GridFile" and
  /// "gridfile" all collide onto one key.
  static std::string Normalize(const std::string& name);

  mutable std::mutex mu_;
  std::map<std::string, IndexFactory> factories_;     // by Normalize(name)
  std::map<std::string, std::string> canonical_name_; // normalized -> display
  std::map<std::string, std::string> aliases_;        // normalized -> normalized
};

/// Registers an index factory at static-initialization time:
///
///   namespace {
///   const IndexRegistrar registrar(
///       "kdtree", {"kd-tree"},
///       [](const IndexOptions& opts) -> StatusOr<...> { ... });
///   }  // namespace
struct IndexRegistrar {
  IndexRegistrar(const std::string& name,
                 std::initializer_list<std::string> aliases,
                 IndexFactory factory) {
    const Status st =
        IndexRegistry::Global().Register(name, std::move(factory));
    FLOOD_CHECK(st.ok());
    for (const std::string& alias : aliases) {
      FLOOD_CHECK(IndexRegistry::Global().RegisterAlias(alias, name).ok());
    }
  }
};

}  // namespace flood

#endif  // FLOOD_API_INDEX_REGISTRY_H_
