#include "api/shard_map.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace flood {

StatusOr<ShardMap> ShardMap::FromBounds(size_t sort_dim,
                                        std::vector<Value> bounds) {
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i] == kValueMin) {
      return Status::InvalidArgument(
          "shard bound must be greater than kValueMin (shard 0 already "
          "starts there)");
    }
    if (i > 0 && bounds[i] <= bounds[i - 1]) {
      return Status::InvalidArgument(
          "shard bounds must be strictly increasing (bound " +
          std::to_string(i) + " = " + std::to_string(bounds[i]) +
          " <= previous " + std::to_string(bounds[i - 1]) + ")");
    }
  }
  return ShardMap(sort_dim, std::move(bounds));
}

ShardMap ShardMap::FromQuantiles(const Table& table, size_t sort_dim,
                                 size_t num_shards) {
  FLOOD_CHECK(sort_dim < table.num_dims());
  if (num_shards <= 1 || table.num_rows() == 0) return ShardMap(sort_dim);

  std::vector<Value> values = table.DecodeColumn(sort_dim);
  std::sort(values.begin(), values.end());
  num_shards = std::min(num_shards, values.size());

  // Cut at the equal-count quantiles. A bound must be strictly greater
  // than the previous one (a single value is never split across shards)
  // AND strictly greater than the column minimum (otherwise shard 0 would
  // own no rows); duplicates therefore collapse shards instead of
  // creating empty ones. Each surviving bound is an actual data value, so
  // the shard it opens contains at least that value's rows, and shard 0
  // keeps the minimum — every shard is non-empty by construction.
  std::vector<Value> bounds;
  Value prev = values.front();
  for (size_t s = 1; s < num_shards; ++s) {
    const Value candidate = values[s * values.size() / num_shards];
    if (candidate > prev) {
      bounds.push_back(candidate);
      prev = candidate;
    }
  }
  return ShardMap(sort_dim, std::move(bounds));
}

size_t ShardMap::ShardForValue(Value v) const {
  // bounds_[i] opens shard i + 1, so v's shard is the number of bounds
  // less than or equal to v.
  return static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

std::pair<size_t, size_t> ShardMap::ShardsForRange(
    const ValueRange& range) const {
  FLOOD_DCHECK(!range.IsEmpty());
  return {ShardForValue(range.lo), ShardForValue(range.hi)};
}

std::pair<size_t, size_t> ShardMap::ShardsForQuery(const Query& query) const {
  if (sort_dim_ >= query.num_dims()) return {0, num_shards() - 1};
  return ShardsForRange(query.range(sort_dim_));
}

ValueRange ShardMap::RangeOf(size_t s) const {
  FLOOD_DCHECK(s < num_shards());
  ValueRange r;
  r.lo = s == 0 ? kValueMin : bounds_[s - 1];
  r.hi = s == bounds_.size() ? kValueMax : bounds_[s] - 1;
  return r;
}

std::string ShardMap::ToString() const {
  std::string out = "dim " + std::to_string(sort_dim_) + ":";
  for (size_t s = 0; s < num_shards(); ++s) {
    const ValueRange r = RangeOf(s);
    out += " [";
    out += r.lo == kValueMin ? "min" : std::to_string(r.lo);
    out += "..";
    out += r.hi == kValueMax ? "max" : std::to_string(r.hi);
    out += "]";
  }
  return out;
}

}  // namespace flood
