#ifndef FLOOD_API_SHARD_MAP_H_
#define FLOOD_API_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/table.h"

namespace flood {

/// Key-range partitioning of the value space of ONE dimension (the "sort
/// dimension", by analogy with Flood's layout: the dimension the grid
/// sorts within cells is also the natural scatter key) across N shards.
///
/// Shard i owns the contiguous inclusive range [lower(i), upper(i)]:
///
///   shard 0:   [kValueMin,  bound[0] - 1]
///   shard i:   [bound[i-1], bound[i] - 1]
///   shard N-1: [bound[N-2], kValueMax]
///
/// The bounds cover the whole value space with no gaps and no overlap, so
/// every row routes to exactly one shard and every non-empty range query
/// intersects at least one shard. A query whose sort-dim filter is
/// disjoint from a shard's range provably has zero matches there — that
/// is the scatter-pruning the serving router exploits (src/serve/router.h).
///
/// Immutable after construction; freely copyable and thread-safe to read.
class ShardMap {
 public:
  /// Single-shard map over `sort_dim`: everything routes to shard 0.
  explicit ShardMap(size_t sort_dim = 0) : sort_dim_(sort_dim) {}

  /// Builds a map from explicit lower bounds: `bounds[i]` is the first
  /// value owned by shard i + 1 (so N shards take N - 1 bounds; empty
  /// bounds = one shard). Bounds must be strictly increasing and greater
  /// than kValueMin, or InvalidArgument.
  static StatusOr<ShardMap> FromBounds(size_t sort_dim,
                                       std::vector<Value> bounds);

  /// Learns boundaries from the data: sorts the values of `sort_dim` and
  /// cuts at the `num_shards`-quantiles, so shards own equal row counts
  /// (not equal value spans — skewed data still balances). Duplicate-heavy
  /// columns may yield fewer shards than requested (a value is never split
  /// across shards); the result always has >= 1 shard, and every shard is
  /// guaranteed to own at least one row of `table`.
  static ShardMap FromQuantiles(const Table& table, size_t sort_dim,
                                size_t num_shards);

  size_t sort_dim() const { return sort_dim_; }
  size_t num_shards() const { return bounds_.size() + 1; }

  /// The shard owning value `v` of the sort dimension. O(log N).
  size_t ShardForValue(Value v) const;

  /// Inclusive shard-index interval [first, last] whose ranges intersect
  /// `range`. Empty ranges (lo > hi) intersect nothing; callers short-
  /// circuit them before asking (FLOOD_DCHECK enforced).
  std::pair<size_t, size_t> ShardsForRange(const ValueRange& range) const;

  /// Shards a query can match: its sort-dim filter interval when the
  /// query has one, every shard otherwise (a query that does not filter
  /// the sort dimension must fan out to all shards).
  std::pair<size_t, size_t> ShardsForQuery(const Query& query) const;

  /// Inclusive value range owned by shard `s`.
  ValueRange RangeOf(size_t s) const;

  /// The raw lower bounds (size num_shards() - 1), for serialization and
  /// the `flood_router --bounds` flag.
  const std::vector<Value>& bounds() const { return bounds_; }

  /// Debug rendering, e.g. "dim 0: [min..99][100..499][500..max]".
  std::string ToString() const;

 private:
  ShardMap(size_t sort_dim, std::vector<Value> bounds)
      : sort_dim_(sort_dim), bounds_(std::move(bounds)) {}

  size_t sort_dim_ = 0;
  /// bounds_[i] = first sort-dim value owned by shard i + 1; strictly
  /// increasing.
  std::vector<Value> bounds_;
};

}  // namespace flood

#endif  // FLOOD_API_SHARD_MAP_H_
