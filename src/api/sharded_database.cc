#include "api/sharded_database.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"

namespace flood {

namespace {

/// Adds shard `part` of a scatter into the merged result for one query.
/// Counts and sums add (each row lives in exactly one shard); sums use
/// wrapping uint64 arithmetic so adversarial values can't trip signed-
/// overflow UB — matching how a single database accumulates. max_query_ns
/// and friends merge inside QueryStats::Add.
void MergeQueryResult(const QueryResult& part, QueryResult* merged) {
  merged->count += part.count;
  merged->sum = static_cast<int64_t>(static_cast<uint64_t>(merged->sum) +
                                     static_cast<uint64_t>(part.sum));
  merged->stats.Add(part.stats);
}

}  // namespace

StatusOr<ShardedDatabase> ShardedDatabase::Open(const Table& table,
                                                ShardedDatabaseOptions options) {
  if (table.num_dims() == 0) {
    return Status::InvalidArgument("cannot shard a table with no columns");
  }
  if (options.sort_dim >= table.num_dims()) {
    return Status::InvalidArgument(
        "sort_dim " + std::to_string(options.sort_dim) +
        " out of range for a " + std::to_string(table.num_dims()) +
        "-dimensional table");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }

  ShardMap map =
      ShardMap::FromQuantiles(table, options.sort_dim, options.num_shards);

  // Partition rows by shard, preserving the table's row order within each
  // shard (so a 1-shard ShardedDatabase is bit-identical to Database over
  // the same table).
  const size_t n = map.num_shards();
  std::vector<std::vector<RowId>> rows_of(n);
  for (RowId row = 0; row < table.num_rows(); ++row) {
    rows_of[map.ShardForValue(table.Get(row, options.sort_dim))].push_back(
        row);
  }

  std::vector<std::unique_ptr<Database>> shards;
  shards.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    std::vector<std::vector<Value>> columns(table.num_dims());
    std::vector<std::string> names(table.num_dims());
    for (size_t d = 0; d < table.num_dims(); ++d) {
      names[d] = table.name(d);
      columns[d].reserve(rows_of[s].size());
      for (RowId row : rows_of[s]) columns[d].push_back(table.Get(row, d));
    }
    auto shard_table = Table::FromColumns(std::move(columns),
                                          Column::Encoding::kBlockDelta,
                                          std::move(names));
    FLOOD_RETURN_IF_ERROR(shard_table.status());
    auto db = Database::Open(*shard_table, options.shard_options);
    if (!db.ok()) {
      return Status::Internal("opening shard " + std::to_string(s) + " of " +
                              std::to_string(n) + ": " +
                              db.status().message());
    }
    shards.push_back(std::make_unique<Database>(std::move(*db)));
  }

  return ShardedDatabase(std::move(map), std::move(shards), table.num_dims());
}

Status ShardedDatabase::ValidateArity(size_t got, const char* what) const {
  if (got == num_dims_) return Status::OK();
  return Status::InvalidArgument(std::string(what) + " has " +
                                 std::to_string(got) + " values, table has " +
                                 std::to_string(num_dims_) + " dimensions");
}

// --- Reads -------------------------------------------------------------------

StatusOr<QueryResult> ShardedDatabase::TryRun(const Query& query) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(query.num_dims(), "query"));
  QueryResult merged;
  merged.kind = query.agg().kind == AggSpec::Kind::kSum
                    ? QueryResult::Kind::kSum
                    : QueryResult::Kind::kCount;
  if (query.IsEmpty()) {
    merged.skipped_empty = true;
    return merged;
  }
  const auto [first, last] = map_.ShardsForQuery(query);
  for (size_t s = first; s <= last; ++s) {
    auto part = shards_[s]->TryRun(query);
    FLOOD_RETURN_IF_ERROR(part.status());
    MergeQueryResult(*part, &merged);
  }
  return merged;
}

QueryResult ShardedDatabase::Run(const Query& query) {
  auto result = TryRun(query);
  FLOOD_CHECK(result.ok());
  return std::move(*result);
}

BatchResult ShardedDatabase::RunBatch(std::span<const Query> queries) {
  Stopwatch wall;
  BatchResult out;

  // Validate the whole batch up front, like Database::RunBatch: one
  // malformed query fails the batch before any shard runs.
  for (const Query& q : queries) {
    out.status = ValidateArity(q.num_dims(), "query");
    if (!out.status.ok()) return out;
  }

  out.results.resize(queries.size());
  std::vector<std::vector<Query>> sub(shards_.size());
  std::vector<std::vector<size_t>> origin(shards_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    out.results[i].kind = q.agg().kind == AggSpec::Kind::kSum
                              ? QueryResult::Kind::kSum
                              : QueryResult::Kind::kCount;
    if (q.IsEmpty()) {
      out.results[i].skipped_empty = true;
      ++out.empty_skipped;
      continue;
    }
    const auto [first, last] = map_.ShardsForQuery(q);
    for (size_t s = first; s <= last; ++s) {
      sub[s].push_back(q);
      origin[s].push_back(i);
    }
  }

  // Each shard executes its sub-batch through its own RunBatch (so the
  // per-shard thread pools apply); the per-query merge happens here, in
  // shard order, for determinism.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub[s].empty()) continue;
    BatchResult part = shards_[s]->RunBatch(sub[s]);
    if (!part.status.ok()) {
      out.status = part.status;
      out.results.clear();
      out.empty_skipped = 0;
      return out;
    }
    for (size_t j = 0; j < origin[s].size(); ++j) {
      MergeQueryResult(part.results[j], &out.results[origin[s][j]]);
    }
    out.stats.Merge(part.stats);
  }

  out.wall_ms = wall.ElapsedMillis();
  return out;
}

std::vector<uint64_t> ShardedDatabase::IdOffsets() const {
  std::vector<uint64_t> offsets(shards_.size(), 0);
  uint64_t acc = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    offsets[s] = acc;
    // Width of shard s's id space under the current snapshot: base-row ids
    // in [0, base_rows) plus staged-insert ids in [base_rows, base_rows +
    // delta_inserts) — see Database::TryCollect.
    acc += shards_[s]->base_rows() + shards_[s]->delta_inserts();
  }
  return offsets;
}

StatusOr<QueryResult> ShardedDatabase::TryCollect(const Query& query) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(query.num_dims(), "query"));
  QueryResult merged;
  merged.kind = QueryResult::Kind::kRows;
  if (query.IsEmpty()) {
    merged.skipped_empty = true;
    return merged;
  }
  const std::vector<uint64_t> offsets = IdOffsets();
  const auto [first, last] = map_.ShardsForQuery(query);
  for (size_t s = first; s <= last; ++s) {
    auto part = shards_[s]->TryCollect(query);
    FLOOD_RETURN_IF_ERROR(part.status());
    merged.count += part->count;
    merged.stats.Add(part->stats);
    merged.rows.reserve(merged.rows.size() + part->rows.size());
    for (RowId local : part->rows) merged.rows.push_back(offsets[s] + local);
  }
  return merged;
}

StatusOr<std::vector<Value>> ShardedDatabase::TryGetRow(
    RowId global_row) const {
  const std::vector<uint64_t> offsets = IdOffsets();
  // The owning shard is the last one whose offset is <= global_row.
  size_t s = shards_.size() - 1;
  while (s > 0 && offsets[s] > global_row) --s;
  return shards_[s]->TryGetRow(global_row - offsets[s]);
}

// --- Writes ------------------------------------------------------------------

Status ShardedDatabase::Insert(const std::vector<Value>& row) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(row.size(), "row"));
  return shards_[map_.ShardForValue(row[map_.sort_dim()])]->Insert(row);
}

Status ShardedDatabase::InsertBatch(
    std::span<const std::vector<Value>> rows) {
  for (const auto& row : rows) {
    FLOOD_RETURN_IF_ERROR(ValidateArity(row.size(), "row"));
  }
  std::vector<std::vector<std::vector<Value>>> parts(shards_.size());
  for (const auto& row : rows) {
    parts[map_.ShardForValue(row[map_.sort_dim()])].push_back(row);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (parts[s].empty()) continue;
    FLOOD_RETURN_IF_ERROR(shards_[s]->InsertBatch(parts[s]));
  }
  return Status::OK();
}

StatusOr<size_t> ShardedDatabase::Delete(const std::vector<Value>& key) {
  FLOOD_RETURN_IF_ERROR(ValidateArity(key.size(), "key"));
  return shards_[map_.ShardForValue(key[map_.sort_dim()])]->Delete(key);
}

// --- Introspection -----------------------------------------------------------

size_t ShardedDatabase::num_rows() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_rows();
  return total;
}

size_t ShardedDatabase::pending_writes() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_writes();
  return total;
}

}  // namespace flood
