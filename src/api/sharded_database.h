#ifndef FLOOD_API_SHARDED_DATABASE_H_
#define FLOOD_API_SHARDED_DATABASE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/shard_map.h"

namespace flood {

/// How ShardedDatabase::Open partitions and opens its shards.
struct ShardedDatabaseOptions {
  /// Requested shard count. Duplicate-heavy sort dimensions may yield
  /// fewer (a value is never split across shards); read the real count
  /// back via num_shards().
  size_t num_shards = 2;
  /// The dimension whose sort-dim quantiles become the shard boundaries
  /// (ShardMap::FromQuantiles): rows route by this dimension's value, and
  /// queries that filter it scatter only to intersecting shards.
  size_t sort_dim = 0;
  /// Per-shard DatabaseOptions (index type, threads, training workload,
  /// ...). Every shard gets the same knobs but learns its OWN layout over
  /// its own rows — the partition-per-region idea: skew that would warp
  /// one global layout stays local to a shard.
  DatabaseOptions shard_options;
};

/// N `flood::Database` instances behind one facade, partitioned by
/// sort-dim key range (ShardMap). Open() cuts the table at the sort-dim
/// quantiles — equal row counts per shard — and builds an independent
/// database (own index, own delta, own learned layout) over each slice.
///
/// Reads scatter to the shards whose range intersects the query's
/// sort-dim filter and merge: COUNT/SUM aggregates add up (each row lives
/// in exactly one shard), Collect row ids come back rebased into one
/// global id space (see TryCollect). Writes route to exactly one shard by
/// the row's sort-dim value. The per-query results are bit-identical to
/// an unsharded Database over the same table — tests/shard_map_test.cc
/// enforces this for every registered index with writes in flight.
///
/// This is the in-process counterpart of the serving router
/// (src/serve/router.h): the router speaks to shards over the wire, this
/// class calls them directly; both route through the same ShardMap. Use
/// shard(i) to hand the shards to serve::LocalShardBackend.
///
/// Thread safety: same as Database — each shard has its own reader-writer
/// delta seam, so concurrent reads and writes to *different* shards never
/// contend. A multi-shard query takes each shard's shared lock in turn
/// (not simultaneously), so it may observe a concurrent write on shard A
/// but not yet on shard B; per-shard results are always consistent.
class ShardedDatabase {
 public:
  static StatusOr<ShardedDatabase> Open(const Table& table,
                                        ShardedDatabaseOptions options = {});

  ShardedDatabase(ShardedDatabase&&) = default;
  ShardedDatabase& operator=(ShardedDatabase&&) = default;
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  // --- Reads ----------------------------------------------------------------

  /// Scatter-gather aggregation: executes on every shard whose range
  /// intersects the query's sort-dim filter, sums COUNT/SUM. Empty-range
  /// queries short-circuit like Database::TryRun.
  StatusOr<QueryResult> TryRun(const Query& query);
  QueryResult Run(const Query& query);

  /// Scatter-gather RunBatch: per-shard sub-batches execute through each
  /// shard's own RunBatch (so each shard's pool parallelism applies) and
  /// merge per query. `results[i]` always matches `queries[i]`; one
  /// malformed query fails the whole batch, like Database::RunBatch.
  BatchResult RunBatch(std::span<const Query> queries);

  /// Scatter-gather Collect. Shard-local row ids are rebased into one
  /// global id space: shard s's ids are offset by the total id-space
  /// width (base_rows + delta_inserts) of shards 0..s-1, and TryGetRow
  /// resolves global ids back through the same offsets. Ids share
  /// Database::TryCollect's snapshot semantics — the next write or
  /// compaction on any shard re-numbers them.
  StatusOr<QueryResult> TryCollect(const Query& query);
  StatusOr<std::vector<Value>> TryGetRow(RowId global_row) const;

  // --- Writes ---------------------------------------------------------------

  /// Routes the row to the shard owning row[sort_dim].
  Status Insert(const std::vector<Value>& row);
  /// Partitions the rows by sort-dim value and forwards one InsertBatch
  /// per shard. Not atomic across shards: on a shard failure, rows routed
  /// to shards that already committed stay applied and the first error is
  /// returned.
  Status InsertBatch(std::span<const std::vector<Value>> rows);
  /// Full-tuple delete: the key's sort-dim value pins it to one shard.
  StatusOr<size_t> Delete(const std::vector<Value>& key);

  // --- Introspection ----------------------------------------------------------

  const ShardMap& shard_map() const { return map_; }
  size_t num_shards() const { return shards_.size(); }
  size_t num_dims() const { return num_dims_; }
  /// Logical rows across all shards (base - tombstones + staged).
  size_t num_rows() const;
  size_t pending_writes() const;

  /// Direct access to one shard (e.g. to wrap it in a serving backend or
  /// to Compact() it). The pointer is stable for the facade's lifetime.
  Database* shard(size_t s) {
    FLOOD_DCHECK(s < shards_.size());
    return shards_[s].get();
  }
  const Database* shard(size_t s) const {
    FLOOD_DCHECK(s < shards_.size());
    return shards_[s].get();
  }

 private:
  ShardedDatabase(ShardMap map, std::vector<std::unique_ptr<Database>> shards,
                  size_t num_dims)
      : map_(std::move(map)),
        shards_(std::move(shards)),
        num_dims_(num_dims) {}

  Status ValidateArity(size_t got, const char* what) const;

  /// Per-shard global-id offsets under the current snapshot: shard s's
  /// local ids live at [offsets[s], offsets[s] + width(s)).
  std::vector<uint64_t> IdOffsets() const;

  ShardMap map_;
  std::vector<std::unique_ptr<Database>> shards_;
  size_t num_dims_ = 0;
};

}  // namespace flood

#endif  // FLOOD_API_SHARDED_DATABASE_H_
