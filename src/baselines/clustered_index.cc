#include "baselines/clustered_index.h"

#include "api/index_registry.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "learned/search_util.h"
#include "query/scan_util.h"

namespace flood {

Status ClusteredColumnIndex::Build(const Table& table,
                                   const BuildContext& ctx) {
  sort_dim_ = options_.sort_dim;
  if (sort_dim_ == Options::kAutoSelect) {
    sort_dim_ = ctx.DimsBySelectivity(table.num_dims())[0];
  }
  if (sort_dim_ >= table.num_dims()) {
    return Status::InvalidArgument("sort_dim out of range");
  }

  std::vector<Value> keys = table.DecodeColumn(sort_dim_);
  std::vector<RowId> perm(table.num_rows());
  std::iota(perm.begin(), perm.end(), RowId{0});
  std::stable_sort(perm.begin(), perm.end(), [&keys](RowId a, RowId b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });
  InitStorage(table, &perm, ctx);

  std::sort(keys.begin(), keys.end());
  rmi_ = Rmi::Train(keys, options_.rmi_leaves);
  return Status::OK();
}

template <typename V>
void ClusteredColumnIndex::ExecuteT(const Query& query, V& visitor,
                                    QueryStats* stats) const {
  const Stopwatch total;
  const size_t n = data_.num_rows();
  size_t begin = 0;
  size_t end = n;
  std::vector<size_t> check_dims;

  if (query.num_dims() > sort_dim_ && query.IsFiltered(sort_dim_)) {
    const Stopwatch lookup;
    const ValueRange& r = query.range(sort_dim_);
    const Column& col = data_.column(sort_dim_);
    const auto get = [&col](size_t i) { return col.Get(i); };
    const Rmi::Bounds lo_bounds = rmi_.Lookup(r.lo);
    begin = BinaryLowerBound(get, lo_bounds.lo, lo_bounds.hi, r.lo);
    const Rmi::Bounds hi_bounds = rmi_.Lookup(r.hi);
    end = BinaryUpperBound(get, hi_bounds.lo, hi_bounds.hi, r.hi);
    if (end < begin) end = begin;
    for (size_t d : FilteredDims(query)) {
      if (d != sort_dim_) check_dims.push_back(d);
    }
    if (stats != nullptr) stats->index_ns += lookup.ElapsedNanos();
  } else {
    check_dims = FilteredDims(query);
  }

  const Stopwatch scan;
  // The sort-dimension range is exact by construction; with no other
  // filtered dimension the whole range is check-free.
  ScanRange(data_, query, begin, end, /*exact=*/check_dims.empty(),
            check_dims, visitor, stats);
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

FLOOD_DEFINE_EXECUTE_DISPATCH(ClusteredColumnIndex);

std::vector<std::pair<std::string, double>>
ClusteredColumnIndex::DebugProperties() const {
  return {{"sort_dim", static_cast<double>(sort_dim_)}};
}

std::string ClusteredColumnIndex::Describe() const {
  return "Clustered[sort_dim=" + std::to_string(sort_dim_) + "]";
}

namespace {
const IndexRegistrar kRegistrar(
    "clustered", {},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      ClusteredColumnIndex::Options o;
      const int64_t sort_dim = opts.GetInt("sort_dim", -1);
      if (sort_dim >= 0) o.sort_dim = static_cast<size_t>(sort_dim);
      o.rmi_leaves = static_cast<size_t>(
          opts.GetInt("rmi_leaves", static_cast<int64_t>(o.rmi_leaves)));
      return std::unique_ptr<MultiDimIndex>(new ClusteredColumnIndex(o));
    });
}  // namespace

}  // namespace flood
