#ifndef FLOOD_BASELINES_CLUSTERED_INDEX_H_
#define FLOOD_BASELINES_CLUSTERED_INDEX_H_

#include "learned/rmi.h"
#include "query/multidim_index.h"

namespace flood {

/// Baseline 2 (§7.2): clustered single-dimensional index. Rows are sorted
/// by the workload's most selective dimension and located with a learned
/// B-tree (RMI) over that column; queries not filtering the sort dimension
/// degrade to full scans. The paper found the RMI variant within 1% of a
/// classic B-tree, so only the RMI variant is implemented.
class ClusteredColumnIndex final : public StorageBackedIndex {
 public:
  struct Options {
    /// Sort dimension; kAutoSelect picks the workload's most selective.
    static constexpr size_t kAutoSelect = static_cast<size_t>(-1);
    size_t sort_dim = kAutoSelect;
    /// RMI leaf count; 0 = n/256.
    size_t rmi_leaves = 0;
  };

  ClusteredColumnIndex() = default;
  explicit ClusteredColumnIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "Clustered"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override { return rmi_.MemoryUsageBytes(); }

  size_t sort_dim() const { return sort_dim_; }

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override;
  std::string Describe() const override;

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  Options options_;
  size_t sort_dim_ = 0;
  Rmi rmi_;
};

}  // namespace flood

#endif  // FLOOD_BASELINES_CLUSTERED_INDEX_H_
