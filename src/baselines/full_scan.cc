#include "baselines/full_scan.h"

#include "api/index_registry.h"

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

Status FullScanIndex::Build(const Table& table, const BuildContext& ctx) {
  InitStorage(table, nullptr, ctx);
  return Status::OK();
}

template <typename V>
void FullScanIndex::ExecuteT(const Query& query, V& visitor,
                             QueryStats* stats) const {
  const Stopwatch total;
  ScanRange(data_, query, 0, data_.num_rows(), /*exact=*/false,
            FilteredDims(query), visitor, stats);
  if (stats != nullptr) {
    stats->scan_ns += total.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

FLOOD_DEFINE_EXECUTE_DISPATCH(FullScanIndex);

namespace {
const IndexRegistrar kRegistrar(
    "full_scan", {"scan"},
    [](const IndexOptions&) -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      return std::unique_ptr<MultiDimIndex>(new FullScanIndex());
    });
}  // namespace

}  // namespace flood
