#ifndef FLOOD_BASELINES_FULL_SCAN_H_
#define FLOOD_BASELINES_FULL_SCAN_H_

#include "query/multidim_index.h"

namespace flood {

/// Baseline 1 (§7.2): visit every row, accessing only the filtered columns.
/// The floor every index is measured against (Fig. 13b plots ratios to it).
class FullScanIndex final : public StorageBackedIndex {
 public:
  std::string_view name() const override { return "FullScan"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override { return 0; }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;
};

}  // namespace flood

#endif  // FLOOD_BASELINES_FULL_SCAN_H_
