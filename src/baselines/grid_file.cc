#include "baselines/grid_file.h"

#include "api/index_registry.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

namespace {

/// Build-time bucket state.
struct BuildBucket {
  std::vector<RowId> points;
  std::vector<size_t> lo;  ///< Region in block coords, inclusive.
  std::vector<size_t> hi;
  bool unsplittable = false;
};

}  // namespace

size_t GridFileIndex::BlockOf(size_t dim, Value v) const {
  const auto& s = scales_[dim];
  return static_cast<size_t>(std::upper_bound(s.begin(), s.end(), v) -
                             s.begin());
}

Status GridFileIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");

  std::vector<std::vector<Value>> cols(d);
  for (size_t dim = 0; dim < d; ++dim) cols[dim] = table.DecodeColumn(dim);
  std::vector<Value> dim_min(d);
  std::vector<Value> dim_max(d);
  for (size_t dim = 0; dim < d; ++dim) {
    dim_min[dim] = table.min_value(dim);
    dim_max[dim] = table.max_value(dim);
  }

  scales_.assign(d, {});
  std::vector<size_t> nb(d, 1);  // Blocks per dimension.
  std::vector<uint32_t> dir(1, 0);
  std::vector<BuildBucket> buckets(1);
  buckets[0].lo.assign(d, 0);
  buckets[0].hi.assign(d, 0);
  size_t round_robin = 0;

  auto dir_index = [&](const std::vector<size_t>& coords) {
    size_t idx = 0;
    for (size_t dim = 0; dim < d; ++dim) idx = idx * nb[dim] + coords[dim];
    return idx;
  };

  // Value interval of block `k` along `dim` (inclusive bounds).
  auto block_interval = [&](size_t dim, size_t k) -> std::pair<Value, Value> {
    const auto& s = scales_[dim];
    const Value lo = (k == 0) ? dim_min[dim] : s[k - 1];
    const Value hi = (k == s.size()) ? dim_max[dim] : s[k] - 1;
    return {lo, hi};
  };

  // Inserts a new scale entry (split value) in `dim`; rebuilds the
  // directory and shifts bucket regions. Returns false on budget overflow.
  auto add_scale = [&](size_t dim, Value split_value) -> bool {
    const auto& s = scales_[dim];
    const size_t pos = static_cast<size_t>(
        std::upper_bound(s.begin(), s.end(), split_value) - s.begin());
    const size_t new_size = dir.size() / nb[dim] * (nb[dim] + 1);
    if (new_size > options_.max_directory_entries) return false;

    std::vector<uint32_t> new_dir(new_size);
    std::vector<size_t> old_nb = nb;
    nb[dim] += 1;
    // Enumerate new coords with an odometer; map to old block coords.
    std::vector<size_t> coords(d, 0);
    for (size_t idx = 0; idx < new_dir.size(); ++idx) {
      std::vector<size_t> old_coords = coords;
      if (old_coords[dim] > pos) old_coords[dim] -= 1;
      size_t old_idx = 0;
      for (size_t k = 0; k < d; ++k) {
        old_idx = old_idx * old_nb[k] + old_coords[k];
      }
      new_dir[idx] = dir[old_idx];
      // Odometer increment (last dim fastest).
      for (size_t k = d; k-- > 0;) {
        if (++coords[k] < nb[k]) break;
        coords[k] = 0;
      }
    }
    dir = std::move(new_dir);
    scales_[dim].insert(scales_[dim].begin() + static_cast<std::ptrdiff_t>(pos),
                        split_value);
    for (auto& b : buckets) {
      if (b.lo[dim] > pos) b.lo[dim] += 1;
      if (b.hi[dim] >= pos) b.hi[dim] += 1;
      b.unsplittable = false;  // New boundary may make it splittable.
    }
    return true;
  };

  std::vector<size_t> coords(d);
  auto coords_of_row = [&](RowId r, std::vector<size_t>& out) {
    for (size_t dim = 0; dim < d; ++dim) {
      out[dim] = BlockOf(dim, cols[dim][static_cast<size_t>(r)]);
    }
  };

  // Splits bucket `b` along an existing boundary if its region spans more
  // than one block in some dimension. Returns true on success.
  auto split_on_boundary = [&](uint32_t b) -> bool {
    BuildBucket& bucket = buckets[static_cast<size_t>(b)];
    size_t best_dim = d;
    size_t best_span = 1;
    for (size_t dim = 0; dim < d; ++dim) {
      const size_t span = bucket.hi[dim] - bucket.lo[dim] + 1;
      if (span > best_span) {
        best_span = span;
        best_dim = dim;
      }
    }
    if (best_dim == d) return false;
    const size_t cut =
        bucket.lo[best_dim] + (bucket.hi[best_dim] - bucket.lo[best_dim] + 1) / 2;

    const uint32_t nb_id = static_cast<uint32_t>(buckets.size());
    buckets.push_back(BuildBucket{});
    BuildBucket& fresh = buckets.back();
    BuildBucket& old = buckets[static_cast<size_t>(b)];
    fresh.lo = old.lo;
    fresh.hi = old.hi;
    fresh.lo[best_dim] = cut;
    old.hi[best_dim] = cut - 1;

    // Re-point directory entries in the new bucket's region.
    std::vector<size_t> c = fresh.lo;
    while (true) {
      dir[dir_index(c)] = nb_id;
      size_t k = d;
      bool done = true;
      while (k-- > 0) {
        if (++c[k] <= fresh.hi[k]) {
          done = false;
          break;
        }
        c[k] = fresh.lo[k];
      }
      if (done) break;
    }
    // Redistribute points.
    std::vector<RowId> keep;
    keep.reserve(old.points.size());
    std::vector<size_t> pc(d);
    for (RowId r : old.points) {
      pc[best_dim] = BlockOf(best_dim, cols[best_dim][static_cast<size_t>(r)]);
      if (pc[best_dim] >= cut) {
        fresh.points.push_back(r);
      } else {
        keep.push_back(r);
      }
    }
    old.points = std::move(keep);
    return true;
  };

  bool budget_hit = false;
  for (RowId r = 0; r < n && !budget_hit; ++r) {
    coords_of_row(r, coords);
    uint32_t b = dir[dir_index(coords)];
    buckets[static_cast<size_t>(b)].points.push_back(r);

    // Split until the receiving bucket satisfies the page size.
    while (buckets[static_cast<size_t>(b)].points.size() >
               options_.page_size &&
           !buckets[static_cast<size_t>(b)].unsplittable) {
      if (!split_on_boundary(b)) {
        // Single-block bucket: introduce a new split point, cycling dims.
        bool added = false;
        for (size_t attempt = 0; attempt < d; ++attempt) {
          const size_t dim = (round_robin + attempt) % d;
          const size_t block = buckets[static_cast<size_t>(b)].lo[dim];
          const auto [lo_v, hi_v] = block_interval(dim, block);
          if (lo_v >= hi_v) continue;  // Single value: cannot split.
          const Value mid = lo_v + (hi_v - lo_v) / 2;
          if (!add_scale(dim, mid + 1)) {
            budget_hit = true;
            break;
          }
          round_robin = (dim + 1) % d;
          added = true;
          break;
        }
        if (budget_hit) break;
        if (!added) {
          buckets[static_cast<size_t>(b)].unsplittable = true;
          break;
        }
      }
      // After any split, the overfull points may now live in a new bucket;
      // re-locate the bucket owning the just-inserted row.
      coords_of_row(r, coords);
      b = dir[dir_index(coords)];
    }
  }
  if (budget_hit) {
    return Status::FailedPrecondition(
        "grid file directory exceeded budget (skewed data); paper reports "
        "N/A for such configurations");
  }

  // Finalize: physical layout bucket-by-bucket.
  std::vector<RowId> layout;
  layout.reserve(n);
  bucket_range_.clear();
  bucket_bounds_.clear();
  bucket_range_.reserve(buckets.size());
  bucket_bounds_.assign(buckets.size() * d * 2, 0);
  for (size_t b = 0; b < buckets.size(); ++b) {
    const size_t begin = layout.size();
    std::vector<Value> mn(d, kValueMax);
    std::vector<Value> mx(d, kValueMin);
    for (RowId r : buckets[b].points) {
      layout.push_back(r);
      for (size_t dim = 0; dim < d; ++dim) {
        const Value v = cols[dim][static_cast<size_t>(r)];
        mn[dim] = std::min(mn[dim], v);
        mx[dim] = std::max(mx[dim], v);
      }
    }
    bucket_range_.emplace_back(begin, layout.size());
    for (size_t dim = 0; dim < d; ++dim) {
      bucket_bounds_[(b * d + dim) * 2] = mn[dim];
      bucket_bounds_[(b * d + dim) * 2 + 1] = mx[dim];
    }
  }
  // Remap directory to final bucket ids (identical ids; directory already
  // points at build buckets which we kept in order).
  dir_stride_.assign(d, 1);
  for (size_t dim = d - 1; dim-- > 0;) {
    dir_stride_[dim] = dir_stride_[dim + 1] * nb[dim + 1];
  }
  directory_ = std::move(dir);

  InitStorage(table, &layout, ctx);
  return Status::OK();
}

template <typename V>
void GridFileIndex::ExecuteT(const Query& query, V& visitor,
                             QueryStats* stats) const {
  const Stopwatch total;
  const std::vector<size_t> check_dims = FilteredDims(query);
  const size_t d = data_.num_dims();

  const Stopwatch index_time;
  std::vector<size_t> lo(d, 0);
  std::vector<size_t> hi(d);
  for (size_t dim = 0; dim < d; ++dim) {
    hi[dim] = scales_[dim].size();  // Last block index.
    if (dim < query.num_dims() && query.IsFiltered(dim)) {
      lo[dim] = BlockOf(dim, query.range(dim).lo);
      hi[dim] = BlockOf(dim, query.range(dim).hi);
    }
  }

  // Walk the block hyper-rectangle, dedup bucket ids.
  std::vector<uint8_t> seen(bucket_range_.size(), 0);
  std::vector<uint32_t> hit_buckets;
  std::vector<size_t> c = lo;
  while (true) {
    size_t idx = 0;
    for (size_t dim = 0; dim < d; ++dim) {
      idx += c[dim] * dir_stride_[dim];
    }
    const uint32_t b = directory_[idx];
    if (!seen[b]) {
      seen[b] = 1;
      hit_buckets.push_back(b);
    }
    size_t k = d;
    bool done = true;
    while (k-- > 0) {
      if (++c[k] <= hi[k]) {
        done = false;
        break;
      }
      c[k] = lo[k];
    }
    if (done) break;
  }
  std::sort(hit_buckets.begin(), hit_buckets.end());
  if (stats != nullptr) {
    stats->index_ns += index_time.ElapsedNanos();
    stats->cells_visited += hit_buckets.size();
  }

  const Stopwatch scan;
  for (uint32_t b : hit_buckets) {
    bool intersects = true;
    bool contained = true;
    for (size_t dim : check_dims) {
      const Value mn = bucket_bounds_[(b * d + dim) * 2];
      const Value mx = bucket_bounds_[(b * d + dim) * 2 + 1];
      const ValueRange& r = query.range(dim);
      if (mx < r.lo || mn > r.hi) {
        intersects = false;
        break;
      }
      contained = contained && r.lo <= mn && mx <= r.hi;
    }
    if (!intersects) continue;
    const auto [begin, end] = bucket_range_[b];
    ScanRange(data_, query, begin, end, contained, check_dims, visitor,
              stats);
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

size_t GridFileIndex::IndexSizeBytes() const {
  size_t bytes = directory_.size() * sizeof(uint32_t) +
                 bucket_range_.size() * sizeof(std::pair<size_t, size_t>) +
                 bucket_bounds_.size() * sizeof(Value);
  for (const auto& s : scales_) bytes += s.size() * sizeof(Value);
  return bytes;
}

FLOOD_DEFINE_EXECUTE_DISPATCH(GridFileIndex);

namespace {
const IndexRegistrar kRegistrar(
    "grid_file", {},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      GridFileIndex::Options o;
      o.page_size = static_cast<size_t>(
          opts.GetInt("page_size", static_cast<int64_t>(o.page_size)));
      o.max_directory_entries = static_cast<size_t>(opts.GetInt(
          "max_directory_entries",
          static_cast<int64_t>(o.max_directory_entries)));
      return std::unique_ptr<MultiDimIndex>(new GridFileIndex(o));
    });
}  // namespace

}  // namespace flood
