#ifndef FLOOD_BASELINES_GRID_FILE_H_
#define FLOOD_BASELINES_GRID_FILE_H_

#include <vector>

#include "query/multidim_index.h"

namespace flood {

/// Baseline 3 (§7.2, App. A): Grid File (Nievergelt et al.). Space is
/// divided into blocks by per-dimension split points ("linear scales")
/// built incrementally; adjacent blocks share buckets of at most
/// `page_size` points. A full bucket splits along an existing block
/// boundary when one crosses it, otherwise a new split point is inserted at
/// the midpoint of its region, cycling dimensions round-robin. Unlike
/// Flood, columns are not workload-optimized and bucket contents are
/// unsorted.
///
/// The paper notes construction "requires a long time on heavily skewed
/// data" and omits those entries; Build mirrors that with a directory-size
/// budget and returns FailedPrecondition when exceeded.
class GridFileIndex final : public StorageBackedIndex {
 public:
  struct Options {
    size_t page_size = 1024;
    /// Directory entries budget; skewed data trips this (paper: N/A cells).
    size_t max_directory_entries = 1u << 22;
  };

  GridFileIndex() = default;
  explicit GridFileIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "GridFile"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override;

  size_t num_buckets() const { return bucket_range_.size(); }

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override {
    return {{"num_buckets", static_cast<double>(num_buckets())}};
  }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  // Final (read-optimized) state: scales + dense directory of bucket ids +
  // per-bucket physical ranges and data bounding boxes.
  Options options_;
  std::vector<std::vector<Value>> scales_;  ///< Split points per dim.
  std::vector<uint32_t> directory_;         ///< Mixed-radix block -> bucket.
  std::vector<size_t> dir_stride_;
  std::vector<std::pair<size_t, size_t>> bucket_range_;
  std::vector<Value> bucket_bounds_;        ///< [bucket][dim][0/1].

  size_t BlockOf(size_t dim, Value v) const;
};

}  // namespace flood

#endif  // FLOOD_BASELINES_GRID_FILE_H_
