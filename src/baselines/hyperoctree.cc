#include "baselines/hyperoctree.h"

#include "api/index_registry.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

Status HyperoctreeIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");
  if (d > 31) {
    return Status::InvalidArgument("hyperoctree supports at most 31 dims");
  }

  std::vector<std::vector<Value>> cols(d);
  for (size_t dim = 0; dim < d; ++dim) cols[dim] = table.DecodeColumn(dim);

  root_lo_.resize(d);
  root_hi_.resize(d);
  for (size_t dim = 0; dim < d; ++dim) {
    root_lo_[dim] = table.min_value(dim);
    root_hi_[dim] = table.max_value(dim);
  }

  std::vector<RowId> rows(n);
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<RowId> layout;
  layout.reserve(n);
  std::vector<Value> box_lo = root_lo_;
  std::vector<Value> box_hi = root_hi_;
  nodes_.clear();
  leaves_.clear();
  BuildNode(cols, rows, 0, n, box_lo, box_hi, 0, layout);

  InitStorage(table, &layout, ctx);
  return Status::OK();
}

uint32_t HyperoctreeIndex::BuildNode(
    const std::vector<std::vector<Value>>& cols, std::vector<RowId>& rows,
    size_t begin, size_t end, std::vector<Value>& box_lo,
    std::vector<Value>& box_hi, int depth, std::vector<RowId>& layout) {
  const size_t d = cols.size();
  const uint32_t node_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});

  // A box that can no longer split (single point in every dim) must become
  // a leaf regardless of page size.
  bool splittable = false;
  for (size_t dim = 0; dim < d && !splittable; ++dim) {
    splittable = box_lo[dim] < box_hi[dim];
  }

  if (end - begin <= options_.page_size || depth >= options_.max_depth ||
      !splittable) {
    Leaf leaf;
    leaf.begin = layout.size();
    leaf.min.assign(d, kValueMax);
    leaf.max.assign(d, kValueMin);
    for (size_t i = begin; i < end; ++i) {
      const RowId r = rows[i];
      layout.push_back(r);
      for (size_t dim = 0; dim < d; ++dim) {
        const Value v = cols[dim][static_cast<size_t>(r)];
        leaf.min[dim] = std::min(leaf.min[dim], v);
        leaf.max[dim] = std::max(leaf.max[dim], v);
      }
    }
    leaf.end = layout.size();
    nodes_[node_id].is_leaf = true;
    nodes_[node_id].leaf_id = static_cast<uint32_t>(leaves_.size());
    leaves_.push_back(std::move(leaf));
    return node_id;
  }

  // Octant code per row: bit `dim` set iff value > midpoint of `dim`.
  std::vector<Value> mid(d);
  for (size_t dim = 0; dim < d; ++dim) {
    // Overflow-safe midpoint.
    mid[dim] = box_lo[dim] + (box_hi[dim] - box_lo[dim]) / 2;
  }
  auto octant_of = [&](RowId r) {
    uint32_t code = 0;
    for (size_t dim = 0; dim < d; ++dim) {
      if (cols[dim][static_cast<size_t>(r)] > mid[dim]) {
        code |= uint32_t{1} << dim;
      }
    }
    return code;
  };

  // Sort the span by octant code (counting via sort keeps it simple; spans
  // shrink geometrically).
  std::sort(rows.begin() + static_cast<std::ptrdiff_t>(begin),
            rows.begin() + static_cast<std::ptrdiff_t>(end),
            [&octant_of](RowId a, RowId b) {
              return octant_of(a) < octant_of(b);
            });

  size_t span_begin = begin;
  while (span_begin < end) {
    const uint32_t code = octant_of(rows[span_begin]);
    size_t span_end = span_begin;
    while (span_end < end && octant_of(rows[span_end]) == code) ++span_end;

    // Child box from the code.
    std::vector<Value> child_lo(d);
    std::vector<Value> child_hi(d);
    for (size_t dim = 0; dim < d; ++dim) {
      if (code & (uint32_t{1} << dim)) {
        child_lo[dim] = mid[dim] + 1;
        child_hi[dim] = box_hi[dim];
      } else {
        child_lo[dim] = box_lo[dim];
        child_hi[dim] = mid[dim];
      }
    }
    const uint32_t child = BuildNode(cols, rows, span_begin, span_end,
                                     child_lo, child_hi, depth + 1, layout);
    nodes_[node_id].children.emplace_back(code, child);
    span_begin = span_end;
  }
  return node_id;
}

template <typename V>
void HyperoctreeIndex::ExecuteT(const Query& query, V& visitor,
                                QueryStats* stats) const {
  const Stopwatch total;
  const std::vector<size_t> check_dims = FilteredDims(query);
  const size_t d = data_.num_dims();

  // Iterative traversal collecting intersecting leaves (index phase).
  const Stopwatch index_time;
  std::vector<std::pair<uint32_t, bool>> leaf_hits;  // (leaf id, contained)
  struct Frame {
    uint32_t node;
    std::vector<Value> lo;
    std::vector<Value> hi;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, root_lo_, root_hi_});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const Node& node = nodes_[f.node];
    if (stats != nullptr) ++stats->cells_visited;
    if (node.is_leaf) {
      const Leaf& leaf = leaves_[node.leaf_id];
      bool intersects = true;
      bool contained = true;
      for (size_t dim : check_dims) {
        const ValueRange& r = query.range(dim);
        if (leaf.max[dim] < r.lo || leaf.min[dim] > r.hi) {
          intersects = false;
          break;
        }
        contained =
            contained && r.lo <= leaf.min[dim] && leaf.max[dim] <= r.hi;
      }
      if (intersects) {
        leaf_hits.emplace_back(node.leaf_id, contained);
      }
      continue;
    }
    std::vector<Value> mid(d);
    for (size_t dim = 0; dim < d; ++dim) {
      mid[dim] = f.lo[dim] + (f.hi[dim] - f.lo[dim]) / 2;
    }
    for (const auto& [code, child] : node.children) {
      bool intersects = true;
      Frame cf;
      cf.node = child;
      cf.lo.resize(d);
      cf.hi.resize(d);
      for (size_t dim = 0; dim < d; ++dim) {
        if (code & (uint32_t{1} << dim)) {
          cf.lo[dim] = mid[dim] + 1;
          cf.hi[dim] = f.hi[dim];
        } else {
          cf.lo[dim] = f.lo[dim];
          cf.hi[dim] = mid[dim];
        }
      }
      for (size_t dim : check_dims) {
        const ValueRange& r = query.range(dim);
        if (cf.hi[dim] < r.lo || cf.lo[dim] > r.hi) {
          intersects = false;
          break;
        }
      }
      if (intersects) stack.push_back(std::move(cf));
    }
  }
  // Scan leaves in physical order for locality.
  std::sort(leaf_hits.begin(), leaf_hits.end());
  if (stats != nullptr) stats->index_ns += index_time.ElapsedNanos();

  const Stopwatch scan;
  for (const auto& [leaf_id, contained] : leaf_hits) {
    const Leaf& leaf = leaves_[leaf_id];
    ScanRange(data_, query, leaf.begin, leaf.end, contained, check_dims,
              visitor, stats);
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

size_t HyperoctreeIndex::IndexSizeBytes() const {
  size_t bytes = nodes_.size() * sizeof(Node);
  for (const auto& node : nodes_) {
    bytes += node.children.size() * sizeof(std::pair<uint32_t, uint32_t>);
  }
  bytes += leaves_.size() * sizeof(Leaf);
  for (const auto& leaf : leaves_) {
    bytes += (leaf.min.size() + leaf.max.size()) * sizeof(Value);
  }
  return bytes;
}

FLOOD_DEFINE_EXECUTE_DISPATCH(HyperoctreeIndex);

namespace {
const IndexRegistrar kRegistrar(
    "octree", {"hyperoctree"},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      HyperoctreeIndex::Options o;
      o.page_size = static_cast<size_t>(
          opts.GetInt("page_size", static_cast<int64_t>(o.page_size)));
      o.max_depth = static_cast<int>(opts.GetInt("max_depth", o.max_depth));
      return std::unique_ptr<MultiDimIndex>(new HyperoctreeIndex(o));
    });
}  // namespace

}  // namespace flood
