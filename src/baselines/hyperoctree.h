#ifndef FLOOD_BASELINES_HYPEROCTREE_H_
#define FLOOD_BASELINES_HYPEROCTREE_H_

#include <vector>

#include "query/multidim_index.h"

namespace flood {

/// Baseline 6 (§7.2, App. A): recursively subdivides space equally into 2^d
/// hyperoctants until each page holds at most `page_size` points. Children
/// are stored sparsely (only populated octants materialize), pages are laid
/// out by an in-order traversal, and every leaf keeps per-dimension min/max
/// metadata plus its physical range.
class HyperoctreeIndex final : public StorageBackedIndex {
 public:
  struct Options {
    size_t page_size = 1024;
    int max_depth = 32;  ///< Subdivision guard for pathological data.
  };

  HyperoctreeIndex() = default;
  explicit HyperoctreeIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "Hyperoctree"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override;

  size_t num_leaves() const { return leaves_.size(); }

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override {
    return {{"num_leaves", static_cast<double>(num_leaves())}};
  }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  struct Node {
    bool is_leaf = false;
    uint32_t leaf_id = 0;  ///< Valid when is_leaf.
    /// Sparse child list: (octant code, node id), sorted by code.
    std::vector<std::pair<uint32_t, uint32_t>> children;
  };

  struct Leaf {
    size_t begin = 0;
    size_t end = 0;
    std::vector<Value> min;  ///< Per-dim data minimum within the page.
    std::vector<Value> max;
  };

  /// Recursive build over row spans of `rows`; returns node id.
  uint32_t BuildNode(const std::vector<std::vector<Value>>& cols,
                     std::vector<RowId>& rows, size_t begin, size_t end,
                     std::vector<Value>& box_lo, std::vector<Value>& box_hi,
                     int depth, std::vector<RowId>& layout);

  Options options_;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
  std::vector<Value> root_lo_;
  std::vector<Value> root_hi_;
};

}  // namespace flood

#endif  // FLOOD_BASELINES_HYPEROCTREE_H_
