#include "baselines/kd_tree.h"

#include "api/index_registry.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

Status KdTreeIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");

  dim_order_ = ctx.DimsBySelectivity(d);
  std::vector<std::vector<Value>> cols(d);
  for (size_t dim = 0; dim < d; ++dim) cols[dim] = table.DecodeColumn(dim);

  std::vector<RowId> rows(n);
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<RowId> layout;
  layout.reserve(n);
  nodes_.clear();
  leaves_.clear();
  BuildNode(cols, rows, 0, n, 0, 0, layout);

  InitStorage(table, &layout, ctx);
  return Status::OK();
}

uint32_t KdTreeIndex::BuildNode(const std::vector<std::vector<Value>>& cols,
                                std::vector<RowId>& rows, size_t begin,
                                size_t end, size_t order_pos,
                                int dims_exhausted,
                                std::vector<RowId>& layout) {
  const size_t d = cols.size();
  const uint32_t node_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});

  // Leaf if small enough or every dimension in the cycle is constant.
  if (end - begin <= options_.page_size ||
      dims_exhausted >= static_cast<int>(d)) {
    Leaf leaf;
    leaf.begin = layout.size();
    leaf.min.assign(d, kValueMax);
    leaf.max.assign(d, kValueMin);
    for (size_t i = begin; i < end; ++i) {
      const RowId r = rows[i];
      layout.push_back(r);
      for (size_t dim = 0; dim < d; ++dim) {
        const Value v = cols[dim][static_cast<size_t>(r)];
        leaf.min[dim] = std::min(leaf.min[dim], v);
        leaf.max[dim] = std::max(leaf.max[dim], v);
      }
    }
    leaf.end = layout.size();
    nodes_[node_id].split_dim = -1;
    nodes_[node_id].leaf_id = static_cast<uint32_t>(leaves_.size());
    leaves_.push_back(std::move(leaf));
    return node_id;
  }

  const size_t dim = dim_order_[order_pos % d];
  const size_t next_pos = order_pos + 1;

  // Median split value of `dim` in this span.
  const size_t mid_rank = begin + (end - begin) / 2;
  std::nth_element(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(mid_rank),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&cols, dim](RowId a, RowId b) {
        return cols[dim][static_cast<size_t>(a)] <
               cols[dim][static_cast<size_t>(b)];
      });
  const Value split = cols[dim][static_cast<size_t>(rows[mid_rank])];

  // Partition strictly-less to the left; if everything collapses to one
  // side the dimension has (effectively) one value here — skip it (App. A).
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&cols, dim, split](RowId r) {
        return cols[dim][static_cast<size_t>(r)] < split;
      });
  const size_t mid = static_cast<size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) {
    // All values >= split (or < split): constant or near-constant dim.
    nodes_.pop_back();
    return BuildNode(cols, rows, begin, end, next_pos, dims_exhausted + 1,
                     layout);
  }

  nodes_[node_id].split_dim = static_cast<int32_t>(dim);
  nodes_[node_id].split_value = split;
  const uint32_t left =
      BuildNode(cols, rows, begin, mid, next_pos, 0, layout);
  const uint32_t right =
      BuildNode(cols, rows, mid, end, next_pos, 0, layout);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

template <typename V>
void KdTreeIndex::ExecuteT(const Query& query, V& visitor,
                           QueryStats* stats) const {
  const Stopwatch total;
  const std::vector<size_t> check_dims = FilteredDims(query);

  const Stopwatch index_time;
  std::vector<std::pair<uint32_t, bool>> leaf_hits;  // (leaf id, contained)
  std::vector<uint32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (stats != nullptr) ++stats->cells_visited;
    if (node.split_dim < 0) {
      const Leaf& leaf = leaves_[node.leaf_id];
      bool intersects = true;
      bool contained = true;
      for (size_t dim : check_dims) {
        const ValueRange& r = query.range(dim);
        if (leaf.max[dim] < r.lo || leaf.min[dim] > r.hi) {
          intersects = false;
          break;
        }
        contained =
            contained && r.lo <= leaf.min[dim] && leaf.max[dim] <= r.hi;
      }
      if (intersects) leaf_hits.emplace_back(node.leaf_id, contained);
      continue;
    }
    const size_t dim = static_cast<size_t>(node.split_dim);
    const ValueRange& r = query.range(dim);
    // Left subtree: values < split; right: values >= split.
    if (r.lo < node.split_value) stack.push_back(node.left);
    if (r.hi >= node.split_value) stack.push_back(node.right);
  }
  std::sort(leaf_hits.begin(), leaf_hits.end());
  if (stats != nullptr) stats->index_ns += index_time.ElapsedNanos();

  const Stopwatch scan;
  for (const auto& [leaf_id, contained] : leaf_hits) {
    const Leaf& leaf = leaves_[leaf_id];
    ScanRange(data_, query, leaf.begin, leaf.end, contained, check_dims,
              visitor, stats);
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

size_t KdTreeIndex::IndexSizeBytes() const {
  size_t bytes = nodes_.size() * sizeof(Node) + leaves_.size() * sizeof(Leaf);
  for (const auto& leaf : leaves_) {
    bytes += (leaf.min.size() + leaf.max.size()) * sizeof(Value);
  }
  return bytes;
}

FLOOD_DEFINE_EXECUTE_DISPATCH(KdTreeIndex);

namespace {
const IndexRegistrar kRegistrar(
    "kdtree", {},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      KdTreeIndex::Options o;
      o.page_size = static_cast<size_t>(
          opts.GetInt("page_size", static_cast<int64_t>(o.page_size)));
      return std::unique_ptr<MultiDimIndex>(new KdTreeIndex(o));
    });
}  // namespace

}  // namespace flood
