#ifndef FLOOD_BASELINES_KD_TREE_H_
#define FLOOD_BASELINES_KD_TREE_H_

#include <vector>

#include "query/multidim_index.h"

namespace flood {

/// Baseline 7 (§7.2, App. A): k-d tree partitioning space at the median
/// value of each dimension, dimensions cycled round-robin in order of
/// decreasing workload selectivity. A dimension whose remaining points all
/// share one value is dropped from further partitioning. Pages are laid out
/// in in-order traversal order; leaves keep per-dim min/max and physical
/// ranges.
class KdTreeIndex final : public StorageBackedIndex {
 public:
  struct Options {
    size_t page_size = 1024;
  };

  KdTreeIndex() = default;
  explicit KdTreeIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "KdTree"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override;

  size_t num_leaves() const { return leaves_.size(); }

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override {
    return {{"num_leaves", static_cast<double>(num_leaves())}};
  }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  struct Node {
    int32_t split_dim = -1;  ///< -1 for leaves.
    Value split_value = 0;   ///< Left: v < split_value; right: v >= split.
    uint32_t left = 0;
    uint32_t right = 0;
    uint32_t leaf_id = 0;
  };

  struct Leaf {
    size_t begin = 0;
    size_t end = 0;
    std::vector<Value> min;
    std::vector<Value> max;
  };

  uint32_t BuildNode(const std::vector<std::vector<Value>>& cols,
                     std::vector<RowId>& rows, size_t begin, size_t end,
                     size_t order_pos, int dims_exhausted,
                     std::vector<RowId>& layout);

  Options options_;
  std::vector<size_t> dim_order_;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
};

}  // namespace flood

#endif  // FLOOD_BASELINES_KD_TREE_H_
