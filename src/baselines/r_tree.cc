#include "baselines/r_tree.h"

#include "api/index_registry.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

void RTreeIndex::StrTile(const std::vector<std::vector<Value>>& cols,
                         std::vector<RowId>& rows, size_t begin, size_t end,
                         size_t dim_pos, size_t target_leaves,
                         std::vector<std::pair<size_t, size_t>>& leaf_spans) {
  const size_t d = cols.size();
  const size_t n = end - begin;
  if (n == 0) return;
  if (dim_pos + 1 >= d || target_leaves <= 1) {
    // Final dimension: sort and chop into leaves.
    std::sort(rows.begin() + static_cast<std::ptrdiff_t>(begin),
              rows.begin() + static_cast<std::ptrdiff_t>(end),
              [&cols, dim_pos, d](RowId a, RowId b) {
                const size_t dim = std::min(dim_pos, d - 1);
                return cols[dim][static_cast<size_t>(a)] <
                       cols[dim][static_cast<size_t>(b)];
              });
    for (size_t i = begin; i < end; i += options_.leaf_capacity) {
      leaf_spans.emplace_back(i, std::min(end, i + options_.leaf_capacity));
    }
    return;
  }

  // Slab count: S = ceil(P^(1/k)) with k dims remaining (STR).
  const size_t dims_remaining = d - dim_pos;
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             std::pow(static_cast<double>(target_leaves),
                      1.0 / static_cast<double>(dims_remaining)))));
  std::sort(rows.begin() + static_cast<std::ptrdiff_t>(begin),
            rows.begin() + static_cast<std::ptrdiff_t>(end),
            [&cols, dim_pos](RowId a, RowId b) {
              return cols[dim_pos][static_cast<size_t>(a)] <
                     cols[dim_pos][static_cast<size_t>(b)];
            });
  const size_t per_slab = (n + slabs - 1) / slabs;
  const size_t leaves_per_slab = (target_leaves + slabs - 1) / slabs;
  for (size_t s = 0; s < slabs; ++s) {
    const size_t sb = begin + s * per_slab;
    if (sb >= end) break;
    const size_t se = std::min(end, sb + per_slab);
    StrTile(cols, rows, sb, se, dim_pos + 1, leaves_per_slab, leaf_spans);
  }
}

Status RTreeIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");

  std::vector<std::vector<Value>> cols(d);
  for (size_t dim = 0; dim < d; ++dim) cols[dim] = table.DecodeColumn(dim);

  std::vector<RowId> rows(n);
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<std::pair<size_t, size_t>> leaf_spans;
  const size_t target_leaves =
      (n + options_.leaf_capacity - 1) / options_.leaf_capacity;
  StrTile(cols, rows, 0, n, 0, target_leaves, leaf_spans);
  InitStorage(table, &rows, ctx);

  // Leaf nodes with MBRs over the (reordered) data.
  nodes_.clear();
  mbr_.clear();
  num_leaves_ = leaf_spans.size();
  auto push_mbr = [this, d]() {
    const uint32_t off = static_cast<uint32_t>(mbr_.size());
    mbr_.resize(mbr_.size() + d * 2);
    for (size_t dim = 0; dim < d; ++dim) {
      mbr_[off + dim * 2] = kValueMax;
      mbr_[off + dim * 2 + 1] = kValueMin;
    }
    return off;
  };

  std::vector<uint32_t> level;  // Node ids of the level being built.
  for (const auto& [begin, end] : leaf_spans) {
    Node node;
    node.mbr_offset = push_mbr();
    node.is_leaf_level = 1;
    node.begin = begin;
    node.end = end;
    for (size_t dim = 0; dim < d; ++dim) {
      Value mn = kValueMax;
      Value mx = kValueMin;
      data_.column(dim).ForEach(begin, end, [&](size_t, Value v) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      });
      mbr_[node.mbr_offset + dim * 2] = mn;
      mbr_[node.mbr_offset + dim * 2 + 1] = mx;
    }
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }

  // Pack upper levels; children of one parent are consecutive in `level`.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level.size(); i += options_.fanout) {
      const size_t end_i = std::min(level.size(), i + options_.fanout);
      Node parent;
      parent.mbr_offset = push_mbr();
      parent.is_leaf_level = 0;
      parent.first_child = level[i];
      parent.num_children = static_cast<uint32_t>(end_i - i);
      for (size_t c = i; c < end_i; ++c) {
        const Node& child = nodes_[level[c]];
        for (size_t dim = 0; dim < d; ++dim) {
          mbr_[parent.mbr_offset + dim * 2] =
              std::min(mbr_[parent.mbr_offset + dim * 2],
                       mbr_[child.mbr_offset + dim * 2]);
          mbr_[parent.mbr_offset + dim * 2 + 1] =
              std::max(mbr_[parent.mbr_offset + dim * 2 + 1],
                       mbr_[child.mbr_offset + dim * 2 + 1]);
        }
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.empty() ? 0 : level[0];
  return Status::OK();
}

template <typename V>
void RTreeIndex::ExecuteT(const Query& query, V& visitor,
                          QueryStats* stats) const {
  const Stopwatch total;
  const std::vector<size_t> check_dims = FilteredDims(query);

  const Stopwatch index_time;
  std::vector<std::pair<size_t, bool>> hits;  // (node id, contained)
  std::vector<uint32_t> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (stats != nullptr) ++stats->cells_visited;
    bool intersects = true;
    bool contained = true;
    for (size_t dim : check_dims) {
      const Value mn = mbr_[node.mbr_offset + dim * 2];
      const Value mx = mbr_[node.mbr_offset + dim * 2 + 1];
      const ValueRange& r = query.range(dim);
      if (mx < r.lo || mn > r.hi) {
        intersects = false;
        break;
      }
      contained = contained && r.lo <= mn && mx <= r.hi;
    }
    if (!intersects) continue;
    if (node.is_leaf_level) {
      hits.emplace_back(id, contained);
    } else {
      for (uint32_t c = 0; c < node.num_children; ++c) {
        stack.push_back(node.first_child + c);
      }
    }
  }
  std::sort(hits.begin(), hits.end(),
            [this](const auto& a, const auto& b) {
              return nodes_[a.first].begin < nodes_[b.first].begin;
            });
  if (stats != nullptr) stats->index_ns += index_time.ElapsedNanos();

  const Stopwatch scan;
  for (const auto& [id, contained] : hits) {
    const Node& node = nodes_[id];
    ScanRange(data_, query, node.begin, node.end, contained, check_dims,
              visitor, stats);
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

size_t RTreeIndex::IndexSizeBytes() const {
  return nodes_.size() * sizeof(Node) + mbr_.size() * sizeof(Value);
}

FLOOD_DEFINE_EXECUTE_DISPATCH(RTreeIndex);

namespace {
const IndexRegistrar kRegistrar(
    "rtree", {"rstartree"},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      RTreeIndex::Options o;
      // page_size doubles as leaf_capacity so one bag tunes every
      // page-structured index.
      o.leaf_capacity = static_cast<size_t>(opts.GetInt(
          "leaf_capacity",
          opts.GetInt("page_size", static_cast<int64_t>(o.leaf_capacity))));
      o.fanout = static_cast<size_t>(
          opts.GetInt("fanout", static_cast<int64_t>(o.fanout)));
      return std::unique_ptr<MultiDimIndex>(new RTreeIndex(o));
    });
}  // namespace

}  // namespace flood
