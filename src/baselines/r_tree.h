#ifndef FLOOD_BASELINES_R_TREE_H_
#define FLOOD_BASELINES_R_TREE_H_

#include <vector>

#include "query/multidim_index.h"

namespace flood {

/// Baseline 8 (§7.2): read-optimized, bulk-loaded R-tree. The paper
/// benchmarks libspatialindex's R*-tree bulk-loaded for reads; offline we
/// build our own with Sort-Tile-Recursive packing (the standard bulk-load
/// that produces near-optimal read-only R-trees) and the usual recursive
/// MBR-intersection search. Leaves are physical point ranges in tiling
/// order. See DESIGN.md "Substitutions".
class RTreeIndex final : public StorageBackedIndex {
 public:
  struct Options {
    size_t leaf_capacity = 256;
    size_t fanout = 16;
  };

  RTreeIndex() = default;
  explicit RTreeIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "RStarTree"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override;

  size_t num_leaves() const { return num_leaves_; }
  int height() const { return height_; }

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override {
    return {{"num_leaves", static_cast<double>(num_leaves_)},
            {"height", static_cast<double>(height_)}};
  }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  struct Node {
    // MBR flattened as [dim][0=min,1=max] into mbr_ at mbr_offset.
    uint32_t mbr_offset = 0;
    uint32_t first_child = 0;  ///< Node id or leaf id (level 0).
    uint32_t num_children = 0;
    uint32_t is_leaf_level = 0;
    size_t begin = 0;  ///< Physical range (leaves only).
    size_t end = 0;
  };

  /// Recursive STR tiling of rows[begin:end) by dims[dim_pos:].
  void StrTile(const std::vector<std::vector<Value>>& cols,
               std::vector<RowId>& rows, size_t begin, size_t end,
               size_t dim_pos, size_t target_leaves,
               std::vector<std::pair<size_t, size_t>>& leaf_spans);

  Options options_;
  std::vector<Node> nodes_;
  std::vector<Value> mbr_;
  uint32_t root_ = 0;
  size_t num_leaves_ = 0;
  int height_ = 0;
};

}  // namespace flood

#endif  // FLOOD_BASELINES_R_TREE_H_
