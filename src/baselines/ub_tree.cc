#include "baselines/ub_tree.h"

#include "api/index_registry.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

Status UbTreeIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");

  mapper_ = std::make_unique<ZOrderMapper>(table, ctx.DimsBySelectivity(d));

  std::vector<uint64_t> z(n);
  {
    std::vector<std::vector<Value>> cols(d);
    for (size_t i = 0; i < d; ++i) {
      cols[i] = table.DecodeColumn(mapper_->dim_order()[i]);
    }
    std::vector<Value> row(d);
    for (size_t r = 0; r < n; ++r) {
      for (size_t i = 0; i < d; ++i) row[i] = cols[i][r];
      z[r] = mapper_->EncodeValues(row.data());
    }
  }
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), RowId{0});
  std::stable_sort(perm.begin(), perm.end(), [&z](RowId a, RowId b) {
    return z[static_cast<size_t>(a)] < z[static_cast<size_t>(b)];
  });
  InitStorage(table, &perm, ctx);

  z_.resize(n);
  for (size_t i = 0; i < n; ++i) z_[i] = z[static_cast<size_t>(perm[i])];
  return Status::OK();
}

std::pair<uint64_t, uint64_t> UbTreeIndex::QueryCorners(
    const Query& query) const {
  const size_t d = mapper_->curve().num_dims();
  uint32_t lo[64];
  uint32_t hi[64];
  for (size_t i = 0; i < d; ++i) {
    const size_t table_dim = mapper_->dim_order()[i];
    if (table_dim < query.num_dims() && query.IsFiltered(table_dim)) {
      lo[i] = mapper_->ToCoord(i, query.range(table_dim).lo);
      hi[i] = mapper_->ToCoord(i, query.range(table_dim).hi);
    } else {
      lo[i] = 0;
      hi[i] = mapper_->ToCoord(i, kValueMax);
    }
  }
  return {mapper_->curve().Encode(lo), mapper_->curve().Encode(hi)};
}

template <typename V>
void UbTreeIndex::ExecuteT(const Query& query, V& visitor,
                           QueryStats* stats) const {
  const Stopwatch total;
  const Stopwatch index_time;
  const auto [zmin, zmax] = QueryCorners(query);
  const ZOrderCurve& curve = mapper_->curve();

  size_t idx = static_cast<size_t>(
      std::lower_bound(z_.begin(), z_.end(), zmin) - z_.begin());
  const size_t end_idx = static_cast<size_t>(
      std::upper_bound(z_.begin(), z_.end(), zmax) - z_.begin());
  const std::vector<size_t> check_dims = FilteredDims(query);
  if (stats != nullptr) stats->index_ns += index_time.ElapsedNanos();

  const Stopwatch scan;
  while (idx < end_idx) {
    if (curve.InBox(z_[idx], zmin, zmax)) {
      // Consume the in-box run. The Z-coordinates are coarsened raw values
      // (shifted), so per-value filter checks still apply.
      size_t run_end = idx + 1;
      while (run_end < end_idx && curve.InBox(z_[run_end], zmin, zmax)) {
        ++run_end;
      }
      if (stats != nullptr) ++stats->cells_visited;
      ScanRange(data_, query, idx, run_end, /*exact=*/false, check_dims,
                visitor, stats);
      idx = run_end;
    } else {
      // Skip ahead to the next Z-value inside the box ("getNextZ").
      const std::optional<uint64_t> next =
          curve.NextInBox(z_[idx], zmin, zmax);
      if (!next.has_value()) break;
      FLOOD_DCHECK(*next > z_[idx]);
      idx = static_cast<size_t>(
          std::lower_bound(z_.begin() + static_cast<std::ptrdiff_t>(idx),
                           z_.begin() + static_cast<std::ptrdiff_t>(end_idx),
                           *next) -
          z_.begin());
    }
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

FLOOD_DEFINE_EXECUTE_DISPATCH(UbTreeIndex);

namespace {
const IndexRegistrar kRegistrar(
    "ubtree", {},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      UbTreeIndex::Options o;
      o.page_size = static_cast<size_t>(
          opts.GetInt("page_size", static_cast<int64_t>(o.page_size)));
      return std::unique_ptr<MultiDimIndex>(new UbTreeIndex(o));
    });
}  // namespace

}  // namespace flood
