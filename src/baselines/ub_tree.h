#ifndef FLOOD_BASELINES_UB_TREE_H_
#define FLOOD_BASELINES_UB_TREE_H_

#include <memory>
#include <vector>

#include "core/zorder_curve.h"
#include "query/multidim_index.h"

namespace flood {

/// Baseline 5 (§7.2, App. A): the UB-tree also orders points by Z-value,
/// but during a query it detects when the curve leaves the query rectangle
/// and uses the BIGMIN ("next Z-value in box") computation to jump ahead,
/// avoiding the Z-order index's in-between pages at the cost of computing
/// Z-codes while scanning.
class UbTreeIndex final : public StorageBackedIndex {
 public:
  struct Options {
    size_t page_size = 1024;
  };

  UbTreeIndex() = default;
  explicit UbTreeIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "UBtree"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override {
    return z_.size() * sizeof(uint64_t) + sizeof(ZOrderMapper);
  }

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override {
    return {{"num_keys", static_cast<double>(z_.size())}};
  }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  std::pair<uint64_t, uint64_t> QueryCorners(const Query& query) const;

  Options options_;
  std::unique_ptr<ZOrderMapper> mapper_;
  std::vector<uint64_t> z_;  // Sorted per-row Z-codes (the UB-tree keys).
};

}  // namespace flood

#endif  // FLOOD_BASELINES_UB_TREE_H_
