#include "baselines/zorder_index.h"

#include "api/index_registry.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "query/scan_util.h"

namespace flood {

Status ZOrderIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");

  mapper_ = std::make_unique<ZOrderMapper>(table,
                                           ctx.DimsBySelectivity(d));

  // Z-code per row, then sort rows by code.
  std::vector<uint64_t> z(n);
  {
    std::vector<std::vector<Value>> cols(d);
    for (size_t i = 0; i < d; ++i) {
      cols[i] = table.DecodeColumn(mapper_->dim_order()[i]);
    }
    std::vector<Value> row(d);
    for (size_t r = 0; r < n; ++r) {
      for (size_t i = 0; i < d; ++i) row[i] = cols[i][r];
      z[r] = mapper_->EncodeValues(row.data());
    }
  }
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), RowId{0});
  std::stable_sort(perm.begin(), perm.end(), [&z](RowId a, RowId b) {
    return z[static_cast<size_t>(a)] < z[static_cast<size_t>(b)];
  });
  InitStorage(table, &perm, ctx);

  // Page metadata over the sorted order.
  const size_t page = std::max<size_t>(1, options_.page_size);
  const size_t num_pages = (n + page - 1) / page;
  page_min_z_.resize(num_pages);
  page_begin_.resize(num_pages + 1);
  page_bounds_.assign(num_pages * d * 2, 0);
  for (size_t p = 0; p < num_pages; ++p) {
    const size_t begin = p * page;
    const size_t end = std::min(n, begin + page);
    page_begin_[p] = begin;
    page_min_z_[p] = z[static_cast<size_t>(perm[begin])];
    for (size_t dim = 0; dim < d; ++dim) {
      Value mn = kValueMax;
      Value mx = kValueMin;
      data_.column(dim).ForEach(begin, end, [&](size_t, Value v) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      });
      page_bounds_[(p * d + dim) * 2] = mn;
      page_bounds_[(p * d + dim) * 2 + 1] = mx;
    }
  }
  page_begin_[num_pages] = n;
  return Status::OK();
}

std::pair<uint64_t, uint64_t> ZOrderIndex::QueryCorners(
    const Query& query) const {
  const size_t d = mapper_->curve().num_dims();
  uint32_t lo[64];
  uint32_t hi[64];
  for (size_t i = 0; i < d; ++i) {
    const size_t table_dim = mapper_->dim_order()[i];
    if (table_dim < query.num_dims() && query.IsFiltered(table_dim)) {
      lo[i] = mapper_->ToCoord(i, query.range(table_dim).lo);
      hi[i] = mapper_->ToCoord(i, query.range(table_dim).hi);
    } else {
      lo[i] = 0;
      hi[i] = mapper_->ToCoord(i, kValueMax);
    }
  }
  return {mapper_->curve().Encode(lo), mapper_->curve().Encode(hi)};
}

template <typename V>
void ZOrderIndex::ExecuteT(const Query& query, V& visitor,
                           QueryStats* stats) const {
  const Stopwatch total;
  const Stopwatch index_time;
  const auto [zmin, zmax] = QueryCorners(query);

  // Pages whose z span intersects [zmin, zmax]. The page before the first
  // page-minimum >= zmin can still hold zmin (duplicate codes straddle page
  // boundaries), so step back one page from the lower bound.
  const auto first_it = std::lower_bound(page_min_z_.begin(),
                                         page_min_z_.end(), zmin);
  size_t p = static_cast<size_t>(first_it - page_min_z_.begin());
  if (p > 0) --p;
  const std::vector<size_t> check_dims = FilteredDims(query);
  const size_t d = data_.num_dims();
  if (stats != nullptr) stats->index_ns += index_time.ElapsedNanos();

  const Stopwatch scan;
  for (; p < page_min_z_.size() && page_min_z_[p] <= zmax; ++p) {
    if (stats != nullptr) ++stats->cells_visited;
    // Page-level min/max pruning.
    bool intersects = true;
    bool contained = true;
    for (size_t dim : check_dims) {
      const Value mn = page_bounds_[(p * d + dim) * 2];
      const Value mx = page_bounds_[(p * d + dim) * 2 + 1];
      const ValueRange& r = query.range(dim);
      if (mx < r.lo || mn > r.hi) {
        intersects = false;
        break;
      }
      contained = contained && r.lo <= mn && mx <= r.hi;
    }
    if (!intersects) continue;
    ScanRange(data_, query, page_begin_[p], page_begin_[p + 1],
              /*exact=*/contained, check_dims, visitor, stats);
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

size_t ZOrderIndex::IndexSizeBytes() const {
  return page_min_z_.size() * sizeof(uint64_t) +
         page_begin_.size() * sizeof(size_t) +
         page_bounds_.size() * sizeof(Value) + sizeof(ZOrderMapper);
}

FLOOD_DEFINE_EXECUTE_DISPATCH(ZOrderIndex);

std::vector<std::pair<std::string, double>> ZOrderIndex::DebugProperties()
    const {
  return {{"num_pages", static_cast<double>(page_min_z_.size())}};
}

namespace {
const IndexRegistrar kRegistrar(
    "zorder", {},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      ZOrderIndex::Options o;
      o.page_size = static_cast<size_t>(
          opts.GetInt("page_size", static_cast<int64_t>(o.page_size)));
      return std::unique_ptr<MultiDimIndex>(new ZOrderIndex(o));
    });
}  // namespace

}  // namespace flood
