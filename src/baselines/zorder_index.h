#ifndef FLOOD_BASELINES_ZORDER_INDEX_H_
#define FLOOD_BASELINES_ZORDER_INDEX_H_

#include <memory>
#include <vector>

#include "core/zorder_curve.h"
#include "query/multidim_index.h"

namespace flood {

/// Baseline 4 (§7.2, App. A): points sorted by Z-order value, contiguous
/// chunks grouped into pages; each page stores per-dimension min/max
/// metadata. A query walks every page between the Z-codes of the query
/// rectangle's corners and scans a page only if its min/max box intersects
/// the query (Redshift-style Z-encoding).
class ZOrderIndex final : public StorageBackedIndex {
 public:
  struct Options {
    size_t page_size = 1024;
  };

  ZOrderIndex() = default;
  explicit ZOrderIndex(Options options) : options_(options) {}

  std::string_view name() const override { return "ZOrder"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override;

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override;

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  /// Z-codes of the query rectangle's corners, mapped through the curve.
  std::pair<uint64_t, uint64_t> QueryCorners(const Query& query) const;

  Options options_;
  std::unique_ptr<ZOrderMapper> mapper_;
  std::vector<uint64_t> page_min_z_;   // First Z-code in each page.
  std::vector<size_t> page_begin_;     // Row offset of each page (+ end).
  std::vector<Value> page_bounds_;     // [page][dim][0=min,1=max] flattened.
};

}  // namespace flood

#endif  // FLOOD_BASELINES_ZORDER_INDEX_H_
