#ifndef FLOOD_COMMON_BYTES_H_
#define FLOOD_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace flood {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Chainable: feed the previous result back through `seed`.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Appends little-endian fixed-width primitives to a caller-owned string.
/// The writer never fails; the paired ByteReader carries the error state.
/// This is the raw-page substrate of the persistence layer: Column /
/// Dictionary / Table serialize through it, src/persist frames the result
/// into checksummed sections.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }

  void PutBytes(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

  /// Length-prefixed (u32) string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void PutLE(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_->append(buf, sizeof(T));
  }

  std::string* out_;
};

/// Bounds-checked little-endian reader over a byte span it does not own.
/// Reads past the end return zero values and latch `ok() == false`; callers
/// validate `ok()` (and sanity-check any count they are about to allocate
/// for) instead of checking every individual read. Truncated or corrupt
/// input can therefore never read out of bounds — it only poisons the
/// reader.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : pos_(static_cast<const uint8_t*>(data)),
        end_(static_cast<const uint8_t*>(data) + size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - pos_); }

  /// Latches the failure state (callers flag semantic errors the bounds
  /// checks can't see, e.g. an impossible element count).
  void MarkFailed() { ok_ = false; }

  uint8_t GetU8() {
    if (!Ensure(1)) return 0;
    return *pos_++;
  }
  uint32_t GetU32() { return GetLE<uint32_t>(); }
  uint64_t GetU64() { return GetLE<uint64_t>(); }
  int64_t GetI64() { return static_cast<int64_t>(GetLE<uint64_t>()); }
  double GetF64() {
    const uint64_t bits = GetLE<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool GetBytes(void* out, size_t n) {
    if (!Ensure(n)) return false;
    std::memcpy(out, pos_, n);
    pos_ += n;
    return true;
  }

  /// Length-prefixed (u32) string; empty on failure.
  std::string GetString() {
    const uint32_t n = GetU32();
    if (!Ensure(n)) return std::string();
    std::string s(reinterpret_cast<const char*>(pos_), n);
    pos_ += n;
    return s;
  }

 private:
  template <typename T>
  T GetLE() {
    if (!Ensure(sizeof(T))) return T{0};
    T v{0};
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(pos_[i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  bool Ensure(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* pos_;
  const uint8_t* end_;
  bool ok_ = true;
};

}  // namespace flood

#endif  // FLOOD_COMMON_BYTES_H_
