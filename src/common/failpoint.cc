#include "common/failpoint.h"

#if defined(FLOOD_FAILPOINTS)

#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/rng.h"

namespace flood {
namespace failpoint {
namespace {

/// When a site's trigger fires.
enum class When : uint8_t {
  kAlways,    ///< Every hit.
  kOnHit,     ///< Exactly once, on hit number `n`.
  kEveryNth,  ///< Hits n, 2n, 3n, ...
  kProb,      ///< Each hit independently with probability `p`.
};

struct SiteState {
  bool armed = false;
  Injection::Kind kind = Injection::Kind::kNone;
  int err = 0;
  double factor = 0.0;
  /// kEintr: storm length — inject this many consecutive EINTRs, then let
  /// one call through (so a retrying site always makes progress), then
  /// storm again. `storm_left` is the per-storm countdown.
  uint64_t storm_len = 1;
  uint64_t storm_left = 1;
  When when = When::kAlways;
  uint64_t n = 0;
  double p = 0.0;
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
  Rng rng{0xF41173ULL};  // "FAIL..": deterministic default schedule.
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // Leaked: outlives static dtors.
  return *r;
}

/// Errno names tests actually inject; anything else can be given numerically.
int ErrnoFromName(std::string_view name) {
  struct Entry {
    const char* name;
    int value;
  };
  static constexpr Entry kTable[] = {
      {"EIO", EIO},           {"ENOSPC", ENOSPC},
      {"EINTR", EINTR},       {"EMFILE", EMFILE},
      {"ENFILE", ENFILE},     {"EBADF", EBADF},
      {"EPIPE", EPIPE},       {"ECONNRESET", ECONNRESET},
      {"ECONNREFUSED", ECONNREFUSED},
      {"ETIMEDOUT", ETIMEDOUT},
      {"EACCES", EACCES},     {"ENOENT", ENOENT},
      {"ENOMEM", ENOMEM},     {"ENOBUFS", ENOBUFS},
      {"EDQUOT", EDQUOT},     {"EFBIG", EFBIG},
      {"EROFS", EROFS},       {"EAGAIN", EAGAIN},
  };
  for (const Entry& e : kTable) {
    if (name == e.name) return e.value;
  }
  if (!name.empty() && name.find_first_not_of("0123456789") ==
                           std::string_view::npos) {
    return std::atoi(std::string(name).c_str());
  }
  return -1;
}

Status BadSpec(std::string_view spec, const std::string& why) {
  return Status::InvalidArgument("failpoint spec \"" + std::string(spec) +
                                 "\": " + why);
}

bool ParseFraction(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

bool ParseCount(std::string_view s, uint64_t* out) {
  if (s.empty() ||
      s.find_first_not_of("0123456789") != std::string_view::npos) {
    return false;
  }
  *out = std::strtoull(std::string(s).c_str(), nullptr, 10);
  return true;
}

/// Parses "kind[:arg][@trigger]" into `state` (counters untouched).
/// Caller holds the registry lock; `state->hits` is the site's current hit
/// count (used by @once).
Status ParseAction(std::string_view site, std::string_view action,
                   SiteState* state) {
  std::string_view trigger;
  const size_t at = action.rfind('@');
  if (at != std::string_view::npos) {
    trigger = action.substr(at + 1);
    action = action.substr(0, at);
  }
  std::string_view arg;
  const size_t colon = action.find(':');
  std::string_view kind = action;
  if (colon != std::string_view::npos) {
    arg = action.substr(colon + 1);
    kind = action.substr(0, colon);
  }

  if (kind == "off") {
    if (!arg.empty() || !trigger.empty()) {
      return BadSpec(site, "'off' takes no argument or trigger");
    }
    state->armed = false;
    return Status::OK();
  }
  if (kind == "err") {
    const int err = ErrnoFromName(arg);
    if (err <= 0) {
      return BadSpec(site, "unknown errno \"" + std::string(arg) + "\"");
    }
    state->kind = Injection::Kind::kError;
    state->err = err;
  } else if (kind == "shortwrite" || kind == "shortread" || kind == "short") {
    double frac = 0.0;
    if (!ParseFraction(arg, &frac) || frac <= 0.0 || frac >= 1.0) {
      return BadSpec(site, "short transfer needs a fraction in (0,1), got \"" +
                               std::string(arg) + "\"");
    }
    state->kind = Injection::Kind::kShort;
    state->factor = frac;
  } else if (kind == "eintr") {
    uint64_t storm = 1;
    if (!arg.empty() && (!ParseCount(arg, &storm) || storm == 0)) {
      return BadSpec(site, "eintr storm length must be a positive integer");
    }
    state->kind = Injection::Kind::kEintr;
    state->storm_len = storm;
    state->storm_left = storm;
  } else {
    return BadSpec(site, "unknown action \"" + std::string(kind) + "\"");
  }

  state->when = When::kAlways;
  if (!trigger.empty()) {
    if (trigger == "once") {
      state->when = When::kOnHit;
      state->n = state->hits + 1;
    } else if (trigger.rfind("every:", 0) == 0) {
      uint64_t n = 0;
      if (!ParseCount(trigger.substr(6), &n) || n == 0) {
        return BadSpec(site, "@every: needs a positive integer");
      }
      state->when = When::kEveryNth;
      state->n = n;
    } else if (trigger.rfind("p:", 0) == 0) {
      double p = 0.0;
      if (!ParseFraction(trigger.substr(2), &p) || p <= 0.0 || p > 1.0) {
        return BadSpec(site, "@p: needs a probability in (0,1]");
      }
      state->when = When::kProb;
      state->p = p;
    } else {
      uint64_t n = 0;
      if (!ParseCount(trigger, &n) || n == 0) {
        return BadSpec(site, "unknown trigger \"@" + std::string(trigger) +
                                 "\"");
      }
      state->when = When::kOnHit;
      state->n = n;
    }
  }
  state->armed = true;
  return Status::OK();
}

Status ConfigureLocked(Registry& reg, std::string_view spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) semi = spec.size();
    const std::string_view entry = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return BadSpec(entry, "expected site=action");
    }
    const std::string site(entry.substr(0, eq));
    SiteState& state = reg.sites[site];
    FLOOD_RETURN_IF_ERROR(ParseAction(site, entry.substr(eq + 1), &state));
  }
  return Status::OK();
}

/// One-time bootstrap from the environment, run inside every public entry
/// point. A malformed env spec aborts: silently ignoring it would run a
/// fault-injection CI job with no faults injected.
void EnvInit(Registry& reg) {
  static std::once_flag once;
  std::call_once(once, [&reg] {
    if (const char* seed = std::getenv("FLOOD_FAILPOINTS_SEED")) {
      reg.rng = Rng(std::strtoull(seed, nullptr, 10));
    }
    if (const char* spec = std::getenv("FLOOD_FAILPOINTS")) {
      const Status status = ConfigureLocked(reg, spec);
      FLOOD_CHECK(status.ok());
    }
  });
}

}  // namespace

Injection Check(const char* site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  SiteState& state = reg.sites[site];
  ++state.hits;
  if (!state.armed) return {};

  bool fire = false;
  switch (state.when) {
    case When::kAlways:
      fire = true;
      break;
    case When::kOnHit:
      fire = state.hits == state.n;
      break;
    case When::kEveryNth:
      fire = state.hits % state.n == 0;
      break;
    case When::kProb:
      fire = reg.rng.Bernoulli(state.p);
      break;
  }
  if (!fire) return {};

  Injection inj;
  inj.kind = state.kind;
  inj.err = state.err;
  inj.factor = state.factor;
  if (state.kind == Injection::Kind::kEintr) {
    // Storms are finite so a retrying call site always makes progress:
    // after storm_len consecutive EINTRs one call passes through, then the
    // storm re-arms.
    if (state.storm_left == 0) {
      state.storm_left = state.storm_len;
      return {};
    }
    --state.storm_left;
    inj.err = EINTR;
  }
  ++state.triggers;
  return inj;
}

Status Configure(std::string_view spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  return ConfigureLocked(reg, spec);
}

Status Arm(std::string_view site, std::string_view action) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  SiteState& state = reg.sites[std::string(site)];
  return ParseAction(site, action, &state);
}

void Disarm(std::string_view site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  auto it = reg.sites.find(std::string(site));
  if (it != reg.sites.end()) it->second.armed = false;
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  for (auto& [site, state] : reg.sites) {
    state = SiteState{};
  }
}

void SetSeed(uint64_t seed) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  reg.rng = Rng(seed);
}

uint64_t Hits(std::string_view site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  auto it = reg.sites.find(std::string(site));
  return it == reg.sites.end() ? 0 : it->second.hits;
}

uint64_t Triggers(std::string_view site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  auto it = reg.sites.find(std::string(site));
  return it == reg.sites.end() ? 0 : it->second.triggers;
}

std::vector<std::string> Sites() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  EnvInit(reg);
  std::vector<std::string> out;
  out.reserve(reg.sites.size());
  for (const auto& [site, state] : reg.sites) out.push_back(site);
  return out;
}

// --- Syscall wrappers -------------------------------------------------------

namespace {

/// Bytes a kShort injection lets through: at least 1 (so retry loops make
/// progress), at most n - 1 (so it is genuinely short); n <= 1 can't be
/// shortened and passes through whole.
size_t ShortCount(size_t n, double factor) {
  if (n <= 1) return n;
  size_t k = static_cast<size_t>(static_cast<double>(n) * factor);
  if (k == 0) k = 1;
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace

ssize_t InjectedWrite(const char* site, int fd, const void* buf, size_t n) {
  const Injection inj = Check(site);
  switch (inj.kind) {
    case Injection::Kind::kError:
    case Injection::Kind::kEintr:
      errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
      return -1;
    case Injection::Kind::kShort:
      return ::write(fd, buf, ShortCount(n, inj.factor));
    case Injection::Kind::kNone:
      break;
  }
  return ::write(fd, buf, n);
}

ssize_t InjectedRead(const char* site, int fd, void* buf, size_t n) {
  const Injection inj = Check(site);
  switch (inj.kind) {
    case Injection::Kind::kError:
    case Injection::Kind::kEintr:
      errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
      return -1;
    case Injection::Kind::kShort:
      return ::read(fd, buf, ShortCount(n, inj.factor));
    case Injection::Kind::kNone:
      break;
  }
  return ::read(fd, buf, n);
}

ssize_t InjectedSend(const char* site, int fd, const void* buf, size_t n,
                     int flags) {
  const Injection inj = Check(site);
  switch (inj.kind) {
    case Injection::Kind::kError:
    case Injection::Kind::kEintr:
      errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
      return -1;
    case Injection::Kind::kShort:
      return ::send(fd, buf, ShortCount(n, inj.factor), flags);
    case Injection::Kind::kNone:
      break;
  }
  return ::send(fd, buf, n, flags);
}

ssize_t InjectedRecv(const char* site, int fd, void* buf, size_t n,
                     int flags) {
  const Injection inj = Check(site);
  switch (inj.kind) {
    case Injection::Kind::kError:
    case Injection::Kind::kEintr:
      errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
      return -1;
    case Injection::Kind::kShort:
      return ::recv(fd, buf, ShortCount(n, inj.factor), flags);
    case Injection::Kind::kNone:
      break;
  }
  return ::recv(fd, buf, n, flags);
}

int InjectedFsync(const char* site, int fd) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::fsync(fd);
}

int InjectedFtruncate(const char* site, int fd, off_t length) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::ftruncate(fd, length);
}

int InjectedOpen(const char* site, const char* path, int flags, mode_t mode) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::open(path, flags, mode);
}

int InjectedRename(const char* site, const char* from, const char* to) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::rename(from, to);
}

int InjectedAccept4(const char* site, int fd, struct sockaddr* addr,
                    socklen_t* addrlen, int flags) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::accept4(fd, addr, addrlen, flags);
}

int InjectedEpollWait(const char* site, int epfd, struct epoll_event* events,
                      int maxevents, int timeout_ms) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

int InjectedConnect(const char* site, int fd, const struct sockaddr* addr,
                    socklen_t addrlen) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::connect(fd, addr, addrlen);
}

int InjectedPoll(const char* site, struct pollfd* fds, nfds_t nfds,
                 int timeout_ms) {
  const Injection inj = Check(site);
  if (inj.kind == Injection::Kind::kError ||
      inj.kind == Injection::Kind::kEintr) {
    errno = inj.kind == Injection::Kind::kEintr ? EINTR : inj.err;
    return -1;
  }
  return ::poll(fds, nfds, timeout_ms);
}

}  // namespace failpoint
}  // namespace flood

#endif  // FLOOD_FAILPOINTS
