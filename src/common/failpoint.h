#ifndef FLOOD_COMMON_FAILPOINT_H_
#define FLOOD_COMMON_FAILPOINT_H_

// Deterministic fault injection at syscall seams (see src/common/README.md
// for the full catalog and spec grammar).
//
// A *failpoint* is a named site in the code — "wal.fsync", "serve.send" —
// where a test (or the FLOOD_FAILPOINTS environment variable) can inject a
// hard errno failure, a short read/write, or an EINTR storm, with one-shot,
// every-Nth, or seeded-probabilistic triggers. Sites are threaded through
// every persistence and serving syscall via the Injected* wrappers below.
//
// The whole framework is compiled in only when the FLOOD_FAILPOINTS CMake
// option defines the FLOOD_FAILPOINTS macro. Without it, every wrapper is a
// force-inlined passthrough to the raw syscall and the registry functions
// are constexpr-friendly no-op stubs: release binaries carry no failpoint
// code, no symbols, and no per-call overhead (CI checks the symbol table).

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace flood {
namespace failpoint {

#if defined(FLOOD_FAILPOINTS)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// What an armed failpoint injects when its trigger fires.
struct Injection {
  enum class Kind : uint8_t {
    kNone = 0,  ///< Pass through to the real operation.
    kError,     ///< Fail the operation with `err` in errno.
    kShort,     ///< Transfer only ceil(factor * n) of the requested bytes.
    kEintr,     ///< Fail with EINTR (the site's retry loop re-enters).
  };
  Kind kind = Kind::kNone;
  int err = 0;          ///< kError: the errno to inject.
  double factor = 0.0;  ///< kShort: fraction of the request transferred.
};

#if defined(FLOOD_FAILPOINTS)

/// Consults the registry for `site` and evaluates its trigger. Every call
/// counts as one *hit* (even when nothing is armed, so Hits() doubles as
/// site-coverage telemetry); a non-kNone return counts as one *trigger*.
/// Thread-safe. The first call bootstraps the registry from the
/// FLOOD_FAILPOINTS / FLOOD_FAILPOINTS_SEED environment variables.
Injection Check(const char* site);

/// Arms every entry of a full `site=action[;site=action...]` spec (the
/// FLOOD_FAILPOINTS env format). Additive: sites not named keep their
/// current configuration. InvalidArgument on a malformed spec.
///
/// Grammar per entry:  site '=' kind [':' arg] ['@' trigger]
///   kinds:    err:<ERRNO-NAME|number>   hard failure (e.g. err:EIO)
///             shortwrite:<frac> | shortread:<frac> | short:<frac>
///                                       partial transfer, 0 < frac < 1
///             eintr[:<N>]               storm of N EINTRs, then succeed
///             off                       disarm the site
///   triggers: (none)     every hit
///             @<N>       one-shot, on the Nth hit of the site
///             @once      alias for @1 relative to the current hit count
///             @every:<N> every Nth hit
///             @p:<P>     each hit with probability P (seeded RNG)
Status Configure(std::string_view spec);

/// Arms one site, e.g. Arm("wal.fsync", "err:EIO@3").
Status Arm(std::string_view site, std::string_view action);

/// Disarms one site (hit/trigger counters survive).
void Disarm(std::string_view site);

/// Disarms every site and zeroes all counters (test isolation).
void DisarmAll();

/// Reseeds the RNG behind @p: triggers (reproducible fault schedules).
void SetSeed(uint64_t seed);

/// Times Check(site) ran / times it injected something.
uint64_t Hits(std::string_view site);
uint64_t Triggers(std::string_view site);

/// Every site Check() has ever been called on, plus every site armed —
/// the live catalog the sweep test iterates.
std::vector<std::string> Sites();

#else  // !FLOOD_FAILPOINTS — zero-cost stubs.

[[gnu::always_inline]] inline Injection Check(const char*) { return {}; }
[[gnu::always_inline]] inline Status Configure(std::string_view) {
  return Status::OK();
}
[[gnu::always_inline]] inline Status Arm(std::string_view,
                                         std::string_view) {
  return Status::OK();
}
[[gnu::always_inline]] inline void Disarm(std::string_view) {}
[[gnu::always_inline]] inline void DisarmAll() {}
[[gnu::always_inline]] inline void SetSeed(uint64_t) {}
[[gnu::always_inline]] inline uint64_t Hits(std::string_view) { return 0; }
[[gnu::always_inline]] inline uint64_t Triggers(std::string_view) {
  return 0;
}
[[gnu::always_inline]] inline std::vector<std::string> Sites() { return {}; }

#endif  // FLOOD_FAILPOINTS

// --- Syscall wrappers -------------------------------------------------------
// Each wrapper consults its site, applies the injected fault (setting errno
// like the real syscall would), or passes straight through. When failpoints
// are compiled out they ARE the raw syscall, force-inlined.

#if defined(FLOOD_FAILPOINTS)

ssize_t InjectedWrite(const char* site, int fd, const void* buf, size_t n);
ssize_t InjectedRead(const char* site, int fd, void* buf, size_t n);
ssize_t InjectedSend(const char* site, int fd, const void* buf, size_t n,
                     int flags);
ssize_t InjectedRecv(const char* site, int fd, void* buf, size_t n,
                     int flags);
int InjectedFsync(const char* site, int fd);
int InjectedFtruncate(const char* site, int fd, off_t length);
int InjectedOpen(const char* site, const char* path, int flags, mode_t mode);
int InjectedRename(const char* site, const char* from, const char* to);
int InjectedAccept4(const char* site, int fd, struct sockaddr* addr,
                    socklen_t* addrlen, int flags);
int InjectedEpollWait(const char* site, int epfd, struct epoll_event* events,
                      int maxevents, int timeout_ms);
int InjectedConnect(const char* site, int fd, const struct sockaddr* addr,
                    socklen_t addrlen);
int InjectedPoll(const char* site, struct pollfd* fds, nfds_t nfds,
                 int timeout_ms);

#else  // !FLOOD_FAILPOINTS

[[gnu::always_inline]] inline ssize_t InjectedWrite(const char*, int fd,
                                                    const void* buf,
                                                    size_t n) {
  return ::write(fd, buf, n);
}
[[gnu::always_inline]] inline ssize_t InjectedRead(const char*, int fd,
                                                   void* buf, size_t n) {
  return ::read(fd, buf, n);
}
[[gnu::always_inline]] inline ssize_t InjectedSend(const char*, int fd,
                                                   const void* buf, size_t n,
                                                   int flags) {
  return ::send(fd, buf, n, flags);
}
[[gnu::always_inline]] inline ssize_t InjectedRecv(const char*, int fd,
                                                   void* buf, size_t n,
                                                   int flags) {
  return ::recv(fd, buf, n, flags);
}
[[gnu::always_inline]] inline int InjectedFsync(const char*, int fd) {
  return ::fsync(fd);
}
[[gnu::always_inline]] inline int InjectedFtruncate(const char*, int fd,
                                                    off_t length) {
  return ::ftruncate(fd, length);
}
[[gnu::always_inline]] inline int InjectedOpen(const char*, const char* path,
                                               int flags, mode_t mode) {
  return ::open(path, flags, mode);
}
[[gnu::always_inline]] inline int InjectedRename(const char*,
                                                 const char* from,
                                                 const char* to) {
  return ::rename(from, to);
}
[[gnu::always_inline]] inline int InjectedAccept4(const char*, int fd,
                                                  struct sockaddr* addr,
                                                  socklen_t* addrlen,
                                                  int flags) {
  return ::accept4(fd, addr, addrlen, flags);
}
[[gnu::always_inline]] inline int InjectedEpollWait(
    const char*, int epfd, struct epoll_event* events, int maxevents,
    int timeout_ms) {
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}
[[gnu::always_inline]] inline int InjectedConnect(
    const char*, int fd, const struct sockaddr* addr, socklen_t addrlen) {
  return ::connect(fd, addr, addrlen);
}
[[gnu::always_inline]] inline int InjectedPoll(const char*,
                                               struct pollfd* fds,
                                               nfds_t nfds, int timeout_ms) {
  return ::poll(fds, nfds, timeout_ms);
}

#endif  // FLOOD_FAILPOINTS

}  // namespace failpoint
}  // namespace flood

// Non-syscall seam: returns Status::Internal from the enclosing function
// when the site's trigger fires with an error action (other actions are
// meaningless at a non-I/O seam and pass through). Compiles to nothing
// without FLOOD_FAILPOINTS.
#if defined(FLOOD_FAILPOINTS)
#define FLOOD_FAILPOINT(site)                                              \
  do {                                                                     \
    const ::flood::failpoint::Injection _flood_fp =                        \
        ::flood::failpoint::Check(site);                                   \
    if (_flood_fp.kind == ::flood::failpoint::Injection::Kind::kError) {   \
      return ::flood::Status::Internal(std::string("failpoint ") + site +  \
                                       ": injected " +                     \
                                       std::strerror(_flood_fp.err));      \
    }                                                                      \
  } while (0)
#else
#define FLOOD_FAILPOINT(site) \
  do {                        \
  } while (0)
#endif

#endif  // FLOOD_COMMON_FAILPOINT_H_
