#ifndef FLOOD_COMMON_INLINE_VEC_H_
#define FLOOD_COMMON_INLINE_VEC_H_

#include <cstring>
#include <memory>
#include <type_traits>

#include "common/macros.h"

namespace flood {

/// A minimal small-buffer vector for per-query scratch on hot paths: the
/// first kInline elements live on the stack, larger sizes spill to one
/// geometrically-grown heap block. Restricted to trivially copyable
/// element types so growth is a memcpy and destruction is trivial.
///
/// Used by the query execution paths to honor the threading contract
/// (per-query scratch on the stack, no mutable index members) without
/// paying a heap allocation per query segment.
template <typename T, size_t kInline>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for trivially copyable scratch types");
  static_assert(kInline > 0, "inline capacity must be non-zero");

 public:
  InlineVec() = default;
  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](size_t i) {
    FLOOD_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    FLOOD_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& back() {
    FLOOD_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  // By value: Grow() frees the old heap block, so a reference argument
  // aliasing an element of this vector would dangle.
  void push_back(T v) {
    if (size_ == cap_) Grow();
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }

 private:
  void Grow() {
    const size_t new_cap = cap_ * 2;
    std::unique_ptr<T[]> grown(new T[new_cap]);
    std::memcpy(grown.get(), data_, size_ * sizeof(T));
    heap_ = std::move(grown);
    data_ = heap_.get();
    cap_ = new_cap;
  }

  T inline_[kInline];
  std::unique_ptr<T[]> heap_;
  T* data_ = inline_;
  size_t size_ = 0;
  size_t cap_ = kInline;
};

}  // namespace flood

#endif  // FLOOD_COMMON_INLINE_VEC_H_
