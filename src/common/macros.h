#ifndef FLOOD_COMMON_MACROS_H_
#define FLOOD_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// FLOOD_CHECK(cond): always-on invariant check; aborts with location info.
// Used at module boundaries and in cold paths. Hot loops should prefer
// FLOOD_DCHECK, which compiles away in NDEBUG builds.
#define FLOOD_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FLOOD_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define FLOOD_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define FLOOD_DCHECK(cond) FLOOD_CHECK(cond)
#endif

#endif  // FLOOD_COMMON_MACROS_H_
