#ifndef FLOOD_COMMON_MATH_UTIL_H_
#define FLOOD_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/macros.h"

namespace flood {

/// Arithmetic mean of `v`; 0 for an empty vector.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// The q-quantile (q in [0,1]) of a *sorted* vector, via nearest-rank.
template <typename T>
T SortedQuantile(const std::vector<T>& sorted, double q) {
  FLOOD_DCHECK(!sorted.empty());
  FLOOD_DCHECK(q >= 0.0 && q <= 1.0);
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// The q-quantile of an unsorted vector (copies and sorts; use for small
/// vectors such as per-query statistics).
template <typename T>
T Quantile(std::vector<T> v, double q) {
  std::sort(v.begin(), v.end());
  return SortedQuantile(v, q);
}

/// Clamps x into [lo, hi].
template <typename T>
T Clamp(T x, T lo, T hi) {
  return std::max(lo, std::min(hi, x));
}

/// Number of significant bits in x (0 -> 0).
inline int BitWidth(uint64_t x) {
  int w = 0;
  while (x != 0) {
    ++w;
    x >>= 1;
  }
  return w;
}

/// Integer ceil(a / b) for positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) {
  FLOOD_DCHECK(b > 0);
  return (a + b - 1) / b;
}

}  // namespace flood

#endif  // FLOOD_COMMON_MATH_UTIL_H_
