#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace flood {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FLOOD_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (range == std::numeric_limits<uint64_t>::max()) {
    return static_cast<int64_t>(Next());
  }
  // Debiased modulo (Lemire-style rejection).
  const uint64_t span = range + 1;
  const uint64_t limit = std::numeric_limits<uint64_t>::max() -
                         std::numeric_limits<uint64_t>::max() % span;
  uint64_t x = Next();
  while (x >= limit) x = Next();
  return lo + static_cast<int64_t>(x % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Lognormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(size_t n, double s) {
  FLOOD_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

size_t ZipfGenerator::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace flood
