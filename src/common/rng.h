#ifndef FLOOD_COMMON_RNG_H_
#define FLOOD_COMMON_RNG_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/macros.h"

namespace flood {

// Deterministic pseudo-random number generation for data/workload synthesis
// and ML. Uses xoshiro256++ (public-domain algorithm by Blackman & Vigna):
// fast, high quality, and reproducible across platforms, unlike
// implementation-defined std::default_random_engine behaviour.

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can also
/// drive <random> distributions if needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the engine with SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64-bit output.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal variate (Box–Muller, cached pair).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Lognormal variate: exp(Gaussian(mu, sigma)).
  double Lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Splits off an independently-seeded child generator. Useful for giving
  /// each column/worker its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Samples from a Zipf(s) distribution over {0, ..., n-1} via inverse-CDF
/// lookup on a precomputed table. Rank 0 is the most frequent value.
class ZipfGenerator {
 public:
  /// `n` is the universe size, `s` the skew exponent (s > 0; larger = more
  /// skewed; s ~ 1 is classic Zipf).
  ZipfGenerator(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t universe_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace flood

#endif  // FLOOD_COMMON_RNG_H_
