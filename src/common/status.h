#ifndef FLOOD_COMMON_STATUS_H_
#define FLOOD_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace flood {

// Error codes used across the library. The project does not use C++
// exceptions (Google style); fallible operations return Status or
// StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// A per-operation deadline elapsed (e.g. a serve::Client send/recv
  /// timeout). The operation's effect is unknown unless stated otherwise.
  kDeadlineExceeded,
  /// The peer is transiently unreachable or refusing work (connect
  /// refused, overloaded); safe to retry idempotent operations.
  kUnavailable,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string_view message)
      : code_(code), message_(message) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. `value()` may only be
/// called when `ok()`.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(runtime/explicit)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    FLOOD_CHECK(!status_.ok());  // OK statuses must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FLOOD_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FLOOD_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FLOOD_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define FLOOD_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::flood::Status _status = (expr);          \
    if (!_status.ok()) return _status;         \
  } while (0)

}  // namespace flood

#endif  // FLOOD_COMMON_STATUS_H_
