#include "common/thread_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace flood {

size_t ThreadPool::DefaultConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultConcurrency();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  FLOOD_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    FLOOD_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting so destruction never drops queued work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WaitGroup::Done() {
  // Notify while holding the lock: once Wait() can observe pending_ == 0
  // the caller may destroy this WaitGroup, so Done must not touch members
  // (the condvar included) after releasing mu_.
  std::lock_guard<std::mutex> lock(mu_);
  FLOOD_CHECK(pending_ > 0);
  --pending_;
  if (pending_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(ThreadPool& pool, size_t n, size_t max_shards,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t shards = std::max<size_t>(1, std::min(max_shards, n));
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  WaitGroup wg;
  const size_t chunk = n / shards;
  const size_t rem = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t end = begin + chunk + (s < rem ? 1 : 0);
    pool.Submit(wg.Wrap([&fn, s, begin, end] { fn(s, begin, end); }));
    begin = end;
  }
  wg.Wait();
}

}  // namespace flood
