#ifndef FLOOD_COMMON_THREAD_POOL_H_
#define FLOOD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace flood {

/// Fixed-size FIFO thread pool: `num_threads` workers pop from one shared
/// queue (no work stealing — queries are coarse enough that a single queue
/// never bottlenecks). Submission is thread-safe from any thread; the
/// destructor drains the queue (every task submitted before ~ThreadPool
/// runs to completion) and joins the workers.
///
/// Tasks must not block on other pool tasks' completion: with a fixed
/// worker count and no stealing, a task that waits for a queued task can
/// deadlock the pool. Database::RunBatch only ever submits independent
/// per-shard work, so this never arises on the query path.
class ThreadPool {
 public:
  /// `num_threads == 0` uses DefaultConcurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// std::thread::hardware_concurrency(), or 1 when the runtime can't tell.
  static size_t DefaultConcurrency();

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` to run on some worker thread. Must not be called
  /// concurrently with the destructor.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Completion barrier for a group of pool tasks, with first-error capture.
/// Wrap each task before Submit, then Wait() blocks until every wrapped
/// task ran and rethrows the first exception any of them threw (the
/// remaining tasks still run to completion). Reusable after Wait returns.
///
///   WaitGroup wg;
///   for (auto& shard : shards) pool.Submit(wg.Wrap([&shard] { ... }));
///   wg.Wait();
class WaitGroup {
 public:
  /// Wraps `fn` so the group tracks it: registers one pending completion
  /// immediately, runs fn on invocation (capturing a thrown exception
  /// instead of unwinding into the worker), then signals completion.
  template <typename F>
  std::function<void()> Wrap(F fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    return [this, fn = std::move(fn)]() mutable {
      try {
        fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      Done();
    };
  }

  /// Blocks until every wrapped task completed; rethrows the first captured
  /// exception (and clears it, so the group can be reused).
  void Wait();

 private:
  void Done();

  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  std::exception_ptr error_;
};

/// Splits [0, n) into at most `max_shards` contiguous near-equal shards and
/// runs fn(shard, begin, end) for each on the pool, blocking until all
/// complete. Shard 0 covers the front of the range; task errors rethrow
/// here. Must not be called from inside a pool task (see ThreadPool).
void ParallelFor(ThreadPool& pool, size_t n, size_t max_shards,
                 const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace flood

#endif  // FLOOD_COMMON_THREAD_POOL_H_
