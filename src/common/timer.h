#ifndef FLOOD_COMMON_TIMER_H_
#define FLOOD_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace flood {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Milliseconds elapsed, as a double (for reporting).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Seconds elapsed, as a double (for reporting).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flood

#endif  // FLOOD_COMMON_TIMER_H_
