#include "core/cell_models.h"

#include "common/macros.h"

namespace flood {

void CellModels::Build(const std::vector<Value>& sort_values,
                       const std::vector<uint32_t>& offsets,
                       size_t min_cell_size, double delta) {
  FLOOD_CHECK(!offsets.empty());
  const size_t num_cells = offsets.size() - 1;
  model_id_.assign(num_cells, -1);
  plms_.clear();

  std::vector<Value> cell_values;
  for (size_t c = 0; c < num_cells; ++c) {
    const size_t begin = offsets[c];
    const size_t end = offsets[c + 1];
    if (end - begin < min_cell_size) continue;
    cell_values.assign(sort_values.begin() + begin,
                       sort_values.begin() + end);
    model_id_[c] = static_cast<int32_t>(plms_.size());
    plms_.push_back(Plm::Train(cell_values, delta));
  }
}

size_t CellModels::MemoryUsageBytes() const {
  size_t bytes = model_id_.size() * sizeof(int32_t);
  for (const auto& plm : plms_) bytes += plm.MemoryUsageBytes();
  return bytes;
}

}  // namespace flood
