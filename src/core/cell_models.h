#ifndef FLOOD_CORE_CELL_MODELS_H_
#define FLOOD_CORE_CELL_MODELS_H_

#include <cstdint>
#include <vector>

#include "learned/plm.h"
#include "storage/column.h"

namespace flood {

/// Per-cell CDF models over the sort dimension (§5.2). Each sufficiently
/// large cell owns a PLM predicting positions within the cell; small cells
/// fall back to binary search (building a model would cost more than it
/// saves). This container dominates Flood's index size (§7.4: "over 95%"),
/// so it tracks its own footprint.
class CellModels {
 public:
  CellModels() = default;

  /// Builds models for each cell of `sort_values` (in storage order).
  /// `offsets` has num_cells + 1 entries; cell c spans
  /// [offsets[c], offsets[c+1]). Cells smaller than `min_cell_size` get no
  /// model. `delta` is the PLM average-error budget.
  void Build(const std::vector<Value>& sort_values,
             const std::vector<uint32_t>& offsets, size_t min_cell_size,
             double delta);

  /// True if cell `c` has a trained model.
  bool HasModel(size_t c) const {
    return c < model_id_.size() && model_id_[c] >= 0;
  }

  /// Lower-bound estimate of the *cell-relative* rank of the first value
  /// >= v in cell `c`. Requires HasModel(c).
  size_t Predict(size_t c, Value v) const {
    return plms_[static_cast<size_t>(model_id_[c])].Predict(v);
  }

  size_t num_models() const { return plms_.size(); }
  size_t MemoryUsageBytes() const;

 private:
  std::vector<int32_t> model_id_;  // -1 = no model.
  std::vector<Plm> plms_;
};

}  // namespace flood

#endif  // FLOOD_CORE_CELL_MODELS_H_
