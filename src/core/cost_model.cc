#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/flood_index.h"
#include "query/executor.h"

namespace flood {

std::vector<double> CostModel::Features::ToVector() const {
  return {nc,
          ns,
          total_cells,
          avg_cell_size,
          dims_filtered,
          sort_filtered,
          avg_visited_per_cell,
          exact_fraction,
          avg_run_length};
}

CostModel::Features CostModel::Features::FromStats(const QueryStats& stats,
                                                   const Query& query,
                                                   const GridLayout& layout,
                                                   size_t table_rows) {
  Features f;
  f.nc = static_cast<double>(stats.cells_visited);
  f.ns = static_cast<double>(stats.points_scanned);
  f.total_cells = static_cast<double>(layout.NumCells());
  f.avg_cell_size =
      static_cast<double>(table_rows) / std::max(1.0, f.total_cells);
  f.dims_filtered = static_cast<double>(query.NumFiltered());
  f.sort_filtered = (layout.use_sort_dim &&
                     layout.sort_dim() < query.num_dims() &&
                     query.IsFiltered(layout.sort_dim()))
                        ? 1.0
                        : 0.0;
  f.avg_visited_per_cell = f.ns / std::max(1.0, f.nc);
  f.exact_fraction =
      static_cast<double>(stats.points_exact) / std::max(1.0, f.ns);
  f.avg_run_length =
      f.ns / std::max(1.0, static_cast<double>(stats.ranges_scanned));
  return f;
}

CostModel CostModel::Default() { return CostModel(); }

StatusOr<std::vector<CostModel::Example>> CostModel::GenerateExamples(
    const Table& table, const Workload& workload,
    const CalibrationOptions& options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("empty calibration table");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("empty calibration workload");
  }
  const size_t d = table.num_dims();
  Rng rng(options.seed);
  const Workload queries = workload.Sample(options.max_queries, rng.Next());

  BuildContext ctx;
  ctx.workload = &queries;
  ctx.sample = DataSample::FromTable(table, 10'000, rng.Next());

  std::vector<Example> examples;
  for (size_t l = 0; l < options.num_layouts; ++l) {
    // Random layout: shuffled dimension order, log-uniform target cell
    // count split randomly across grid dimensions (§4.1.1).
    GridLayout layout;
    layout.dim_order.resize(d);
    for (size_t i = 0; i < d; ++i) layout.dim_order[i] = i;
    for (size_t i = d; i > 1; --i) {
      const size_t j = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(layout.dim_order[i - 1], layout.dim_order[j]);
    }
    layout.use_sort_dim = d > 1;
    const size_t k = layout.NumGridDims();
    layout.columns.assign(k, 1);
    const double max_cells = static_cast<double>(
        std::min<uint64_t>(options.max_cells,
                           std::max<uint64_t>(64, table.num_rows() / 4)));
    const double log_target = rng.Uniform(std::log(64.0),
                                          std::log(max_cells));
    if (k > 0) {
      std::vector<double> w(k);
      double total = 0;
      for (auto& x : w) {
        x = rng.Uniform(0.1, 1.0);
        total += x;
      }
      for (size_t i = 0; i < k; ++i) {
        layout.columns[i] = std::max<uint32_t>(
            1, static_cast<uint32_t>(
                   std::llround(std::exp(log_target * w[i] / total))));
      }
    }

    FloodIndex::Options fopt;
    fopt.layout = layout;
    fopt.max_cells = options.max_cells * 2;
    FloodIndex index(fopt);
    FLOOD_RETURN_IF_ERROR(index.Build(table, ctx));

    for (const Query& q : queries) {
      QueryStats stats;
      (void)ExecuteAggregate(index, q, &stats);
      if (stats.cells_visited == 0 || stats.points_scanned == 0) continue;
      Example ex;
      ex.features =
          Features::FromStats(stats, q, index.layout(), table.num_rows());
      ex.wp = static_cast<double>(stats.index_ns) /
              static_cast<double>(stats.cells_visited);
      ex.wr = static_cast<double>(stats.refine_ns) /
              static_cast<double>(stats.cells_visited);
      ex.ws = static_cast<double>(stats.scan_ns) /
              static_cast<double>(stats.points_scanned);
      ex.total_ns = static_cast<double>(stats.total_ns);
      examples.push_back(std::move(ex));
    }
  }
  if (examples.empty()) {
    return Status::Internal("calibration produced no examples");
  }
  return examples;
}

StatusOr<CostModel> CostModel::Calibrate(const Table& table,
                                         const Workload& workload,
                                         const CalibrationOptions& options) {
  StatusOr<std::vector<Example>> examples =
      GenerateExamples(table, workload, options);
  if (!examples.ok()) return examples.status();
  return Train(*examples, options.predictor, options.forest, options.seed);
}

CostModel CostModel::Train(const std::vector<Example>& examples,
                           Predictor predictor,
                           const RandomForest::Params& forest_params,
                           uint64_t seed) {
  CostModel model;
  model.predictor_ = predictor;

  std::vector<std::vector<double>> x;
  std::vector<double> wp;
  std::vector<double> ws;
  std::vector<std::vector<double>> x_refine;
  std::vector<double> wr;
  x.reserve(examples.size());
  for (const Example& ex : examples) {
    x.push_back(ex.features.ToVector());
    wp.push_back(ex.wp);
    ws.push_back(ex.ws);
    // w_r is only meaningful for sort-filtered queries (otherwise
    // refinement is skipped and w_r == 0 by definition).
    if (ex.features.sort_filtered > 0.5) {
      x_refine.push_back(ex.features.ToVector());
      wr.push_back(ex.wr);
    }
  }

  switch (predictor) {
    case Predictor::kConstant: {
      auto mean = [](const std::vector<double>& v) {
        if (v.empty()) return 0.0;
        double s = 0;
        for (double e : v) s += e;
        return s / static_cast<double>(v.size());
      };
      model.const_wp_ = std::max(1.0, mean(wp));
      model.const_wr_ = std::max(1.0, mean(wr));
      model.const_ws_ = std::max(0.1, mean(ws));
      break;
    }
    case Predictor::kLinear:
      model.lin_wp_ = LinearRegression::Fit(x, wp);
      model.lin_ws_ = LinearRegression::Fit(x, ws);
      if (!x_refine.empty()) {
        model.lin_wr_ = LinearRegression::Fit(x_refine, wr);
      }
      break;
    case Predictor::kForest:
      model.rf_wp_ = RandomForest::Fit(x, wp, forest_params, seed + 1);
      model.rf_ws_ = RandomForest::Fit(x, ws, forest_params, seed + 2);
      if (!x_refine.empty()) {
        model.rf_wr_ =
            RandomForest::Fit(x_refine, wr, forest_params, seed + 3);
      }
      break;
  }
  return model;
}

double CostModel::PredictWp(const Features& f) const {
  double w;
  switch (predictor_) {
    case Predictor::kConstant:
      w = const_wp_;
      break;
    case Predictor::kLinear:
      w = lin_wp_.Predict(f.ToVector());
      break;
    default:
      w = rf_wp_.Predict(f.ToVector());
  }
  return std::max(0.5, w);
}

double CostModel::PredictWr(const Features& f) const {
  if (f.sort_filtered < 0.5) return 0.0;
  double w;
  switch (predictor_) {
    case Predictor::kConstant:
      w = const_wr_;
      break;
    case Predictor::kLinear:
      w = lin_wr_.Predict(f.ToVector());
      break;
    default:
      w = rf_wr_.Predict(f.ToVector());
  }
  return std::max(0.5, w);
}

double CostModel::PredictWs(const Features& f) const {
  double w;
  switch (predictor_) {
    case Predictor::kConstant:
      w = const_ws_;
      break;
    case Predictor::kLinear:
      w = lin_ws_.Predict(f.ToVector());
      break;
    default:
      w = rf_ws_.Predict(f.ToVector());
  }
  return std::max(0.05, w);
}

double CostModel::PredictQueryTimeNs(const Features& f) const {
  return (PredictWp(f) + PredictWr(f)) * f.nc + PredictWs(f) * f.ns;
}

}  // namespace flood
