#ifndef FLOOD_CORE_COST_MODEL_H_
#define FLOOD_CORE_COST_MODEL_H_

#include <vector>

#include "common/status.h"
#include "core/grid_layout.h"
#include "ml/linear_regression.h"
#include "ml/random_forest.h"
#include "query/query_stats.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Flood's learned cost model (§4.1):
///
///   Time(D, q, L) = w_p * Nc + w_r * Nc + w_s * Ns            (Eq. 1)
///
/// The weights are *not* constants — they depend non-linearly on measurable
/// statistics (Fig. 5) — so each weight is predicted by a model over a
/// feature vector. Calibration (§4.1.1) runs an instrumented Flood over
/// random layouts, producing one training example per (query, layout).
///
/// Three predictor families are kept for the §4.1.2 ablation: an analytic
/// constant-weight model, linear regression, and the random forest Flood
/// actually uses.
class CostModel {
 public:
  enum class Predictor { kConstant, kLinear, kForest };

  /// The measurable statistics feeding the weight models. The same
  /// definitions are computed two ways: *measured* from QueryStats during
  /// calibration, and *estimated* from samples during layout optimization.
  struct Features {
    double nc = 0;                   ///< Cells intersecting the query.
    double ns = 0;                   ///< Points scanned.
    double total_cells = 1;          ///< Cells in the whole layout.
    double avg_cell_size = 0;        ///< Rows / total cells.
    double dims_filtered = 0;
    double sort_filtered = 0;        ///< 1 if the sort dim is filtered.
    double avg_visited_per_cell = 0; ///< ns / max(nc, 1).
    double exact_fraction = 0;       ///< Exact-range points / ns.
    double avg_run_length = 0;       ///< ns / scan ranges.

    std::vector<double> ToVector() const;

    /// Builds measured features from per-query stats.
    static Features FromStats(const QueryStats& stats, const Query& query,
                              const GridLayout& layout, size_t table_rows);
  };

  /// One calibration example: features plus the empirical weights
  /// w_p = index_ns/Nc, w_r = refine_ns/Nc, w_s = scan_ns/Ns.
  struct Example {
    Features features;
    double wp = 0;
    double wr = 0;
    double ws = 0;
    double total_ns = 0;  ///< For ablation: direct time prediction target.
  };

  struct CalibrationOptions {
    size_t num_layouts = 8;     ///< Paper found 10 random layouts suffice.
    size_t max_queries = 150;
    uint64_t max_cells = uint64_t{1} << 18;
    uint64_t seed = 1;
    Predictor predictor = Predictor::kForest;
    RandomForest::Params forest;
  };

  CostModel() = default;

  /// Analytic fallback with fixed weights (§4.1.2's "simple analytical
  /// model... with fine-tuned constants").
  static CostModel Default();

  /// Full calibration pipeline: random layouts -> instrumented runs ->
  /// weight-model training. The dataset/workload can be synthetic — weights
  /// calibrate to the *hardware*, not the data (§7.6, Tab. 3).
  static StatusOr<CostModel> Calibrate(const Table& table,
                                       const Workload& workload,
                                       const CalibrationOptions& options);

  /// Generates calibration examples without training (exposed for tests
  /// and the §4.1.2 ablation bench).
  static StatusOr<std::vector<Example>> GenerateExamples(
      const Table& table, const Workload& workload,
      const CalibrationOptions& options);

  /// Trains weight models of the requested family from examples.
  static CostModel Train(const std::vector<Example>& examples,
                         Predictor predictor,
                         const RandomForest::Params& forest_params = {},
                         uint64_t seed = 1);

  double PredictWp(const Features& f) const;
  double PredictWr(const Features& f) const;
  double PredictWs(const Features& f) const;

  /// Eq. 1, with w_r forced to zero when the sort dimension is unfiltered.
  double PredictQueryTimeNs(const Features& f) const;

  Predictor predictor() const { return predictor_; }

 private:
  Predictor predictor_ = Predictor::kConstant;
  // kConstant:
  double const_wp_ = 30.0;
  double const_wr_ = 120.0;
  double const_ws_ = 3.0;
  // kLinear:
  LinearRegression lin_wp_;
  LinearRegression lin_wr_;
  LinearRegression lin_ws_;
  // kForest:
  RandomForest rf_wp_;
  RandomForest rf_wr_;
  RandomForest rf_ws_;
};

/// §8 "Shifting workloads": tracks an exponentially-weighted average of
/// observed query cost against the cost measured right after (re)training
/// and signals when the layout has gone stale.
class CostMonitor {
 public:
  explicit CostMonitor(double degradation_threshold = 2.0,
                       double ewma_alpha = 0.05)
      : threshold_(degradation_threshold), alpha_(ewma_alpha) {}

  /// Resets the baseline (call after retraining the layout).
  void Rebase(double baseline_ns) {
    baseline_ns_ = baseline_ns;
    ewma_ns_ = baseline_ns;
  }

  /// Records one query's observed time.
  void Observe(double query_ns) {
    ewma_ns_ = alpha_ * query_ns + (1.0 - alpha_) * ewma_ns_;
  }

  /// True when the rolling cost exceeds threshold x baseline.
  bool ShouldRetrain() const {
    return baseline_ns_ > 0 && ewma_ns_ > threshold_ * baseline_ns_;
  }

  double ewma_ns() const { return ewma_ns_; }
  double baseline_ns() const { return baseline_ns_; }

 private:
  double threshold_;
  double alpha_;
  double baseline_ns_ = 0;
  double ewma_ns_ = 0;
};

}  // namespace flood

#endif  // FLOOD_CORE_COST_MODEL_H_
