#include "core/delta_buffer.h"

namespace flood {

Status DeltaBuffer::Insert(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t dim = 0; dim < columns_.size(); ++dim) {
    columns_[dim].push_back(row[dim]);
  }
  return Status::OK();
}

size_t DeltaBuffer::EraseMatching(const std::vector<Value>& key) {
  if (key.size() != columns_.size()) return 0;
  const size_t n = size();
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    bool equal = true;
    for (size_t dim = 0; dim < columns_.size(); ++dim) {
      if (columns_[dim][i] != key[dim]) {
        equal = false;
        break;
      }
    }
    if (equal) continue;  // Drop this row.
    if (out != i) {
      for (size_t dim = 0; dim < columns_.size(); ++dim) {
        columns_[dim][out] = columns_[dim][i];
      }
    }
    ++out;
  }
  for (auto& c : columns_) c.resize(out);
  return n - out;
}

bool DeltaBuffer::AddTombstone(RowId row) {
  if (!tombstone_set_.insert(row).second) return false;
  tombstones_.push_back(row);
  return true;
}

StatusOr<Table> DeltaBuffer::Materialize(const Table& main) const {
  if (main.num_dims() != columns_.size()) {
    return Status::InvalidArgument("table arity mismatch");
  }
  const size_t main_rows = main.num_rows();
  for (RowId t : tombstones_) {
    if (static_cast<size_t>(t) >= main_rows) {
      return Status::InvalidArgument("tombstone past end of base table");
    }
  }
  std::vector<std::vector<Value>> cols(columns_.size());
  std::vector<std::string> names;
  for (size_t dim = 0; dim < columns_.size(); ++dim) {
    std::vector<Value> base = main.DecodeColumn(dim);
    std::vector<Value>& col = cols[dim];
    if (tombstones_.empty()) {
      col = std::move(base);  // Insert-only compaction: no second copy.
    } else {
      col.reserve(main_rows - tombstones_.size() + columns_[dim].size());
      for (size_t r = 0; r < main_rows; ++r) {
        if (!IsTombstoned(static_cast<RowId>(r))) col.push_back(base[r]);
      }
    }
    col.insert(col.end(), columns_[dim].begin(), columns_[dim].end());
    names.push_back(main.name(dim));
  }
  return Table::FromColumns(std::move(cols), main.column(0).encoding(),
                            std::move(names));
}

StatusOr<Table> DeltaBuffer::MergeInto(const Table& main) {
  StatusOr<Table> merged = Materialize(main);
  if (merged.ok()) Clear();
  return merged;
}

}  // namespace flood
