#include "core/delta_buffer.h"

namespace flood {

Status DeltaBuffer::Insert(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t dim = 0; dim < columns_.size(); ++dim) {
    columns_[dim].push_back(row[dim]);
  }
  return Status::OK();
}

StatusOr<Table> DeltaBuffer::MergeInto(const Table& main) {
  if (main.num_dims() != columns_.size()) {
    return Status::InvalidArgument("table arity mismatch");
  }
  std::vector<std::vector<Value>> cols(columns_.size());
  std::vector<std::string> names;
  for (size_t dim = 0; dim < columns_.size(); ++dim) {
    cols[dim] = main.DecodeColumn(dim);
    cols[dim].insert(cols[dim].end(), columns_[dim].begin(),
                     columns_[dim].end());
    names.push_back(main.name(dim));
  }
  StatusOr<Table> merged = Table::FromColumns(
      std::move(cols), main.column(0).encoding(), std::move(names));
  if (merged.ok()) Clear();
  return merged;
}

}  // namespace flood
