#ifndef FLOOD_CORE_DELTA_BUFFER_H_
#define FLOOD_CORE_DELTA_BUFFER_H_

#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/query_stats.h"
#include "storage/table.h"

namespace flood {

/// §8 "Insertions": a row-oriented write buffer in front of the read-only
/// index, in the spirit of differential files / Bigtable memtables. Queries
/// consult the main index plus a linear pass over the (small) buffer;
/// MergeInto materializes a new table for a rebuild once the buffer grows
/// past the caller's threshold.
class DeltaBuffer {
 public:
  explicit DeltaBuffer(size_t num_dims) : columns_(num_dims) {}

  size_t num_dims() const { return columns_.size(); }
  size_t size() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  /// Appends one row. `row` must have num_dims() values.
  Status Insert(const std::vector<Value>& row);

  /// Feeds buffered rows matching `query` to `visitor`. Buffered rows are
  /// addressed as base_row_id + i so they do not collide with main-index
  /// row ids.
  template <typename V>
  void Scan(const Query& query, V& visitor, RowId base_row_id,
            QueryStats* stats) const {
    const size_t n = size();
    if (stats != nullptr) {
      stats->points_scanned += n;
      if (n > 0) ++stats->ranges_scanned;
    }
    size_t matched = 0;
    for (size_t i = 0; i < n; ++i) {
      bool ok = true;
      for (size_t dim = 0; dim < columns_.size() && dim < query.num_dims();
           ++dim) {
        if (!query.IsFiltered(dim)) continue;
        if (!query.range(dim).Contains(columns_[dim][i])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        visitor.VisitRow(base_row_id + i);
        ++matched;
      }
    }
    if (stats != nullptr) stats->points_matched += matched;
  }

  /// Value accessor for buffered rows (dim-major storage).
  Value Get(size_t row, size_t dim) const { return columns_[dim][row]; }

  /// Concatenates `main` and the buffer into a fresh table (rebuild input),
  /// then clears the buffer.
  StatusOr<Table> MergeInto(const Table& main);

  void Clear() {
    for (auto& c : columns_) c.clear();
  }

 private:
  std::vector<std::vector<Value>> columns_;
};

}  // namespace flood

#endif  // FLOOD_CORE_DELTA_BUFFER_H_
