#ifndef FLOOD_CORE_DELTA_BUFFER_H_
#define FLOOD_CORE_DELTA_BUFFER_H_

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/query_stats.h"
#include "storage/table.h"

namespace flood {

/// §8 "Insertions": a row-oriented write buffer in front of the read-only
/// index, in the spirit of differential files / Bigtable memtables. Queries
/// consult the main index plus a linear pass over the (small) buffer;
/// Materialize produces a fresh table for a rebuild once the buffer grows
/// past the caller's threshold.
///
/// Deletes are *tombstones*: the deleted base-table row ids are recorded
/// here (the built index stays immutable) and the query layer subtracts
/// their contribution from base results. Rows that were inserted into the
/// buffer and then deleted are erased directly (see EraseMatching) and
/// never need a tombstone.
///
/// Thread safety: none. The owner (flood::Database) serializes writers and
/// excludes them from readers via its reader-writer seam.
class DeltaBuffer {
 public:
  explicit DeltaBuffer(size_t num_dims) : columns_(num_dims) {}

  size_t num_dims() const { return columns_.size(); }

  /// Buffered (not yet compacted) inserted rows.
  size_t size() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  /// Tombstoned base-table rows awaiting compaction.
  size_t num_tombstones() const { return tombstones_.size(); }

  /// Total staged writes: buffered inserts + tombstones. This is what the
  /// auto-retrain policy compares against the base row count.
  size_t pending() const { return size() + num_tombstones(); }

  /// Appends one row. `row` must have num_dims() values.
  Status Insert(const std::vector<Value>& row);

  /// Erases every buffered insert equal to `key` (full-tuple equality).
  /// Returns the number of rows erased.
  size_t EraseMatching(const std::vector<Value>& key);

  /// Records base row `row` as deleted. Returns false (and does nothing)
  /// when the row is already tombstoned, so a double delete cannot subtract
  /// a base match twice.
  bool AddTombstone(RowId row);

  bool IsTombstoned(RowId row) const {
    return tombstone_set_.count(row) != 0;
  }

  /// Tombstoned base row ids in insertion order.
  const std::vector<RowId>& tombstones() const { return tombstones_; }

  /// Feeds buffered rows matching `query` to `visitor`. Buffered rows are
  /// addressed as base_row_id + i so they do not collide with main-index
  /// row ids.
  template <typename V>
  void Scan(const Query& query, V& visitor, RowId base_row_id,
            QueryStats* stats) const {
    size_t matched = 0;
    ForEachMatch(query, stats, [&](size_t i) {
      visitor.VisitRow(base_row_id + i);
      ++matched;
    });
    if (stats != nullptr) stats->points_matched += matched;
  }

  /// Linear pass over the buffered inserts: calls `fn(i)` for every
  /// buffered row i matching `query`'s predicate. Accounts the pass in
  /// `stats` (points_scanned + delta_rows_scanned, one ranges_scanned).
  template <typename Fn>
  void ForEachMatch(const Query& query, QueryStats* stats, Fn fn) const {
    const size_t n = size();
    if (stats != nullptr) {
      stats->points_scanned += n;
      stats->delta_rows_scanned += n;
      if (n > 0) ++stats->ranges_scanned;
    }
    for (size_t i = 0; i < n; ++i) {
      bool ok = true;
      for (size_t dim = 0; dim < columns_.size() && dim < query.num_dims();
           ++dim) {
        if (!query.IsFiltered(dim)) continue;
        if (!query.range(dim).Contains(columns_[dim][i])) {
          ok = false;
          break;
        }
      }
      if (ok) fn(i);
    }
  }

  /// Value accessor for buffered rows (dim-major storage).
  Value Get(size_t row, size_t dim) const { return columns_[dim][row]; }

  /// Builds the compacted table: `main` minus the tombstoned rows, plus
  /// the buffered inserts appended at the end. Does NOT clear the buffer —
  /// the caller clears after the rebuilt index is swapped in, so a failed
  /// rebuild loses no writes.
  StatusOr<Table> Materialize(const Table& main) const;

  /// Materialize + Clear in one step (legacy convenience for callers that
  /// rebuild unconditionally).
  StatusOr<Table> MergeInto(const Table& main);

  void Clear() {
    for (auto& c : columns_) c.clear();
    tombstones_.clear();
    tombstone_set_.clear();
  }

 private:
  std::vector<std::vector<Value>> columns_;
  std::vector<RowId> tombstones_;
  std::unordered_set<RowId> tombstone_set_;
};

}  // namespace flood

#endif  // FLOOD_CORE_DELTA_BUFFER_H_
