#include "core/flattener.h"

#include <algorithm>

#include "common/math_util.h"

namespace flood {

Flattener Flattener::Train(const Table& table, Mode mode, size_t sample_size,
                           uint64_t seed, size_t rmi_leaves) {
  std::vector<Value> dim_min(table.num_dims());
  std::vector<Value> dim_max(table.num_dims());
  for (size_t d = 0; d < table.num_dims(); ++d) {
    dim_min[d] = table.min_value(d);
    dim_max[d] = table.max_value(d);
  }
  const DataSample sample = DataSample::FromTable(table, sample_size, seed);
  return TrainFromSample(sample, dim_min, dim_max, mode, rmi_leaves);
}

Flattener Flattener::TrainFromSample(const DataSample& sample,
                                     const std::vector<Value>& dim_min,
                                     const std::vector<Value>& dim_max,
                                     Mode mode, size_t rmi_leaves) {
  Flattener f;
  f.mode_ = mode;
  const size_t d = sample.num_dims();
  FLOOD_CHECK(dim_min.size() == d && dim_max.size() == d);
  if (mode == Mode::kLinear) {
    f.min_ = dim_min;
    f.max_ = dim_max;
    return f;
  }
  f.cdfs_.reserve(d);
  for (size_t dim = 0; dim < d; ++dim) {
    f.cdfs_.push_back(Rmi::Train(sample.sorted(dim), rmi_leaves));
  }
  return f;
}

double Flattener::ToUnit(size_t dim, Value v) const {
  if (mode_ == Mode::kCdf) {
    FLOOD_DCHECK(dim < cdfs_.size());
    return cdfs_[dim].Cdf(v);
  }
  FLOOD_DCHECK(dim < min_.size());
  const double lo = static_cast<double>(min_[dim]);
  const double hi = static_cast<double>(max_[dim]);
  if (hi <= lo) return 0.0;
  const double u = (static_cast<double>(v) - lo) / (hi - lo + 1.0);
  return Clamp(u, 0.0, 1.0);
}

size_t Flattener::MemoryUsageBytes() const {
  size_t bytes = sizeof(Flattener);
  for (const auto& r : cdfs_) bytes += r.MemoryUsageBytes();
  bytes += (min_.size() + max_.size()) * sizeof(Value);
  return bytes;
}

}  // namespace flood
