#ifndef FLOOD_CORE_FLATTENER_H_
#define FLOOD_CORE_FLATTENER_H_

#include <vector>

#include "learned/rmi.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Per-dimension CDF models projecting skewed attributes into a near-
/// uniform [0, 1] space (§5.1 "flattening"). A point with value v in
/// dimension k lands in column floor(Cdf_k(v) * n_cols).
///
/// Correctness of Flood's interior-column reasoning requires each model to
/// be monotone, which Rmi guarantees (see learned/rmi.h). The kLinear mode
/// spaces columns equally across the raw value range — the paper's
/// non-flattened ablation (Fig. 11).
class Flattener {
 public:
  enum class Mode {
    kCdf,     ///< RMI-learned empirical CDF (flattened layout).
    kLinear,  ///< Equal-width columns over [min, max].
  };

  Flattener() = default;

  /// Trains one model per dimension from a row sample of `table`.
  static Flattener Train(const Table& table, Mode mode, size_t sample_size,
                         uint64_t seed, size_t rmi_leaves = 64);

  /// Same, reusing a prepared sample (optimizer path).
  static Flattener TrainFromSample(const DataSample& sample,
                                   const std::vector<Value>& dim_min,
                                   const std::vector<Value>& dim_max,
                                   Mode mode, size_t rmi_leaves = 64);

  /// Monotone map of `v` into [0, 1] for dimension `dim`.
  double ToUnit(size_t dim, Value v) const;

  /// Column of `v` under `num_columns` columns (clamped to range).
  uint32_t ColumnOf(size_t dim, Value v, uint32_t num_columns) const {
    const double u = ToUnit(dim, v);
    const uint32_t col = static_cast<uint32_t>(
        u * static_cast<double>(num_columns));
    return col >= num_columns ? num_columns - 1 : col;
  }

  Mode mode() const { return mode_; }
  size_t num_dims() const { return mode_ == Mode::kCdf ? cdfs_.size()
                                                       : min_.size(); }
  size_t MemoryUsageBytes() const;

 private:
  Mode mode_ = Mode::kLinear;
  std::vector<Rmi> cdfs_;    // kCdf
  std::vector<Value> min_;   // kLinear
  std::vector<Value> max_;
};

}  // namespace flood

#endif  // FLOOD_CORE_FLATTENER_H_
