#include "core/flood_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "api/index_registry.h"
#include "common/inline_vec.h"
#include "common/timer.h"
#include "core/layout_optimizer.h"
#include "learned/search_util.h"
#include "query/scan_util.h"

namespace flood {

Status FloodIndex::Build(const Table& table, const BuildContext& ctx) {
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  if (n == 0) return Status::InvalidArgument("empty table");
  // The cell table (offsets_) and ScanTask bounds are 32-bit; reject
  // tables whose row ids would silently wrap instead of truncating.
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "FloodIndex supports at most 2^32 - 1 rows (32-bit cell table)");
  }

  layout_ = options_.layout;
  if (layout_.dim_order.empty()) {
    if (options_.learn_layout && ctx.workload != nullptr &&
        !ctx.workload->empty()) {
      const CostModel cost_model = CostModel::Default();
      LayoutOptimizer::Options opt;
      opt.max_cells = options_.max_cells;
      const LayoutOptimizer optimizer(&cost_model, opt);
      layout_ = optimizer.Optimize(table, *ctx.workload).layout;
    } else {
      const uint64_t target =
          options_.default_target_cells > 0
              ? options_.default_target_cells
              : std::max<uint64_t>(1, n / 1024);
      layout_ = GridLayout::Default(d, target);
    }
  }
  if (!layout_.IsValid(d)) {
    return Status::InvalidArgument("invalid layout: " + layout_.ToString());
  }
  // ExecuteT's per-query scratch (spans, odometer, check-dim sets) is
  // fixed 64-entry stack storage; reject wider layouts up front instead
  // of overflowing it in release builds.
  if (layout_.NumGridDims() > 64) {
    return Status::InvalidArgument(
        "FloodIndex supports at most 64 grid dimensions");
  }
  num_cells_ = layout_.NumCells();
  if (num_cells_ > options_.max_cells) {
    return Status::InvalidArgument("layout exceeds max_cells budget");
  }

  flattener_ =
      Flattener::Train(table, options_.flatten_mode,
                       options_.flatten_sample_size, options_.seed,
                       options_.flatten_rmi_leaves);

  // Cell-id strides: first grid dimension slowest (depth-first traversal
  // order of §3.1).
  const size_t k = layout_.NumGridDims();
  strides_.assign(k, 1);
  for (size_t i = k; i-- > 1;) {
    strides_[i - 1] = strides_[i] * layout_.columns[i];
  }

  // Assign each row to a cell.
  std::vector<uint32_t> cell_of(n, 0);
  for (size_t i = 0; i < k; ++i) {
    const size_t dim = layout_.grid_dim(i);
    const uint32_t cols = layout_.columns[i];
    const uint64_t stride = strides_[i];
    if (cols == 1) continue;  // Dimension excluded from the grid.
    const std::vector<Value> values = table.DecodeColumn(dim);
    for (size_t r = 0; r < n; ++r) {
      cell_of[r] += static_cast<uint32_t>(
          flattener_.ColumnOf(dim, values[r], cols) * stride);
    }
  }

  // Order rows by (cell, sort value).
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), RowId{0});
  if (layout_.use_sort_dim) {
    const std::vector<Value> sort_values =
        table.DecodeColumn(layout_.sort_dim());
    std::sort(perm.begin(), perm.end(), [&](RowId a, RowId b) {
      const size_t ia = static_cast<size_t>(a);
      const size_t ib = static_cast<size_t>(b);
      if (cell_of[ia] != cell_of[ib]) return cell_of[ia] < cell_of[ib];
      if (sort_values[ia] != sort_values[ib]) {
        return sort_values[ia] < sort_values[ib];
      }
      return a < b;
    });
  } else {
    std::sort(perm.begin(), perm.end(), [&](RowId a, RowId b) {
      const size_t ia = static_cast<size_t>(a);
      const size_t ib = static_cast<size_t>(b);
      if (cell_of[ia] != cell_of[ib]) return cell_of[ia] < cell_of[ib];
      return a < b;
    });
  }
  InitStorage(table, &perm, ctx);

  // Cell table (§3.2.1): physical offset of each cell's first point.
  offsets_.assign(num_cells_ + 1, 0);
  for (size_t r = 0; r < n; ++r) offsets_[cell_of[r] + 1] += 1;
  for (size_t c = 0; c < num_cells_; ++c) offsets_[c + 1] += offsets_[c];

  // Per-cell refinement models over the sort dimension (§5.2).
  cell_models_ = CellModels();
  if (layout_.use_sort_dim && options_.use_cell_models) {
    const std::vector<Value> sort_values =
        data_.DecodeColumn(layout_.sort_dim());
    cell_models_.Build(sort_values, offsets_, options_.plm_min_cell_size,
                       options_.plm_delta);
  }
  return Status::OK();
}

void FloodIndex::Refine(size_t c, const ValueRange& r, size_t begin,
                        size_t end, size_t* out_begin,
                        size_t* out_end) const {
  const Column& col = data_.column(layout_.sort_dim());
  const auto get = [&col](size_t i) { return col.Get(i); };
  size_t rs;
  size_t re;
  if (cell_models_.HasModel(c)) {
    // PLM predictions are lower bounds (Plm invariant), so rectification
    // only ever searches forward.
    rs = GallopLowerBound(get, begin + cell_models_.Predict(c, r.lo), end,
                          r.lo);
    re = GallopUpperBound(get, begin + cell_models_.Predict(c, r.hi), end,
                          r.hi);
  } else {
    rs = BinaryLowerBound(get, begin, end, r.lo);
    re = BinaryUpperBound(get, rs, end, r.hi);
  }
  if (re < rs) re = rs;
  *out_begin = rs;
  *out_end = re;
}

template <typename V>
void FloodIndex::ExecuteT(const Query& query, V& visitor,
                          QueryStats* stats) const {
  const Stopwatch total;
  const size_t k = layout_.NumGridDims();

  // ---- Projection (§3.2.1) ----------------------------------------------
  const Stopwatch projection;
  DimSpan spans[64];
  FLOOD_DCHECK(k <= 64);
  uint64_t nc = 1;
  for (size_t i = 0; i < k; ++i) {
    const size_t dim = layout_.grid_dim(i);
    DimSpan& s = spans[i];
    s.filtered = dim < query.num_dims() && query.IsFiltered(dim);
    const uint32_t cols = layout_.columns[i];
    if (s.filtered) {
      const ValueRange& r = query.range(dim);
      if (r.IsEmpty()) {
        if (stats != nullptr) {
          stats->index_ns += projection.ElapsedNanos();
          stats->total_ns += total.ElapsedNanos();
        }
        return;
      }
      s.lo = flattener_.ColumnOf(dim, r.lo, cols);
      s.hi = flattener_.ColumnOf(dim, r.hi, cols);
    } else {
      s.lo = 0;
      s.hi = cols - 1;
    }
    nc *= s.hi - s.lo + 1;
  }
  const bool sort_filtered =
      layout_.use_sort_dim && layout_.sort_dim() < query.num_dims() &&
      query.IsFiltered(layout_.sort_dim());
  const ValueRange sort_range =
      sort_filtered ? query.range(layout_.sort_dim()) : ValueRange{};
  if (sort_filtered && sort_range.IsEmpty()) {
    if (stats != nullptr) stats->total_ns += total.ElapsedNanos();
    return;
  }
  if (stats != nullptr) stats->cells_visited += nc;

  // Per-query scratch, stack-backed (threading contract: no mutable
  // members on the index; InlineVec spills to the heap only for unusually
  // fragmented queries). Check-dim sets — one entry per distinct boundary
  // combination seen — are interned as (offset, len) into a flat pool.
  struct SetRef {
    uint32_t off;
    uint32_t len;
  };
  InlineVec<size_t, 64> set_pool;
  InlineVec<SetRef, 16> set_index;
  auto intern_check_set = [&set_pool, &set_index](const size_t* dims,
                                                  size_t len) {
    for (size_t s = 0; s < set_index.size(); ++s) {
      const SetRef ref = set_index[s];
      if (ref.len == len &&
          std::equal(dims, dims + len, set_pool.data() + ref.off)) {
        return static_cast<uint16_t>(s);
      }
    }
    const auto off = static_cast<uint32_t>(set_pool.size());
    for (size_t i = 0; i < len; ++i) set_pool.push_back(dims[i]);
    set_index.push_back({off, static_cast<uint32_t>(len)});
    return static_cast<uint16_t>(set_index.size() - 1);
  };
  auto check_set = [&set_pool, &set_index](uint16_t id) {
    const SetRef ref = set_index[id];
    return std::span<const size_t>(set_pool.data() + ref.off, ref.len);
  };

  InlineVec<ScanTask, 128> tasks;
  int64_t refine_ns = 0;
  uint64_t zone_pruned_blocks = 0;
  const Column* sort_col =
      sort_filtered ? &data_.column(layout_.sort_dim()) : nullptr;

  // Odometer over the outer grid dimensions [0, k-1); the innermost
  // dimension is emitted as up to three segments (boundary / merged
  // interior / boundary), which keeps physically-adjacent interior cells in
  // single runs when no refinement applies.
  uint32_t col[64];
  for (size_t i = 0; i < k; ++i) col[i] = spans[i].lo;
  const size_t inner = k > 0 ? k - 1 : 0;

  size_t outer_check[64];
  while (true) {
    uint64_t base = 0;
    size_t num_outer = 0;
    for (size_t i = 0; i + 1 < k; ++i) {
      base += static_cast<uint64_t>(col[i]) * strides_[i];
      if (spans[i].filtered &&
          (col[i] == spans[i].lo || col[i] == spans[i].hi)) {
        outer_check[num_outer++] = layout_.grid_dim(i);
      }
    }

    // Innermost-dimension segments: [lo..lo], [lo+1..hi-1], [hi..hi].
    struct Segment {
      uint32_t a;
      uint32_t b;
      bool boundary;
    };
    Segment segments[3];
    size_t num_segments = 0;
    if (k == 0) {
      segments[num_segments++] = {0, 0, false};
    } else {
      const DimSpan& s = spans[inner];
      if (!s.filtered) {
        segments[num_segments++] = {s.lo, s.hi, false};
      } else if (s.lo == s.hi) {
        segments[num_segments++] = {s.lo, s.lo, true};
      } else {
        segments[num_segments++] = {s.lo, s.lo, true};
        if (s.lo + 1 <= s.hi - 1) {
          segments[num_segments++] = {s.lo + 1, s.hi - 1, false};
        }
        segments[num_segments++] = {s.hi, s.hi, true};
      }
    }
    for (size_t seg = 0; seg < num_segments; ++seg) {
      const Segment& sg = segments[seg];
      size_t seg_dims[64];
      size_t seg_n = num_outer;
      std::copy(outer_check, outer_check + num_outer, seg_dims);
      if (sg.boundary) seg_dims[seg_n++] = layout_.grid_dim(inner);
      std::sort(seg_dims, seg_dims + seg_n);
      const uint16_t set_id = intern_check_set(seg_dims, seg_n);

      const uint64_t first_cell = base + sg.a;
      const uint64_t last_cell = base + sg.b;
      if (sort_filtered) {
        // Per-cell refinement (ranges are per-cell sorted runs).
        const Stopwatch refine_sw;
        for (uint64_t c = first_cell; c <= last_cell; ++c) {
          const size_t begin = offsets_[c];
          const size_t end = offsets_[c + 1];
          if (begin == end) continue;
          // Zone-map task pruning: a cell's rows are sorted by the sort
          // dimension, so the zone maps of its first and last covering
          // blocks bound its sort values (the blocks may be shared with
          // neighboring cells, which only makes the bound conservative).
          // A disjoint cell skips refinement and scanning entirely. Only
          // blocks fully inside the cell count as skipped: those are
          // provably never decoded (shared boundary blocks may still be
          // scanned through a neighboring cell).
          const size_t b0 = begin / Column::kBlockSize;
          const size_t b1 = (end - 1) / Column::kBlockSize;
          if (sort_col->BlockMax(b1) < sort_range.lo ||
              sort_col->BlockMin(b0) > sort_range.hi) {
            const size_t full_begin =
                (begin + Column::kBlockSize - 1) / Column::kBlockSize;
            const size_t full_end = end / Column::kBlockSize;
            if (full_end > full_begin) {
              zone_pruned_blocks += full_end - full_begin;
            }
            continue;
          }
          size_t rb;
          size_t re;
          Refine(c, sort_range, begin, end, &rb, &re);
          if (rb < re) {
            tasks.push_back({static_cast<uint32_t>(rb),
                             static_cast<uint32_t>(re), set_id});
          }
        }
        refine_ns += refine_sw.ElapsedNanos();
      } else if (options_.enable_run_merging) {
        // Merged contiguous run across the segment's cells.
        const size_t begin = offsets_[first_cell];
        const size_t end = offsets_[last_cell + 1];
        if (begin < end) {
          tasks.push_back({static_cast<uint32_t>(begin),
                           static_cast<uint32_t>(end), set_id});
        }
      } else {
        // Ablation: one scan task per cell, no coalescing.
        for (uint64_t c = first_cell; c <= last_cell; ++c) {
          if (offsets_[c] < offsets_[c + 1]) {
            tasks.push_back({offsets_[c], offsets_[c + 1], set_id});
          }
        }
      }
    }

    // Advance the odometer (outer dims only).
    if (k <= 1) break;
    size_t i = k - 1;
    bool done = true;
    while (i-- > 0) {
      if (++col[i] <= spans[i].hi) {
        done = false;
        break;
      }
      col[i] = spans[i].lo;
    }
    if (done) break;
  }

  if (stats != nullptr) {
    stats->index_ns += projection.ElapsedNanos() - refine_ns;
    stats->refine_ns += refine_ns;
    stats->blocks_skipped += zone_pruned_blocks;
  }

  // ---- Scan (§3.2 step 3) -------------------------------------------------
  const Stopwatch scan;
  const std::vector<size_t> all_filtered =
      options_.enable_exact_ranges ? std::vector<size_t>()
                                   : FilteredDims(query);
  for (const ScanTask& task : tasks) {
    const std::span<const size_t> dims =
        options_.enable_exact_ranges ? check_set(task.check_set)
                                     : std::span<const size_t>(all_filtered);
    ScanRange(data_, query, task.begin, task.end,
              /*exact=*/options_.enable_exact_ranges && dims.empty(), dims,
              visitor, stats);
  }
  if (stats != nullptr) {
    stats->scan_ns += scan.ElapsedNanos();
    stats->total_ns += total.ElapsedNanos();
  }
}

size_t FloodIndex::IndexSizeBytes() const {
  return offsets_.size() * sizeof(uint32_t) +
         cell_models_.MemoryUsageBytes() + flattener_.MemoryUsageBytes() +
         strides_.size() * sizeof(uint64_t);
}

FLOOD_DEFINE_EXECUTE_DISPATCH(FloodIndex);

std::vector<std::pair<std::string, double>> FloodIndex::DebugProperties()
    const {
  return {{"num_cells", static_cast<double>(num_cells_)},
          {"num_grid_dims", static_cast<double>(layout_.NumGridDims())},
          {"num_cell_models", static_cast<double>(cell_models_.num_models())}};
}

std::string FloodIndex::Describe() const {
  return "Flood[" + layout_.ToString() + "]";
}

namespace {
const IndexRegistrar kRegistrar(
    "flood", {},
    [](const IndexOptions& opts)
        -> StatusOr<std::unique_ptr<MultiDimIndex>> {
      FloodIndex::Options o;
      if (opts.Has("layout")) {
        StatusOr<GridLayout> layout = GridLayout::Parse(*opts.Get("layout"));
        if (!layout.ok()) return layout.status();
        o.layout = std::move(*layout);
      }
      o.default_target_cells = static_cast<uint64_t>(opts.GetInt(
          "target_cells", static_cast<int64_t>(o.default_target_cells)));
      o.learn_layout = opts.GetBool("learn_layout", o.learn_layout);
      const std::string mode = opts.GetString("flatten_mode", "cdf");
      if (mode == "linear") {
        o.flatten_mode = Flattener::Mode::kLinear;
      } else if (mode != "cdf") {
        return Status::InvalidArgument("unknown flatten_mode: " + mode);
      }
      o.use_cell_models = opts.GetBool("use_cell_models", o.use_cell_models);
      o.plm_delta = opts.GetDouble("plm_delta", o.plm_delta);
      o.plm_min_cell_size = static_cast<size_t>(opts.GetInt(
          "plm_min_cell_size", static_cast<int64_t>(o.plm_min_cell_size)));
      o.max_cells = static_cast<uint64_t>(
          opts.GetInt("max_cells", static_cast<int64_t>(o.max_cells)));
      o.seed = static_cast<uint64_t>(
          opts.GetInt("seed", static_cast<int64_t>(o.seed)));
      o.enable_run_merging =
          opts.GetBool("enable_run_merging", o.enable_run_merging);
      o.enable_exact_ranges =
          opts.GetBool("enable_exact_ranges", o.enable_exact_ranges);
      return std::unique_ptr<MultiDimIndex>(new FloodIndex(std::move(o)));
    });
}  // namespace

}  // namespace flood
