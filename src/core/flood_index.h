#ifndef FLOOD_CORE_FLOOD_INDEX_H_
#define FLOOD_CORE_FLOOD_INDEX_H_

#include <vector>

#include "core/cell_models.h"
#include "core/flattener.h"
#include "core/grid_layout.h"
#include "query/multidim_index.h"

namespace flood {

/// Flood: the learned multi-dimensional in-memory index (§3–§5).
///
/// The d-dimensional space is covered by a (d-1)-dimensional grid over the
/// layout's grid dimensions; within a cell, points are ordered by the sort
/// dimension. Skewed attributes are *flattened* through per-dimension CDF
/// models so each column holds ~equal mass; per-cell piecewise-linear
/// models accelerate refinement along the sort dimension.
///
/// Query flow (§3.2): Projection (intersecting cells → physical ranges),
/// Refinement (sort-dimension narrowing via PLM + local search), Scan
/// (columnar filter of boundary cells; interior cells scan check-free as
/// exact ranges, including O(1) cumulative-aggregate answers).
///
/// The layout itself is learned offline by LayoutOptimizer; Build accepts
/// any valid layout, which is how the ablations of Fig. 11 are expressed.
class FloodIndex final : public StorageBackedIndex {
 public:
  struct Options {
    /// Layout to build. When empty, Build learns one from the
    /// BuildContext's training workload (see learn_layout), falling back
    /// to GridLayout::Default.
    GridLayout layout;
    /// Target cell count of the GridLayout::Default fallback; 0 = n/1024.
    uint64_t default_target_cells = 0;
    /// With an empty layout and a non-empty ctx.workload, learn the layout
    /// via LayoutOptimizer (CostModel::Default()) instead of the uniform
    /// default. This is how Database::Open trains Flood.
    bool learn_layout = true;
    /// kCdf = flattened (paper default); kLinear = fixed-width ablation.
    Flattener::Mode flatten_mode = Flattener::Mode::kCdf;
    size_t flatten_sample_size = 50'000;
    size_t flatten_rmi_leaves = 64;
    /// Per-cell PLM refinement models (§5.2); disable to fall back to
    /// binary search everywhere.
    bool use_cell_models = true;
    double plm_delta = 50.0;       ///< Fig. 17b default.
    size_t plm_min_cell_size = 64; ///< Cells below this use binary search.
    uint64_t max_cells = uint64_t{1} << 22;
    uint64_t seed = 42;
    /// §7.1 optimization ablations (bench_ablation_optimizations):
    /// merge physically-adjacent interior cells into single runs...
    bool enable_run_merging = true;
    /// ...and skip per-value checks on ranges known to fully match
    /// (disabling also disables cumulative-aggregate answers).
    bool enable_exact_ranges = true;
  };

  FloodIndex() = default;
  explicit FloodIndex(Options options) : options_(std::move(options)) {}

  std::string_view name() const override { return "Flood"; }

  Status Build(const Table& table, const BuildContext& ctx) override;

  void Execute(const Query& query, Visitor& visitor,
               QueryStats* stats) const override;

  size_t IndexSizeBytes() const override;

  std::vector<std::pair<std::string, double>> DebugProperties()
      const override;
  std::string Describe() const override;
  std::string SerializedLayout() const override {
    return layout_.Serialize();
  }

  const GridLayout& layout() const { return layout_; }
  uint64_t num_cells() const { return num_cells_; }
  const Flattener& flattener() const { return flattener_; }
  size_t num_cell_models() const { return cell_models_.num_models(); }

  /// Points in cell `c` (introspection / tests).
  size_t CellSize(size_t c) const {
    return offsets_[c + 1] - offsets_[c];
  }

  /// Physical [begin, end) row range of cell `c` (used by KnnEngine).
  std::pair<size_t, size_t> CellRange(size_t c) const {
    FLOOD_DCHECK(c < num_cells_);
    return {offsets_[c], offsets_[c + 1]};
  }

  template <typename V>
  void ExecuteT(const Query& query, V& visitor, QueryStats* stats) const;

 private:
  /// Per-grid-dimension projection of a query.
  struct DimSpan {
    uint32_t lo = 0;       ///< First intersecting column.
    uint32_t hi = 0;       ///< Last intersecting column.
    bool filtered = false;
  };

  /// One physical range to scan plus the dimensions needing per-row checks
  /// (identified by an id into a per-query set table).
  struct ScanTask {
    uint32_t begin;
    uint32_t end;
    uint16_t check_set;
  };

  /// Refines [begin, end) of cell `c` along the sort dimension to the
  /// sub-range matching `r` (§3.2.2 / §5.2).
  void Refine(size_t c, const ValueRange& r, size_t begin, size_t end,
              size_t* out_begin, size_t* out_end) const;

  Options options_;
  GridLayout layout_;
  Flattener flattener_;
  uint64_t num_cells_ = 0;
  std::vector<uint64_t> strides_;    ///< Cell-id stride per grid dim.
  std::vector<uint32_t> offsets_;    ///< Cell table: num_cells + 1 offsets.
  CellModels cell_models_;
};

}  // namespace flood

#endif  // FLOOD_CORE_FLOOD_INDEX_H_
