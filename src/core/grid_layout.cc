#include "core/grid_layout.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace flood {

bool GridLayout::IsValid(size_t nd) const {
  if (dim_order.size() != nd || nd == 0) return false;
  if (use_sort_dim && nd < 1) return false;
  if (columns.size() != NumGridDims()) return false;
  for (uint32_t c : columns) {
    if (c == 0) return false;
  }
  std::vector<size_t> sorted = dim_order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < nd; ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

GridLayout GridLayout::Default(size_t num_dims, uint64_t target_cells) {
  GridLayout layout;
  layout.dim_order.resize(num_dims);
  std::iota(layout.dim_order.begin(), layout.dim_order.end(), size_t{0});
  layout.use_sort_dim = num_dims > 1;
  const size_t grid_dims = layout.NumGridDims();
  layout.columns.assign(grid_dims, 1);
  if (grid_dims > 0 && target_cells > 1) {
    const double per_dim = std::pow(static_cast<double>(target_cells),
                                    1.0 / static_cast<double>(grid_dims));
    const uint32_t c = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(per_dim)));
    layout.columns.assign(grid_dims, c);
  }
  return layout;
}

namespace {

// Parses a comma-separated list of non-negative integers.
bool ParseIntList(const std::string& text, std::vector<uint64_t>* out) {
  out->clear();
  if (text.empty()) return true;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (token.empty()) return false;
    uint64_t value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    out->push_back(value);
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  return true;
}

}  // namespace

std::string GridLayout::Serialize() const {
  std::ostringstream os;
  os << "order=";
  for (size_t i = 0; i < dim_order.size(); ++i) {
    if (i > 0) os << ",";
    os << dim_order[i];
  }
  os << ";cols=";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << ",";
    os << columns[i];
  }
  os << ";sort=" << (use_sort_dim ? 1 : 0);
  return os.str();
}

StatusOr<GridLayout> GridLayout::Parse(const std::string& text) {
  GridLayout layout;
  size_t pos = 0;
  bool saw_order = false;
  bool saw_cols = false;
  bool saw_sort = false;
  while (pos < text.size()) {
    size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    const std::string field = text.substr(pos, semi - pos);
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("layout field missing '=': " + field);
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    std::vector<uint64_t> ints;
    if (!ParseIntList(value, &ints)) {
      return Status::InvalidArgument("bad integer list in: " + field);
    }
    if (key == "order") {
      for (uint64_t v : ints) layout.dim_order.push_back(v);
      saw_order = true;
    } else if (key == "cols") {
      for (uint64_t v : ints) {
        layout.columns.push_back(static_cast<uint32_t>(v));
      }
      saw_cols = true;
    } else if (key == "sort") {
      if (ints.size() != 1 || ints[0] > 1) {
        return Status::InvalidArgument("sort must be 0 or 1");
      }
      layout.use_sort_dim = ints[0] == 1;
      saw_sort = true;
    } else {
      return Status::InvalidArgument("unknown layout field: " + key);
    }
    pos = semi + 1;
  }
  if (!saw_order || !saw_cols || !saw_sort) {
    return Status::InvalidArgument("layout requires order, cols and sort");
  }
  if (!layout.IsValid(layout.dim_order.size())) {
    return Status::InvalidArgument("parsed layout is structurally invalid");
  }
  return layout;
}

std::string GridLayout::ToString() const {
  std::ostringstream os;
  os << "grid[";
  for (size_t i = 0; i < NumGridDims(); ++i) {
    if (i > 0) os << ", ";
    os << "d" << dim_order[i] << ":" << columns[i];
  }
  os << "]";
  if (use_sort_dim) os << " sort=d" << sort_dim();
  return os.str();
}

}  // namespace flood
