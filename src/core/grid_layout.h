#ifndef FLOOD_CORE_GRID_LAYOUT_H_
#define FLOOD_CORE_GRID_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace flood {

/// A Flood layout L = (O, {c_i}) (§4.1): an ordering O of the d dimensions
/// — the last entry being the sort dimension — plus the number of columns
/// for each grid dimension.
///
/// For the §7.4 "Simple Grid" ablation, `use_sort_dim` may be false, in
/// which case every dimension in `dim_order` is a grid dimension and cells
/// are unordered histograms.
struct GridLayout {
  /// Table-dimension ids; the first NumGridDims() entries form the grid (in
  /// traversal-priority order), the last is the sort dimension when
  /// use_sort_dim.
  std::vector<size_t> dim_order;
  /// Columns per grid dimension, parallel to the grid prefix of dim_order.
  /// c_i == 1 effectively excludes the dimension from the grid.
  std::vector<uint32_t> columns;
  bool use_sort_dim = true;

  size_t num_dims() const { return dim_order.size(); }
  size_t NumGridDims() const {
    return dim_order.size() - (use_sort_dim ? 1 : 0);
  }
  size_t sort_dim() const {
    FLOOD_DCHECK(use_sort_dim && !dim_order.empty());
    return dim_order.back();
  }
  size_t grid_dim(size_t i) const { return dim_order[i]; }

  /// Total number of grid cells (product of column counts).
  uint64_t NumCells() const {
    uint64_t cells = 1;
    for (uint32_t c : columns) cells *= c;
    return cells;
  }

  /// Structural validity: a permutation prefix with matching column counts.
  bool IsValid(size_t num_dims) const;

  /// A uniform default: every dimension in natural order, the last as sort
  /// dimension, and column counts splitting `target_cells` evenly across
  /// grid dimensions.
  static GridLayout Default(size_t num_dims, uint64_t target_cells);

  std::string ToString() const;

  /// Compact machine-readable form, e.g. "order=2,0,1;cols=4,8;sort=1".
  /// Lets applications persist a learned layout and rebuild without
  /// re-running the optimizer.
  std::string Serialize() const;

  /// Parses Serialize() output. Validates structure (IsValid).
  static StatusOr<GridLayout> Parse(const std::string& text);
};

}  // namespace flood

#endif  // FLOOD_CORE_GRID_LAYOUT_H_
