#include "core/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace flood {

KnnEngine::KnnEngine(const FloodIndex* index, std::vector<size_t> dims)
    : index_(index), dims_(std::move(dims)) {
  FLOOD_CHECK(index_ != nullptr);
  const Table& data = index_->data();
  if (dims_.empty()) {
    for (size_t d = 0; d < data.num_dims(); ++d) dims_.push_back(d);
  }
  for (size_t d : dims_) FLOOD_CHECK(d < data.num_dims());

  // Per-column raw extents for every grid dimension. Column extents are
  // ordered (monotone flattening), which the ring lower bound relies on.
  const GridLayout& layout = index_->layout();
  const size_t k = layout.NumGridDims();
  col_min_.resize(k);
  col_max_.resize(k);
  for (size_t i = 0; i < k; ++i) {
    const size_t dim = layout.grid_dim(i);
    const uint32_t cols = layout.columns[i];
    col_min_[i].assign(cols, kValueMax);
    col_max_[i].assign(cols, kValueMin);
    const Column& column = data.column(dim);
    column.ForEach(0, column.size(), [&](size_t, Value v) {
      const uint32_t c = index_->flattener().ColumnOf(dim, v, cols);
      col_min_[i][c] = std::min(col_min_[i][c], v);
      col_max_[i][c] = std::max(col_max_[i][c], v);
    });
  }
}

double KnnEngine::SquaredDistance(const std::vector<Value>& point,
                                  RowId row) const {
  double total = 0;
  for (size_t d : dims_) {
    const double diff = static_cast<double>(point[d]) -
                        static_cast<double>(index_->data().Get(row, d));
    total += diff * diff;
  }
  return total;
}

std::vector<KnnEngine::Neighbor> KnnEngine::Search(
    const std::vector<Value>& point, size_t k) const {
  const GridLayout& layout = index_->layout();
  const size_t gdims = layout.NumGridDims();
  FLOOD_CHECK(point.size() == index_->data().num_dims());
  last_cells_visited_ = 0;

  // True iff the grid dimension participates in the distance.
  std::vector<bool> in_distance(gdims, false);
  for (size_t i = 0; i < gdims; ++i) {
    in_distance[i] = std::find(dims_.begin(), dims_.end(),
                               layout.grid_dim(i)) != dims_.end();
  }

  // The query point's home column per grid dimension.
  std::vector<int64_t> center(gdims, 0);
  for (size_t i = 0; i < gdims; ++i) {
    center[i] = index_->flattener().ColumnOf(
        layout.grid_dim(i), point[layout.grid_dim(i)],
        layout.columns[i]);
  }

  // Max-heap of the best k squared distances.
  std::priority_queue<std::pair<double, RowId>> best;
  auto offer = [&](double d2, RowId row) {
    if (best.size() < k) {
      best.emplace(d2, row);
    } else if (d2 < best.top().first) {
      best.pop();
      best.emplace(d2, row);
    }
  };

  // Smallest possible distance contributed by a column at coordinate
  // distance >= ring along grid dim i (inf when no such column exists).
  auto dim_gap = [&](size_t i, int64_t ring) {
    if (!in_distance[i]) return 0.0;  // Dim doesn't separate candidates.
    const size_t dim = layout.grid_dim(i);
    const double p = static_cast<double>(point[dim]);
    double gap = std::numeric_limits<double>::infinity();
    // Below: nearest non-empty column at index <= center - ring.
    for (int64_t j = center[i] - ring; j >= 0; --j) {
      if (col_min_[i][static_cast<size_t>(j)] > col_max_[i][static_cast<size_t>(j)]) {
        continue;  // Empty column.
      }
      gap = std::min(
          gap, std::max(0.0, p - static_cast<double>(
                                     col_max_[i][static_cast<size_t>(j)])));
      break;
    }
    // Above: nearest non-empty column at index >= center + ring.
    for (int64_t j = center[i] + ring;
         j < static_cast<int64_t>(col_min_[i].size()); ++j) {
      if (col_min_[i][static_cast<size_t>(j)] > col_max_[i][static_cast<size_t>(j)]) {
        continue;
      }
      gap = std::min(
          gap, std::max(0.0, static_cast<double>(
                                 col_min_[i][static_cast<size_t>(j)]) -
                                 p));
      break;
    }
    return gap;
  };

  // Ring expansion. Ring r holds every cell whose Chebyshev column
  // distance to the center is exactly r.
  int64_t max_ring = 0;
  for (size_t i = 0; i < gdims; ++i) {
    max_ring = std::max<int64_t>(
        max_ring,
        std::max(center[i],
                 static_cast<int64_t>(layout.columns[i]) - 1 - center[i]));
  }

  std::vector<int64_t> lo(gdims);
  std::vector<int64_t> hi(gdims);
  std::vector<int64_t> coord(gdims);
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    // Termination: once k candidates exist, no cell at ring distance
    // >= ring can beat the current k-th best.
    if (best.size() == k && ring > 0) {
      double bound = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < gdims; ++i) {
        if (layout.columns[i] <= 1) continue;
        bound = std::min(bound, dim_gap(i, ring));
      }
      // An infinite bound means every remaining ring is empty.
      if (bound * bound > best.top().first) break;
    }

    for (size_t i = 0; i < gdims; ++i) {
      lo[i] = std::max<int64_t>(0, center[i] - ring);
      hi[i] = std::min<int64_t>(
          static_cast<int64_t>(layout.columns[i]) - 1, center[i] + ring);
      coord[i] = lo[i];
    }
    // Odometer over the ring's bounding box, keeping only exact-ring cells.
    while (true) {
      int64_t cheb = 0;
      for (size_t i = 0; i < gdims; ++i) {
        cheb = std::max<int64_t>(cheb, std::abs(coord[i] - center[i]));
      }
      if (cheb == ring || (ring == 0 && gdims == 0)) {
        uint64_t cell = 0;
        for (size_t i = 0; i < gdims; ++i) {
          cell = cell * layout.columns[i] + static_cast<uint64_t>(coord[i]);
        }
        const auto [begin, end] = index_->CellRange(cell);
        ++last_cells_visited_;
        for (size_t row = begin; row < end; ++row) {
          offer(SquaredDistance(point, static_cast<RowId>(row)),
                static_cast<RowId>(row));
        }
      }
      if (gdims == 0) break;
      size_t i = gdims;
      bool done = true;
      while (i-- > 0) {
        if (++coord[i] <= hi[i]) {
          done = false;
          break;
        }
        coord[i] = lo[i];
      }
      if (done) break;
    }
    if (gdims == 0) break;
  }

  std::vector<Neighbor> result;
  result.reserve(best.size());
  while (!best.empty()) {
    result.push_back({best.top().second, std::sqrt(best.top().first)});
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace flood
