#ifndef FLOOD_CORE_KNN_H_
#define FLOOD_CORE_KNN_H_

#include <vector>

#include "core/flood_index.h"

namespace flood {

/// k-nearest-neighbor search over a built FloodIndex (paper §6: "Flood can
/// easily locate adjacent cells in its grid layout, allowing a similar kNN
/// algorithm" — the extension the paper describes but does not evaluate).
///
/// The engine expands Chebyshev rings of grid cells around the query
/// point's cell, maintaining the best k candidates by Euclidean distance
/// over the chosen dimensions. Per-column raw-value extents (computed once
/// at construction) give an exact lower bound on the distance to any
/// unvisited ring, so the search terminates with the exact answer.
///
/// Distances are computed in raw value space; pre-scale dimensions if
/// their units differ (e.g. lat/lon vs timestamps).
class KnnEngine {
 public:
  struct Neighbor {
    RowId row = 0;        ///< Row id in the index's storage order.
    double distance = 0;  ///< Euclidean distance over the search dims.
  };

  /// `index` must outlive the engine. `dims` are the dimensions entering
  /// the distance; empty = all dimensions.
  KnnEngine(const FloodIndex* index, std::vector<size_t> dims = {});

  /// The k nearest rows to `point` (full-arity row of raw values; only the
  /// search dims are read). Result sorted by ascending distance; fewer
  /// than k entries only if the table has fewer rows.
  std::vector<Neighbor> Search(const std::vector<Value>& point,
                               size_t k) const;

  /// Cells examined by the most recent Search (for tests/diagnostics).
  size_t last_cells_visited() const { return last_cells_visited_; }

 private:
  /// Squared distance from point to row over the search dims.
  double SquaredDistance(const std::vector<Value>& point, RowId row) const;

  const FloodIndex* index_;
  std::vector<size_t> dims_;
  // Per grid dimension: column count and per-column [min, max] raw extents
  // of the points it holds (kValueMax/kValueMin sentinels when empty).
  std::vector<std::vector<Value>> col_min_;
  std::vector<std::vector<Value>> col_max_;
  mutable size_t last_cells_visited_ = 0;
};

}  // namespace flood

#endif  // FLOOD_CORE_KNN_H_
