#include "core/layout_optimizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.h"
#include "common/timer.h"

namespace flood {

namespace {

/// Layout-independent projection of one query: per-dimension flattened
/// endpoints and marginal selectivities (Algorithm 1 line "flatten the data
/// sample and workload sample using RMIs").
struct FlatQuery {
  std::vector<uint8_t> filtered;  // Per table dim.
  std::vector<double> ulo;
  std::vector<double> uhi;
  std::vector<double> sel;
  double dims_filtered = 0;
  bool empty = false;
};

/// Sample-backed evaluator of Eq. 1 for candidate layouts. All statistics
/// are estimated from the samples or computed from the layout parameters —
/// no index is built and no query is executed (§4.2).
class CostEstimator {
 public:
  CostEstimator(const Table& table, const Workload& workload,
                const CostModel* cost_model,
                const LayoutOptimizer::Options& options)
      : cost_model_(cost_model), num_rows_(table.num_rows()) {
    Rng rng(options.seed);
    sample_ = DataSample::FromTable(table, options.data_sample_size,
                                    rng.Next());
    queries_ = workload.Sample(options.query_sample_size, rng.Next());
    std::vector<Value> dim_min(table.num_dims());
    std::vector<Value> dim_max(table.num_dims());
    for (size_t dim = 0; dim < table.num_dims(); ++dim) {
      dim_min[dim] = table.min_value(dim);
      dim_max[dim] = table.max_value(dim);
    }
    flattener_ = Flattener::TrainFromSample(sample_, dim_min, dim_max,
                                            Flattener::Mode::kCdf,
                                            options.flatten_rmi_leaves);
    const size_t d = table.num_dims();
    flat_queries_.reserve(queries_.size());
    for (const Query& q : queries_) {
      FlatQuery fq;
      fq.filtered.assign(d, 0);
      fq.ulo.assign(d, 0.0);
      fq.uhi.assign(d, 1.0);
      fq.sel.assign(d, 1.0);
      for (size_t dim = 0; dim < d && dim < q.num_dims(); ++dim) {
        if (!q.IsFiltered(dim)) continue;
        const ValueRange& r = q.range(dim);
        if (r.IsEmpty()) fq.empty = true;
        fq.filtered[dim] = 1;
        fq.ulo[dim] = flattener_.ToUnit(dim, r.lo);
        fq.uhi[dim] = flattener_.ToUnit(dim, r.hi);
        fq.sel[dim] = sample_.Selectivity(dim, r);
        fq.dims_filtered += 1;
      }
      flat_queries_.push_back(std::move(fq));
    }
  }

  const DataSample& sample() const { return sample_; }
  size_t num_queries() const { return flat_queries_.size(); }
  size_t sample_rows() const { return sample_.num_rows(); }

  /// Average selectivity of `dim` across the query sample.
  double AvgSelectivity(size_t dim) const {
    if (flat_queries_.empty()) return 1.0;
    double total = 0;
    for (const auto& fq : flat_queries_) total += fq.sel[dim];
    return total / static_cast<double>(flat_queries_.size());
  }

  /// Average Eq.-1 cost over the query sample for a candidate layout whose
  /// grid dims are `order[0..k)` with (possibly fractional) column counts
  /// `cols`, and sort dimension `sort_dim` (ignored if !use_sort_dim).
  /// `relaxed` uses a continuous column-span surrogate for smooth
  /// gradients; the integer mode mirrors the index's floor arithmetic.
  double AvgCost(const std::vector<size_t>& order,
                 const std::vector<double>& cols, bool use_sort_dim,
                 size_t sort_dim, bool relaxed) const {
    const size_t k = order.size();
    double total_cells = 1;
    for (double c : cols) total_cells *= std::max(1.0, c);
    double total = 0;
    for (const auto& fq : flat_queries_) {
      if (fq.empty) continue;
      double nc = 1;
      double frac = 1;
      double interior = 1;
      double inner_span = 1;
      bool inner_filtered = false;
      for (size_t i = 0; i < k; ++i) {
        const size_t dim = order[i];
        const double c = std::max(1.0, cols[i]);
        double span;
        if (fq.filtered[dim]) {
          if (relaxed) {
            span = std::min(c, (fq.uhi[dim] - fq.ulo[dim]) * c + 1.0);
          } else {
            const double ci = std::floor(c);
            double lo_col = std::floor(fq.ulo[dim] * ci);
            double hi_col = std::floor(fq.uhi[dim] * ci);
            lo_col = std::min(lo_col, ci - 1);
            hi_col = std::min(hi_col, ci - 1);
            span = hi_col - lo_col + 1;
          }
          interior *= std::max(0.0, span - 2) / c;
        } else {
          span = c;
          // Unfiltered dims impose no checks; they don't break exactness.
        }
        nc *= span;
        frac *= std::min(1.0, span / c);
        if (i + 1 == k) {
          inner_span = span;
          inner_filtered = fq.filtered[dim] != 0;
        }
      }
      const bool sort_filtered = use_sort_dim && fq.filtered[sort_dim];
      const double sort_sel = sort_filtered ? fq.sel[sort_dim] : 1.0;
      const double ns =
          static_cast<double>(num_rows_) * frac * sort_sel;
      const double exact_pts =
          static_cast<double>(num_rows_) * interior * sort_sel;
      double ranges;
      if (sort_filtered) {
        ranges = nc;  // Per-cell refinement: one range per cell.
      } else {
        const double segments =
            inner_filtered ? std::min(inner_span, 3.0) : 1.0;
        ranges = std::max(1.0, nc / std::max(1.0, inner_span)) * segments;
      }

      CostModel::Features f;
      f.nc = std::max(1.0, nc);
      f.ns = std::max(0.0, ns);
      f.total_cells = total_cells;
      f.avg_cell_size = static_cast<double>(num_rows_) /
                        std::max(1.0, total_cells);
      f.dims_filtered = fq.dims_filtered;
      f.sort_filtered = sort_filtered ? 1.0 : 0.0;
      f.avg_visited_per_cell = f.ns / f.nc;
      f.exact_fraction =
          std::min(1.0, exact_pts / std::max(1.0, f.ns));
      f.avg_run_length = f.ns / std::max(1.0, ranges);
      total += cost_model_->PredictQueryTimeNs(f);
    }
    return total / std::max<size_t>(1, flat_queries_.size());
  }

 private:
  const CostModel* cost_model_;
  size_t num_rows_;
  DataSample sample_;
  Workload queries_;
  Flattener flattener_;
  std::vector<FlatQuery> flat_queries_;
};

/// Gradient-descent search over log-column-counts with projection onto the
/// cell budget, plus greedy coordinate probes to escape plateaus.
std::pair<std::vector<double>, double> GradientDescentSearch(
    const CostEstimator& est, const std::vector<size_t>& order,
    bool use_sort_dim, size_t sort_dim, std::vector<double> init_cols,
    uint64_t max_cells, int max_iterations) {
  const size_t k = order.size();
  if (k == 0) {
    return {{}, est.AvgCost(order, {}, use_sort_dim, sort_dim, false)};
  }
  const double log_budget = std::log(static_cast<double>(max_cells));

  std::vector<double> x(k);
  for (size_t i = 0; i < k; ++i) {
    x[i] = std::log(std::max(1.0, init_cols[i]));
  }
  auto project = [&](std::vector<double>& v) {
    double sum = 0;
    for (auto& xi : v) {
      xi = std::max(0.0, xi);
      sum += xi;
    }
    if (sum > log_budget) {
      const double scale = log_budget / sum;
      for (auto& xi : v) xi *= scale;
    }
  };
  project(x);

  auto eval = [&](const std::vector<double>& v, bool relaxed) {
    std::vector<double> cols(k);
    for (size_t i = 0; i < k; ++i) cols[i] = std::exp(v[i]);
    return est.AvgCost(order, cols, use_sort_dim, sort_dim, relaxed);
  };

  double best_cost = eval(x, true);
  std::vector<double> best_x = x;
  double lr = 0.4;
  const double h = 0.12;

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Numeric gradient in log space.
    std::vector<double> grad(k, 0.0);
    double gmax = 0;
    for (size_t i = 0; i < k; ++i) {
      std::vector<double> xp = x;
      std::vector<double> xm = x;
      xp[i] += h;
      xm[i] = std::max(0.0, xm[i] - h);
      const double fp = eval(xp, true);
      const double fm = eval(xm, true);
      grad[i] = (fp - fm) / (xp[i] - xm[i] + 1e-12);
      gmax = std::max(gmax, std::fabs(grad[i]));
    }
    if (gmax < 1e-9) break;

    std::vector<double> next = x;
    for (size_t i = 0; i < k; ++i) next[i] -= lr * grad[i] / gmax;
    project(next);
    const double next_cost = eval(next, true);
    if (next_cost < best_cost) {
      best_cost = next_cost;
      best_x = next;
      x = std::move(next);
      lr = std::min(1.0, lr * 1.15);
    } else {
      lr *= 0.5;
      if (lr < 1e-3) break;
    }

    // Cheap coordinate probes (x2 / x0.5 per dim) every few iterations.
    if (iter % 5 == 4) {
      for (size_t i = 0; i < k; ++i) {
        for (double delta : {std::log(2.0), -std::log(2.0)}) {
          std::vector<double> probe = x;
          probe[i] = std::max(0.0, probe[i] + delta);
          project(probe);
          const double c = eval(probe, true);
          if (c < best_cost) {
            best_cost = c;
            best_x = probe;
            x = std::move(probe);
          }
        }
      }
    }
  }

  // Integer rounding with a +/-1 neighborhood probe per dimension.
  std::vector<double> cols(k);
  for (size_t i = 0; i < k; ++i) {
    cols[i] = std::max(1.0, std::floor(std::exp(best_x[i]) + 0.5));
  }
  double final_cost =
      est.AvgCost(order, cols, use_sort_dim, sort_dim, false);
  for (size_t i = 0; i < k; ++i) {
    for (double delta : {-1.0, 1.0}) {
      std::vector<double> probe = cols;
      probe[i] = std::max(1.0, probe[i] + delta);
      double cells = 1;
      for (double c : probe) cells *= c;
      if (cells > static_cast<double>(max_cells)) continue;
      const double c = est.AvgCost(order, probe, use_sort_dim, sort_dim,
                                   false);
      if (c < final_cost) {
        final_cost = c;
        cols = std::move(probe);
      }
    }
  }
  return {cols, final_cost};
}

}  // namespace

LayoutOptimizer::Result LayoutOptimizer::Optimize(
    const Table& table, const Workload& workload) const {
  const Stopwatch learn;
  const size_t d = table.num_dims();
  FLOOD_CHECK(d >= 1);
  CostEstimator est(table, workload, cost_model_, options_);

  // Dimensions by increasing average selectivity (most selective first).
  std::vector<size_t> dims(d);
  std::iota(dims.begin(), dims.end(), size_t{0});
  std::vector<double> avg_sel(d);
  for (size_t dim = 0; dim < d; ++dim) avg_sel[dim] = est.AvgSelectivity(dim);
  std::stable_sort(dims.begin(), dims.end(), [&avg_sel](size_t a, size_t b) {
    return avg_sel[a] < avg_sel[b];
  });

  Result result;
  double best_cost = std::numeric_limits<double>::infinity();

  const uint64_t init_cells = Clamp<uint64_t>(
      static_cast<uint64_t>(table.num_rows() / 1024), 64, options_.max_cells);

  // Iterate candidate sort dimensions (every dimension; Algorithm 1).
  for (size_t cand = 0; cand < d; ++cand) {
    const size_t sort_dim = dims[cand];
    std::vector<size_t> order;
    order.reserve(d - 1);
    for (size_t i = 0; i < d; ++i) {
      if (dims[i] != sort_dim) order.push_back(dims[i]);
    }

    // Initial column counts: selectivity-weighted split of the target cell
    // count; never-filtered dimensions start at one column (excluded).
    const size_t k = order.size();
    std::vector<double> init(k, 1.0);
    if (k > 0) {
      std::vector<double> w(k, 0.0);
      double total_w = 0;
      for (size_t i = 0; i < k; ++i) {
        const double sel = Clamp(avg_sel[order[i]], 1e-6, 1.0);
        w[i] = sel < 0.999 ? -std::log(sel) : 0.0;
        total_w += w[i];
      }
      const double log_target =
          std::log(static_cast<double>(init_cells));
      for (size_t i = 0; i < k; ++i) {
        if (total_w <= 0) {
          init[i] = std::exp(log_target / static_cast<double>(k));
        } else if (w[i] > 0) {
          init[i] = std::exp(log_target * w[i] / total_w);
        }
      }
    }

    auto [cols, cost] = GradientDescentSearch(
        est, order, /*use_sort_dim=*/true, sort_dim, init,
        options_.max_cells, options_.max_iterations);

    if (cost < best_cost) {
      best_cost = cost;
      GridLayout layout;
      layout.dim_order = order;
      layout.dim_order.push_back(sort_dim);
      layout.use_sort_dim = true;
      layout.columns.assign(cols.size(), 1);
      for (size_t i = 0; i < cols.size(); ++i) {
        layout.columns[i] = static_cast<uint32_t>(cols[i]);
      }
      result.layout = std::move(layout);
    }
  }

  result.predicted_cost_ns = best_cost;
  result.learning_seconds = learn.ElapsedSeconds();
  result.rows_sampled = est.sample_rows();
  result.queries_used = est.num_queries();
  return result;
}

double LayoutOptimizer::EstimateLayoutCost(const Table& table,
                                           const Workload& workload,
                                           const GridLayout& layout) const {
  CostEstimator est(table, workload, cost_model_, options_);
  const size_t k = layout.NumGridDims();
  std::vector<size_t> order(layout.dim_order.begin(),
                            layout.dim_order.begin() +
                                static_cast<std::ptrdiff_t>(k));
  std::vector<double> cols(layout.columns.begin(), layout.columns.end());
  return est.AvgCost(order, cols, layout.use_sort_dim,
                     layout.use_sort_dim ? layout.sort_dim() : 0,
                     /*relaxed=*/false);
}

StatusOr<OptimizedFlood> BuildOptimizedFlood(
    const Table& table, const Workload& train_workload,
    const CostModel& cost_model,
    const LayoutOptimizer::Options& optimizer_options,
    FloodIndex::Options index_options) {
  LayoutOptimizer optimizer(&cost_model, optimizer_options);
  OptimizedFlood out;
  out.learn = optimizer.Optimize(table, train_workload);

  index_options.layout = out.learn.layout;
  index_options.max_cells =
      std::max<uint64_t>(index_options.max_cells, optimizer_options.max_cells);
  out.index = std::make_unique<FloodIndex>(index_options);

  BuildContext ctx;
  ctx.workload = &train_workload;
  ctx.sample = DataSample::FromTable(table, 10'000, optimizer_options.seed);
  const Stopwatch load;
  FLOOD_RETURN_IF_ERROR(out.index->Build(table, ctx));
  out.load_seconds = load.ElapsedSeconds();
  return out;
}

}  // namespace flood
