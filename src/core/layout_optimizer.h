#ifndef FLOOD_CORE_LAYOUT_OPTIMIZER_H_
#define FLOOD_CORE_LAYOUT_OPTIMIZER_H_

#include <memory>

#include "core/cost_model.h"
#include "core/flood_index.h"
#include "core/grid_layout.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Algorithm 1 (§4.2, App. B): learns the layout for a dataset + workload.
///
///  1. Sample the dataset and the query workload.
///  2. Flatten both through per-dimension RMI CDFs.
///  3. For each candidate sort dimension, order the remaining dimensions by
///     average selectivity and run a gradient-descent search over the
///     column counts, evaluating Eq. 1 on the samples (no index builds, no
///     query runs inside the loop).
///  4. Return the lowest-cost candidate.
class LayoutOptimizer {
 public:
  struct Options {
    size_t data_sample_size = 20'000;   ///< §7.7: 0.01–1% samples suffice.
    size_t query_sample_size = 100;     ///< §7.7: ~5% of queries suffice.
    uint64_t max_cells = uint64_t{1} << 20;
    int max_iterations = 30;            ///< Gradient-descent steps.
    uint64_t seed = 7;
    size_t flatten_rmi_leaves = 64;
  };

  struct Result {
    GridLayout layout;
    double predicted_cost_ns = 0;  ///< Avg per-query cost of the winner.
    double learning_seconds = 0;
    size_t rows_sampled = 0;
    size_t queries_used = 0;
  };

  /// `cost_model` must outlive the optimizer.
  LayoutOptimizer(const CostModel* cost_model, Options options)
      : cost_model_(cost_model), options_(options) {
    FLOOD_CHECK(cost_model != nullptr);
  }

  Result Optimize(const Table& table, const Workload& workload) const;

  /// Estimated Eq.-1 cost of an arbitrary layout under this optimizer's
  /// sampling parameters (exposed for Fig. 14's cost surface).
  double EstimateLayoutCost(const Table& table, const Workload& workload,
                            const GridLayout& layout) const;

 private:
  const CostModel* cost_model_;
  Options options_;
};

/// An optimized-build bundle: learn the layout, then build Flood with it.
struct OptimizedFlood {
  std::unique_ptr<FloodIndex> index;
  LayoutOptimizer::Result learn;
  double load_seconds = 0;  ///< Table 4 "Flood Loading".
};

/// One-call front door: learns a layout with `optimizer_options` and builds
/// a FloodIndex (based on `index_options`, layout overwritten) over it.
StatusOr<OptimizedFlood> BuildOptimizedFlood(
    const Table& table, const Workload& train_workload,
    const CostModel& cost_model,
    const LayoutOptimizer::Options& optimizer_options = {},
    FloodIndex::Options index_options = {});

}  // namespace flood

#endif  // FLOOD_CORE_LAYOUT_OPTIMIZER_H_
