#include "core/zorder_curve.h"

#include <algorithm>

#include "common/math_util.h"

namespace flood {

ZOrderCurve::ZOrderCurve(size_t num_dims) : num_dims_(num_dims) {
  FLOOD_CHECK(num_dims >= 1 && num_dims <= 64);
  bits_per_dim_ = static_cast<uint32_t>(64 / num_dims);
  // Cap per-dim bits at 32 so coordinates fit uint32 (d=1 would give 64).
  bits_per_dim_ = std::min<uint32_t>(bits_per_dim_, 32);
  total_bits_ = bits_per_dim_ * static_cast<uint32_t>(num_dims);
  dim_mask_.resize(num_dims, 0);
  for (size_t d = 0; d < num_dims; ++d) {
    for (uint32_t b = 0; b < bits_per_dim_; ++b) {
      dim_mask_[d] |= uint64_t{1} << (d + b * num_dims);
    }
  }
}

std::optional<uint64_t> ZOrderCurve::NextInBox(uint64_t z, uint64_t zmin,
                                               uint64_t zmax) const {
  // Tropf & Herzog (1981), generalized to d dimensions. Walk code bits from
  // most to least significant, maintaining working copies of the box
  // corners; "load" operations pin a dimension's remaining bits to the
  // extreme values 10..0 / 01..1 within that dimension's bit track.
  std::optional<uint64_t> bigmin;
  uint64_t wmin = zmin;
  uint64_t wmax = zmax;
  for (uint32_t bit = total_bits_; bit-- > 0;) {
    const size_t dim = bit % num_dims_;
    const uint64_t bit_mask = uint64_t{1} << bit;
    const uint64_t below = DimBitsBelow(dim, bit);
    const int a = (z & bit_mask) ? 1 : 0;
    const int b = (wmin & bit_mask) ? 1 : 0;
    const int c = (wmax & bit_mask) ? 1 : 0;
    const int pattern = a * 4 + b * 2 + c;
    switch (pattern) {
      case 0b000:
        break;
      case 0b001:
        // Box straddles this bit; candidate BIGMIN begins with a 1 here.
        bigmin = (wmin & ~below) | bit_mask;
        wmax = (wmax & ~bit_mask) | below;  // load 01..1
        break;
      case 0b011:
        // Everything in the box from here is > z: zmin is the answer.
        return wmin;
      case 0b100:
        // z has left the box above the remaining range: saved candidate.
        return bigmin;
      case 0b101:
        wmin = (wmin & ~below) | bit_mask;  // load 10..0
        break;
      case 0b111:
        break;
      case 0b010:
      case 0b110:
        // zmin > zmax in this dimension: malformed box.
        FLOOD_DCHECK(false);
        return std::nullopt;
      default:
        break;
    }
  }
  return bigmin;
}

ZOrderMapper::ZOrderMapper(const Table& table, std::vector<size_t> dim_order)
    : curve_(dim_order.size()), dim_order_(std::move(dim_order)) {
  const size_t d = dim_order_.size();
  min_.resize(d);
  max_.resize(d);
  shift_.resize(d);
  max_coord_.resize(d);
  for (size_t i = 0; i < d; ++i) {
    const size_t table_dim = dim_order_[i];
    min_[i] = table.min_value(table_dim);
    max_[i] = table.max_value(table_dim);
    const uint64_t range = static_cast<uint64_t>(max_[i]) -
                           static_cast<uint64_t>(min_[i]);
    const int width = BitWidth(range);
    const int excess = width - static_cast<int>(curve_.bits_per_dim());
    shift_[i] = excess > 0 ? static_cast<uint32_t>(excess) : 0;
    max_coord_[i] = static_cast<uint32_t>(
        std::min<uint64_t>(range >> shift_[i], curve_.max_coord()));
  }
}

}  // namespace flood
