#ifndef FLOOD_CORE_ZORDER_CURVE_H_
#define FLOOD_CORE_ZORDER_CURVE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "storage/table.h"

namespace flood {

/// d-dimensional Morton (Z-order) encoding over 64-bit codes, following the
/// paper's construction (App. A): each dimension contributes
/// floor(64 / d) bits; dimension 0 (by convention the most selective)
/// occupies the code's least-significant interleave track.
///
/// Also implements the Tropf–Herzog BIGMIN computation used by the UB-tree
/// to skip ahead to the next Z-value inside a query box.
class ZOrderCurve {
 public:
  /// `num_dims` in [1, 64].
  explicit ZOrderCurve(size_t num_dims);

  size_t num_dims() const { return num_dims_; }
  uint32_t bits_per_dim() const { return bits_per_dim_; }

  /// Max encodable coordinate (inclusive).
  uint32_t max_coord() const {
    return bits_per_dim_ >= 32
               ? ~uint32_t{0}
               : (uint32_t{1} << bits_per_dim_) - 1;
  }

  /// Interleaves coords[0..d) (each <= max_coord()) into a Z-code.
  uint64_t Encode(const uint32_t* coords) const {
    uint64_t z = 0;
    for (size_t d = 0; d < num_dims_; ++d) {
      uint32_t c = coords[d];
      uint64_t bit = uint64_t{1} << d;
      while (c != 0) {
        if (c & 1) z |= bit;
        c >>= 1;
        bit <<= static_cast<uint32_t>(num_dims_);
      }
    }
    return z;
  }

  /// Extracts the coordinate of dimension `dim` from a Z-code.
  uint32_t Decode(uint64_t z, size_t dim) const {
    uint32_t c = 0;
    for (uint32_t b = 0; b < bits_per_dim_; ++b) {
      if (z & (uint64_t{1} << (dim + b * num_dims_))) {
        c |= uint32_t{1} << b;
      }
    }
    return c;
  }

  /// True if z's coordinates are within the box [zmin, zmax] component-wise.
  /// Works directly on masked codes: per-dimension bits of a Z-code compare
  /// like ordinary integers under the dimension's mask.
  bool InBox(uint64_t z, uint64_t zmin, uint64_t zmax) const {
    for (size_t d = 0; d < num_dims_; ++d) {
      const uint64_t m = dim_mask_[d];
      const uint64_t zd = z & m;
      if (zd < (zmin & m) || zd > (zmax & m)) return false;
    }
    return true;
  }

  /// BIGMIN: the smallest Z-code strictly inside the box [zmin, zmax]
  /// (component-wise) that is greater than `z`. Returns nullopt when no such
  /// code exists. Standard precondition: zmin/zmax encode the box corners.
  std::optional<uint64_t> NextInBox(uint64_t z, uint64_t zmin,
                                    uint64_t zmax) const;

 private:
  /// Bits of the code belonging to `dim`, at positions < `below_bit`.
  uint64_t DimBitsBelow(size_t dim, uint32_t below_bit) const {
    return dim_mask_[dim] & ((below_bit >= 64)
                                 ? ~uint64_t{0}
                                 : ((uint64_t{1} << below_bit) - 1));
  }

  size_t num_dims_;
  uint32_t bits_per_dim_;
  uint32_t total_bits_;
  std::vector<uint64_t> dim_mask_;
};

/// Maps raw attribute values onto the curve's coordinate grid: coordinates
/// are (v - min) >> shift with shift chosen so the dimension's full range
/// fits in bits_per_dim (App. A: "taking the first floor(64/d) bits of each
/// dimension's value").
class ZOrderMapper {
 public:
  ZOrderMapper(const Table& table, std::vector<size_t> dim_order);

  const ZOrderCurve& curve() const { return curve_; }
  const std::vector<size_t>& dim_order() const { return dim_order_; }

  /// Coordinate of a raw value in curve dimension `curve_dim`.
  uint32_t ToCoord(size_t curve_dim, Value v) const {
    const Value lo = min_[curve_dim];
    const Value hi = max_[curve_dim];
    if (v <= lo) return 0;
    if (v >= hi) return max_coord_[curve_dim];
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(v) - static_cast<uint64_t>(lo)) >>
        shift_[curve_dim]);
  }

  /// Z-code for a table row (values given in curve-dimension order).
  uint64_t EncodeValues(const Value* values) const {
    uint32_t coords[64];
    for (size_t d = 0; d < curve_.num_dims(); ++d) {
      coords[d] = ToCoord(d, values[d]);
    }
    return curve_.Encode(coords);
  }

 private:
  ZOrderCurve curve_;
  std::vector<size_t> dim_order_;  // curve dim -> table dim
  std::vector<Value> min_;
  std::vector<Value> max_;
  std::vector<uint32_t> shift_;
  std::vector<uint32_t> max_coord_;
};

}  // namespace flood

#endif  // FLOOD_CORE_ZORDER_CURVE_H_
