#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace flood {

namespace {

/// Splits one CSV record (handles quoted fields; consumes further lines
/// from `in` when a quoted field spans newlines). Returns false at EOF
/// with no data.
bool ReadRecord(std::istream& in, char delimiter,
                std::vector<std::string>* fields) {
  fields->clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (true) {
    if (i >= line.size()) {
      if (in_quotes) {
        // Quoted field continues on the next physical line.
        if (!std::getline(in, line)) break;
        field.push_back('\n');
        i = 0;
        continue;
      }
      break;
    }
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
    ++i;
  }
  fields->push_back(std::move(field));
  return true;
}

bool ParseInt(const std::string& s, Value* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

void WriteField(std::ostream& out, const std::string& s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

StatusOr<CsvTable> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> fields;
  CsvTable result;

  if (options.has_header) {
    if (!ReadRecord(in, options.delimiter, &fields)) {
      return Status::InvalidArgument("empty CSV input (no header)");
    }
    result.column_names = fields;
  }

  // Two-phase ingest: keep raw strings per column, then decide per column
  // whether it is integer-typed or needs a dictionary.
  std::vector<std::vector<std::string>> raw;
  size_t arity = result.column_names.size();
  size_t row_number = options.has_header ? 1 : 0;
  while (ReadRecord(in, options.delimiter, &fields)) {
    ++row_number;
    if (fields.size() == 1 && fields[0].empty()) continue;  // Blank line.
    if (raw.empty()) {
      if (arity == 0) arity = fields.size();
      raw.resize(arity);
    }
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          "row " + std::to_string(row_number) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(arity));
    }
    for (size_t c = 0; c < arity; ++c) raw[c].push_back(std::move(fields[c]));
  }
  if (raw.empty() || raw[0].empty()) {
    return Status::InvalidArgument("CSV has no data rows");
  }
  if (result.column_names.empty()) {
    for (size_t c = 0; c < arity; ++c) {
      result.column_names.push_back("col" + std::to_string(c));
    }
  }

  const size_t n = raw[0].size();
  std::vector<std::vector<Value>> columns(arity);
  result.dictionaries.resize(arity);
  for (size_t c = 0; c < arity; ++c) {
    // Integer column iff every non-empty cell parses as int64.
    bool all_int = true;
    for (const std::string& cell : raw[c]) {
      Value v;
      if (!cell.empty() && !ParseInt(cell, &v)) {
        all_int = false;
        break;
      }
    }
    columns[c].reserve(n);
    if (all_int) {
      for (const std::string& cell : raw[c]) {
        Value v = options.null_value;
        if (!cell.empty()) ParseInt(cell, &v);
        columns[c].push_back(v);
      }
    } else {
      Dictionary& dict = result.dictionaries[c];
      for (const std::string& cell : raw[c]) {
        columns[c].push_back(dict.Encode(cell));
      }
      // Lexicographic codes so that encoded range predicates make sense.
      const std::vector<Value> remap = dict.Finalize();
      for (Value& v : columns[c]) v = remap[static_cast<size_t>(v)];
    }
  }

  StatusOr<Table> table = Table::FromColumns(
      std::move(columns), Column::Encoding::kBlockDelta,
      result.column_names);
  FLOOD_RETURN_IF_ERROR(table.status());
  result.table = std::move(*table);
  return result;
}

StatusOr<CsvTable> ReadCsvString(const std::string& text,
                                 const CsvOptions& options) {
  std::istringstream in(text);
  return ReadCsv(in, options);
}

StatusOr<CsvTable> ReadCsvFile(const std::string& path,
                               const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  return ReadCsv(in, options);
}

Status WriteCsv(const Table& table, const std::vector<Dictionary>& dicts,
                std::ostream& out, const CsvOptions& options) {
  if (!dicts.empty() && dicts.size() != table.num_dims()) {
    return Status::InvalidArgument(
        "dictionaries must be empty or match column count");
  }
  if (options.has_header) {
    for (size_t c = 0; c < table.num_dims(); ++c) {
      if (c > 0) out << options.delimiter;
      WriteField(out, table.name(c), options.delimiter);
    }
    out << '\n';
  }
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_dims(); ++c) {
      if (c > 0) out << options.delimiter;
      const Value v = table.Get(r, c);
      if (!dicts.empty() && dicts[c].size() > 0) {
        WriteField(out, dicts[c].Decode(v), options.delimiter);
      } else {
        out << v;
      }
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace flood
