#ifndef FLOOD_DATA_CSV_H_
#define FLOOD_DATA_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace flood {

/// CSV ingest/export for tables — the practical front door for indexing
/// real data with this library. Values that parse as 64-bit integers are
/// stored directly; anything else is dictionary-encoded per column
/// (paper §7.1: "any string values are dictionary encoded prior to
/// evaluation"), with dictionaries finalized to lexicographic code order
/// so range predicates on encoded columns behave like string ranges.
struct CsvTable {
  Table table;
  /// Per-column dictionary; empty (size 0) for pure-integer columns.
  std::vector<Dictionary> dictionaries;
  std::vector<std::string> column_names;
};

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names.
  bool has_header = true;
  /// Value used for empty cells in integer columns.
  Value null_value = 0;
};

/// Parses CSV text into a table. All rows must have the same arity.
/// Quoting: double quotes with "" escapes, delimiter/newlines allowed
/// inside quoted fields.
StatusOr<CsvTable> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Convenience overload over a string buffer.
StatusOr<CsvTable> ReadCsvString(const std::string& text,
                                 const CsvOptions& options = {});

/// Reads from a file path.
StatusOr<CsvTable> ReadCsvFile(const std::string& path,
                               const CsvOptions& options = {});

/// Writes a table as CSV, decoding dictionary columns back to strings.
/// `dictionaries` may be empty (all-integer output) or parallel to the
/// table's columns.
Status WriteCsv(const Table& table, const std::vector<Dictionary>& dicts,
                std::ostream& out, const CsvOptions& options = {});

}  // namespace flood

#endif  // FLOOD_DATA_CSV_H_
