#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "data/distributions.h"

namespace flood {

namespace {

Table TableFrom(std::vector<std::vector<Value>> cols,
                std::vector<std::string> names) {
  StatusOr<Table> t = Table::FromColumns(
      std::move(cols), Column::Encoding::kBlockDelta, std::move(names));
  FLOOD_CHECK(t.ok());
  return std::move(t).value();
}

AggSpec Count() { return AggSpec{AggSpec::Kind::kCount, 0}; }
AggSpec Sum(size_t dim) { return AggSpec{AggSpec::Kind::kSum, dim}; }

}  // namespace

BenchDataset MakeSalesDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  // order_id: dense near-sequential key.
  auto order_id = SequentialColumn(n, 1'000'000, 3, 1, rng);
  // customer_id: mild skew (regular customers order more).
  auto customer_id = ZipfColumn(n, std::max<size_t>(n / 50, 100), 0.6, rng);
  // product_id: catalog of 10k products, mild popularity skew.
  auto product_id = ZipfColumn(n, 10'000, 0.5, rng);
  // quantity: uniform 1..100.
  auto quantity = UniformColumn(n, 1, 100, rng);
  // unit_price in cents: near-uniform band (anonymized transform in paper).
  auto unit_price = UniformColumn(n, 99, 99'999, rng);
  // date: 4 years of day-granularity timestamps, uniform.
  auto date = UniformColumn(n, 0, 4 * 365, rng);

  BenchDataset ds;
  ds.name = "sales";
  ds.table = TableFrom(
      {std::move(order_id), std::move(customer_id), std::move(product_id),
       std::move(quantity), std::move(unit_price), std::move(date)},
      {"order_id", "customer_id", "product_id", "quantity", "unit_price",
       "date"});
  ds.key_dims = {0, 1};
  // Analyst report mix: date-bounded reports dominate.
  ds.olap_specs = {
      {{5}, {}, 3.0, Sum(4)},          // revenue over a date range
      {{5}, {2}, 2.0, Count()},        // product activity in a date range
      {{5, 3}, {}, 2.0, Sum(4)},       // bulk orders over time
      {{4, 3}, {}, 1.0, Count()},      // price/quantity band analysis
      {{5, 1}, {}, 1.0, Count()},      // customer cohort over time
      {{5, 4, 3}, {}, 0.5, Sum(4)},    // detailed slice
  };
  return ds;
}

BenchDataset MakeOsmDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto id = SequentialColumn(n, 100'000'000, 7, 3, rng);
  // Edit timestamps skew heavily toward the present.
  auto timestamp = RecencySkewedColumn(n, 1'104'537'600, 1'567'296'000, 3.5,
                                       rng);
  // Lat/lon in micro-degrees, clustered around ~40 metro areas of the US
  // Northeast bounding box.
  auto lat = ClusteredColumn(n, 40, 38'000'000, 47'500'000, 350'000.0, rng);
  auto lon = ClusteredColumn(n, 40, -80'500'000, -66'900'000, 450'000.0, rng);
  // Record type: node/way/relation/changeset/note with strong skew.
  auto record_type = ZipfColumn(n, 5, 1.6, rng);
  // Landmark category: ~100 tags, Zipf-popular.
  auto category = ZipfColumn(n, 100, 1.1, rng);

  BenchDataset ds;
  ds.name = "osm";
  ds.table = TableFrom(
      {std::move(id), std::move(timestamp), std::move(lat), std::move(lon),
       std::move(record_type), std::move(category)},
      {"id", "timestamp", "lat", "lon", "record_type", "category"});
  ds.key_dims = {0, 1};
  // "How many nodes were added in an interval?", "How many buildings in a
  // lat-lon rectangle?" — 1 to 3 filtered dimensions (§7.3).
  ds.olap_specs = {
      {{1}, {4}, 2.5, Count()},         // records of a type over time
      {{2, 3}, {}, 2.5, Count()},       // objects in a lat-lon rectangle
      {{2, 3}, {5}, 1.5, Count()},      // landmarks of a category in a rect
      {{1, 2, 3}, {}, 1.0, Count()},    // spatio-temporal box
      {{1}, {}, 1.0, Count()},          // pure time interval
  };
  return ds;
}

BenchDataset MakePerfmonDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  auto time = UniformColumn(n, 0, 365 * 24 * 3600, rng);
  auto machine_id = ZipfColumn(n, 2000, 1.05, rng);
  // CPU %: bimodal — mostly idle with a busy mode.
  auto cpu = BimodalColumn(n, 4.0, 3.0, 78.0, 14.0, 0.82, 0, 100, rng);
  // Memory MB: lognormal around ~2 GiB.
  auto mem = LognormalColumn(n, 7.6, 0.5, 1.0, rng);
  // Swap MB: extremely skewed — most machines swap ~nothing.
  auto swap = LognormalColumn(n, 0.5, 2.2, 1.0, rng);
  // Load average x100: heavy tail.
  auto load = LognormalColumn(n, 4.2, 0.9, 1.0, rng);

  BenchDataset ds;
  ds.name = "perfmon";
  ds.table = TableFrom(
      {std::move(time), std::move(machine_id), std::move(cpu),
       std::move(mem), std::move(swap), std::move(load)},
      {"time", "machine_id", "cpu", "mem", "swap", "load_avg"});
  ds.key_dims = {1, 0};
  ds.olap_specs = {
      {{0}, {1}, 2.5, Count()},        // one machine's history
      {{0, 2}, {}, 2.0, Count()},      // high-CPU intervals
      {{2, 3}, {}, 1.5, Count()},      // resource pressure band
      {{0, 5}, {}, 1.0, Count()},      // load spikes over time
      {{4}, {1}, 1.0, Count()},        // swap usage for a machine
      {{0, 2, 3}, {}, 0.5, Count()},   // detailed slice
  };
  return ds;
}

BenchDataset MakeTpchDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  // Dates in days since 1992-01-01; orders span ~7 years (dbgen shape).
  auto shipdate = UniformColumn(n, 0, 2526, rng);
  auto receiptdate = OffsetColumn(shipdate, 1, 30, rng);
  auto quantity = UniformColumn(n, 1, 50, rng);
  auto discount = UniformColumn(n, 0, 10, rng);
  // orderkey: sparse dense-ish key domain, uniform draw.
  auto orderkey = UniformColumn(n, 1, static_cast<Value>(n) * 4, rng);
  auto suppkey = UniformColumn(n, 1, 100'000, rng);
  // extendedprice in cents: quantity * unit price-ish.
  std::vector<Value> extendedprice(n);
  for (size_t i = 0; i < n; ++i) {
    extendedprice[i] =
        quantity[i] * rng.UniformInt(90'000, 105'000) / 100;
  }

  BenchDataset ds;
  ds.name = "tpch";
  ds.table = TableFrom(
      {std::move(shipdate), std::move(receiptdate), std::move(quantity),
       std::move(discount), std::move(orderkey), std::move(suppkey),
       std::move(extendedprice)},
      {"shipdate", "receiptdate", "quantity", "discount", "orderkey",
       "suppkey", "extendedprice"});
  ds.key_dims = {4, 5};
  // Filters "commonly found in the TPC-H query workload" (§7.3).
  ds.olap_specs = {
      {{0, 3, 2}, {}, 2.5, Sum(6)},    // Q6-style revenue query
      {{0}, {}, 2.0, Sum(6)},          // shipped-in-interval revenue
      {{0, 1}, {}, 1.5, Count()},      // ship/receipt date window
      {{4}, {}, 1.0, Count()},         // orderkey range
      {{0}, {5}, 1.0, Sum(6)},         // supplier activity over time
      {{2, 3}, {}, 0.5, Count()},      // quantity/discount band
  };
  return ds;
}

BenchDataset MakeUniformDataset(size_t n, size_t num_dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> cols;
  std::vector<std::string> names;
  cols.reserve(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    cols.push_back(UniformColumn(n, 0, 1'000'000'000, rng));
    names.push_back("u" + std::to_string(d));
  }
  BenchDataset ds;
  ds.name = "uniform" + std::to_string(num_dims) + "d";
  ds.table = TableFrom(std::move(cols), std::move(names));
  ds.key_dims = {0};
  ds.olap_specs = {{{0, 1 % num_dims}, {}, 1.0, Count()}};
  return ds;
}

Workload MakeWorkload(const BenchDataset& dataset, WorkloadKind kind,
                      size_t num_queries, uint64_t seed,
                      double selectivity_override) {
  const double sel = selectivity_override > 0.0 ? selectivity_override
                                                : dataset.default_selectivity;
  QueryGenerator gen(dataset.table, seed);
  const size_t d = dataset.table.num_dims();

  switch (kind) {
    case WorkloadKind::kOlapSkewed:
      return gen.GenerateWorkload(dataset.olap_specs, num_queries, sel);

    case WorkloadKind::kOlapUniform: {
      std::vector<QueryTypeSpec> specs = dataset.olap_specs;
      for (auto& s : specs) s.weight = 1.0;
      return gen.GenerateWorkload(specs, num_queries, sel);
    }

    case WorkloadKind::kOltpSingleKey: {
      QueryTypeSpec spec;
      spec.eq_dims = {dataset.key_dims[0]};
      spec.agg = AggSpec{AggSpec::Kind::kCount, 0};
      return gen.GenerateWorkload({spec}, num_queries, sel);
    }

    case WorkloadKind::kOltpTwoKey: {
      QueryTypeSpec spec;
      spec.eq_dims = {dataset.key_dims[0],
                      dataset.key_dims[std::min<size_t>(
                          1, dataset.key_dims.size() - 1)]};
      spec.agg = AggSpec{AggSpec::Kind::kCount, 0};
      return gen.GenerateWorkload({spec}, num_queries, sel);
    }

    case WorkloadKind::kMixed: {
      std::vector<QueryTypeSpec> specs = dataset.olap_specs;
      double olap_weight = 0.0;
      for (const auto& s : specs) olap_weight += s.weight;
      QueryTypeSpec oltp;
      oltp.eq_dims = {dataset.key_dims[0]};
      oltp.weight = olap_weight;  // 50/50 split.
      oltp.agg = AggSpec{AggSpec::Kind::kCount, 0};
      specs.push_back(oltp);
      return gen.GenerateWorkload(specs, num_queries, sel);
    }

    case WorkloadKind::kSingleType:
      return gen.GenerateWorkload({dataset.olap_specs[0]}, num_queries, sel);

    case WorkloadKind::kFewerDims: {
      // Strict subset: only query types touching the first ceil(d/2) dims.
      const size_t cutoff = (d + 1) / 2;
      std::vector<QueryTypeSpec> specs;
      for (const auto& s : dataset.olap_specs) {
        bool ok = true;
        for (size_t dim : s.range_dims) ok = ok && dim < cutoff;
        for (size_t dim : s.eq_dims) ok = ok && dim < cutoff;
        if (ok) specs.push_back(s);
      }
      if (specs.empty()) {
        QueryTypeSpec s;
        s.range_dims = {0};
        specs.push_back(s);
      }
      return gen.GenerateWorkload(specs, num_queries, sel);
    }

    case WorkloadKind::kManyDims: {
      QueryTypeSpec spec;
      for (size_t dim = 0; dim < d; ++dim) spec.range_dims.push_back(dim);
      spec.agg = AggSpec{AggSpec::Kind::kCount, 0};
      return gen.GenerateWorkload({spec}, num_queries, sel);
    }
  }
  FLOOD_CHECK(false);
  return Workload();
}

Workload MakeRandomWorkload(const BenchDataset& dataset, size_t num_queries,
                            size_t max_query_types, uint64_t seed) {
  Rng rng(seed);
  const size_t d = dataset.table.num_dims();
  const size_t num_types =
      static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(
                                                std::max<size_t>(1, max_query_types))));
  std::vector<QueryTypeSpec> specs;
  specs.reserve(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    QueryTypeSpec spec;
    const size_t num_dims_filtered = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(std::min<size_t>(6, d))));
    std::vector<size_t> dims(d);
    for (size_t i = 0; i < d; ++i) dims[i] = i;
    for (size_t i = 0; i < num_dims_filtered; ++i) {
      const size_t j = i + static_cast<size_t>(rng.UniformInt(
                               0, static_cast<int64_t>(d - i) - 1));
      std::swap(dims[i], dims[j]);
    }
    for (size_t i = 0; i < num_dims_filtered; ++i) {
      // Key attributes preferentially appear as tighter (equality) filters
      // ("more selective on key attributes").
      const bool is_key =
          std::find(dataset.key_dims.begin(), dataset.key_dims.end(),
                    dims[i]) != dataset.key_dims.end();
      if (is_key && rng.Bernoulli(0.4)) {
        spec.eq_dims.push_back(dims[i]);
      } else {
        spec.range_dims.push_back(dims[i]);
      }
    }
    if (spec.range_dims.empty() && spec.eq_dims.empty()) {
      spec.range_dims.push_back(0);
    }
    spec.weight = rng.Uniform(0.5, 2.0);
    specs.push_back(spec);
  }
  QueryGenerator gen(dataset.table, seed ^ 0x5DEECE66DULL);
  // Randomized selectivity centered on the dataset default.
  const double sel =
      dataset.default_selectivity * std::pow(2.0, rng.Uniform(-1.0, 1.0));
  return gen.GenerateWorkload(specs, num_queries, sel);
}

Workload MakeDimensionSweepWorkload(const BenchDataset& dataset,
                                    size_t num_queries, uint64_t seed) {
  const size_t d = dataset.table.num_dims();
  QueryGenerator gen(dataset.table, seed);
  Rng rng(seed ^ 0xD1ED5EEDULL);
  Workload w;
  for (size_t i = 0; i < num_queries; ++i) {
    const size_t k =
        static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(d)));
    QueryTypeSpec spec;
    for (size_t dim = 0; dim < k; ++dim) spec.range_dims.push_back(dim);
    spec.agg = AggSpec{AggSpec::Kind::kCount, 0};
    w.Add(gen.Generate(spec, dataset.default_selectivity));
  }
  return w;
}

}  // namespace flood
