#ifndef FLOOD_DATA_DATASETS_H_
#define FLOOD_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "data/query_gen.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// A simulated evaluation dataset: the table, the published query-type mix,
/// and metadata needed to derive the Fig. 9 workload variants.
///
/// These stand in for the paper's four datasets (§7.3); see DESIGN.md
/// "Substitutions" for the fidelity argument. Row counts are parameters —
/// the paper's scales (30M–300M) are reachable by passing larger n.
struct BenchDataset {
  std::string name;
  Table table;
  /// Default (skewed-OLAP) query-type mix; weights reflect that "some types
  /// of queries occur more often than others".
  std::vector<QueryTypeSpec> olap_specs;
  /// Key attributes used for OLTP point lookups (Fig. 9 O1/O2).
  std::vector<size_t> key_dims;
  /// Paper-matching average query selectivity.
  double default_selectivity = 0.001;
};

/// 6-dim sales-database simulator (30M rows in the paper). Mostly uniform
/// marginals (the paper reports flattening barely helps on Sales).
/// Dims: order_id, customer_id, product_id, quantity, unit_price, date.
BenchDataset MakeSalesDataset(size_t n, uint64_t seed);

/// 6-dim OpenStreetMap-like simulator (105M rows in the paper). Clustered
/// lat/lon, recency-skewed timestamps, Zipfian categories.
/// Dims: id, timestamp, lat, lon, record_type, category.
BenchDataset MakeOsmDataset(size_t n, uint64_t seed);

/// 6-dim performance-monitoring simulator (230M rows in the paper). Heavily
/// skewed marginals. Dims: time, machine_id, cpu, mem, swap, load_avg.
BenchDataset MakePerfmonDataset(size_t n, uint64_t seed);

/// 7-dim TPC-H lineitem simulator (300M rows / SF50 in the paper).
/// Dims: shipdate, receiptdate, quantity, discount, orderkey, suppkey,
/// extendedprice (aggregation target; correlated ship/receipt dates).
BenchDataset MakeTpchDataset(size_t n, uint64_t seed);

/// d-dimensional uniform dataset for the dimension-scaling study (§7.5).
BenchDataset MakeUniformDataset(size_t n, size_t num_dims, uint64_t seed);

/// Materializes one of the Fig. 9 workload variants for `dataset`.
Workload MakeWorkload(const BenchDataset& dataset, WorkloadKind kind,
                      size_t num_queries, uint64_t seed,
                      double selectivity_override = -1.0);

/// Fig. 10: a random workload of up to `max_query_types` query types over
/// random dimension subsets with randomized selectivities averaging the
/// dataset default; more selective on key attributes.
Workload MakeRandomWorkload(const BenchDataset& dataset, size_t num_queries,
                            size_t max_query_types, uint64_t seed);

/// §7.5 dimension study: queries filter the first k dims (k uniform in
/// [1, d]), each filtered dim equally selective, total selectivity fixed.
Workload MakeDimensionSweepWorkload(const BenchDataset& dataset,
                                    size_t num_queries, uint64_t seed);

}  // namespace flood

#endif  // FLOOD_DATA_DATASETS_H_
