#include "data/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace flood {

std::vector<Value> UniformColumn(size_t n, Value lo, Value hi, Rng& rng) {
  std::vector<Value> v(n);
  for (auto& x : v) x = rng.UniformInt(lo, hi);
  return v;
}

std::vector<Value> GaussianColumn(size_t n, double mean, double stddev,
                                  Value lo, Value hi, Rng& rng) {
  std::vector<Value> v(n);
  for (auto& x : v) {
    x = Clamp(static_cast<Value>(std::llround(rng.Gaussian(mean, stddev))),
              lo, hi);
  }
  return v;
}

std::vector<Value> LognormalColumn(size_t n, double mu, double sigma,
                                   double scale, Rng& rng) {
  std::vector<Value> v(n);
  for (auto& x : v) {
    x = static_cast<Value>(std::llround(scale * rng.Lognormal(mu, sigma)));
  }
  return v;
}

std::vector<Value> ZipfColumn(size_t n, size_t universe, double s, Rng& rng) {
  ZipfGenerator zipf(universe, s);
  std::vector<Value> v(n);
  for (auto& x : v) x = static_cast<Value>(zipf.Sample(rng));
  return v;
}

std::vector<Value> SequentialColumn(size_t n, Value start, Value step,
                                    Value jitter, Rng& rng) {
  std::vector<Value> v(n);
  for (size_t i = 0; i < n; ++i) {
    const Value noise = jitter > 0 ? rng.UniformInt(-jitter, jitter) : 0;
    v[i] = start + static_cast<Value>(i) * step + noise;
  }
  return v;
}

std::vector<Value> ClusteredColumn(size_t n, size_t num_clusters, Value lo,
                                   Value hi, double spread, Rng& rng) {
  FLOOD_CHECK(num_clusters > 0);
  std::vector<Value> centers(num_clusters);
  for (auto& c : centers) c = rng.UniformInt(lo, hi);
  ZipfGenerator weights(num_clusters, 1.0);
  std::vector<Value> v(n);
  for (auto& x : v) {
    const Value center = centers[weights.Sample(rng)];
    x = Clamp(static_cast<Value>(std::llround(
                  rng.Gaussian(static_cast<double>(center), spread))),
              lo, hi);
  }
  return v;
}

std::vector<Value> OffsetColumn(const std::vector<Value>& base, Value off_lo,
                                Value off_hi, Rng& rng) {
  std::vector<Value> v(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    v[i] = base[i] + rng.UniformInt(off_lo, off_hi);
  }
  return v;
}

std::vector<Value> RecencySkewedColumn(size_t n, Value lo, Value hi,
                                       double rate, Rng& rng) {
  FLOOD_CHECK(rate > 0.0);
  const double span = static_cast<double>(hi) - static_cast<double>(lo);
  std::vector<Value> v(n);
  for (auto& x : v) {
    // Inverse-CDF of a truncated exponential leaning toward hi.
    const double u = rng.NextDouble();
    const double t =
        std::log1p(u * (std::exp(rate) - 1.0)) / rate;  // in [0, 1]
    x = lo + static_cast<Value>(std::llround(t * span));
  }
  return v;
}

std::vector<Value> BimodalColumn(size_t n, double mean_a, double stddev_a,
                                 double mean_b, double stddev_b,
                                 double weight_a, Value lo, Value hi,
                                 Rng& rng) {
  std::vector<Value> v(n);
  for (auto& x : v) {
    const bool a = rng.Bernoulli(weight_a);
    const double sample = a ? rng.Gaussian(mean_a, stddev_a)
                            : rng.Gaussian(mean_b, stddev_b);
    x = Clamp(static_cast<Value>(std::llround(sample)), lo, hi);
  }
  return v;
}

}  // namespace flood
