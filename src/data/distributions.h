#ifndef FLOOD_DATA_DISTRIBUTIONS_H_
#define FLOOD_DATA_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/column.h"

namespace flood {

// Column-shaped samplers used by the dataset simulators (§7.3). All return
// `n` int64 values and draw exclusively from `rng` for reproducibility.

/// Uniform integers in [lo, hi].
std::vector<Value> UniformColumn(size_t n, Value lo, Value hi, Rng& rng);

/// Rounded Gaussian, clamped to [lo, hi].
std::vector<Value> GaussianColumn(size_t n, double mean, double stddev,
                                  Value lo, Value hi, Rng& rng);

/// Rounded scaled lognormal: round(scale * exp(N(mu, sigma))). Heavy right
/// tail; models perfmon-style skew.
std::vector<Value> LognormalColumn(size_t n, double mu, double sigma,
                                   double scale, Rng& rng);

/// Zipf-distributed category ids over [0, universe) with exponent s; the
/// most frequent category is id 0.
std::vector<Value> ZipfColumn(size_t n, size_t universe, double s, Rng& rng);

/// Sequential ids start, start+step, ... with ±jitter noise (dense
/// monotone-ish keys such as OSM element ids).
std::vector<Value> SequentialColumn(size_t n, Value start, Value step,
                                    Value jitter, Rng& rng);

/// Gaussian-mixture values: `num_clusters` centers uniform in [lo, hi],
/// cluster weights Zipf(1.0), point = center + N(0, spread). Clamped to
/// [lo, hi]. Models geo coordinates clustered around cities.
std::vector<Value> ClusteredColumn(size_t n, size_t num_clusters, Value lo,
                                   Value hi, double spread, Rng& rng);

/// base[i] + uniform offset in [off_lo, off_hi]; models correlated pairs
/// such as TPC-H ship/receipt dates.
std::vector<Value> OffsetColumn(const std::vector<Value>& base, Value off_lo,
                                Value off_hi, Rng& rng);

/// Exponentially densifying timestamps over [lo, hi]: the most recent
/// portion of the time range holds most records (OSM edit history shape).
/// `rate` > 0 controls skew toward hi.
std::vector<Value> RecencySkewedColumn(size_t n, Value lo, Value hi,
                                       double rate, Rng& rng);

/// Two-mode mixture of Gaussians (e.g. mostly-idle / mostly-busy CPU).
std::vector<Value> BimodalColumn(size_t n, double mean_a, double stddev_a,
                                 double mean_b, double stddev_b,
                                 double weight_a, Value lo, Value hi,
                                 Rng& rng);

}  // namespace flood

#endif  // FLOOD_DATA_DISTRIBUTIONS_H_
