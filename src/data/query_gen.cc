#include "data/query_gen.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace flood {

QueryGenerator::QueryGenerator(const Table& table, uint64_t seed,
                               size_t sample_size)
    : num_dims_(table.num_dims()),
      sample_(DataSample::FromTable(table, sample_size, seed)),
      rng_(seed ^ 0xABCDEF1234567890ULL) {}

ValueRange QueryGenerator::DrawRange(size_t dim, double fraction) {
  const auto& sorted = sample_.sorted(dim);
  FLOOD_CHECK(!sorted.empty());
  const double f = Clamp(fraction, 0.0, 1.0);
  const double start_max = 1.0 - f;
  const double u = rng_.NextDouble() * start_max;
  const size_t n = sorted.size();
  const size_t lo_idx = std::min(n - 1, static_cast<size_t>(u * n));
  const size_t hi_idx = std::min(n - 1, static_cast<size_t>((u + f) * n));
  Value lo = sorted[lo_idx];
  Value hi = sorted[hi_idx];
  if (lo > hi) std::swap(lo, hi);
  return ValueRange{lo, hi};
}

Value QueryGenerator::DrawEqualityValue(size_t dim) {
  const size_t n = sample_.num_rows();
  FLOOD_CHECK(n > 0);
  const size_t row =
      static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(n) - 1));
  return sample_.Get(row, dim);
}

Query QueryGenerator::Generate(const QueryTypeSpec& spec,
                               double target_selectivity) {
  Query q(num_dims_);
  q.set_agg(spec.agg);

  // Equality filters first: their selectivity is whatever the drawn value's
  // frequency is; range filters divide up the remaining budget.
  double eq_selectivity = 1.0;
  for (size_t dim : spec.eq_dims) {
    const Value v = DrawEqualityValue(dim);
    q.SetEquals(dim, v);
    eq_selectivity *= std::max(
        sample_.Selectivity(dim, ValueRange{v, v}), 1e-6);
  }

  if (spec.range_dims.empty()) return q;

  const double budget =
      Clamp(target_selectivity / eq_selectivity, 1e-9, 1.0);
  double per_dim = std::pow(
      budget, 1.0 / static_cast<double>(spec.range_dims.size()));

  for (size_t dim : spec.range_dims) {
    const ValueRange r = DrawRange(dim, per_dim);
    q.SetRange(dim, r.lo, r.hi);
  }

  // One correlation-correction pass: measure the joint selectivity on the
  // sample and rescale the per-dimension fraction (§7.3 scales queries to
  // hit the average selectivity target).
  const double measured = sample_.MeasuredQuerySelectivity(q);
  if (measured > 0.0) {
    const double correction =
        std::pow(Clamp(target_selectivity / measured, 0.05, 20.0),
                 1.0 / static_cast<double>(spec.range_dims.size()));
    if (correction < 0.95 || correction > 1.05) {
      per_dim = Clamp(per_dim * correction, 1e-9, 1.0);
      for (size_t dim : spec.range_dims) {
        const ValueRange r = DrawRange(dim, per_dim);
        q.SetRange(dim, r.lo, r.hi);
      }
    }
  }
  return q;
}

Workload QueryGenerator::GenerateWorkload(
    const std::vector<QueryTypeSpec>& specs, size_t num_queries,
    double target_selectivity) {
  FLOOD_CHECK(!specs.empty());
  double total_weight = 0.0;
  for (const auto& s : specs) total_weight += s.weight;
  FLOOD_CHECK(total_weight > 0.0);

  Workload w;
  for (size_t i = 0; i < num_queries; ++i) {
    double pick = rng_.NextDouble() * total_weight;
    size_t chosen = 0;
    for (size_t s = 0; s < specs.size(); ++s) {
      pick -= specs[s].weight;
      if (pick <= 0.0) {
        chosen = s;
        break;
      }
    }
    w.Add(Generate(specs[chosen], target_selectivity));
  }
  return w;
}

}  // namespace flood
