#ifndef FLOOD_DATA_QUERY_GEN_H_
#define FLOOD_DATA_QUERY_GEN_H_

#include <vector>

#include "common/rng.h"
#include "query/query.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// A template for one kind of query in a workload: which dimensions carry
/// range filters, which carry equality filters, how often it occurs, and
/// what it aggregates. Dataset simulators publish a spec list that mirrors
/// the paper's per-dataset workload descriptions (§7.3).
struct QueryTypeSpec {
  std::vector<size_t> range_dims;
  std::vector<size_t> eq_dims;
  double weight = 1.0;
  AggSpec agg;
};

/// Draws queries matching QueryTypeSpecs against a concrete table, scaled
/// so each query's total selectivity approximates a target (the paper
/// scales real workloads to 0.1% average selectivity).
///
/// Range endpoints are drawn positionally from a per-dimension sorted
/// sample, which makes per-dimension marginal selectivity exact on the
/// sample regardless of skew; a measurement-and-rescale pass absorbs
/// cross-dimension correlation.
class QueryGenerator {
 public:
  QueryGenerator(const Table& table, uint64_t seed,
                 size_t sample_size = 50000);

  /// One query of the given type with total selectivity ~= target.
  Query Generate(const QueryTypeSpec& spec, double target_selectivity);

  /// `num_queries` queries drawn from `specs` (by weight) at the target
  /// selectivity.
  Workload GenerateWorkload(const std::vector<QueryTypeSpec>& specs,
                            size_t num_queries, double target_selectivity);

  const DataSample& sample() const { return sample_; }

 private:
  /// Positional range over `dim` covering a fraction `f` of the sample.
  ValueRange DrawRange(size_t dim, double fraction);

  /// Frequency-weighted equality value for `dim` (drawn from the sample).
  Value DrawEqualityValue(size_t dim);

  size_t num_dims_;
  DataSample sample_;
  Rng rng_;
};

/// The workload families of Fig. 9, applied to any dataset.
enum class WorkloadKind {
  kOlapSkewed,   ///< "O": default analyst mix; spec weights as published.
  kOlapUniform,  ///< "Ou": every query type equally likely.
  kOltpSingleKey,///< "O1": point lookups on one key attribute.
  kOltpTwoKey,   ///< "O2": point lookups on two key attributes.
  kMixed,        ///< "OO": 50/50 OLTP + OLAP.
  kSingleType,   ///< "ST": one query type only.
  kFewerDims,    ///< "FD": strict subset of the indexed dimensions.
  kManyDims,     ///< "MD": every indexed dimension filtered.
};

}  // namespace flood

#endif  // FLOOD_DATA_QUERY_GEN_H_
