#include "learned/plm.h"

#include <algorithm>

#include "common/macros.h"

namespace flood {

Plm Plm::Train(const std::vector<Value>& sorted, double delta) {
  FLOOD_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  FLOOD_CHECK(delta >= 0.0);
  Plm plm;
  plm.n_ = sorted.size();
  if (sorted.empty()) return plm;

  // Collect (value, first-occurrence rank) pairs for distinct values.
  std::vector<std::pair<Value, size_t>> points;
  points.reserve(1024);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) {
      points.emplace_back(sorted[i], i);
    }
  }

  auto start_segment = [&plm](Value v, size_t rank) {
    Segment seg;
    seg.first_value = v;
    seg.base = static_cast<double>(rank);
    seg.slope = 0.0;
    plm.segments_.push_back(seg);
  };

  start_segment(points[0].first, points[0].second);
  // Running state for the open segment.
  double slope = 0.0;          // Current lower-bound slope.
  double sum_rank = 0.0;       // Sum of D(v) over slice points after first.
  double sum_dx = 0.0;         // Sum of (v - v0) over slice points after first.
  size_t count = 1;            // Points in slice (incl. first).
  size_t seg_first_rank = points[0].second;
  Value seg_first_value = points[0].first;

  for (size_t p = 1; p < points.size(); ++p) {
    const Value v = points[p].first;
    const size_t rank = points[p].second;
    // Subtract in double space: int64 subtraction could overflow when
    // values span nearly the whole domain.
    const double dx =
        static_cast<double>(v) - static_cast<double>(seg_first_value);
    const double ratio =
        (static_cast<double>(rank) - static_cast<double>(seg_first_rank)) / dx;
    const double new_slope = (count == 1) ? ratio : std::min(slope, ratio);
    // Average under-estimation error if we add this point with new_slope.
    // Error of the slice's first point is 0 by construction.
    const double err_sum = (sum_rank + static_cast<double>(rank)) -
                           static_cast<double>(count) *
                               static_cast<double>(seg_first_rank) -
                           new_slope * (sum_dx + dx);
    const double avg_err = err_sum / static_cast<double>(count + 1);
    if (avg_err > delta) {
      // Close the current segment and open a new one at (v, rank).
      plm.segments_.back().slope = slope;
      plm.segments_.back().end_rank = static_cast<uint32_t>(rank);
      start_segment(v, rank);
      slope = 0.0;
      sum_rank = 0.0;
      sum_dx = 0.0;
      count = 1;
      seg_first_rank = rank;
      seg_first_value = v;
    } else {
      slope = new_slope;
      sum_rank += static_cast<double>(rank);
      sum_dx += dx;
      ++count;
    }
  }
  plm.segments_.back().slope = slope;
  plm.segments_.back().end_rank = static_cast<uint32_t>(sorted.size());

  std::vector<Value> keys;
  keys.reserve(plm.segments_.size());
  for (const auto& seg : plm.segments_) keys.push_back(seg.first_value);
  plm.btree_ = StaticBTree(std::move(keys));
  return plm;
}

}  // namespace flood
