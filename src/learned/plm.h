#ifndef FLOOD_LEARNED_PLM_H_
#define FLOOD_LEARNED_PLM_H_

#include <cstdint>
#include <vector>

#include "learned/static_btree.h"
#include "storage/column.h"

namespace flood {

/// Piecewise Linear Model of a CDF (paper §5.2).
///
/// Trained greedily over a sorted value list V: walking distinct values in
/// increasing order, each (v, D(v)) pair — D(v) the rank of the first
/// occurrence of v — is added to the current segment; when the segment's
/// *average* under-estimation error exceeds the budget delta, a new segment
/// begins at that value. Segments are constructed to be lower bounds:
/// Predict(v) <= D(v), so rectification after prediction only ever searches
/// forward (GallopLowerBound).
///
/// Segment boundary keys are indexed with a cache-optimized StaticBTree.
class Plm {
 public:
  Plm() = default;

  /// Trains over `sorted` (ascending). `delta` is the average-error budget
  /// per segment; lower delta = more segments = faster lookups but more
  /// space (Fig. 17b).
  static Plm Train(const std::vector<Value>& sorted, double delta);

  /// Lower-bound estimate of the rank of the first element >= v.
  /// Guaranteed <= the true rank; rectify by searching forward.
  size_t Predict(Value v) const {
    if (segments_.empty()) return 0;
    const size_t s = btree_.FindSegment(v);
    const Segment& seg = segments_[s];
    if (v < seg.first_value) return 0;  // v precedes all data.
    double p = seg.base + seg.slope * (static_cast<double>(v) -
                                       static_cast<double>(seg.first_value));
    const double hi = static_cast<double>(seg.end_rank);
    if (p > hi) p = hi;
    return static_cast<size_t>(p);
  }

  size_t num_segments() const { return segments_.size(); }
  size_t num_keys() const { return n_; }

  size_t MemoryUsageBytes() const {
    return segments_.size() * sizeof(Segment) + btree_.MemoryUsageBytes();
  }

 private:
  struct Segment {
    Value first_value = 0;   ///< Smallest value in the slice.
    double base = 0.0;       ///< Rank of first_value's first occurrence.
    double slope = 0.0;      ///< Ranks per value unit; lower-bound slope.
    uint32_t end_rank = 0;   ///< Rank where the next slice starts.
  };

  size_t n_ = 0;
  std::vector<Segment> segments_;
  StaticBTree btree_;
};

}  // namespace flood

#endif  // FLOOD_LEARNED_PLM_H_
