#include "learned/rmi.h"

#include <cmath>

namespace flood {

LinearModel LinearModel::Fit(const std::vector<double>& xs,
                             const std::vector<double>& ys) {
  FLOOD_DCHECK(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n == 0) return LinearModel{0.0, 0.0};
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    sxx += dx * dx;
    sxy += dx * (ys[i] - mean_y);
  }
  if (sxx <= 0.0) return LinearModel{0.0, mean_y};
  const double slope = sxy / sxx;
  return LinearModel{slope, mean_y - slope * mean_x};
}

Rmi Rmi::Train(const std::vector<Value>& sorted, size_t num_leaves) {
  FLOOD_DCHECK(std::is_sorted(sorted.begin(), sorted.end()));
  Rmi rmi;
  rmi.n_ = sorted.size();
  if (sorted.empty()) {
    rmi.knots_.push_back(0);
    rmi.leaves_.push_back(Leaf{});
    return rmi;
  }
  if (num_leaves == 0) {
    num_leaves = std::max<size_t>(1, sorted.size() / 256);
  }
  num_leaves = std::min(num_leaves, sorted.size());

  // Equi-depth knots: leaf j starts at the first occurrence of the value
  // at rank j*n/L. Duplicate boundary values merge into one leaf, so knots
  // stay strictly increasing and routing stays well-defined.
  const size_t n = sorted.size();
  for (size_t j = 0; j < num_leaves; ++j) {
    const size_t target = j * n / num_leaves;
    const Value v = sorted[target];
    if (!rmi.knots_.empty() && rmi.knots_.back() == v) continue;
    const size_t first = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
    Leaf leaf;
    leaf.rank_begin = static_cast<uint32_t>(first);
    rmi.knots_.push_back(v);
    rmi.leaves_.push_back(leaf);
  }
  // Close rank intervals and fit per-leaf models.
  for (size_t j = 0; j < rmi.leaves_.size(); ++j) {
    Leaf& leaf = rmi.leaves_[j];
    const size_t begin = leaf.rank_begin;
    const size_t end =
        (j + 1 < rmi.leaves_.size()) ? rmi.leaves_[j + 1].rank_begin : n;
    leaf.rank_end = static_cast<uint32_t>(end);
    if (end > begin) {
      std::vector<double> xs;
      std::vector<double> ys;
      xs.reserve(end - begin);
      ys.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        xs.push_back(static_cast<double>(sorted[i]));
        ys.push_back(static_cast<double>(i));
      }
      leaf.model = LinearModel::Fit(xs, ys);
      // Monotonicity: non-negative slope within the leaf; combined with
      // rank clamping this makes the full model non-decreasing.
      if (leaf.model.slope < 0.0) {
        leaf.model = LinearModel{0.0, (ys.front() + ys.back()) / 2.0};
      }
    } else {
      leaf.model = LinearModel{0.0, static_cast<double>(begin)};
    }
  }
  return rmi;
}

Rmi::Bounds Rmi::Lookup(Value v) const {
  if (n_ == 0) return Bounds{0, 0, 0};
  const Leaf& leaf = leaves_[LeafIndex(v)];
  double r = leaf.model.Predict(static_cast<double>(v));
  if (r < leaf.rank_begin) r = leaf.rank_begin;
  if (r > leaf.rank_end) r = leaf.rank_end;
  // Certified interval: ranks before the leaf hold values strictly below
  // its knot (<= v), ranks at/after its end hold values > v's leaf span,
  // so the true lower-bound rank lies within [rank_begin, rank_end].
  return Bounds{static_cast<size_t>(r), leaf.rank_begin, leaf.rank_end};
}

size_t Rmi::MemoryUsageBytes() const {
  return sizeof(Rmi) + leaves_.size() * sizeof(Leaf) +
         knots_.size() * sizeof(Value);
}

}  // namespace flood
