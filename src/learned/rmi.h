#ifndef FLOOD_LEARNED_RMI_H_
#define FLOOD_LEARNED_RMI_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "storage/column.h"

namespace flood {

/// y = slope * x + intercept over double-converted values.
struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  double Predict(double x) const { return slope * x + intercept; }

  /// Least-squares fit of (xs[i], ys[i]). Falls back to a constant model
  /// when xs has no spread.
  static LinearModel Fit(const std::vector<double>& xs,
                         const std::vector<double>& ys);
};

/// A two-layer Recursive Model Index over a *sorted* value array, used two
/// ways in this repo:
///
///  1. As a guaranteed-monotone empirical CDF for Flood's flattening step
///     (§5.1): Cdf(v) in [0, 1] is non-decreasing in v, which grid
///     correctness requires (§6 "Multi-dimensional CDFs").
///  2. As a learned B-tree replacement for position lookup (§7.2's
///     clustered baseline, Fig. 17's "RMI" per-cell model): Lookup(v)
///     returns a predicted rank plus a certified search interval.
///
/// Structure: the root is a linear-spline router whose knots sit at
/// equi-depth quantiles of the training data (the paper's non-leaf layers
/// are linear splines), so each leaf owns an equal share of the mass even
/// under heavy skew; each leaf holds a least-squares linear model of
/// rank(v), post-processed to be non-decreasing and clamped to the leaf's
/// true rank interval, which makes the whole model monotone.
class Rmi {
 public:
  /// Lookup result: `pred` is the model's rank estimate; the true
  /// lower-bound rank of the looked-up value is guaranteed to lie in
  /// [lo, hi].
  struct Bounds {
    size_t pred;
    size_t lo;
    size_t hi;
  };

  Rmi() = default;

  /// Trains over `sorted` (ascending). `num_leaves` defaults to
  /// max(1, n/256) when 0.
  static Rmi Train(const std::vector<Value>& sorted, size_t num_leaves = 0);

  size_t num_keys() const { return n_; }
  size_t num_leaves() const { return leaves_.size(); }

  /// Monotone empirical CDF estimate in [0, 1].
  double Cdf(Value v) const {
    if (n_ == 0) return 0.0;
    return PredictRank(v) / static_cast<double>(n_);
  }

  /// Rank estimate plus certified bounds for lower-bound search.
  Bounds Lookup(Value v) const;

  size_t MemoryUsageBytes() const;

 private:
  struct Leaf {
    LinearModel model;
    // True rank interval covered by this leaf: ranks of its first and
    // one-past-last training points. Clamping predictions into
    // [rank_begin, rank_end] enforces cross-leaf monotonicity and gives
    // Lookup() its certified interval.
    uint32_t rank_begin = 0;
    uint32_t rank_end = 0;
  };

  /// Spline-root routing: the leaf owning v is the last knot <= v.
  size_t LeafIndex(Value v) const {
    const auto it =
        std::upper_bound(knots_.begin(), knots_.end(), v);
    if (it == knots_.begin()) return 0;
    return static_cast<size_t>(it - knots_.begin()) - 1;
  }

  double PredictRank(Value v) const {
    const Leaf& leaf = leaves_[LeafIndex(v)];
    double r = leaf.model.Predict(static_cast<double>(v));
    if (r < leaf.rank_begin) r = leaf.rank_begin;
    if (r > leaf.rank_end) r = leaf.rank_end;
    return r;
  }

  size_t n_ = 0;
  std::vector<Value> knots_;  ///< First value of each leaf (ascending).
  std::vector<Leaf> leaves_;
};

}  // namespace flood

#endif  // FLOOD_LEARNED_RMI_H_
