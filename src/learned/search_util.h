#ifndef FLOOD_LEARNED_SEARCH_UTIL_H_
#define FLOOD_LEARNED_SEARCH_UTIL_H_

#include <cstddef>

#include "common/macros.h"

namespace flood {

/// Exponential (galloping) search for the first index i in [from, end) with
/// get(i) >= v, assuming get is non-decreasing on [begin, end) and that the
/// answer is known to be >= from (e.g. `from` is a lower-bound model
/// prediction). Returns end if no such index.
template <typename Get, typename V>
size_t GallopLowerBound(const Get& get, size_t from, size_t end, V v) {
  if (from >= end || get(from) >= v) return from;
  // Invariant: get(lo) < v.
  size_t lo = from;
  size_t step = 1;
  size_t hi = from + step;
  while (hi < end && get(hi) < v) {
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  if (hi > end) hi = end;
  // Binary search in (lo, hi].
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (get(mid) < v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// First index i in [from, end) with get(i) > v (upper bound), same
/// preconditions as GallopLowerBound.
template <typename Get, typename V>
size_t GallopUpperBound(const Get& get, size_t from, size_t end, V v) {
  if (from >= end || get(from) > v) return from;
  size_t lo = from;
  size_t step = 1;
  size_t hi = from + step;
  while (hi < end && get(hi) <= v) {
    lo = hi;
    step <<= 1;
    hi = from + step;
  }
  if (hi > end) hi = end;
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (get(mid) <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// Plain binary lower bound over an accessor (the Fig. 17 "Binary"
/// baseline and the no-model refinement path).
template <typename Get, typename V>
size_t BinaryLowerBound(const Get& get, size_t begin, size_t end, V v) {
  size_t lo = begin;
  size_t hi = end;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (get(mid) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Plain binary upper bound over an accessor.
template <typename Get, typename V>
size_t BinaryUpperBound(const Get& get, size_t begin, size_t end, V v) {
  size_t lo = begin;
  size_t hi = end;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (get(mid) <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace flood

#endif  // FLOOD_LEARNED_SEARCH_UTIL_H_
