#ifndef FLOOD_LEARNED_STATIC_BTREE_H_
#define FLOOD_LEARNED_STATIC_BTREE_H_

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "storage/column.h"

namespace flood {

/// A read-only B-tree over a sorted key array, built bottom-up with a small
/// fanout so each node spans few cache lines (paper §5.2: the PLM "forms a
/// cache-optimized B-Tree" over its segment boundary keys).
///
/// FindSegment(v) returns the index of the last key <= v, i.e. the segment
/// that owns v, or 0 if v precedes all keys.
class StaticBTree {
 public:
  static constexpr size_t kFanout = 16;

  StaticBTree() = default;

  /// Takes ownership of `keys`, which must be sorted ascending.
  explicit StaticBTree(std::vector<Value> keys) {
    FLOOD_DCHECK(std::is_sorted(keys.begin(), keys.end()));
    levels_.push_back(std::move(keys));
    while (levels_.back().size() > kFanout) {
      const std::vector<Value>& below = levels_.back();
      std::vector<Value> up;
      up.reserve(below.size() / kFanout + 1);
      for (size_t i = 0; i < below.size(); i += kFanout) {
        up.push_back(below[i]);
      }
      levels_.push_back(std::move(up));
    }
  }

  size_t size() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Index (into the key array) of the last key <= v; 0 if v < keys[0].
  size_t FindSegment(Value v) const {
    FLOOD_DCHECK(!levels_.empty() && !levels_[0].empty());
    // Walk from the top level down. `pos` is the candidate child index at
    // the current level.
    size_t pos = 0;
    for (size_t l = levels_.size(); l-- > 0;) {
      const std::vector<Value>& keys = levels_[l];
      const size_t begin = pos * kFanout;
      const size_t end = std::min(keys.size(), begin + kFanout);
      // Linear scan within the node: fanout is small and the node is
      // contiguous, so this beats branchy binary search.
      size_t i = begin;
      while (i + 1 < end && keys[i + 1] <= v) ++i;
      pos = i;
    }
    return pos;
  }

  size_t MemoryUsageBytes() const {
    size_t bytes = 0;
    for (const auto& l : levels_) bytes += l.size() * sizeof(Value);
    return bytes;
  }

 private:
  // levels_[0] is the full key array; each higher level keeps every
  // kFanout-th key of the level below.
  std::vector<std::vector<Value>> levels_;
};

}  // namespace flood

#endif  // FLOOD_LEARNED_STATIC_BTREE_H_
