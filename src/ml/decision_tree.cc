#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace flood {

DecisionTree DecisionTree::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& targets,
                               const std::vector<uint32_t>& row_indices,
                               const TreeParams& params, Rng& rng) {
  DecisionTree tree;
  if (row_indices.empty()) {
    tree.nodes_.push_back(Node{});
    return tree;
  }
  std::vector<uint32_t> indices = row_indices;
  tree.Build(rows, targets, indices, 0, indices.size(), 0, params, rng);
  return tree;
}

uint32_t DecisionTree::Build(const std::vector<std::vector<double>>& rows,
                             const std::vector<double>& targets,
                             std::vector<uint32_t>& indices, size_t begin,
                             size_t end, int depth, const TreeParams& params,
                             Rng& rng) {
  const uint32_t node_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});

  const size_t n = end - begin;
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += targets[indices[i]];
  const double mean = sum / static_cast<double>(n);
  nodes_[node_id].value = mean;

  if (depth >= params.max_depth || n < 2 * params.min_samples_leaf) {
    return node_id;
  }

  const size_t num_features = rows[indices[begin]].size();
  // Candidate features: all, or a random subset of max_features.
  std::vector<uint32_t> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  size_t feature_count = num_features;
  if (params.max_features != 0 && params.max_features < num_features) {
    for (size_t i = 0; i < params.max_features; ++i) {
      const size_t j = i + static_cast<size_t>(rng.UniformInt(
                               0, static_cast<int64_t>(num_features - i) - 1));
      std::swap(features[i], features[j]);
    }
    feature_count = params.max_features;
  }

  // Best split: maximize SSE reduction == maximize sum over children of
  // (child_sum^2 / child_count).
  double best_score = -std::numeric_limits<double>::infinity();
  int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> pairs;  // (feature value, target)
  pairs.reserve(n);
  for (size_t f = 0; f < feature_count; ++f) {
    const uint32_t feature = features[f];
    pairs.clear();
    for (size_t i = begin; i < end; ++i) {
      pairs.emplace_back(rows[indices[i]][feature], targets[indices[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    if (pairs.front().first == pairs.back().first) continue;  // Constant.

    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += pairs[i].second;
      // Can only split between distinct feature values.
      if (pairs[i].first == pairs[i + 1].first) continue;
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < params.min_samples_leaf ||
          right_n < params.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(left_n) +
          right_sum * right_sum / static_cast<double>(right_n);
      if (score > best_score) {
        best_score = score;
        best_feature = static_cast<int32_t>(feature);
        best_threshold = (pairs[i].first + pairs[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;  // No useful split found.

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&rows, best_feature, best_threshold](uint32_t idx) {
        return rows[idx][static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // Degenerate partition.

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const uint32_t left =
      Build(rows, targets, indices, begin, mid, depth + 1, params, rng);
  const uint32_t right =
      Build(rows, targets, indices, mid, end, depth + 1, params, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::Predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return 0.0;
  uint32_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& nd = nodes_[node];
    const size_t f = static_cast<size_t>(nd.feature);
    const double x = f < features.size() ? features[f] : 0.0;
    node = (x <= nd.threshold) ? nd.left : nd.right;
  }
  return nodes_[node].value;
}

}  // namespace flood
