#ifndef FLOOD_ML_DECISION_TREE_H_
#define FLOOD_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace flood {

/// Hyper-parameters shared by DecisionTree and RandomForest.
struct TreeParams {
  int max_depth = 12;
  size_t min_samples_leaf = 3;
  /// Features considered per split; 0 means all (single trees) — forests
  /// typically pass ~d/3 for regression.
  size_t max_features = 0;
};

/// CART regression tree: greedy binary splits minimizing the sum of squared
/// errors, mean prediction at the leaves.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits the tree on rows[i] -> targets[i]. `row_indices` selects the
  /// training subset (bootstrap support); pass all indices for a plain fit.
  static DecisionTree Fit(const std::vector<std::vector<double>>& rows,
                          const std::vector<double>& targets,
                          const std::vector<uint32_t>& row_indices,
                          const TreeParams& params, Rng& rng);

  double Predict(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int32_t feature = -1;  ///< -1 for leaves.
    double threshold = 0.0;
    double value = 0.0;    ///< Leaf prediction (mean target).
    uint32_t left = 0;
    uint32_t right = 0;
  };

  uint32_t Build(const std::vector<std::vector<double>>& rows,
                 const std::vector<double>& targets,
                 std::vector<uint32_t>& indices, size_t begin, size_t end,
                 int depth, const TreeParams& params, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace flood

#endif  // FLOOD_ML_DECISION_TREE_H_
