#include "ml/linear_regression.h"

#include <cmath>

#include "common/macros.h"

namespace flood {

LinearRegression LinearRegression::Fit(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets, double ridge) {
  LinearRegression lr;
  if (rows.empty()) return lr;
  FLOOD_CHECK(rows.size() == targets.size());
  const size_t d = rows[0].size();
  const size_t p = d + 1;  // +1 for the intercept column.

  // Normal equations A beta = b with A = X'X + ridge*I, b = X'y.
  std::vector<double> a(p * p, 0.0);
  std::vector<double> b(p, 0.0);
  for (size_t r = 0; r < rows.size(); ++r) {
    FLOOD_DCHECK(rows[r].size() == d);
    // Augmented feature vector [x0..xd-1, 1].
    for (size_t i = 0; i < p; ++i) {
      const double xi = (i < d) ? rows[r][i] : 1.0;
      b[i] += xi * targets[r];
      for (size_t j = 0; j < p; ++j) {
        const double xj = (j < d) ? rows[r][j] : 1.0;
        a[i * p + j] += xi * xj;
      }
    }
  }
  for (size_t i = 0; i < p; ++i) a[i * p + i] += ridge;

  // Gaussian elimination with partial pivoting.
  std::vector<double> beta = b;
  for (size_t col = 0; col < p; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < p; ++r) {
      if (std::fabs(a[r * p + col]) > std::fabs(a[pivot * p + col])) pivot = r;
    }
    if (std::fabs(a[pivot * p + col]) < 1e-12) continue;  // Degenerate column.
    if (pivot != col) {
      for (size_t j = 0; j < p; ++j) std::swap(a[col * p + j], a[pivot * p + j]);
      std::swap(beta[col], beta[pivot]);
    }
    const double diag = a[col * p + col];
    for (size_t r = 0; r < p; ++r) {
      if (r == col) continue;
      const double factor = a[r * p + col] / diag;
      if (factor == 0.0) continue;
      for (size_t j = col; j < p; ++j) a[r * p + j] -= factor * a[col * p + j];
      beta[r] -= factor * beta[col];
    }
  }
  lr.coef_.resize(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    const double diag = a[i * p + i];
    lr.coef_[i] = (std::fabs(diag) < 1e-12) ? 0.0 : beta[i] / diag;
  }
  const double diag = a[d * p + d];
  lr.intercept_ = (std::fabs(diag) < 1e-12) ? 0.0 : beta[d] / diag;
  return lr;
}

double LinearRegression::Predict(const std::vector<double>& features) const {
  double y = intercept_;
  const size_t d = std::min(features.size(), coef_.size());
  for (size_t i = 0; i < d; ++i) y += coef_[i] * features[i];
  return y;
}

}  // namespace flood
