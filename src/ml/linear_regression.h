#ifndef FLOOD_ML_LINEAR_REGRESSION_H_
#define FLOOD_ML_LINEAR_REGRESSION_H_

#include <vector>

namespace flood {

/// Multivariate ordinary-least-squares regression with an intercept and a
/// small ridge term for numerical stability. Used as the weaker cost-model
/// weight predictor in the §4.1.2 ablation.
class LinearRegression {
 public:
  LinearRegression() = default;

  /// Fits y ~ X. `rows` is a vector of feature vectors (equal length).
  static LinearRegression Fit(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              double ridge = 1e-6);

  double Predict(const std::vector<double>& features) const;

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace flood

#endif  // FLOOD_ML_LINEAR_REGRESSION_H_
