#include "ml/random_forest.h"

#include <algorithm>

#include "common/macros.h"

namespace flood {

RandomForest RandomForest::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& targets,
                               const Params& params, uint64_t seed) {
  FLOOD_CHECK(rows.size() == targets.size());
  RandomForest forest;
  if (rows.empty()) return forest;
  Rng rng(seed);

  const size_t n = rows.size();
  const size_t boot =
      std::max<size_t>(1, static_cast<size_t>(params.bootstrap_fraction *
                                              static_cast<double>(n)));
  TreeParams tree_params = params.tree;
  if (tree_params.max_features == 0 && !rows[0].empty()) {
    // Regression-forest default: d/3 features per split.
    tree_params.max_features = std::max<size_t>(1, rows[0].size() / 3);
  }

  forest.trees_.reserve(params.num_trees);
  std::vector<uint32_t> sample(boot);
  for (size_t t = 0; t < params.num_trees; ++t) {
    for (auto& idx : sample) {
      idx = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    Rng tree_rng = rng.Fork();
    forest.trees_.push_back(
        DecisionTree::Fit(rows, targets, sample, tree_params, tree_rng));
  }
  return forest;
}

double RandomForest::Predict(const std::vector<double>& features) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(features);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace flood
