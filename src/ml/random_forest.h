#ifndef FLOOD_ML_RANDOM_FOREST_H_
#define FLOOD_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"

namespace flood {

/// Bagged random-forest regressor — the cost model's weight predictor
/// (§4.1.1 trains "a random forest regression model to predict the weights
/// based on the statistics"; the paper used scipy, we implement our own).
class RandomForest {
 public:
  struct Params {
    size_t num_trees = 40;
    TreeParams tree;
    /// Bootstrap sample size as a fraction of the training set.
    double bootstrap_fraction = 1.0;
  };

  RandomForest() = default;

  static RandomForest Fit(const std::vector<std::vector<double>>& rows,
                          const std::vector<double>& targets,
                          const Params& params, uint64_t seed);

  /// Mean prediction across trees.
  double Predict(const std::vector<double>& features) const;

  size_t num_trees() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace flood

#endif  // FLOOD_ML_RANDOM_FOREST_H_
