#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace flood::obs {

int64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  if (p >= 100.0) return max;
  if (p < 0.0) p = 0.0;
  // Nearest rank: the ceil(p/100 * count)-th smallest value, 1-based;
  // p == 0 reads the minimum's bucket.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max);
  }
  return max;  // unreachable when counts are consistent
}

std::size_t ThisThreadSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    const int64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!word(name[0])) return false;
  for (char c : name) {
    if (!word(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

struct MetricsRegistry::Impl {
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu;
  std::map<std::string, Entry> entries;  // sorted => stable exposition order
};

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked on purpose: metric handles are held by static per-layer bundles
  // and may be touched during static destruction.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::Impl* MetricsRegistry::impl() {
  Impl* p = impl_.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(p, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return p;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          const std::string& help) {
  FLOOD_CHECK(ValidMetricName(name));
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto& e = im->entries[name];
  if (e.counter == nullptr) {
    FLOOD_CHECK(e.gauge == nullptr && e.histogram == nullptr);
    e.kind = MetricKind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
  }
  FLOOD_CHECK(e.kind == MetricKind::kCounter);
  return e.counter.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name,
                                      const std::string& help) {
  FLOOD_CHECK(ValidMetricName(name));
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto& e = im->entries[name];
  if (e.gauge == nullptr) {
    FLOOD_CHECK(e.counter == nullptr && e.histogram == nullptr);
    e.kind = MetricKind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
  }
  FLOOD_CHECK(e.kind == MetricKind::kGauge);
  return e.gauge.get();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& help) {
  FLOOD_CHECK(ValidMetricName(name));
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  auto& e = im->entries[name];
  if (e.histogram == nullptr) {
    FLOOD_CHECK(e.counter == nullptr && e.gauge == nullptr);
    e.kind = MetricKind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<Histogram>();
  }
  FLOOD_CHECK(e.kind == MetricKind::kHistogram);
  return e.histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::SnapshotAll() const {
  Impl* im = const_cast<MetricsRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lock(im->mu);
  std::vector<MetricSnapshot> out;
  out.reserve(im->entries.size());
  for (const auto& [name, e] : im->entries) {
    MetricSnapshot snap;
    snap.name = name;
    snap.help = e.help;
    snap.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(e.counter->Value());
        break;
      case MetricKind::kGauge:
        snap.value = static_cast<double>(e.gauge->Value());
        break;
      case MetricKind::kHistogram:
        snap.hist = e.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-layer bundles
// ---------------------------------------------------------------------------

DbMetrics& GlobalDbMetrics() {
  static DbMetrics m = [] {
    auto& r = MetricsRegistry::Instance();
    DbMetrics b;
    b.query_ns = r.RegisterHistogram("flood_db_query_ns",
                                     "Per-query end-to-end latency (ns)");
    b.batch_ns =
        r.RegisterHistogram("flood_db_batch_ns", "RunBatch wall time (ns)");
    b.batch_queries = r.RegisterHistogram("flood_db_batch_queries",
                                          "Queries per RunBatch call");
    b.plan_ns = r.RegisterHistogram(
        "flood_db_plan_ns", "Per-query index planning / cell selection (ns)");
    b.scan_ns = r.RegisterHistogram(
        "flood_db_scan_ns", "Per-query cell scan incl. refinement (ns)");
    b.delta_merge_ns = r.RegisterHistogram(
        "flood_db_delta_merge_ns", "Per-query delta-buffer merge (ns)");
    b.compaction_pause_ns = r.RegisterHistogram(
        "flood_db_compaction_pause_ns",
        "Exclusive-lock pause while compacting + retraining (ns)");
    b.checkpoint_ns = r.RegisterHistogram(
        "flood_db_checkpoint_ns", "Save() snapshot checkpoint duration (ns)");
    b.queries =
        r.RegisterCounter("flood_db_queries_total", "Queries executed");
    b.slow_queries = r.RegisterCounter(
        "flood_db_slow_queries_total",
        "Queries slower than DatabaseOptions.slow_query_ns");
    b.empty_skipped = r.RegisterCounter(
        "flood_db_empty_skipped_total",
        "Batch queries answered empty without execution");
    b.points_scanned =
        r.RegisterCounter("flood_db_points_scanned_total", "Points scanned");
    b.blocks_skipped = r.RegisterCounter(
        "flood_db_blocks_skipped_total", "Blocks skipped by zone maps");
    b.blocks_exact = r.RegisterCounter(
        "flood_db_blocks_exact_total",
        "Blocks zone-map-accepted without per-row refinement");
    b.simd_blocks = r.RegisterCounter("flood_db_simd_blocks_total",
                                      "Blocks scanned by the SIMD kernel");
    b.delta_rows_scanned = r.RegisterCounter(
        "flood_db_delta_rows_scanned_total", "Delta-buffer rows scanned");
    return b;
  }();
  return m;
}

ServeMetrics& GlobalServeMetrics() {
  static ServeMetrics m = [] {
    auto& r = MetricsRegistry::Instance();
    ServeMetrics b;
    b.frame_ns = r.RegisterHistogram(
        "flood_serve_frame_ns",
        "Request group latency: submit to completion drained (ns)");
    b.exec_ns = r.RegisterHistogram("flood_serve_exec_ns",
                                    "Engine execution time per group (ns)");
    b.queue_wait_ns = r.RegisterHistogram(
        "flood_serve_queue_wait_ns",
        "Admission + pool queue wait per group (frame - exec) (ns)");
    b.batch_queries = r.RegisterHistogram(
        "flood_serve_batch_queries", "Queries folded into one engine group");
    b.connections =
        r.RegisterGauge("flood_serve_connections", "Open client connections");
    b.frames = r.RegisterCounter("flood_serve_frames_total",
                                 "Request frames processed");
    b.scrapes = r.RegisterCounter("flood_serve_scrapes_total",
                                  "HTTP /metrics scrapes served");
    return b;
  }();
  return m;
}

RouterMetrics& GlobalRouterMetrics() {
  static RouterMetrics m = [] {
    auto& r = MetricsRegistry::Instance();
    RouterMetrics b;
    b.fanout_ns = r.RegisterHistogram(
        "flood_router_fanout_ns",
        "Scatter to per-shard reply latency, one sample per shard (ns)");
    b.subqueries = r.RegisterCounter("flood_router_subqueries_total",
                                     "Per-shard subqueries considered");
    b.subqueries_pruned = r.RegisterCounter(
        "flood_router_subqueries_pruned_total",
        "Subqueries skipped because the shard key range cannot match");
    return b;
  }();
  return m;
}

PersistMetrics& GlobalPersistMetrics() {
  static PersistMetrics m = [] {
    auto& r = MetricsRegistry::Instance();
    PersistMetrics b;
    b.wal_append_ns = r.RegisterHistogram(
        "flood_persist_wal_append_ns",
        "WAL group-commit append incl. fsync when kSync (ns)");
    b.fsync_ns =
        r.RegisterHistogram("flood_persist_fsync_ns", "fsync duration (ns)");
    b.snapshot_write_ns = r.RegisterHistogram(
        "flood_persist_snapshot_write_ns",
        "Snapshot serialize + write + rename duration (ns)");
    return b;
  }();
  return m;
}

}  // namespace flood::obs
