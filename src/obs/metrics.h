#pragma once
// Process-wide metrics: thread-sharded counters/gauges and a log-bucketed
// histogram behind a name-keyed registry.
//
// Design contract (see docs/metrics.md for the metric catalog):
//
//  - Recording is lock-free and allocation-free: counters and histograms
//    are sharded across cache-line-aligned cells indexed by a per-thread
//    slot, all updates relaxed atomics. Gauges are a single atomic (they
//    are set from one place at low frequency, not accumulated on hot
//    paths).
//  - `HistogramData` is the plain, copyable, *non-atomic* form of a
//    histogram: the snapshot type, the wire type, and the type callers
//    use for local exact-ish percentiles (e.g. `BatchResult`). It is
//    ALWAYS compiled, even with -DFLOOD_METRICS=OFF.
//  - `Histogram` is the registry-backed concurrent recorder. With
//    -DFLOOD_METRICS=OFF every mutator on Counter/Gauge/Histogram
//    compiles to nothing (`kEnabled` is false), mirroring the
//    FLOOD_FAILPOINTS pattern; readers then see zeros.
//  - Buckets are log-linear: 4 sub-buckets per power of two, so every
//    bucket's width is at most 25% of its lower bound. Percentile
//    readout returns the bucket upper bound clamped to the exact
//    tracked max — p100 is always the exact maximum.
//  - The registry is a process singleton; handles are registered once
//    (first caller wins, duplicate name + same kind returns the same
//    handle, kind mismatch aborts) and stay valid for process lifetime.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace flood::obs {

#if defined(FLOOD_METRICS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// ---------------------------------------------------------------------------
// Bucket math (shared by HistogramData and Histogram)
// ---------------------------------------------------------------------------

// 4 exact unit buckets (0..3) + 4 sub-buckets per power of two for
// exponents 2..62 — covers all non-negative int64 values.
inline constexpr std::size_t kNumBuckets = 4 + 61 * 4;  // 248

// Bucket for value `v`. Negative values clamp into bucket 0.
constexpr std::size_t BucketIndex(int64_t v) {
  if (v < 4) return v < 0 ? 0 : static_cast<std::size_t>(v);
  const uint64_t u = static_cast<uint64_t>(v);
  const int msb = 63 - std::countl_zero(u);  // in [2, 62]
  return 4 + static_cast<std::size_t>(msb - 2) * 4 +
         static_cast<std::size_t>((u >> (msb - 2)) & 3);
}

// Largest value mapping to bucket `idx` (inclusive), saturating to
// INT64_MAX for the final bucket.
constexpr int64_t BucketUpperBound(std::size_t idx) {
  if (idx < 4) return static_cast<int64_t>(idx);
  const int b = 2 + static_cast<int>((idx - 4) / 4);
  const uint64_t j = (idx - 4) % 4;
  const uint64_t upper =
      (uint64_t{1} << b) + (j + 1) * (uint64_t{1} << (b - 2)) - 1;
  return upper > static_cast<uint64_t>(INT64_MAX)
             ? INT64_MAX
             : static_cast<int64_t>(upper);
}

static_assert(BucketIndex(0) == 0 && BucketIndex(3) == 3);
static_assert(BucketIndex(4) == 4 && BucketIndex(7) == 7);
static_assert(BucketIndex(INT64_MAX) == kNumBuckets - 1);
static_assert(BucketUpperBound(kNumBuckets - 1) == INT64_MAX);

// ---------------------------------------------------------------------------
// HistogramData — plain mergeable histogram (snapshot / wire / local form)
// ---------------------------------------------------------------------------

struct HistogramData {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;  // exact tracked maximum; meaningless when count == 0
  std::array<uint64_t, kNumBuckets> buckets{};

  void Record(int64_t v) {
    if (v < 0) v = 0;
    ++buckets[BucketIndex(v)];
    ++count;
    sum += v;
    if (v > max) max = v;
  }

  void Merge(const HistogramData& other) {
    count += other.count;
    sum += other.sum;
    if (other.count > 0 && other.max > max) max = other.max;
    for (std::size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  }

  // Nearest-rank percentile readout: the upper bound of the bucket holding
  // the rank-th recorded value, clamped to the exact max (so the estimate
  // never exceeds any recorded value's true ceiling, and p >= 100 is the
  // exact maximum). Empty histogram reads 0.
  int64_t Percentile(double p) const;
};

// ---------------------------------------------------------------------------
// Concurrent recorders
// ---------------------------------------------------------------------------

// Dense small integer id for the calling thread, assigned on first use.
// Used to pick a shard; two threads may share a shard (correct, just
// contended) — there is never a torn or lost update.
std::size_t ThisThreadSlot();

class Counter {
 public:
  void Add(uint64_t n = 1) {
    if constexpr (kEnabled) {
      cells_[ThisThreadSlot() & (kShards - 1)].v.fetch_add(
          n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kShards];
};

class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
    else (void)v;
  }
  void Add(int64_t d) {
    if constexpr (kEnabled) v_.fetch_add(d, std::memory_order_relaxed);
    else (void)d;
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Histogram {
 public:
  void Record(int64_t v) {
    if constexpr (kEnabled) {
      if (v < 0) v = 0;
      Shard& s = shards_[ThisThreadSlot() & (kShards - 1)];
      s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
      s.count.fetch_add(1, std::memory_order_relaxed);
      s.sum.fetch_add(v, std::memory_order_relaxed);
      int64_t cur = s.max.load(std::memory_order_relaxed);
      while (v > cur &&
             !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      }
    } else {
      (void)v;
    }
  }

  // Merged view across shards. Concurrent recorders may land between the
  // per-field loads, so a snapshot is only eventually consistent — fine
  // for monitoring, and exact once recorders quiesce.
  HistogramData Snapshot() const;

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  Shard shards_[kShards];
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;    // counter / gauge reading
  HistogramData hist;  // populated iff kind == kHistogram
};

// Process-wide registry. Registration takes a mutex (startup only);
// returned handles record without any lock. Names must match
// [a-zA-Z_][a-zA-Z0-9_]* — they go straight onto the Prometheus
// exposition (FLOOD_CHECK enforced).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* RegisterCounter(const std::string& name, const std::string& help);
  Gauge* RegisterGauge(const std::string& name, const std::string& help);
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& help);

  // All metrics, sorted by name.
  std::vector<MetricSnapshot> SnapshotAll() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl();  // lazily constructed, never destroyed (registered handles
                 // outlive static destruction order)
  std::atomic<Impl*> impl_{nullptr};
};

// ---------------------------------------------------------------------------
// Per-layer handle bundles (registered once, on first use)
// ---------------------------------------------------------------------------

struct DbMetrics {
  Histogram* query_ns;             // per-query end-to-end latency
  Histogram* batch_ns;             // per-RunBatch wall time
  Histogram* batch_queries;        // queries per batch
  Histogram* plan_ns;              // stage: index planning (index_ns)
  Histogram* scan_ns;              // stage: cell scan incl. refine
  Histogram* delta_merge_ns;       // stage: delta-buffer merge
  Histogram* compaction_pause_ns;  // exclusive-lock compaction pause
  Histogram* checkpoint_ns;        // Save() snapshot duration
  Counter* queries;
  Counter* slow_queries;
  Counter* empty_skipped;
  Counter* points_scanned;
  Counter* blocks_skipped;  // zone-map classify: skipped without decode
  Counter* blocks_exact;    // zone-map classify: accepted without refine
  Counter* simd_blocks;
  Counter* delta_rows_scanned;
};
DbMetrics& GlobalDbMetrics();

struct ServeMetrics {
  Histogram* frame_ns;       // submit -> completion drained, per group
  Histogram* exec_ns;        // engine execution time, per group
  Histogram* queue_wait_ns;  // frame_ns - exec_ns (admission + pool queue)
  Histogram* batch_queries;  // queries folded into one engine group
  Gauge* connections;
  Counter* frames;
  Counter* scrapes;  // HTTP /metrics hits
};
ServeMetrics& GlobalServeMetrics();

struct RouterMetrics {
  Histogram* fanout_ns;  // scatter -> each shard reply, per shard
  Counter* subqueries;
  Counter* subqueries_pruned;
};
RouterMetrics& GlobalRouterMetrics();

struct PersistMetrics {
  Histogram* wal_append_ns;      // WalWriter::Commit write+fsync
  Histogram* fsync_ns;           // every fsync in persist
  Histogram* snapshot_write_ns;  // WriteSnapshot serialize+write+rename
};
PersistMetrics& GlobalPersistMetrics();

}  // namespace flood::obs
