#include "obs/prometheus.h"

#include <cinttypes>
#include <cstdio>
#include <set>

namespace flood::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  // %.17g round-trips doubles; integral values render without exponent
  // for typical counter magnitudes.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendHelpType(std::string* out, const std::string& name,
                    const std::string& help, const char* type) {
  if (!help.empty()) {
    out->append("# HELP ").append(name).append(" ");
    // The format forbids raw newlines and backslashes in HELP text.
    for (char c : help) {
      if (c == '\\') out->append("\\\\");
      else if (c == '\n') out->append("\\n");
      else out->push_back(c);
    }
    out->push_back('\n');
  }
  out->append("# TYPE ").append(name).append(" ").append(type).push_back('\n');
}

void AppendHistogram(std::string* out, const std::string& name,
                     const std::string& help, const HistogramData& h) {
  AppendHelpType(out, name, help, "histogram");
  char buf[96];
  uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;  // cumulative series stays correct
    cum += h.buckets[i];
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%" PRId64 "\"} %" PRIu64 "\n",
                  name.c_str(), BucketUpperBound(i), cum);
    out->append(buf);
  }
  std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                name.c_str(), h.count);
  out->append(buf);
  std::snprintf(buf, sizeof(buf), "%s_sum %" PRId64 "\n", name.c_str(), h.sum);
  out->append(buf);
  std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", name.c_str(),
                h.count);
  out->append(buf);
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 8);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  if (out.rfind("flood", 0) != 0) out.insert(0, "flood_");
  return out;
}

std::string RenderPrometheus(
    const std::vector<MetricSnapshot>& snapshots,
    const std::vector<std::pair<std::string, double>>& extra_gauges) {
  std::string out;
  out.reserve(4096);
  std::set<std::string> emitted;
  for (const MetricSnapshot& s : snapshots) {
    emitted.insert(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        AppendHelpType(&out, s.name, s.help, "counter");
        out.append(s.name).push_back(' ');
        AppendDouble(&out, s.value);
        out.push_back('\n');
        break;
      case MetricKind::kGauge:
        AppendHelpType(&out, s.name, s.help, "gauge");
        out.append(s.name).push_back(' ');
        AppendDouble(&out, s.value);
        out.push_back('\n');
        break;
      case MetricKind::kHistogram:
        AppendHistogram(&out, s.name, s.help, s.hist);
        break;
    }
  }
  for (const auto& [raw_name, value] : extra_gauges) {
    const std::string name = SanitizeMetricName(raw_name);
    // Two dotted keys can sanitize to the same name; a duplicate TYPE
    // family breaks strict parsers, so first occurrence wins.
    if (!emitted.insert(name).second) continue;
    AppendHelpType(&out, name, "", "gauge");
    out.append(name).push_back(' ');
    AppendDouble(&out, value);
    out.push_back('\n');
  }
  return out;
}

}  // namespace flood::obs
