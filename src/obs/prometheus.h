#pragma once
// Prometheus text exposition (v0.0.4) rendering for metric snapshots.
// Pure string formatting — no sockets; the HTTP listener lives in
// src/serve/server.cc.

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace flood::obs {

// A metric name sanitized for the exposition format: every character
// outside [a-zA-Z0-9_] becomes '_', a leading digit gets a '_' prefix,
// and names not already starting with "flood" gain a "flood_" prefix
// (Introspect() keys like "serve.frames" arrive dotted and unprefixed).
std::string SanitizeMetricName(const std::string& name);

// Renders registry snapshots plus ad-hoc gauges (e.g. the serving tier's
// Introspect() map) as Prometheus text exposition v0.0.4:
//   - counters:   `# TYPE n counter` + `n <v>`
//   - gauges:     `# TYPE n gauge` + `n <v>`
//   - histograms: cumulative `n_bucket{le="..."}` series (non-empty
//     buckets + `+Inf`), `n_sum`, `n_count`
// `extra_gauges` names are sanitized; snapshot names are assumed valid
// (the registry enforces that at registration).
std::string RenderPrometheus(
    const std::vector<MetricSnapshot>& snapshots,
    const std::vector<std::pair<std::string, double>>& extra_gauges = {});

}  // namespace flood::obs
