#ifndef FLOOD_PERSIST_FORMAT_H_
#define FLOOD_PERSIST_FORMAT_H_

#include <cstdint>

namespace flood {
namespace persist {

// On-disk format constants shared by the snapshot and WAL readers/writers.
// The full layout is documented in src/persist/README.md; bump the version
// constants on any incompatible change (readers reject newer versions
// instead of guessing).

/// "FLDSNAP1" as a little-endian u64.
inline constexpr uint64_t kSnapshotMagic = 0x3150414E53444C46ull;
inline constexpr uint32_t kSnapshotVersion = 1;

/// "FLDWAL01" as a little-endian u64.
inline constexpr uint64_t kWalMagic = 0x31304C4157444C46ull;
inline constexpr uint32_t kWalVersion = 1;

/// Snapshot section ids. Order in the file matches this enumeration, but
/// readers locate sections through the header's section table, so future
/// versions may add or reorder sections.
enum class SectionId : uint32_t {
  kMeta = 1,          ///< Index identity, options, layout, build knobs.
  kTable = 2,         ///< Base table: encoded column pages, storage order.
  kDictionaries = 3,  ///< Named string dictionaries (may be empty).
  kWorkload = 4,      ///< Training workload queries (may be absent).
  kDelta = 5,         ///< Staged inserts + tombstone keys.
};

/// WAL record types. A record is the logical write operation, not its
/// physical effect, so replay is independent of index storage order.
enum class WalRecordType : uint8_t {
  kInsert = 1,  ///< One staged row (num_dims values).
  kDelete = 2,  ///< Full-tuple delete key (num_dims values).
};

}  // namespace persist
}  // namespace flood

#endif  // FLOOD_PERSIST_FORMAT_H_
