#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "persist/format.h"

namespace flood {
namespace persist {

namespace {

std::atomic<uint64_t> g_dir_fsync_failures{0};

}  // namespace

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

Status WriteAllFd(int fd, const void* data, size_t n, const std::string& path,
                  const char* write_site) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < n) {
    const ssize_t w =
        failpoint::InjectedWrite(write_site, fd, p + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage("write", path));
    }
    written += static_cast<size_t>(w);
  }
  return Status::OK();
}

void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    g_dir_fsync_failures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Stopwatch fsync_watch;
  if (failpoint::InjectedFsync("persist.dir_fsync", dir_fd) != 0) {
    g_dir_fsync_failures.fetch_add(1, std::memory_order_relaxed);
  }
  obs::GlobalPersistMetrics().fsync_ns->Record(fsync_watch.ElapsedNanos());
  ::close(dir_fd);
}

uint64_t DirFsyncFailures() {
  return g_dir_fsync_failures.load(std::memory_order_relaxed);
}

namespace {

Status InvalidSnapshot(const std::string& why) {
  return Status::InvalidArgument("snapshot: " + why);
}

// --- Section payloads ------------------------------------------------------

void AppendMeta(const SnapshotContents& c, ByteWriter* w) {
  w->PutString(c.index_name);
  w->PutU32(static_cast<uint32_t>(c.index_options.size()));
  for (const auto& [key, value] : c.index_options) {
    w->PutString(key);
    w->PutString(value);
  }
  w->PutString(c.layout);
  w->PutU64(c.sample_size);
  w->PutU64(c.sample_seed);
  w->PutU32(static_cast<uint32_t>(c.index_properties.size()));
  for (const auto& [name, value] : c.index_properties) {
    w->PutString(name);
    w->PutF64(value);
  }
}

Status ReadMeta(ByteReader* r, SnapshotData* out) {
  out->index_name = r->GetString();
  const uint32_t num_options = r->GetU32();
  if (!r->ok() || num_options > r->remaining() / 8) {
    return InvalidSnapshot("corrupt meta section");
  }
  for (uint32_t i = 0; i < num_options; ++i) {
    std::string key = r->GetString();
    std::string value = r->GetString();
    out->index_options.emplace_back(std::move(key), std::move(value));
  }
  out->layout = r->GetString();
  out->sample_size = r->GetU64();
  out->sample_seed = r->GetU64();
  const uint32_t num_properties = r->GetU32();
  if (!r->ok() || num_properties > r->remaining() / 12) {
    return InvalidSnapshot("corrupt meta section");
  }
  for (uint32_t i = 0; i < num_properties; ++i) {
    std::string name = r->GetString();
    const double value = r->GetF64();
    out->index_properties.emplace_back(std::move(name), value);
  }
  if (!r->ok()) return InvalidSnapshot("corrupt meta section");
  return Status::OK();
}

void AppendDictionaries(const SnapshotContents& c, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(c.dictionaries.size()));
  for (const auto& [name, dict] : c.dictionaries) {
    w->PutString(name);
    dict->AppendTo(w);
  }
}

Status ReadDictionaries(ByteReader* r, SnapshotData* out) {
  const uint32_t count = r->GetU32();
  if (!r->ok() || count > r->remaining() / 12) {
    return InvalidSnapshot("corrupt dictionary section");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r->GetString();
    StatusOr<Dictionary> dict = Dictionary::ReadFrom(r);
    if (!dict.ok()) return dict.status();
    out->dictionaries.emplace_back(std::move(name), std::move(*dict));
  }
  return Status::OK();
}

void AppendWorkload(const SnapshotContents& c, ByteWriter* w) {
  w->PutU8(c.workload != nullptr ? 1 : 0);
  if (c.workload == nullptr) return;
  w->PutU32(static_cast<uint32_t>(c.workload->size()));
  for (const Query& q : *c.workload) AppendQuery(q, w);
}

Status ReadWorkloadSection(ByteReader* r, SnapshotData* out) {
  const uint8_t has = r->GetU8();
  if (!r->ok() || has > 1) return InvalidSnapshot("corrupt workload section");
  if (has == 0) return Status::OK();
  const uint32_t count = r->GetU32();
  // A query costs at least 4 (dims) + 5 (agg) bytes.
  if (!r->ok() || count > r->remaining() / 9) {
    return InvalidSnapshot("corrupt workload section");
  }
  std::vector<Query> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StatusOr<Query> q = ReadQuery(r);
    if (!q.ok()) return q.status();
    queries.push_back(std::move(*q));
  }
  out->workload = Workload(std::move(queries));
  return Status::OK();
}

void AppendRows(const std::vector<std::vector<Value>>& rows, size_t num_dims,
                ByteWriter* w) {
  w->PutU64(rows.size());
  for (const std::vector<Value>& row : rows) {
    FLOOD_CHECK(row.size() == num_dims);
    for (Value v : row) w->PutI64(v);
  }
}

Status ReadRows(ByteReader* r, size_t num_dims,
                std::vector<std::vector<Value>>* out) {
  const uint64_t count = r->GetU64();
  if (!r->ok() || num_dims == 0 ||
      count > r->remaining() / (num_dims * sizeof(Value))) {
    return InvalidSnapshot("corrupt delta section");
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<Value> row(num_dims);
    for (size_t d = 0; d < num_dims; ++d) row[d] = r->GetI64();
    out->push_back(std::move(row));
  }
  return Status::OK();
}

void AppendDelta(const SnapshotContents& c, ByteWriter* w) {
  const size_t num_dims = c.base->num_dims();
  w->PutU32(static_cast<uint32_t>(num_dims));
  AppendRows(c.delta_inserts, num_dims, w);
  AppendRows(c.tombstone_keys, num_dims, w);
}

Status ReadDelta(ByteReader* r, SnapshotData* out) {
  const uint32_t num_dims = r->GetU32();
  if (!r->ok() || num_dims != out->base.num_dims()) {
    return InvalidSnapshot("delta arity does not match the table");
  }
  FLOOD_RETURN_IF_ERROR(ReadRows(r, num_dims, &out->delta_inserts));
  FLOOD_RETURN_IF_ERROR(ReadRows(r, num_dims, &out->tombstone_keys));
  if (!r->ok()) return InvalidSnapshot("corrupt delta section");
  return Status::OK();
}

}  // namespace

void AppendQuery(const Query& q, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(q.num_dims()));
  for (size_t d = 0; d < q.num_dims(); ++d) {
    w->PutI64(q.range(d).lo);
    w->PutI64(q.range(d).hi);
  }
  w->PutU8(q.agg().kind == AggSpec::Kind::kSum ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(q.agg().dim));
}

StatusOr<Query> ReadQuery(ByteReader* r) {
  const uint32_t num_dims = r->GetU32();
  if (!r->ok() || num_dims > r->remaining() / 16) {
    return InvalidSnapshot("corrupt query encoding");
  }
  Query q(num_dims);
  for (uint32_t d = 0; d < num_dims; ++d) {
    const Value lo = r->GetI64();
    const Value hi = r->GetI64();
    q.SetRange(d, lo, hi);
  }
  const uint8_t kind = r->GetU8();
  const uint32_t agg_dim = r->GetU32();
  if (!r->ok() || kind > 1 || (kind == 1 && agg_dim >= num_dims)) {
    return InvalidSnapshot("corrupt query encoding");
  }
  q.set_agg({kind == 1 ? AggSpec::Kind::kSum : AggSpec::Kind::kCount,
             static_cast<size_t>(agg_dim)});
  return q;
}

Status ReadFileToString(const std::string& path, std::string* out,
                        const char* read_site) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal(ErrnoMessage("open", path));
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = failpoint::InjectedRead(read_site, fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Internal(ErrnoMessage("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd = failpoint::InjectedOpen("persist.snapshot.open", tmp.c_str(),
                                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", tmp));
  Status status =
      WriteAllFd(fd, data.data(), data.size(), tmp, "persist.snapshot.write");
  if (status.ok()) {
    const Stopwatch fsync_watch;
    if (failpoint::InjectedFsync("persist.snapshot.fsync", fd) != 0) {
      status = Status::Internal(ErrnoMessage("fsync", tmp));
    }
    obs::GlobalPersistMetrics().fsync_ns->Record(fsync_watch.ElapsedNanos());
  }
  ::close(fd);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (failpoint::InjectedRename("persist.snapshot.rename", tmp.c_str(),
                                path.c_str()) != 0) {
    status = Status::Internal(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return status;
  }
  // Make the rename itself durable.
  FsyncParentDir(path);
  return Status::OK();
}

Status WriteSnapshot(const std::string& path, const SnapshotContents& c) {
  if (c.base == nullptr || c.base->num_rows() == 0) {
    return InvalidSnapshot("a snapshot requires a non-empty base table");
  }
  // Serialize + write + rename, success or not: a failed checkpoint's
  // duration is exactly what callers stalled on.
  const Stopwatch watch;
  struct DurationRecorder {
    const Stopwatch& watch;
    ~DurationRecorder() {
      obs::GlobalPersistMetrics().snapshot_write_ns->Record(
          watch.ElapsedNanos());
    }
  } recorder{watch};

  // Serialize every section payload first; the header needs their sizes.
  struct Section {
    SectionId id;
    std::string payload;
  };
  std::vector<Section> sections;
  sections.reserve(5);
  const auto add = [&sections](SectionId id) -> ByteWriter {
    sections.push_back({id, {}});
    return ByteWriter(&sections.back().payload);
  };
  {
    ByteWriter w = add(SectionId::kMeta);
    AppendMeta(c, &w);
  }
  {
    ByteWriter w = add(SectionId::kTable);
    c.base->AppendTo(&w);
  }
  {
    ByteWriter w = add(SectionId::kDictionaries);
    AppendDictionaries(c, &w);
  }
  {
    ByteWriter w = add(SectionId::kWorkload);
    AppendWorkload(c, &w);
  }
  {
    ByteWriter w = add(SectionId::kDelta);
    AppendDelta(c, &w);
  }

  // Header + section table, then the payloads at the recorded offsets.
  std::string file;
  ByteWriter header(&file);
  header.PutU64(kSnapshotMagic);
  header.PutU32(kSnapshotVersion);
  header.PutU64(c.epoch);
  header.PutU32(static_cast<uint32_t>(sections.size()));
  uint64_t offset = file.size() + sections.size() * 24 + 4;
  for (const Section& s : sections) {
    header.PutU32(static_cast<uint32_t>(s.id));
    header.PutU64(offset);
    header.PutU64(s.payload.size());
    header.PutU32(Crc32(s.payload.data(), s.payload.size()));
    offset += s.payload.size();
  }
  header.PutU32(Crc32(file.data(), file.size()));
  for (const Section& s : sections) file.append(s.payload);

  return WriteFileAtomic(path, file);
}

StatusOr<SnapshotData> ReadSnapshot(const std::string& path) {
  std::string file;
  FLOOD_RETURN_IF_ERROR(
      ReadFileToString(path, &file, "persist.snapshot.read"));

  ByteReader header(file);
  if (header.GetU64() != kSnapshotMagic || !header.ok()) {
    return InvalidSnapshot("bad magic in " + path);
  }
  const uint32_t version = header.GetU32();
  if (version != kSnapshotVersion) {
    return InvalidSnapshot("unsupported version " + std::to_string(version) +
                           " in " + path);
  }
  SnapshotData out;
  out.epoch = header.GetU64();
  const uint32_t num_sections = header.GetU32();
  if (!header.ok() || num_sections > header.remaining() / 24) {
    return InvalidSnapshot("corrupt section table in " + path);
  }
  struct Entry {
    uint64_t offset;
    uint64_t length;
    uint32_t crc;
  };
  std::map<uint32_t, Entry> table;
  const size_t header_bytes = 8 + 4 + 8 + 4 + num_sections * 24;
  for (uint32_t i = 0; i < num_sections; ++i) {
    const uint32_t id = header.GetU32();
    const uint64_t offset = header.GetU64();
    const uint64_t length = header.GetU64();
    const uint32_t crc = header.GetU32();
    if (!header.ok() || offset < header_bytes + 4 ||
        offset > file.size() || length > file.size() - offset ||
        !table.emplace(id, Entry{offset, length, crc}).second) {
      return InvalidSnapshot("corrupt section table in " + path);
    }
  }
  const uint32_t header_crc = header.GetU32();
  if (!header.ok() || header_crc != Crc32(file.data(), header_bytes)) {
    return InvalidSnapshot("header checksum mismatch in " + path);
  }

  // Validate + parse in dependency order (delta validates against table).
  const auto section = [&](SectionId id, ByteReader* r) -> Status {
    auto it = table.find(static_cast<uint32_t>(id));
    if (it == table.end()) {
      return InvalidSnapshot("missing section " +
                             std::to_string(static_cast<uint32_t>(id)) +
                             " in " + path);
    }
    const Entry& e = it->second;
    if (Crc32(file.data() + e.offset, e.length) != e.crc) {
      return InvalidSnapshot("section checksum mismatch in " + path);
    }
    *r = ByteReader(file.data() + e.offset, e.length);
    return Status::OK();
  };

  ByteReader r(nullptr, 0);
  FLOOD_RETURN_IF_ERROR(section(SectionId::kMeta, &r));
  FLOOD_RETURN_IF_ERROR(ReadMeta(&r, &out));
  FLOOD_RETURN_IF_ERROR(section(SectionId::kTable, &r));
  StatusOr<Table> base = Table::ReadFrom(&r);
  if (!base.ok()) return base.status();
  out.base = std::move(*base);
  FLOOD_RETURN_IF_ERROR(section(SectionId::kDictionaries, &r));
  FLOOD_RETURN_IF_ERROR(ReadDictionaries(&r, &out));
  FLOOD_RETURN_IF_ERROR(section(SectionId::kWorkload, &r));
  FLOOD_RETURN_IF_ERROR(ReadWorkloadSection(&r, &out));
  FLOOD_RETURN_IF_ERROR(section(SectionId::kDelta, &r));
  FLOOD_RETURN_IF_ERROR(ReadDelta(&r, &out));
  return out;
}

}  // namespace persist
}  // namespace flood
