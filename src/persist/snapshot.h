#ifndef FLOOD_PERSIST_SNAPSHOT_H_
#define FLOOD_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/workload.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace flood {
namespace persist {

/// What a snapshot captures (see src/persist/README.md for the byte-level
/// layout): the full logical database state — base table in index storage
/// order, the learned layout and build knobs needed to rebuild the index
/// WITHOUT re-running the optimizer, and the staged delta — so
/// `old snapshot + WAL tail` always reproduces the acknowledged state.
///
/// Tombstones are stored as full-tuple *keys*, not row ids: Delete(key)
/// tombstones every base row equal to the key, so the key set identifies
/// the exact tombstone set in any deterministic rebuild order, even if a
/// baseline index re-clusters the restored table differently.

/// Borrowed view handed to WriteSnapshot (the base table is not copied).
struct SnapshotContents {
  uint64_t epoch = 0;
  std::string index_name;  ///< Canonical registry key.
  std::vector<std::pair<std::string, std::string>> index_options;
  std::string layout;  ///< GridLayout::Serialize() output; "" = none.
  /// DebugProperties()-style structural counters, stored for telemetry /
  /// offline inspection (not consulted on restore).
  std::vector<std::pair<std::string, double>> index_properties;
  uint64_t sample_size = 0;  ///< DatabaseOptions build-determinism knobs.
  uint64_t sample_seed = 0;
  const Table* base = nullptr;  ///< Required; index storage order.
  std::vector<std::pair<std::string, const Dictionary*>> dictionaries;
  const Workload* workload = nullptr;  ///< nullptr = no training workload.
  std::vector<std::vector<Value>> delta_inserts;   ///< Staged rows.
  std::vector<std::vector<Value>> tombstone_keys;  ///< Distinct key tuples.
};

/// Owned mirror of SnapshotContents returned by ReadSnapshot.
struct SnapshotData {
  uint64_t epoch = 0;
  std::string index_name;
  std::vector<std::pair<std::string, std::string>> index_options;
  std::string layout;
  std::vector<std::pair<std::string, double>> index_properties;
  uint64_t sample_size = 0;
  uint64_t sample_seed = 0;
  Table base;
  std::vector<std::pair<std::string, Dictionary>> dictionaries;
  std::optional<Workload> workload;
  std::vector<std::vector<Value>> delta_inserts;
  std::vector<std::vector<Value>> tombstone_keys;
};

/// Serializes `contents` and writes it to `path` atomically (temp file in
/// the same directory + fsync + rename), so a crash mid-save leaves any
/// previous snapshot at `path` intact — a failed snapshot loses nothing.
Status WriteSnapshot(const std::string& path, const SnapshotContents& c);

/// Reads and fully validates a snapshot: magic, version, section-table
/// bounds, header CRC, per-section CRCs, and structural invariants
/// (column lengths, delta arity, counts vs. payload size). Any corruption
/// or truncation returns InvalidArgument; a missing file returns NotFound.
StatusOr<SnapshotData> ReadSnapshot(const std::string& path);

// Shared by snapshot and tests: query (de)serialization.
void AppendQuery(const Query& q, ByteWriter* w);
StatusOr<Query> ReadQuery(ByteReader* r);

// File helpers (also used by the WAL implementation and tests). The
// `*_site` parameters name the fault-injection seam the I/O runs through
// (src/common/failpoint.h); callers on a distinct durability path pass
// their own site so tests can fail them independently.
Status ReadFileToString(const std::string& path, std::string* out,
                        const char* read_site = "persist.read");
Status WriteFileAtomic(const std::string& path, const std::string& data);

// Low-level POSIX helpers shared by the snapshot and WAL writers.
std::string ErrnoMessage(const std::string& what, const std::string& path);
/// write() until `n` bytes landed (EINTR/short-write safe).
Status WriteAllFd(int fd, const void* data, size_t n, const std::string& path,
                  const char* write_site = "persist.write");
/// Best-effort fsync of `path`'s parent directory, making a just-created
/// or just-renamed directory entry durable. Failures don't fail the caller
/// (the data fsync already succeeded; only the *directory entry* may not
/// survive a power loss) but are counted in DirFsyncFailures() so they are
/// observable instead of silently discarded.
void FsyncParentDir(const std::string& path);
/// Process-wide count of failed best-effort directory fsyncs (open or
/// fsync of the parent directory). Surfaced as
/// "persist.dir_fsync_failures" in Server::Introspect(); nonzero means a
/// freshly created/renamed snapshot or WAL *file* is durable but its
/// directory entry might not survive a power loss.
uint64_t DirFsyncFailures();

}  // namespace persist
}  // namespace flood

#endif  // FLOOD_PERSIST_SNAPSHOT_H_
