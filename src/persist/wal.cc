#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "persist/snapshot.h"

namespace flood {
namespace persist {
namespace {

/// magic u64 | version u32 | epoch u64 | crc32(preceding 20 bytes).
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;
/// Record framing: payload_len u32 | crc32(payload) | payload.
constexpr size_t kFrameBytes = 4 + 4;
/// Sanity cap on one record's payload (a record is one row/key, so even
/// absurd arities stay far below this); rejects corrupt length fields.
constexpr uint32_t kMaxPayload = 1 << 24;

std::string EncodeHeader(uint64_t epoch) {
  std::string out;
  ByteWriter w(&out);
  w.PutU64(kWalMagic);
  w.PutU32(kWalVersion);
  w.PutU64(epoch);
  w.PutU32(Crc32(out.data(), out.size()));
  return out;
}

}  // namespace

StatusOr<WalContents> ReadWal(const std::string& path) {
  std::string file;
  FLOOD_RETURN_IF_ERROR(ReadFileToString(path, &file, "wal.read"));
  if (file.size() < kHeaderBytes) {
    // Only a crash during creation leaves a short header; no record was
    // ever acknowledged from this file, so treat it like a missing one.
    return Status::NotFound("wal " + path + " has no complete header");
  }
  ByteReader header(file.data(), kHeaderBytes);
  const uint64_t magic = header.GetU64();
  const uint32_t version = header.GetU32();
  const uint64_t epoch = header.GetU64();
  const uint32_t crc = header.GetU32();
  if (magic != kWalMagic) {
    return Status::InvalidArgument("wal " + path + ": bad magic");
  }
  if (version != kWalVersion) {
    return Status::InvalidArgument("wal " + path + ": unsupported version " +
                                   std::to_string(version));
  }
  if (crc != Crc32(file.data(), kHeaderBytes - 4)) {
    return Status::InvalidArgument("wal " + path +
                                   ": header checksum mismatch");
  }

  WalContents out;
  out.epoch = epoch;
  out.valid_bytes = kHeaderBytes;
  size_t pos = kHeaderBytes;
  while (pos < file.size()) {
    // Anything that fails from here on is a torn tail: a record that was
    // never fully handed to the OS, i.e. never acknowledged.
    if (file.size() - pos < kFrameBytes) break;
    ByteReader frame(file.data() + pos, kFrameBytes);
    const uint32_t len = frame.GetU32();
    const uint32_t payload_crc = frame.GetU32();
    if (len > kMaxPayload || file.size() - pos - kFrameBytes < len) break;
    const char* payload = file.data() + pos + kFrameBytes;
    if (Crc32(payload, len) != payload_crc) break;
    ByteReader r(payload, len);
    const uint8_t type = r.GetU8();
    const uint32_t n = r.GetU32();
    if (!r.ok() || (type != 1 && type != 2) ||
        static_cast<uint64_t>(n) * sizeof(Value) != r.remaining()) {
      break;
    }
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(type);
    rec.values.reserve(n);
    for (uint32_t i = 0; i < n; ++i) rec.values.push_back(r.GetI64());
    out.records.push_back(std::move(rec));
    pos += kFrameBytes + len;
    out.valid_bytes = pos;
  }
  out.torn_tail = out.valid_bytes < file.size();
  return out;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  const int fd = failpoint::InjectedOpen("wal.open", path.c_str(), O_WRONLY, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", path));
  if (failpoint::InjectedFtruncate("wal.truncate", fd,
                                   static_cast<off_t>(valid_bytes)) != 0) {
    const Status status = Status::Internal(ErrnoMessage("ftruncate", path));
    ::close(fd);
    return status;
  }
  if (failpoint::InjectedFsync("wal.fsync", fd) != 0) {
    const Status status = Status::Internal(ErrnoMessage("fsync", path));
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

StatusOr<WalWriter> WalWriter::Create(const std::string& path, uint64_t epoch,
                                      bool sync) {
  const int fd = failpoint::InjectedOpen("wal.open", path.c_str(),
                                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", path));
  const std::string header = EncodeHeader(epoch);
  Status status =
      WriteAllFd(fd, header.data(), header.size(), path, "wal.write");
  if (status.ok() && failpoint::InjectedFsync("wal.fsync", fd) != 0) {
    status = Status::Internal(ErrnoMessage("fsync", path));
  }
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  // Make the new directory entry durable too: without this, a power loss
  // after N fsynced commits could drop the whole file under kSync.
  FsyncParentDir(path);
  WalWriter w;
  w.fd_ = fd;
  w.path_ = path;
  w.sync_ = sync;
  w.epoch_ = epoch;
  w.file_bytes_ = header.size();
  return w;
}

StatusOr<WalWriter> WalWriter::Append(const std::string& path, uint64_t epoch,
                                      bool sync, uint64_t file_bytes) {
  const int fd =
      failpoint::InjectedOpen("wal.open", path.c_str(), O_WRONLY, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", path));
  if (::lseek(fd, static_cast<off_t>(file_bytes), SEEK_SET) < 0) {
    const Status status = Status::Internal(ErrnoMessage("lseek", path));
    ::close(fd);
    return status;
  }
  WalWriter w;
  w.fd_ = fd;
  w.path_ = path;
  w.sync_ = sync;
  w.epoch_ = epoch;
  w.file_bytes_ = file_bytes;
  return w;
}

WalWriter& WalWriter::operator=(WalWriter&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    sync_ = o.sync_;
    epoch_ = o.epoch_;
    file_bytes_ = o.file_bytes_;
    records_committed_ = o.records_committed_;
    pending_records_ = o.pending_records_;
    dirty_past_end_ = o.dirty_past_end_;
    pending_ = std::move(o.pending_);
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::AppendRecord(WalRecordType type,
                             std::span<const Value> values) {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(static_cast<uint32_t>(values.size()));
  for (Value v : values) w.PutI64(v);
  ByteWriter frame(&pending_);
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  ++pending_records_;
}

Status WalWriter::Commit() {
  if (pending_.empty()) return Status::OK();
  // Group-commit latency: repair + write + (kSync) fsync. This is the
  // durability tax every acknowledged write pays.
  const Stopwatch watch;
  struct DurationRecorder {
    const Stopwatch& watch;
    ~DurationRecorder() {
      obs::GlobalPersistMetrics().wal_append_ns->Record(watch.ElapsedNanos());
    }
  } recorder{watch};
  if (dirty_past_end_) {
    // A previous commit failed mid-write(): unacknowledged partial bytes
    // may sit past file_bytes_, and appending after them would make every
    // later record unreachable at replay (the torn frame stops the scan).
    // Chop them off before writing this batch.
    if (failpoint::InjectedFtruncate("wal.truncate", fd_,
                                     static_cast<off_t>(file_bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(file_bytes_), SEEK_SET) < 0) {
      return Status::Internal(ErrnoMessage("repair-truncate", path_));
    }
    dirty_past_end_ = false;
  }
  Status committed =
      WriteAllFd(fd_, pending_.data(), pending_.size(), path_, "wal.append");
  if (committed.ok() && sync_) {
    const Stopwatch fsync_watch;
    if (failpoint::InjectedFsync("wal.fsync", fd_) != 0) {
      committed = Status::Internal(ErrnoMessage("fsync", path_));
    }
    obs::GlobalPersistMetrics().fsync_ns->Record(fsync_watch.ElapsedNanos());
  }
  if (!committed.ok()) {
    // The batch was never acknowledged; drop it and mark the file tail
    // suspect so the next commit truncates it away first. (On fsync
    // failure the frames may be fully written and CRC-valid — leaving
    // them would replay, and later duplicate, writes the caller was told
    // failed. A crash before the repair can still surface them: an
    // *unacknowledged* write may appear after recovery, but never twice
    // and never at the cost of a later acknowledged one.)
    pending_.clear();
    pending_records_ = 0;
    dirty_past_end_ = true;
    return committed;
  }
  file_bytes_ += pending_.size();
  records_committed_ += pending_records_;
  pending_.clear();
  pending_records_ = 0;
  return Status::OK();
}

Status WalWriter::Reset(uint64_t new_epoch) {
  pending_.clear();
  pending_records_ = 0;
  dirty_past_end_ = false;
  if (failpoint::InjectedFtruncate("wal.truncate", fd_, 0) != 0) {
    return Status::Internal(ErrnoMessage("ftruncate", path_));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::Internal(ErrnoMessage("lseek", path_));
  }
  const std::string header = EncodeHeader(new_epoch);
  FLOOD_RETURN_IF_ERROR(
      WriteAllFd(fd_, header.data(), header.size(), path_, "wal.write"));
  if (failpoint::InjectedFsync("wal.fsync", fd_) != 0) {
    return Status::Internal(ErrnoMessage("fsync", path_));
  }
  epoch_ = new_epoch;
  file_bytes_ = header.size();
  return Status::OK();
}

}  // namespace persist
}  // namespace flood
