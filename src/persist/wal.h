#ifndef FLOOD_PERSIST_WAL_H_
#define FLOOD_PERSIST_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/format.h"
#include "storage/column.h"

namespace flood {
namespace persist {

/// One logical write operation replayed on recovery. Records are logical
/// (row values / delete keys), never physical row ids, so replay is
/// independent of index storage order and survives compactions.
struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  std::vector<Value> values;
};

/// Result of reading a WAL file: the header epoch, every intact record,
/// and where the intact prefix ends. `torn_tail` is true when trailing
/// bytes after `valid_bytes` failed framing or checksum validation — the
/// signature of a crash mid-append; the caller truncates them away with
/// TruncateWal before appending further.
struct WalContents {
  uint64_t epoch = 0;
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Reads and checksum-validates `path`. Returns NotFound when the file is
/// missing, and treats a file shorter than the header as missing too (the
/// only way it occurs is a crash during creation, before any record could
/// have been acknowledged). A present-but-corrupt *header* is an error —
/// it is never silently discarded.
StatusOr<WalContents> ReadWal(const std::string& path);

/// Truncates `path` to `valid_bytes` (torn-tail repair after ReadWal).
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

/// Append-only group-commit writer.
///
/// Append* stages records in a user-space buffer; Commit() hands the whole
/// batch to the OS in one write() — and, with `sync`, one fsync() — so a
/// batch of N inserts costs one syscall (+ one fsync), not N. A record is
/// *acknowledged* only once its Commit returns OK: committed bytes survive
/// process death (SIGKILL) always, and survive OS/power failure when
/// `sync` is set.
///
/// Thread safety: none; the owner (flood::Database) already serializes
/// writers behind its exclusive lock.
class WalWriter {
 public:
  /// Creates (or wipes) `path` with a fresh header carrying `epoch`.
  static StatusOr<WalWriter> Create(const std::string& path, uint64_t epoch,
                                    bool sync);

  /// Opens an existing, already-validated WAL for appending. `epoch` and
  /// `file_bytes` come from ReadWal (after any torn-tail truncation).
  static StatusOr<WalWriter> Append(const std::string& path, uint64_t epoch,
                                    bool sync, uint64_t file_bytes);

  WalWriter(WalWriter&& o) noexcept { *this = std::move(o); }
  WalWriter& operator=(WalWriter&& o) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  void AppendInsert(std::span<const Value> row) {
    AppendRecord(WalRecordType::kInsert, row);
  }
  void AppendDelete(std::span<const Value> key) {
    AppendRecord(WalRecordType::kDelete, key);
  }

  /// Writes the staged batch; with `sync`, fsyncs. No-op when empty.
  Status Commit();

  /// Truncates back to a fresh header with `new_epoch` and fsyncs: the
  /// checkpoint step after a successful snapshot (whose records this WAL's
  /// now-discarded tail is folded into). Discards any uncommitted batch.
  Status Reset(uint64_t new_epoch);

  uint64_t epoch() const { return epoch_; }
  /// Committed file size (header + committed records).
  uint64_t file_bytes() const { return file_bytes_; }
  /// Records committed through this writer (not counting replayed ones).
  uint64_t records_committed() const { return records_committed_; }

 private:
  WalWriter() = default;

  void AppendRecord(WalRecordType type, std::span<const Value> values);

  int fd_ = -1;
  std::string path_;
  bool sync_ = false;
  uint64_t epoch_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t records_committed_ = 0;
  uint64_t pending_records_ = 0;
  /// A commit failed mid-write: bytes past file_bytes_ are suspect and
  /// must be truncated before the next commit lands.
  bool dirty_past_end_ = false;
  std::string pending_;
};

}  // namespace persist
}  // namespace flood

#endif  // FLOOD_PERSIST_WAL_H_
