#include "query/executor.h"

#include "query/visitor.h"

namespace flood {

AggResult ExecuteAggregate(const MultiDimIndex& index, const Query& query,
                           QueryStats* stats) {
  AggResult result;
  // A query with an inverted range matches nothing: answer without
  // dispatching into the index at all.
  if (query.IsEmpty()) return result;
  if (query.agg().kind == AggSpec::Kind::kSum) {
    // Stats track the match count; fall back to a local block when the
    // caller doesn't need them (stats accumulate, hence the delta).
    QueryStats local;
    QueryStats* s = stats != nullptr ? stats : &local;
    const uint64_t matched_before = s->points_matched;
    SumVisitor v(&index.data().column(query.agg().dim));
    v.set_prefix_sums(index.prefix_sums(query.agg().dim));
    index.Execute(query, v, s);
    result.sum = v.sum();
    result.count = s->points_matched - matched_before;
  } else {
    CountVisitor v;
    index.Execute(query, v, stats);
    result.count = v.count();
  }
  return result;
}

}  // namespace flood
