#ifndef FLOOD_QUERY_EXECUTOR_H_
#define FLOOD_QUERY_EXECUTOR_H_

#include <cstdint>

#include "query/multidim_index.h"
#include "query/query.h"
#include "query/query_stats.h"

namespace flood {

/// Result of an aggregation query.
struct AggResult {
  uint64_t count = 0;  ///< Matching rows (always populated).
  int64_t sum = 0;     ///< Populated for SUM queries.
};

/// Runs `query` against `index` with the visitor its AggSpec requires,
/// wiring up prefix sums when the index maintains them. Empty queries
/// (some range inverted) return a zero result without touching the index.
///
/// Compatibility shim: new code should go through flood::Database
/// (api/database.h), which owns the index, adds batching, returns typed
/// results, and — unlike this function — merges staged writes (DeltaBuffer
/// inserts and tombstones) into every answer. This function sees only the
/// built index, so results are stale the moment the owning Database has
/// accepted an Insert/Delete; it remains for callers that manage a bare,
/// read-only MultiDimIndex themselves (benches over frozen tables).
AggResult ExecuteAggregate(const MultiDimIndex& index, const Query& query,
                           QueryStats* stats = nullptr);

}  // namespace flood

#endif  // FLOOD_QUERY_EXECUTOR_H_
