#include "query/multidim_index.h"

#include <algorithm>
#include <numeric>

namespace flood {

std::vector<size_t> BuildContext::DimsBySelectivity(size_t num_dims) const {
  std::vector<size_t> dims(num_dims);
  std::iota(dims.begin(), dims.end(), size_t{0});
  if (workload == nullptr || workload->empty() || sample.num_rows() == 0) {
    return dims;
  }
  std::vector<double> sel(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    sel[d] = workload->AvgSelectivity(d, sample);
  }
  std::stable_sort(dims.begin(), dims.end(),
                   [&sel](size_t a, size_t b) { return sel[a] < sel[b]; });
  return dims;
}

void StorageBackedIndex::InitStorage(const Table& table,
                                     const std::vector<RowId>* perm,
                                     const BuildContext& ctx) {
  data_ = (perm != nullptr) ? table.Reorder(*perm) : table;
  prefix_sums_.clear();
  if (ctx.workload == nullptr) return;
  std::vector<size_t> agg_dims;
  for (const Query& q : *ctx.workload) {
    if (q.agg().kind != AggSpec::Kind::kSum) continue;
    const size_t dim = q.agg().dim;
    if (std::find(agg_dims.begin(), agg_dims.end(), dim) == agg_dims.end()) {
      agg_dims.push_back(dim);
    }
  }
  for (size_t dim : agg_dims) {
    prefix_sums_.emplace_back(dim, PrefixSums(data_.DecodeColumn(dim)));
  }
}

size_t StorageBackedIndex::PrefixSumsBytes() const {
  size_t bytes = 0;
  for (const auto& [dim, sums] : prefix_sums_) bytes += sums.MemoryUsageBytes();
  return bytes;
}

}  // namespace flood
