#ifndef FLOOD_QUERY_MULTIDIM_INDEX_H_
#define FLOOD_QUERY_MULTIDIM_INDEX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/query_stats.h"
#include "query/visitor.h"
#include "query/workload.h"
#include "storage/table.h"

namespace flood {

/// Workload- and data-dependent inputs available at index build time.
/// Baselines use it for tuning knobs the paper grants them (dimension
/// ordering by selectivity, etc.); Flood uses it to learn its layout.
struct BuildContext {
  /// Training workload (nullptr = no workload knowledge).
  const Workload* workload = nullptr;
  /// Row sample of the table being indexed.
  DataSample sample;

  /// Dimensions ordered by increasing average workload selectivity (most
  /// selective first). Falls back to natural order without a workload.
  std::vector<size_t> DimsBySelectivity(size_t num_dims) const;
};

/// Common interface of Flood and every baseline index (§7.2, App. A):
/// clustered multi-dimensional indexes that own a storage-ordered copy of
/// the table and execute conjunctive range queries through a Visitor.
class MultiDimIndex {
 public:
  virtual ~MultiDimIndex() = default;

  virtual std::string_view name() const = 0;

  /// Builds the index over `table`. The index keeps a clustered
  /// (reordered) copy exposed via data().
  virtual Status Build(const Table& table, const BuildContext& ctx) = 0;

  /// Executes `query`, feeding matches into `visitor`. `stats` (optional)
  /// receives per-query counters and phase timings.
  ///
  /// Threading contract: Execute must be const AND re-entrant. One built
  /// index serves concurrent callers (Database::RunBatch shards batches
  /// across a thread pool), so implementations must not mutate shared
  /// state after Build — no lazily-built caches or scratch members without
  /// synchronization; per-query scratch belongs on the stack. `visitor`
  /// and `stats` are caller-owned and never shared across concurrent
  /// Execute calls, so writing through them needs no synchronization.
  virtual void Execute(const Query& query, Visitor& visitor,
                       QueryStats* stats) const = 0;

  /// Index structure size in bytes — excludes the data columns themselves
  /// (Fig. 8's x-axis).
  virtual size_t IndexSizeBytes() const = 0;

  /// The table in index storage order.
  virtual const Table& data() const = 0;

  /// Prefix sums over `dim` in storage order, if maintained (enables O(1)
  /// SUM over exact ranges). Default: none.
  virtual const PrefixSums* prefix_sums(size_t dim) const {
    (void)dim;
    return nullptr;
  }

  /// Named structural counters (leaf counts, tree height, grid cells, ...)
  /// for telemetry and structure tests, keyed by stable snake_case names.
  virtual std::vector<std::pair<std::string, double>> DebugProperties()
      const {
    return {};
  }

  /// One-line human description of the physical layout (e.g. Flood's
  /// learned grid). Defaults to the index name.
  virtual std::string Describe() const { return std::string(name()); }

  /// Machine-readable serialization of the index's learned layout, if it
  /// has one (Flood returns GridLayout::Serialize()). Snapshots persist it
  /// so a restore can pin the layout and skip the optimizer; "" means the
  /// index rebuilds from its options + training workload alone.
  virtual std::string SerializedLayout() const { return std::string(); }
};

/// Convenience base for indexes that own a reordered copy of the table.
/// Handles storage init and the optional cumulative-aggregate (prefix-sum)
/// side columns for dimensions the workload aggregates (§7.1 opt. 2).
class StorageBackedIndex : public MultiDimIndex {
 public:
  const Table& data() const override { return data_; }

  const PrefixSums* prefix_sums(size_t dim) const override {
    for (const auto& [d, sums] : prefix_sums_) {
      if (d == dim) return &sums;
    }
    return nullptr;
  }

 protected:
  /// Stores a clustered copy of `table` permuted by `perm` (pass nullptr to
  /// keep the original order) and builds prefix sums for every dimension
  /// the training workload aggregates with SUM.
  void InitStorage(const Table& table, const std::vector<RowId>* perm,
                   const BuildContext& ctx);

  /// Bytes held by the prefix-sum side columns (reported separately from
  /// IndexSizeBytes, since every index enjoys them equally).
  size_t PrefixSumsBytes() const;

  Table data_;
  std::vector<std::pair<size_t, PrefixSums>> prefix_sums_;
};

/// Defines the virtual Execute() as a devirtualizing dispatch onto the
/// class's ExecuteT<V> member template and pins its three instantiations.
/// Place in the index's .cc after the ExecuteT definition.
#define FLOOD_DEFINE_EXECUTE_DISPATCH(ClassName)                            \
  void ClassName::Execute(const Query& query, Visitor& visitor,            \
                          QueryStats* stats) const {                       \
    switch (visitor.kind()) {                                              \
      case Visitor::Kind::kCount:                                          \
        ExecuteT(query, static_cast<CountVisitor&>(visitor), stats);       \
        break;                                                             \
      case Visitor::Kind::kSum:                                            \
        ExecuteT(query, static_cast<SumVisitor&>(visitor), stats);         \
        break;                                                             \
      case Visitor::Kind::kCollect:                                        \
        ExecuteT(query, static_cast<CollectVisitor&>(visitor), stats);     \
        break;                                                             \
    }                                                                      \
  }                                                                        \
  template void ClassName::ExecuteT<CountVisitor>(const Query&,            \
                                                  CountVisitor&,           \
                                                  QueryStats*) const;      \
  template void ClassName::ExecuteT<SumVisitor>(const Query&, SumVisitor&, \
                                                QueryStats*) const;        \
  template void ClassName::ExecuteT<CollectVisitor>(                       \
      const Query&, CollectVisitor&, QueryStats*) const

}  // namespace flood

#endif  // FLOOD_QUERY_MULTIDIM_INDEX_H_
