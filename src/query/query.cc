#include "query/query.h"

#include <sstream>

namespace flood {

size_t Query::NumFiltered() const {
  size_t n = 0;
  for (const auto& r : ranges_) {
    if (!r.IsFullRange()) ++n;
  }
  return n;
}

bool Query::IsEmpty() const {
  for (const auto& r : ranges_) {
    if (r.IsEmpty()) return true;
  }
  return false;
}

std::string Query::ToString() const {
  std::ostringstream os;
  for (size_t d = 0; d < ranges_.size(); ++d) {
    const auto& r = ranges_[d];
    if (r.IsFullRange()) continue;
    if (r.lo == r.hi) {
      os << "[d" << d << " == " << r.lo << "] ";
    } else {
      os << "[d" << d << " in " << r.lo << ".." << r.hi << "] ";
    }
  }
  os << (agg_.kind == AggSpec::Kind::kCount ? "COUNT"
                                            : "SUM(d" + std::to_string(agg_.dim) + ")");
  return os.str();
}

}  // namespace flood
