#ifndef FLOOD_QUERY_QUERY_H_
#define FLOOD_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/table.h"

namespace flood {

/// Inclusive value range [lo, hi]. An unfiltered dimension spans
/// [kValueMin, kValueMax].
struct ValueRange {
  Value lo = kValueMin;
  Value hi = kValueMax;

  bool Contains(Value v) const { return lo <= v && v <= hi; }
  bool IsFullRange() const { return lo == kValueMin && hi == kValueMax; }
  bool IsEmpty() const { return lo > hi; }
};

/// The aggregation a query performs over matching rows (paper App. A runs
/// all experiments as aggregations; examples also use kCollect to retrieve
/// row ids).
struct AggSpec {
  enum class Kind { kCount, kSum };
  Kind kind = Kind::kCount;
  size_t dim = 0;  // Summed dimension for kSum.
};

/// A conjunctive filter predicate: a range per dimension, i.e. a
/// hyper-rectangle (paper §3). Equality predicates are ranges with lo == hi.
class Query {
 public:
  Query() = default;

  /// Creates an unfiltered query over `num_dims` dimensions.
  explicit Query(size_t num_dims) : ranges_(num_dims) {}

  size_t num_dims() const { return ranges_.size(); }

  void SetRange(size_t dim, Value lo, Value hi) {
    FLOOD_DCHECK(dim < ranges_.size());
    ranges_[dim] = ValueRange{lo, hi};
  }
  void SetEquals(size_t dim, Value v) { SetRange(dim, v, v); }

  const ValueRange& range(size_t dim) const {
    FLOOD_DCHECK(dim < ranges_.size());
    return ranges_[dim];
  }

  bool IsFiltered(size_t dim) const { return !ranges_[dim].IsFullRange(); }

  /// Number of dimensions with a non-trivial filter.
  size_t NumFiltered() const;

  /// True if some dimension has an empty range (query matches nothing).
  bool IsEmpty() const;

  /// Slow-path predicate check for one row of `table`.
  bool Matches(const Table& table, RowId row) const {
    for (size_t d = 0; d < ranges_.size(); ++d) {
      if (ranges_[d].IsFullRange()) continue;
      if (!ranges_[d].Contains(table.Get(row, d))) return false;
    }
    return true;
  }

  const AggSpec& agg() const { return agg_; }
  void set_agg(AggSpec agg) { agg_ = agg; }

  /// Debug rendering, e.g. "[d0 in 3..17] [d2 == 5] COUNT".
  std::string ToString() const;

 private:
  std::vector<ValueRange> ranges_;
  AggSpec agg_;
};

/// Fluent builder for queries:
///   Query q = QueryBuilder(6).Range(0, lo, hi).Equals(2, v).Sum(5).Build();
class QueryBuilder {
 public:
  explicit QueryBuilder(size_t num_dims) : query_(num_dims) {}

  QueryBuilder& Range(size_t dim, Value lo, Value hi) {
    query_.SetRange(dim, lo, hi);
    return *this;
  }
  QueryBuilder& AtLeast(size_t dim, Value lo) {
    query_.SetRange(dim, lo, kValueMax);
    return *this;
  }
  QueryBuilder& AtMost(size_t dim, Value hi) {
    query_.SetRange(dim, kValueMin, hi);
    return *this;
  }
  QueryBuilder& Equals(size_t dim, Value v) {
    query_.SetEquals(dim, v);
    return *this;
  }
  QueryBuilder& Count() {
    query_.set_agg({AggSpec::Kind::kCount, 0});
    return *this;
  }
  QueryBuilder& Sum(size_t dim) {
    query_.set_agg({AggSpec::Kind::kSum, dim});
    return *this;
  }

  Query Build() { return query_; }

 private:
  Query query_;
};

}  // namespace flood

#endif  // FLOOD_QUERY_QUERY_H_
