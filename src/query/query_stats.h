#ifndef FLOOD_QUERY_QUERY_STATS_H_
#define FLOOD_QUERY_QUERY_STATS_H_

#include <cstdint>

namespace flood {

/// Per-query execution statistics, shared by Flood and all baselines.
/// These drive Table 2 (SO/TPS/ST/IT/TT) and are the measurable features of
/// the cost model (§4.1.1).
struct QueryStats {
  // --- Counters -----------------------------------------------------------
  uint64_t points_scanned = 0;  ///< Rows visited, including exact ranges.
  uint64_t points_matched = 0;  ///< Rows satisfying the full predicate.
  uint64_t points_exact = 0;    ///< Rows inside exact (check-free) ranges.
  uint64_t cells_visited = 0;   ///< Grid cells / tree pages examined.
  uint64_t ranges_scanned = 0;  ///< Contiguous physical ranges scanned.
  uint64_t blocks_skipped = 0;  ///< Blocks rejected whole by a zone map.
  uint64_t blocks_exact = 0;    ///< Blocks zone-map-contained: no checks.
  uint64_t simd_blocks = 0;     ///< Blocks filtered by vector predicates.
  uint64_t delta_rows_scanned = 0;  ///< Delta-side rows (staged inserts +
                                    ///< tombstones) examined by the query.

  // --- Timings (nanoseconds) ---------------------------------------------
  int64_t index_ns = 0;   ///< Projection / tree traversal time.
  int64_t refine_ns = 0;  ///< Refinement time (Flood only; included in TT).
  int64_t scan_ns = 0;    ///< Scan + filter time (includes delta_ns).
  int64_t delta_ns = 0;   ///< Delta-buffer merge share of scan_ns.
  int64_t total_ns = 0;   ///< End-to-end query time.

  // --- Accumulator bookkeeping (zero on single-query stats) ---------------
  uint64_t queries = 0;       ///< Queries folded in via RecordQuery.
  int64_t max_query_ns = 0;   ///< Slowest single query folded in.

  /// Raw element-wise counter/timing sum; no per-query bookkeeping. Used
  /// by indexes accumulating phases into one per-query stats object.
  void Add(const QueryStats& o) {
    points_scanned += o.points_scanned;
    points_matched += o.points_matched;
    points_exact += o.points_exact;
    cells_visited += o.cells_visited;
    ranges_scanned += o.ranges_scanned;
    blocks_skipped += o.blocks_skipped;
    blocks_exact += o.blocks_exact;
    simd_blocks += o.simd_blocks;
    delta_rows_scanned += o.delta_rows_scanned;
    index_ns += o.index_ns;
    refine_ns += o.refine_ns;
    scan_ns += o.scan_ns;
    delta_ns += o.delta_ns;
    total_ns += o.total_ns;
  }

  /// Folds one executed query's stats into this accumulator, recording its
  /// end-to-end latency against the extremes.
  void RecordQuery(const QueryStats& q) {
    Add(q);
    ++queries;
    if (q.total_ns > max_query_ns) max_query_ns = q.total_ns;
  }

  /// Folds another accumulator (e.g. a per-worker batch buffer) into this
  /// one. Every field is a sum or a max, so merging a fixed set of buffers
  /// in any order yields identical results — Database::RunBatch still
  /// merges in shard order for determinism by construction.
  void Merge(const QueryStats& o) {
    Add(o);
    queries += o.queries;
    if (o.max_query_ns > max_query_ns) max_query_ns = o.max_query_ns;
  }

  /// Scan overhead: points scanned per matching point (Table 2 "SO").
  double ScanOverhead() const {
    if (points_matched == 0) return static_cast<double>(points_scanned);
    return static_cast<double>(points_scanned) /
           static_cast<double>(points_matched);
  }

  /// Time per scanned point in nanoseconds (Table 2 "TPS").
  double TimePerScannedPoint() const {
    if (points_scanned == 0) return 0.0;
    return static_cast<double>(scan_ns) /
           static_cast<double>(points_scanned);
  }

  /// Average scan run length (a locality proxy; cost-model feature).
  double AvgRunLength() const {
    if (ranges_scanned == 0) return 0.0;
    return static_cast<double>(points_scanned) /
           static_cast<double>(ranges_scanned);
  }
};

}  // namespace flood

#endif  // FLOOD_QUERY_QUERY_STATS_H_
