#ifndef FLOOD_QUERY_SCAN_UTIL_H_
#define FLOOD_QUERY_SCAN_UTIL_H_

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "query/query.h"
#include "query/query_stats.h"
#include "storage/table.h"

namespace flood {

/// A contiguous physical row range to scan. `exact` ranges are known a
/// priori to contain only matches (§7.1 optimization 1): no per-value
/// checks are performed and the visitor may use cumulative aggregates.
struct PhysRange {
  size_t begin = 0;
  size_t end = 0;
  bool exact = false;
};

/// Which scan kernel ScanRange dispatches to. kBlock (default) is the
/// block-decoded vectorized kernel with zone-map pruning; kNaive is the
/// original per-row path, kept for A/B benchmarking (bench_scan_kernel)
/// and as the equivalence-test reference.
enum class ScanKernel { kBlock, kNaive };

namespace internal {
/// -1 = not yet resolved from the environment.
inline std::atomic<int> g_scan_kernel{-1};
}  // namespace internal

/// The active kernel: FLOOD_SCAN_KERNEL=naive|block (read once), default
/// kBlock. Benign race on first use: resolution is idempotent.
inline ScanKernel ActiveScanKernel() {
  int mode = internal::g_scan_kernel.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("FLOOD_SCAN_KERNEL");
    mode = (env != nullptr && std::strcmp(env, "naive") == 0) ? 1 : 0;
    internal::g_scan_kernel.store(mode, std::memory_order_relaxed);
  }
  return mode == 1 ? ScanKernel::kNaive : ScanKernel::kBlock;
}

/// Overrides the kernel choice (benchmarks / tests).
inline void SetScanKernel(ScanKernel kernel) {
  internal::g_scan_kernel.store(kernel == ScanKernel::kNaive ? 1 : 0,
                                std::memory_order_relaxed);
}

/// The original row-at-a-time scan: evaluate one predicate column at a
/// time over a match bitmap, paying a per-value lambda call, div/mod, and
/// bit extraction. Reference implementation for the block kernel.
template <typename V>
void ScanRangeNaive(const Table& data, const Query& query, size_t begin,
                    size_t end, std::span<const size_t> check_dims,
                    V& visitor, QueryStats* stats) {
  constexpr size_t kChunk = 2048;
  uint64_t bitmap[kChunk / 64];
  size_t matched = 0;
  for (size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += kChunk) {
    const size_t chunk_end = std::min(end, chunk_begin + kChunk);
    const size_t chunk_n = chunk_end - chunk_begin;
    const size_t words = (chunk_n + 63) / 64;
    for (size_t w = 0; w < words; ++w) bitmap[w] = ~uint64_t{0};
    if (chunk_n % 64 != 0) {
      bitmap[words - 1] = (uint64_t{1} << (chunk_n % 64)) - 1;
    }

    for (size_t dim : check_dims) {
      const ValueRange& r = query.range(dim);
      const Column& col = data.column(dim);
      col.ForEach(chunk_begin, chunk_end,
                  [&](size_t i, Value v) {
                    if (!r.Contains(v)) {
                      const size_t off = i - chunk_begin;
                      bitmap[off / 64] &= ~(uint64_t{1} << (off % 64));
                    }
                  });
    }

    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = bitmap[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        visitor.VisitRow(static_cast<RowId>(chunk_begin + w * 64 +
                                            static_cast<size_t>(b)));
        ++matched;
      }
    }
  }
  if (stats != nullptr) stats->points_matched += matched;
}

/// Block-at-a-time scan kernel (the §7.1-style fast path). Per
/// Column::kBlockSize block it first consults the per-block zone maps of
/// every check dimension:
///  * some dimension's query range is disjoint with the block range ->
///    the whole block is rejected without decoding (blocks_skipped);
///  * every dimension's block range is contained in its query range ->
///    the block matches entirely, delivered as an exact range so
///    cumulative aggregates apply (blocks_exact);
///  * otherwise the surviving dimensions are bulk-decoded once
///    (width-specialized branch-free unpacking) and the range predicate
///    is evaluated branchlessly into a match bitmap, delivered word-wise
///    through V::VisitMatchWord.
template <typename V>
void ScanRangeBlock(const Table& data, const Query& query, size_t begin,
                    size_t end, std::span<const size_t> check_dims,
                    V& visitor, QueryStats* stats) {
  constexpr size_t kBlock = Column::kBlockSize;
  static_assert(kBlock % 64 == 0);
  constexpr size_t kWords = kBlock / 64;
  Value buf[kBlock];
  uint64_t bitmap[kWords];
  // Dimensions a zone map could neither reject nor fully accept.
  constexpr size_t kMaxDims = 64;
  size_t pending[kMaxDims];
  FLOOD_DCHECK(check_dims.size() <= kMaxDims);

  size_t matched = 0;
  uint64_t blocks_skipped = 0;
  uint64_t blocks_exact = 0;
  const size_t first_block = begin / kBlock;
  const size_t last_block = (end - 1) / kBlock;
  for (size_t b = first_block; b <= last_block; ++b) {
    const size_t block_begin = b * kBlock;
    const size_t lo = std::max(begin, block_begin);
    const size_t hi = std::min(end, block_begin + kBlock);
    const size_t n = hi - lo;

    // Zone-map pass. Zone maps cover the full block, so they are a (safe)
    // superset of [lo, hi) when the scan range clips the block.
    size_t num_pending = 0;
    bool rejected = false;
    for (size_t dim : check_dims) {
      const ValueRange& r = query.range(dim);
      const Column& col = data.column(dim);
      const Value bmin = col.BlockMin(b);
      const Value bmax = col.BlockMax(b);
      if (r.hi < bmin || r.lo > bmax) {
        rejected = true;
        break;
      }
      if (r.lo > bmin || bmax > r.hi) pending[num_pending++] = dim;
    }
    if (rejected) {
      ++blocks_skipped;
      continue;
    }
    if (num_pending == 0) {
      ++blocks_exact;
      matched += n;
      visitor.VisitExactRange(static_cast<RowId>(lo),
                              static_cast<RowId>(hi));
      continue;
    }

    const size_t words = (n + 63) / 64;
    for (size_t w = 0; w < words; ++w) bitmap[w] = ~uint64_t{0};
    if (n % 64 != 0) {
      bitmap[words - 1] = (uint64_t{1} << (n % 64)) - 1;
    }
    for (size_t p = 0; p < num_pending; ++p) {
      const size_t dim = pending[p];
      const ValueRange& r = query.range(dim);
      data.column(dim).DecodeBlockInto(b, buf);
      const Value* vals = buf + (lo - block_begin);
      uint64_t any = 0;
      for (size_t w = 0; w < words; ++w) {
        const size_t base = w * 64;
        const size_t cnt = std::min<size_t>(64, n - base);
        uint64_t m = 0;
        for (size_t i = 0; i < cnt; ++i) {
          const Value v = vals[base + i];
          m |= static_cast<uint64_t>((v >= r.lo) & (v <= r.hi)) << i;
        }
        bitmap[w] &= m;
        any |= bitmap[w];
      }
      if (any == 0) break;  // Nothing left for later dimensions to narrow.
    }

    for (size_t w = 0; w < words; ++w) {
      if (bitmap[w] == 0) continue;
      matched += static_cast<size_t>(__builtin_popcountll(bitmap[w]));
      visitor.VisitMatchWord(static_cast<RowId>(lo + w * 64), bitmap[w]);
    }
  }
  if (stats != nullptr) {
    stats->points_matched += matched;
    stats->blocks_skipped += blocks_skipped;
    stats->blocks_exact += blocks_exact;
  }
}

/// Scans one range, checking each row of `check_dims` against the query.
/// Non-listed dimensions are assumed satisfied by construction (e.g. the
/// refined sort dimension). Dispatches to the block kernel (default) or
/// the naive row-at-a-time path per ActiveScanKernel().
///
/// Counters: adds end-begin to points_scanned, matches to points_matched,
/// and one to ranges_scanned; the block kernel also tallies
/// blocks_skipped / blocks_exact from its zone-map outcomes.
template <typename V>
void ScanRange(const Table& data, const Query& query, size_t begin,
               size_t end, bool exact, std::span<const size_t> check_dims,
               V& visitor, QueryStats* stats) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (stats != nullptr) {
    stats->points_scanned += n;
    ++stats->ranges_scanned;
  }
  if (exact || check_dims.empty()) {
    visitor.VisitExactRange(begin, end);
    if (stats != nullptr) {
      stats->points_matched += n;
      stats->points_exact += n;
    }
    return;
  }
  // The block kernel's pending-dimension scratch holds 64 entries; wider
  // predicates (not produced by any index here) take the naive path, as
  // do tiny ranges, which would not amortize a 128-value block decode
  // (tree/grid baselines emit many few-row boundary cells).
  constexpr size_t kMinBlockKernelRows = 32;
  if (ActiveScanKernel() == ScanKernel::kNaive || check_dims.size() > 64 ||
      n < kMinBlockKernelRows) {
    ScanRangeNaive(data, query, begin, end, check_dims, visitor, stats);
  } else {
    ScanRangeBlock(data, query, begin, end, check_dims, visitor, stats);
  }
}

/// Convenience wrapper over a list of ranges with a shared check-dim set.
template <typename V>
void ScanRanges(const Table& data, const Query& query,
                const std::vector<PhysRange>& ranges,
                std::span<const size_t> check_dims, V& visitor,
                QueryStats* stats) {
  for (const PhysRange& r : ranges) {
    ScanRange(data, query, r.begin, r.end, r.exact, check_dims, visitor,
              stats);
  }
}

/// The filtered dimensions of `query` (the default check-dim set for
/// baseline indexes, which guarantee nothing per-range).
inline std::vector<size_t> FilteredDims(const Query& query) {
  std::vector<size_t> dims;
  dims.reserve(query.num_dims());
  for (size_t d = 0; d < query.num_dims(); ++d) {
    if (query.IsFiltered(d)) dims.push_back(d);
  }
  return dims;
}

}  // namespace flood

#endif  // FLOOD_QUERY_SCAN_UTIL_H_
