#ifndef FLOOD_QUERY_SCAN_UTIL_H_
#define FLOOD_QUERY_SCAN_UTIL_H_

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "query/query.h"
#include "query/query_stats.h"
#include "query/simd.h"
#include "storage/table.h"

namespace flood {

/// A contiguous physical row range to scan. `exact` ranges are known a
/// priori to contain only matches (§7.1 optimization 1): no per-value
/// checks are performed and the visitor may use cumulative aggregates.
struct PhysRange {
  size_t begin = 0;
  size_t end = 0;
  bool exact = false;
};

/// Which scan kernel ScanRange dispatches to. kSimd (default where the CPU
/// has AVX2) filters with runtime-dispatched AVX2/AVX-512 vector
/// predicates; kBlock is the scalar block-decoded kernel, the
/// always-available reference the simd path falls back to; kNaive is the
/// original per-row path, kept for A/B benchmarking (bench_scan_kernel)
/// and as the equivalence-test ground truth.
enum class ScanKernel { kBlock, kNaive, kSimd };

namespace internal {
/// -1 = not yet resolved from the environment.
inline std::atomic<int> g_scan_kernel{-1};
}  // namespace internal

/// The active kernel: FLOOD_SCAN_KERNEL=naive|block|simd (read once).
/// Unset (or unrecognized) selects simd when the hardware supports AVX2
/// and block otherwise. Benign race on first use: resolution is
/// idempotent. Note kSimd can stay active while the vector ISA is masked
/// off (SetSimdLevelForTest); ScanRange then falls back to the block
/// kernel per call.
inline ScanKernel ActiveScanKernel() {
  int mode = internal::g_scan_kernel.load(std::memory_order_relaxed);
  if (mode < 0) {
    const char* env = std::getenv("FLOOD_SCAN_KERNEL");
    if (env != nullptr && std::strcmp(env, "naive") == 0) {
      mode = 1;
    } else if (env != nullptr && std::strcmp(env, "block") == 0) {
      mode = 0;
    } else if (env != nullptr && std::strcmp(env, "simd") == 0) {
      mode = 2;
    } else {
      mode = simd::ActiveSimdLevel() >= simd::SimdLevel::kAvx2 ? 2 : 0;
    }
    internal::g_scan_kernel.store(mode, std::memory_order_relaxed);
  }
  if (mode == 1) return ScanKernel::kNaive;
  return mode == 2 ? ScanKernel::kSimd : ScanKernel::kBlock;
}

/// Overrides the kernel choice (benchmarks / tests).
inline void SetScanKernel(ScanKernel kernel) {
  int mode = 0;
  if (kernel == ScanKernel::kNaive) mode = 1;
  if (kernel == ScanKernel::kSimd) mode = 2;
  internal::g_scan_kernel.store(mode, std::memory_order_relaxed);
}

/// Initializes `bitmap` to all-ones over the first `n` row slots — the
/// shared masked epilogue: the final partial word keeps only its low
/// n % 64 bits, so bits past the scanned range can never leak into a
/// visitor. Returns the word count. Every kernel (and every
/// DecodeBlockInto caller that filters a clipped or trailing partial
/// block) initializes through here rather than duplicating the tail
/// masking.
inline size_t InitMatchBitmap(uint64_t* bitmap, size_t n) {
  const size_t words = (n + 63) / 64;
  for (size_t w = 0; w < words; ++w) bitmap[w] = ~uint64_t{0};
  if (n % 64 != 0) {
    bitmap[words - 1] = (uint64_t{1} << (n % 64)) - 1;
  }
  return words;
}

/// Zone-map verdict for one block: reject whole, accept whole, or filter
/// the dimensions a zone map could neither reject nor fully accept
/// (written to `pending`, capacity >= check_dims.size()).
enum class BlockZoneOutcome { kSkip, kExact, kFilter };

inline BlockZoneOutcome ClassifyBlockZones(
    const Table& data, const Query& query,
    std::span<const size_t> check_dims, size_t b, size_t* pending,
    size_t* num_pending) {
  size_t np = 0;
  for (size_t dim : check_dims) {
    const ValueRange& r = query.range(dim);
    const Column& col = data.column(dim);
    const Value bmin = col.BlockMin(b);
    const Value bmax = col.BlockMax(b);
    if (r.hi < bmin || r.lo > bmax) return BlockZoneOutcome::kSkip;
    if (r.lo > bmin || bmax > r.hi) pending[np++] = dim;
  }
  *num_pending = np;
  return np == 0 ? BlockZoneOutcome::kExact : BlockZoneOutcome::kFilter;
}

/// The original row-at-a-time scan: evaluate one predicate column at a
/// time over a match bitmap, paying a per-value lambda call, div/mod, and
/// bit extraction. Reference implementation for the block kernel.
template <typename V>
void ScanRangeNaive(const Table& data, const Query& query, size_t begin,
                    size_t end, std::span<const size_t> check_dims,
                    V& visitor, QueryStats* stats) {
  constexpr size_t kChunk = 2048;
  uint64_t bitmap[kChunk / 64];
  size_t matched = 0;
  for (size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += kChunk) {
    const size_t chunk_end = std::min(end, chunk_begin + kChunk);
    const size_t chunk_n = chunk_end - chunk_begin;
    const size_t words = InitMatchBitmap(bitmap, chunk_n);

    for (size_t dim : check_dims) {
      const ValueRange& r = query.range(dim);
      const Column& col = data.column(dim);
      col.ForEach(chunk_begin, chunk_end,
                  [&](size_t i, Value v) {
                    if (!r.Contains(v)) {
                      const size_t off = i - chunk_begin;
                      bitmap[off / 64] &= ~(uint64_t{1} << (off % 64));
                    }
                  });
    }

    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = bitmap[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        visitor.VisitRow(static_cast<RowId>(chunk_begin + w * 64 +
                                            static_cast<size_t>(b)));
        ++matched;
      }
    }
  }
  if (stats != nullptr) stats->points_matched += matched;
}

/// Block-at-a-time scan kernel (the §7.1-style fast path). Per
/// Column::kBlockSize block it first consults the per-block zone maps of
/// every check dimension:
///  * some dimension's query range is disjoint with the block range ->
///    the whole block is rejected without decoding (blocks_skipped);
///  * every dimension's block range is contained in its query range ->
///    the block matches entirely, delivered as an exact range so
///    cumulative aggregates apply (blocks_exact);
///  * otherwise the surviving dimensions are bulk-decoded once
///    (width-specialized branch-free unpacking) and the range predicate
///    is evaluated branchlessly into a match bitmap, delivered word-wise
///    through V::VisitMatchWord.
template <typename V>
void ScanRangeBlock(const Table& data, const Query& query, size_t begin,
                    size_t end, std::span<const size_t> check_dims,
                    V& visitor, QueryStats* stats) {
  constexpr size_t kBlock = Column::kBlockSize;
  static_assert(kBlock % 64 == 0);
  constexpr size_t kWords = kBlock / 64;
  Value buf[kBlock];
  uint64_t bitmap[kWords];
  // Dimensions a zone map could neither reject nor fully accept.
  constexpr size_t kMaxDims = 64;
  size_t pending[kMaxDims];
  FLOOD_DCHECK(check_dims.size() <= kMaxDims);

  size_t matched = 0;
  uint64_t blocks_skipped = 0;
  uint64_t blocks_exact = 0;
  const size_t first_block = begin / kBlock;
  const size_t last_block = (end - 1) / kBlock;
  for (size_t b = first_block; b <= last_block; ++b) {
    const size_t block_begin = b * kBlock;
    const size_t lo = std::max(begin, block_begin);
    const size_t hi = std::min(end, block_begin + kBlock);
    const size_t n = hi - lo;

    // Zone-map pass. Zone maps cover the full block, so they are a (safe)
    // superset of [lo, hi) when the scan range clips the block.
    size_t num_pending = 0;
    const BlockZoneOutcome outcome = ClassifyBlockZones(
        data, query, check_dims, b, pending, &num_pending);
    if (outcome == BlockZoneOutcome::kSkip) {
      ++blocks_skipped;
      continue;
    }
    if (outcome == BlockZoneOutcome::kExact) {
      ++blocks_exact;
      matched += n;
      visitor.VisitExactRange(static_cast<RowId>(lo),
                              static_cast<RowId>(hi));
      continue;
    }

    const size_t words = InitMatchBitmap(bitmap, n);
    for (size_t p = 0; p < num_pending; ++p) {
      const size_t dim = pending[p];
      const ValueRange& r = query.range(dim);
      data.column(dim).DecodeBlockInto(b, buf);
      const Value* vals = buf + (lo - block_begin);
      uint64_t any = 0;
      for (size_t w = 0; w < words; ++w) {
        const size_t base = w * 64;
        const size_t cnt = std::min<size_t>(64, n - base);
        uint64_t m = 0;
        for (size_t i = 0; i < cnt; ++i) {
          const Value v = vals[base + i];
          m |= static_cast<uint64_t>((v >= r.lo) & (v <= r.hi)) << i;
        }
        bitmap[w] &= m;
        any |= bitmap[w];
      }
      if (any == 0) break;  // Nothing left for later dimensions to narrow.
    }

    for (size_t w = 0; w < words; ++w) {
      if (bitmap[w] == 0) continue;
      matched += static_cast<size_t>(__builtin_popcountll(bitmap[w]));
      visitor.VisitMatchWord(static_cast<RowId>(lo + w * 64), bitmap[w]);
    }
  }
  if (stats != nullptr) {
    stats->points_matched += matched;
    stats->blocks_skipped += blocks_skipped;
    stats->blocks_exact += blocks_exact;
  }
}

/// Vectorized block scan kernel (ISSUE: the SIMD tentpole). Same zone-map
/// structure as ScanRangeBlock — per block, skip / exact-accept / filter —
/// but the filter stage runs runtime-dispatched vector predicates:
///  * widths 1..simd::kMaxPackedFilterWidth under kBlockDelta are filtered
///    straight off the packed words (no decode store/reload): each AVX2
///    lane loads the byte-aligned 64-bit window holding its delta, shifts,
///    masks, and compares against the query bounds translated into delta
///    space;
///  * wider blocks and kPlain columns are bulk-decoded once and compared
///    4 (AVX2) or 8 (AVX-512) lanes at a time.
/// Check dimensions AND-combine into the match bitmap with an all-zero
/// early-out, and the packed bytes of the *next* zone-map-surviving block
/// are software-prefetched while the current one filters (forward-peek
/// cursor, O(1) amortized). Matches are delivered one block at a time via
/// V::VisitMatchBitmap, so COUNT uses a popcount tree and SUM a masked
/// vector sum instead of per-word dispatch.
///
/// Caller guarantees simd::ActiveSimdLevel() >= kAvx2 (ScanRange falls
/// back to the block kernel otherwise).
template <typename V>
void ScanRangeSimd(const Table& data, const Query& query, size_t begin,
                   size_t end, std::span<const size_t> check_dims,
                   V& visitor, QueryStats* stats) {
  const simd::SimdLevel level = simd::ActiveSimdLevel();
  FLOOD_DCHECK(level >= simd::SimdLevel::kAvx2);
  constexpr size_t kBlock = Column::kBlockSize;
  static_assert(kBlock % 64 == 0);
  constexpr size_t kWords = kBlock / 64;
  Value buf[kBlock];
  uint64_t bitmap[kWords];
  // Dimensions a zone map could neither reject nor fully accept.
  constexpr size_t kMaxDims = 64;
  size_t pending[kMaxDims];
  size_t peeked[kMaxDims];
  FLOOD_DCHECK(check_dims.size() <= kMaxDims);

  size_t matched = 0;
  uint64_t blocks_skipped = 0;
  uint64_t blocks_exact = 0;
  uint64_t simd_blocks = 0;
  const size_t first_block = begin / kBlock;
  const size_t last_block = (end - 1) / kBlock;
  // Highest block the forward-peek prefetch has classified. Monotonic, so
  // re-checking zone maps ahead of the scan stays O(1) amortized per
  // block even across skip runs.
  size_t prefetched_until = first_block;

  for (size_t b = first_block; b <= last_block; ++b) {
    const size_t block_begin = b * kBlock;
    const size_t lo = std::max(begin, block_begin);
    const size_t hi = std::min(end, block_begin + kBlock);
    const size_t n = hi - lo;

    size_t num_pending = 0;
    const BlockZoneOutcome outcome = ClassifyBlockZones(
        data, query, check_dims, b, pending, &num_pending);
    if (outcome == BlockZoneOutcome::kSkip) {
      ++blocks_skipped;
      continue;
    }
    if (outcome == BlockZoneOutcome::kExact) {
      ++blocks_exact;
      matched += n;
      visitor.VisitExactRange(static_cast<RowId>(lo),
                              static_cast<RowId>(hi));
      continue;
    }

    // Forward-peek: find the next zone-surviving block and prefetch the
    // packed bytes its filter will touch, so they arrive in cache while
    // this block's predicates evaluate.
    if (prefetched_until <= b) {
      prefetched_until = last_block + 1;
      for (size_t nb = b + 1; nb <= last_block; ++nb) {
        size_t np = 0;
        const BlockZoneOutcome peek = ClassifyBlockZones(
            data, query, check_dims, nb, peeked, &np);
        if (peek == BlockZoneOutcome::kSkip) continue;
        if (peek == BlockZoneOutcome::kFilter) {
          for (size_t p = 0; p < np; ++p) {
            data.column(peeked[p]).PrefetchBlock(nb);
          }
        }
        prefetched_until = nb;
        break;
      }
    }

    const size_t words = InitMatchBitmap(bitmap, n);
    ++simd_blocks;
    uint64_t any = 0;
    for (size_t p = 0; p < num_pending; ++p) {
      const size_t dim = pending[p];
      const ValueRange& r = query.range(dim);
      const Column& col = data.column(dim);
      Column::PackedBlock pb;
      if (col.GetPackedBlock(b, &pb) && pb.width >= 1 &&
          pb.width <= simd::kMaxPackedFilterWidth) {
        // Translate the query bounds into the block's delta space. The
        // zone pass guarantees r.hi >= BlockMin(b) == base (else kSkip),
        // so dhi never underflows, and clamping to the width mask keeps
        // lane compares exact: deltas can't exceed it.
        const uint64_t base = static_cast<uint64_t>(pb.base);
        const uint64_t mask = (uint64_t{1} << pb.width) - 1;
        const uint64_t dlo =
            r.lo <= pb.base ? 0 : static_cast<uint64_t>(r.lo) - base;
        const uint64_t dhi =
            std::min(static_cast<uint64_t>(r.hi) - base, mask);
        any = simd::FilterPackedAvx2(
            pb.bytes, pb.bit_offset + (lo - block_begin) * pb.width,
            pb.width, dlo, dhi, n, bitmap);
      } else {
        // kPlain, width 0 (can't be pending, but harmless), or too wide
        // for byte-window lane loads: decode once, compare vectorized.
        col.DecodeBlockInto(b, buf);
        const Value* vals = buf + (lo - block_begin);
        any = level >= simd::SimdLevel::kAvx512
                  ? simd::FilterDecodedAvx512(vals, n, r.lo, r.hi, bitmap)
                  : simd::FilterDecodedAvx2(vals, n, r.lo, r.hi, bitmap);
      }
      if (any == 0) break;  // Nothing left for later dimensions to narrow.
    }

    if (any != 0) {
      matched += simd::PopcountWords(bitmap, words);
      visitor.VisitMatchBitmap(static_cast<RowId>(lo), n, bitmap);
    }
  }
  if (stats != nullptr) {
    stats->points_matched += matched;
    stats->blocks_skipped += blocks_skipped;
    stats->blocks_exact += blocks_exact;
    stats->simd_blocks += simd_blocks;
  }
}

/// Scans one range, checking each row of `check_dims` against the query.
/// Non-listed dimensions are assumed satisfied by construction (e.g. the
/// refined sort dimension). Dispatches per ActiveScanKernel(): the simd
/// kernel (default on AVX2 hardware), the scalar block kernel, or the
/// naive row-at-a-time path. kSimd with the vector ISA masked off
/// (FLOOD_SIMD_LEVEL / SetSimdLevelForTest) falls back to the block
/// kernel at call time — results are identical, simd_blocks stays 0.
///
/// Counters: adds end-begin to points_scanned, matches to points_matched,
/// and one to ranges_scanned; the block kernels also tally
/// blocks_skipped / blocks_exact from their zone-map outcomes, and the
/// simd kernel counts vector-filtered blocks in simd_blocks.
template <typename V>
void ScanRange(const Table& data, const Query& query, size_t begin,
               size_t end, bool exact, std::span<const size_t> check_dims,
               V& visitor, QueryStats* stats) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (stats != nullptr) {
    stats->points_scanned += n;
    ++stats->ranges_scanned;
  }
  if (exact || check_dims.empty()) {
    visitor.VisitExactRange(begin, end);
    if (stats != nullptr) {
      stats->points_matched += n;
      stats->points_exact += n;
    }
    return;
  }
  // The block kernel's pending-dimension scratch holds 64 entries; wider
  // predicates (not produced by any index here) take the naive path, as
  // do tiny ranges, which would not amortize a 128-value block decode
  // (tree/grid baselines emit many few-row boundary cells).
  constexpr size_t kMinBlockKernelRows = 32;
  const ScanKernel kernel = ActiveScanKernel();
  if (kernel == ScanKernel::kNaive || check_dims.size() > 64 ||
      n < kMinBlockKernelRows) {
    ScanRangeNaive(data, query, begin, end, check_dims, visitor, stats);
  } else if (kernel == ScanKernel::kSimd &&
             simd::ActiveSimdLevel() >= simd::SimdLevel::kAvx2) {
    ScanRangeSimd(data, query, begin, end, check_dims, visitor, stats);
  } else {
    ScanRangeBlock(data, query, begin, end, check_dims, visitor, stats);
  }
}

/// Convenience wrapper over a list of ranges with a shared check-dim set.
template <typename V>
void ScanRanges(const Table& data, const Query& query,
                const std::vector<PhysRange>& ranges,
                std::span<const size_t> check_dims, V& visitor,
                QueryStats* stats) {
  for (const PhysRange& r : ranges) {
    ScanRange(data, query, r.begin, r.end, r.exact, check_dims, visitor,
              stats);
  }
}

/// The filtered dimensions of `query` (the default check-dim set for
/// baseline indexes, which guarantee nothing per-range).
inline std::vector<size_t> FilteredDims(const Query& query) {
  std::vector<size_t> dims;
  dims.reserve(query.num_dims());
  for (size_t d = 0; d < query.num_dims(); ++d) {
    if (query.IsFiltered(d)) dims.push_back(d);
  }
  return dims;
}

}  // namespace flood

#endif  // FLOOD_QUERY_SCAN_UTIL_H_
