#ifndef FLOOD_QUERY_SCAN_UTIL_H_
#define FLOOD_QUERY_SCAN_UTIL_H_

#include <vector>

#include "query/query.h"
#include "query/query_stats.h"
#include "storage/table.h"

namespace flood {

/// A contiguous physical row range to scan. `exact` ranges are known a
/// priori to contain only matches (§7.1 optimization 1): no per-value
/// checks are performed and the visitor may use cumulative aggregates.
struct PhysRange {
  size_t begin = 0;
  size_t end = 0;
  bool exact = false;
};

/// Scans one range, checking each row of `check_dims` against the query
/// (columnar, chunked evaluation: one predicate column at a time over a
/// match bitmap). Non-listed dimensions are assumed satisfied by
/// construction (e.g. the refined sort dimension).
///
/// Counters: adds end-begin to points_scanned, matches to points_matched,
/// and one to ranges_scanned.
template <typename V>
void ScanRange(const Table& data, const Query& query, size_t begin,
               size_t end, bool exact, const std::vector<size_t>& check_dims,
               V& visitor, QueryStats* stats) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (stats != nullptr) {
    stats->points_scanned += n;
    ++stats->ranges_scanned;
  }
  if (exact || check_dims.empty()) {
    visitor.VisitExactRange(begin, end);
    if (stats != nullptr) {
      stats->points_matched += n;
      stats->points_exact += n;
    }
    return;
  }

  // Chunked columnar filtering: evaluate one dimension at a time into a
  // bitmap, AND-combining across dimensions.
  constexpr size_t kChunk = 2048;
  uint64_t bitmap[kChunk / 64];
  size_t matched = 0;
  for (size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += kChunk) {
    const size_t chunk_end = std::min(end, chunk_begin + kChunk);
    const size_t chunk_n = chunk_end - chunk_begin;
    const size_t words = (chunk_n + 63) / 64;
    for (size_t w = 0; w < words; ++w) bitmap[w] = ~uint64_t{0};
    if (chunk_n % 64 != 0) {
      bitmap[words - 1] = (uint64_t{1} << (chunk_n % 64)) - 1;
    }

    for (size_t dim : check_dims) {
      const ValueRange& r = query.range(dim);
      const Column& col = data.column(dim);
      // Skip words that are already all-zero.
      col.ForEach(chunk_begin, chunk_end,
                  [&](size_t i, Value v) {
                    if (!r.Contains(v)) {
                      const size_t off = i - chunk_begin;
                      bitmap[off / 64] &= ~(uint64_t{1} << (off % 64));
                    }
                  });
    }

    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = bitmap[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        visitor.VisitRow(static_cast<RowId>(chunk_begin + w * 64 +
                                            static_cast<size_t>(b)));
        ++matched;
      }
    }
  }
  if (stats != nullptr) stats->points_matched += matched;
}

/// Convenience wrapper over a list of ranges with a shared check-dim set.
template <typename V>
void ScanRanges(const Table& data, const Query& query,
                const std::vector<PhysRange>& ranges,
                const std::vector<size_t>& check_dims, V& visitor,
                QueryStats* stats) {
  for (const PhysRange& r : ranges) {
    ScanRange(data, query, r.begin, r.end, r.exact, check_dims, visitor,
              stats);
  }
}

/// The filtered dimensions of `query` (the default check-dim set for
/// baseline indexes, which guarantee nothing per-range).
inline std::vector<size_t> FilteredDims(const Query& query) {
  std::vector<size_t> dims;
  for (size_t d = 0; d < query.num_dims(); ++d) {
    if (query.IsFiltered(d)) dims.push_back(d);
  }
  return dims;
}

}  // namespace flood

#endif  // FLOOD_QUERY_SCAN_UTIL_H_
