#include "query/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

// The vector paths are x86-only and use per-function target attributes, so
// the library builds (and runtime-dispatches to scalar) on any compiler or
// architecture without -mavx2 in the global flags.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FLOOD_SIMD_X86 1
#include <immintrin.h>
#else
#define FLOOD_SIMD_X86 0
#endif

namespace flood {
namespace simd {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = [] {
#if FLOOD_SIMD_X86
    if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
    return SimdLevel::kScalar;
  }();
  return level;
}

namespace {
/// ISA cap: -1 = not yet resolved from FLOOD_SIMD_LEVEL. Benign race on
/// first use: resolution is idempotent (same idiom as g_scan_kernel).
std::atomic<int> g_simd_cap{-1};

int ParseLevel(const char* name) {
  if (std::strcmp(name, "scalar") == 0) {
    return static_cast<int>(SimdLevel::kScalar);
  }
  if (std::strcmp(name, "avx2") == 0) {
    return static_cast<int>(SimdLevel::kAvx2);
  }
  if (std::strcmp(name, "avx512") == 0) {
    return static_cast<int>(SimdLevel::kAvx512);
  }
  return static_cast<int>(SimdLevel::kAvx512);  // Unknown: no cap.
}
}  // namespace

SimdLevel ActiveSimdLevel() {
  int cap = g_simd_cap.load(std::memory_order_relaxed);
  if (cap < 0) {
    const char* env = std::getenv("FLOOD_SIMD_LEVEL");
    cap = env != nullptr ? ParseLevel(env)
                         : static_cast<int>(SimdLevel::kAvx512);
    g_simd_cap.store(cap, std::memory_order_relaxed);
  }
  // The cap masks capabilities; it can never grant more than the hardware.
  return std::min(DetectedSimdLevel(), static_cast<SimdLevel>(cap));
}

void SetSimdLevelForTest(SimdLevel cap) {
  g_simd_cap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

#if FLOOD_SIMD_X86

namespace {

/// Unaligned little-endian 64-bit load (single mov after optimization;
/// memcpy keeps it legal under strict aliasing and UBSan).
inline uint64_t LoadLE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

__attribute__((target("avx2"))) uint64_t FilterDecodedAvx2(
    const Value* vals, size_t n, Value lo, Value hi, uint64_t* bitmap) {
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  uint64_t any = 0;
  size_t i = 0;
  for (size_t w = 0; i < n; ++w) {
    const size_t cnt = std::min<size_t>(64, n - i);
    uint64_t m = 0;
    size_t j = 0;
    for (; j + 4 <= cnt; j += 4) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(vals + i + j));
      // Out of range <=> lo > v or v > hi; movemask grabs the 4 lane signs.
      const __m256i out = _mm256_or_si256(_mm256_cmpgt_epi64(lov, v),
                                          _mm256_cmpgt_epi64(v, hiv));
      const uint64_t bad = static_cast<uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(out)));
      m |= (~bad & 0xf) << j;
    }
    for (; j < cnt; ++j) {
      const Value v = vals[i + j];
      m |= static_cast<uint64_t>((v >= lo) & (v <= hi)) << j;
    }
    bitmap[w] &= m;
    any |= bitmap[w];
    i += cnt;
  }
  return any;
}

__attribute__((target("avx512f"))) uint64_t FilterDecodedAvx512(
    const Value* vals, size_t n, Value lo, Value hi, uint64_t* bitmap) {
  const __m512i lov = _mm512_set1_epi64(lo);
  const __m512i hiv = _mm512_set1_epi64(hi);
  uint64_t any = 0;
  size_t i = 0;
  for (size_t w = 0; i < n; ++w) {
    const size_t cnt = std::min<size_t>(64, n - i);
    uint64_t m = 0;
    size_t j = 0;
    for (; j + 8 <= cnt; j += 8) {
      const __m512i v = _mm512_loadu_si512(vals + i + j);
      const __mmask8 ge = _mm512_cmp_epi64_mask(lov, v, _MM_CMPINT_LE);
      const __mmask8 le = _mm512_cmp_epi64_mask(v, hiv, _MM_CMPINT_LE);
      m |= static_cast<uint64_t>(ge & le) << j;
    }
    for (; j < cnt; ++j) {
      const Value v = vals[i + j];
      m |= static_cast<uint64_t>((v >= lo) & (v <= hi)) << j;
    }
    bitmap[w] &= m;
    any |= bitmap[w];
    i += cnt;
  }
  return any;
}

__attribute__((target("avx2"))) uint64_t FilterPackedAvx2(
    const uint8_t* bytes, uint64_t bit, uint32_t width, uint64_t dlo,
    uint64_t dhi, size_t n, uint64_t* bitmap) {
  FLOOD_DCHECK(width >= 1 && width <= kMaxPackedFilterWidth);
  const uint64_t mask = (uint64_t{1} << width) - 1;
  // Deltas and bounds are < 2^58, so signed lane compares are exact.
  const __m256i mask_v = _mm256_set1_epi64x(static_cast<int64_t>(mask));
  const __m256i dlo_v = _mm256_set1_epi64x(static_cast<int64_t>(dlo));
  const __m256i dhi_v = _mm256_set1_epi64x(static_cast<int64_t>(dhi));
  const uint64_t w1 = width;
  uint64_t any = 0;
  size_t i = 0;
  for (size_t w = 0; i < n; ++w) {
    const size_t cnt = std::min<size_t>(64, n - i);
    uint64_t m = 0;
    size_t j = 0;
    for (; j + 4 <= cnt; j += 4) {
      // Each lane loads the byte-aligned 64-bit window holding its delta
      // (shift <= 7, so width + 7 <= 64 bits stay in view), then shifts and
      // masks it out. Reads past the last delta stay inside the column's
      // kDecodeSlackWords tail.
      const uint64_t b0 = bit + (i + j) * w1;
      const uint64_t b1 = b0 + w1;
      const uint64_t b2 = b0 + 2 * w1;
      const uint64_t b3 = b0 + 3 * w1;
      const __m256i raw = _mm256_set_epi64x(
          static_cast<int64_t>(LoadLE64(bytes + (b3 >> 3))),
          static_cast<int64_t>(LoadLE64(bytes + (b2 >> 3))),
          static_cast<int64_t>(LoadLE64(bytes + (b1 >> 3))),
          static_cast<int64_t>(LoadLE64(bytes + (b0 >> 3))));
      const __m256i shifts = _mm256_set_epi64x(
          static_cast<int64_t>(b3 & 7), static_cast<int64_t>(b2 & 7),
          static_cast<int64_t>(b1 & 7), static_cast<int64_t>(b0 & 7));
      const __m256i d =
          _mm256_and_si256(_mm256_srlv_epi64(raw, shifts), mask_v);
      const __m256i out = _mm256_or_si256(_mm256_cmpgt_epi64(dlo_v, d),
                                          _mm256_cmpgt_epi64(d, dhi_v));
      const uint64_t bad = static_cast<uint64_t>(
          _mm256_movemask_pd(_mm256_castsi256_pd(out)));
      m |= (~bad & 0xf) << j;
    }
    for (; j < cnt; ++j) {  // Masked scalar epilogue, same window math.
      const uint64_t bpos = bit + (i + j) * w1;
      const uint64_t d = (LoadLE64(bytes + (bpos >> 3)) >> (bpos & 7)) & mask;
      m |= static_cast<uint64_t>((d >= dlo) & (d <= dhi)) << j;
    }
    bitmap[w] &= m;
    any |= bitmap[w];
    i += cnt;
  }
  return any;
}

__attribute__((target("avx2"))) uint64_t MaskedSumAvx2(const Value* vals,
                                                       uint64_t word) {
  const __m256i wv = _mm256_set1_epi64x(static_cast<int64_t>(word));
  // sel holds each lane's probe bit; (word & sel) == sel <=> lane matched.
  __m256i sel = _mm256_set_epi64x(8, 4, 2, 1);
  __m256i sum = _mm256_setzero_si256();
  for (size_t g = 0; g < 16; ++g) {
    const __m256i m =
        _mm256_cmpeq_epi64(_mm256_and_si256(wv, sel), sel);
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(vals + 4 * g));
    sum = _mm256_add_epi64(sum, _mm256_and_si256(m, v));
    sel = _mm256_slli_epi64(sel, 4);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sum);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx512f"))) uint64_t MaskedSumAvx512(
    const Value* vals, uint64_t word) {
  __m512i sum = _mm512_setzero_si512();
  for (size_t g = 0; g < 8; ++g) {
    const __mmask8 m = static_cast<__mmask8>(word >> (8 * g));
    sum = _mm512_mask_add_epi64(sum, m, sum,
                                _mm512_loadu_si512(vals + 8 * g));
  }
  // Horizontal add in uint64, not _mm512_reduce_add_epi64: the helper
  // expands to scalar signed adds, which UBSan rightly rejects when the
  // (wrapping mod 2^64 by contract) sum overflows int64.
  alignas(64) uint64_t lanes[8];
  _mm512_store_si512(reinterpret_cast<__m512i*>(lanes), sum);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

#else  // !FLOOD_SIMD_X86

// Link stubs for non-x86 targets. DetectedSimdLevel() is kScalar there, so
// dispatch never reaches these.
uint64_t FilterDecodedAvx2(const Value*, size_t, Value, Value, uint64_t*) {
  FLOOD_CHECK(false);
  return 0;
}
uint64_t FilterDecodedAvx512(const Value*, size_t, Value, Value, uint64_t*) {
  FLOOD_CHECK(false);
  return 0;
}
uint64_t FilterPackedAvx2(const uint8_t*, uint64_t, uint32_t, uint64_t,
                          uint64_t, size_t, uint64_t*) {
  FLOOD_CHECK(false);
  return 0;
}
uint64_t MaskedSumAvx2(const Value*, uint64_t) {
  FLOOD_CHECK(false);
  return 0;
}
uint64_t MaskedSumAvx512(const Value*, uint64_t) {
  FLOOD_CHECK(false);
  return 0;
}

#endif  // FLOOD_SIMD_X86

}  // namespace simd
}  // namespace flood
