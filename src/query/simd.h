#ifndef FLOOD_QUERY_SIMD_H_
#define FLOOD_QUERY_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "storage/column.h"

namespace flood {
namespace simd {

/// Vector ISA tiers the scan kernels dispatch over. Levels are ordered:
/// every tier implies the ones below it, so "at least kAvx2" is a simple
/// comparison.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* SimdLevelName(SimdLevel level);

/// What the hardware supports (cpuid, probed once per process). kScalar on
/// non-x86 builds.
SimdLevel DetectedSimdLevel();

/// The level kernels may actually use: DetectedSimdLevel() capped by
/// FLOOD_SIMD_LEVEL=scalar|avx2|avx512 (read once) and by
/// SetSimdLevelForTest. The cap can only mask capabilities, never invent
/// them — forcing "avx512" on an AVX2-only host still yields kAvx2.
SimdLevel ActiveSimdLevel();

/// Caps ActiveSimdLevel() below the detected tier (dispatch-fallback tests,
/// A/B benchmarks). Pass DetectedSimdLevel() to undo.
void SetSimdLevelForTest(SimdLevel cap);

/// Widest bit-packed delta the fused packed-word filter handles: a value's
/// byte-granular 64-bit load window holds width + 7 alignment bits, and the
/// delta-space bounds must stay below 2^62 for signed lane compares.
inline constexpr uint32_t kMaxPackedFilterWidth = 57;

// ---------------------------------------------------------------------------
// Kernel primitives (defined in simd.cc behind per-function target
// attributes). Callers must gate on ActiveSimdLevel() >= the level in the
// name; invoking them on unsupported hardware is illegal instruction
// territory, not a graceful fallback.
// ---------------------------------------------------------------------------

/// Evaluates lo <= vals[i] <= hi (signed) for i in [0, n), n <= 128, and
/// ANDs the result into `bitmap` (bit i of word i/64 <-> vals[i]). Words
/// covering [0, n) must be pre-initialized (InitMatchBitmap); bits past n
/// are untouched. Returns the OR of the surviving words (early-out).
uint64_t FilterDecodedAvx2(const Value* vals, size_t n, Value lo, Value hi,
                           uint64_t* bitmap);
uint64_t FilterDecodedAvx512(const Value* vals, size_t n, Value lo, Value hi,
                             uint64_t* bitmap);

/// Same contract, evaluated straight off bit-packed block-delta words:
/// value i is the `width`-bit unsigned delta at absolute bit
/// `bit + i * width` of `bytes`, matched against delta-space bounds
/// dlo <= delta <= dhi. Requires 1 <= width <= kMaxPackedFilterWidth and
/// Column's decode slack (kDecodeSlackWords) past the last encoded bit —
/// lanes load 64-bit windows at byte granularity, so reads may extend a few
/// bytes past the final delta.
uint64_t FilterPackedAvx2(const uint8_t* bytes, uint64_t bit, uint32_t width,
                          uint64_t dlo, uint64_t dhi, size_t n,
                          uint64_t* bitmap);

/// Sum (wrapping uint64) of vals[i] over the set bits of `word`. All 64
/// lanes are loaded and masked, so vals must have 64 readable entries even
/// when the high bits are clear.
uint64_t MaskedSumAvx2(const Value* vals, uint64_t word);
uint64_t MaskedSumAvx512(const Value* vals, uint64_t word);

/// Total set bits across `words[0 .. n)`, accumulated pairwise (the
/// popcount tree COUNT aggregation reduces through).
inline uint64_t PopcountWords(const uint64_t* words, size_t n) {
  uint64_t even = 0;
  uint64_t odd = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    even += static_cast<uint64_t>(__builtin_popcountll(words[i]));
    odd += static_cast<uint64_t>(__builtin_popcountll(words[i + 1]));
  }
  if (i < n) even += static_cast<uint64_t>(__builtin_popcountll(words[i]));
  return even + odd;
}

}  // namespace simd
}  // namespace flood

#endif  // FLOOD_QUERY_SIMD_H_
