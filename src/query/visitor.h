#ifndef FLOOD_QUERY_VISITOR_H_
#define FLOOD_QUERY_VISITOR_H_

#include <cstdint>
#include <vector>

#include "query/simd.h"
#include "storage/column.h"

namespace flood {

/// Visitors accumulate an aggregation over matching rows (paper App. A).
///
/// Indexes call VisitRow(row) for individually-checked matches and
/// VisitExactRange(begin, end) for ranges known a priori to match entirely
/// (the "exact range" optimization of §7.1, which skips per-value filter
/// checks and can use precomputed cumulative aggregates).
///
/// The block scan kernel (query/scan_util.h) additionally delivers matches
/// one 64-row bitmap word at a time through VisitMatchWord(base, word):
/// bit b set means row base + b matched. Words arrive in ascending row
/// order, zero words are never delivered, and bits past the scanned range
/// are always clear — so aggregating visitors may use popcount / cumulative
/// aggregates per word instead of per-row dispatch. The default
/// implementation falls back to VisitRow per set bit.
///
/// Index scan loops are templated over the concrete visitor type so the
/// per-row call devirtualizes; the abstract interface exists for the
/// type-erased public API.
class Visitor {
 public:
  enum class Kind { kCount, kSum, kCollect };

  virtual ~Visitor() = default;
  virtual Kind kind() const = 0;
  virtual void VisitRow(RowId row) = 0;
  virtual void VisitExactRange(RowId begin, RowId end) = 0;

  virtual void VisitMatchWord(RowId base, uint64_t word) {
    while (word != 0) {
      const int b = __builtin_ctzll(word);
      word &= word - 1;
      VisitRow(base + static_cast<RowId>(b));
    }
  }

  /// Block-granular delivery (the SIMD kernel's path): rows
  /// [begin, begin + n) with bit b of bitmap[b / 64] set <=> row begin + b
  /// matched. The range never straddles a Column::kBlockSize block and
  /// bits past n are always clear, but all-zero words MAY appear inside
  /// the bitmap (unlike VisitMatchWord, which skips them). The default
  /// expands to the word contract; aggregating visitors override with
  /// vectorized block reductions.
  virtual void VisitMatchBitmap(RowId begin, size_t n,
                                const uint64_t* bitmap) {
    for (size_t w = 0; w * 64 < n; ++w) {
      if (bitmap[w] == 0) continue;
      VisitMatchWord(begin + static_cast<RowId>(w) * 64, bitmap[w]);
    }
  }
};

/// COUNT(*) accumulator.
class CountVisitor final : public Visitor {
 public:
  Kind kind() const override { return Kind::kCount; }
  void VisitRow(RowId) override { ++count_; }
  void VisitExactRange(RowId begin, RowId end) override {
    count_ += end - begin;
  }
  void VisitMatchWord(RowId, uint64_t word) override {
    count_ += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  void VisitMatchBitmap(RowId, size_t n, const uint64_t* bitmap) override {
    count_ += simd::PopcountWords(bitmap, (n + 63) / 64);
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// SUM(column) accumulator. When the index supplies a PrefixSums side column
/// (see set_prefix_sums), exact ranges are answered in O(1).
class SumVisitor final : public Visitor {
 public:
  /// `column` is the aggregated column in the index's storage order.
  explicit SumVisitor(const Column* column) : column_(column) {}

  Kind kind() const override { return Kind::kSum; }

  void set_prefix_sums(const PrefixSums* sums) { prefix_sums_ = sums; }

  void VisitRow(RowId row) override {
    Add(column_->Get(static_cast<size_t>(row)));
  }

  void VisitExactRange(RowId begin, RowId end) override {
    if (prefix_sums_ != nullptr && !prefix_sums_->empty()) {
      Add(prefix_sums_->RangeSum(static_cast<size_t>(begin),
                                 static_cast<size_t>(end)));
      return;
    }
    column_->ForEach(static_cast<size_t>(begin), static_cast<size_t>(end),
                     [this](size_t, Value v) { Add(v); });
  }

  void VisitMatchWord(RowId base, uint64_t word) override {
    if (word == ~uint64_t{0}) {
      // Full word: answer from the cumulative aggregate when available.
      VisitExactRange(base, base + 64);
      return;
    }
    while (word != 0) {
      const int b = __builtin_ctzll(word);
      word &= word - 1;
      Add(column_->Get(static_cast<size_t>(base) +
                       static_cast<size_t>(b)));
    }
  }

  /// Vectorized block aggregation: decode the aggregated column's block
  /// once, then answer full words from the prefix sums (O(1)) and partial
  /// words with a SIMD masked sum — instead of a random-access Get per set
  /// bit. Requires a block-aligned delivery; clipped ranges take the
  /// per-word path.
  void VisitMatchBitmap(RowId begin, size_t n,
                        const uint64_t* bitmap) override {
    const simd::SimdLevel level = simd::ActiveSimdLevel();
    if (level < simd::SimdLevel::kAvx2 ||
        begin % Column::kBlockSize != 0 || n > Column::kBlockSize) {
      Visitor::VisitMatchBitmap(begin, n, bitmap);
      return;
    }
    bool decoded = false;
    for (size_t w = 0; w * 64 < n; ++w) {
      const uint64_t word = bitmap[w];
      if (word == 0) continue;
      if (word == ~uint64_t{0}) {
        const RowId base = begin + static_cast<RowId>(w) * 64;
        VisitExactRange(base, base + 64);  // Prefix-sum fast path.
        continue;
      }
      if (!decoded) {
        column_->DecodeBlockInto(static_cast<size_t>(begin) /
                                     Column::kBlockSize,
                                 scratch_);
        decoded = true;
      }
      sum_ += level >= simd::SimdLevel::kAvx512
                  ? simd::MaskedSumAvx512(scratch_ + w * 64, word)
                  : simd::MaskedSumAvx2(scratch_ + w * 64, word);
    }
  }

  int64_t sum() const { return static_cast<int64_t>(sum_); }

 private:
  /// SUM wraps modulo 2^64 on overflow (well-defined, unlike signed
  /// accumulation): extreme-valued columns can exceed the int64 range.
  void Add(Value v) { sum_ += static_cast<uint64_t>(v); }

  const Column* column_;
  const PrefixSums* prefix_sums_ = nullptr;
  uint64_t sum_ = 0;
  /// Block decode scratch for the vectorized path. Zero-initialized so
  /// masked-out lanes past a partial block read defined values.
  Value scratch_[Column::kBlockSize] = {};
};

/// Collects the (storage-order) row ids of all matches. Used by examples
/// and correctness tests; result-set semantics, order not specified.
class CollectVisitor final : public Visitor {
 public:
  Kind kind() const override { return Kind::kCollect; }
  void VisitRow(RowId row) override { rows_.push_back(row); }
  void VisitExactRange(RowId begin, RowId end) override {
    for (RowId r = begin; r < end; ++r) rows_.push_back(r);
  }

  const std::vector<RowId>& rows() const { return rows_; }
  std::vector<RowId>& mutable_rows() { return rows_; }

 private:
  std::vector<RowId> rows_;
};

}  // namespace flood

#endif  // FLOOD_QUERY_VISITOR_H_
