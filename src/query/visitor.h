#ifndef FLOOD_QUERY_VISITOR_H_
#define FLOOD_QUERY_VISITOR_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"

namespace flood {

/// Visitors accumulate an aggregation over matching rows (paper App. A).
///
/// Indexes call VisitRow(row) for individually-checked matches and
/// VisitExactRange(begin, end) for ranges known a priori to match entirely
/// (the "exact range" optimization of §7.1, which skips per-value filter
/// checks and can use precomputed cumulative aggregates).
///
/// Index scan loops are templated over the concrete visitor type so the
/// per-row call devirtualizes; the abstract interface exists for the
/// type-erased public API.
class Visitor {
 public:
  enum class Kind { kCount, kSum, kCollect };

  virtual ~Visitor() = default;
  virtual Kind kind() const = 0;
  virtual void VisitRow(RowId row) = 0;
  virtual void VisitExactRange(RowId begin, RowId end) = 0;
};

/// COUNT(*) accumulator.
class CountVisitor final : public Visitor {
 public:
  Kind kind() const override { return Kind::kCount; }
  void VisitRow(RowId) override { ++count_; }
  void VisitExactRange(RowId begin, RowId end) override {
    count_ += end - begin;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// SUM(column) accumulator. When the index supplies a PrefixSums side column
/// (see set_prefix_sums), exact ranges are answered in O(1).
class SumVisitor final : public Visitor {
 public:
  /// `column` is the aggregated column in the index's storage order.
  explicit SumVisitor(const Column* column) : column_(column) {}

  Kind kind() const override { return Kind::kSum; }

  void set_prefix_sums(const PrefixSums* sums) { prefix_sums_ = sums; }

  void VisitRow(RowId row) override {
    sum_ += column_->Get(static_cast<size_t>(row));
  }

  void VisitExactRange(RowId begin, RowId end) override {
    if (prefix_sums_ != nullptr && !prefix_sums_->empty()) {
      sum_ += prefix_sums_->RangeSum(static_cast<size_t>(begin),
                                     static_cast<size_t>(end));
      return;
    }
    column_->ForEach(static_cast<size_t>(begin), static_cast<size_t>(end),
                     [this](size_t, Value v) { sum_ += v; });
  }

  int64_t sum() const { return sum_; }

 private:
  const Column* column_;
  const PrefixSums* prefix_sums_ = nullptr;
  int64_t sum_ = 0;
};

/// Collects the (storage-order) row ids of all matches. Used by examples
/// and correctness tests; result-set semantics, order not specified.
class CollectVisitor final : public Visitor {
 public:
  Kind kind() const override { return Kind::kCollect; }
  void VisitRow(RowId row) override { rows_.push_back(row); }
  void VisitExactRange(RowId begin, RowId end) override {
    for (RowId r = begin; r < end; ++r) rows_.push_back(r);
  }

  const std::vector<RowId>& rows() const { return rows_; }
  std::vector<RowId>& mutable_rows() { return rows_; }

 private:
  std::vector<RowId> rows_;
};

}  // namespace flood

#endif  // FLOOD_QUERY_VISITOR_H_
