#include "query/workload.h"

#include <algorithm>
#include <numeric>

namespace flood {

DataSample DataSample::FromTable(const Table& table, size_t sample_size,
                                 uint64_t seed) {
  DataSample s;
  const size_t n = table.num_rows();
  const size_t d = table.num_dims();
  const size_t k = std::min(sample_size, n);

  // Choose k distinct row ids: Floyd's algorithm would avoid the full
  // permutation, but a partial Fisher-Yates over an id vector is simple and
  // build-time only.
  std::vector<RowId> ids(n);
  std::iota(ids.begin(), ids.end(), RowId{0});
  Rng rng(seed);
  for (size_t i = 0; i < k; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n - i) - 1));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(k);
  std::sort(ids.begin(), ids.end());  // Sequential-ish column access.

  s.rows_.resize(d);
  s.sorted_.resize(d);
  for (size_t dim = 0; dim < d; ++dim) {
    auto& col = s.rows_[dim];
    col.reserve(k);
    for (RowId r : ids) col.push_back(table.Get(r, dim));
    s.sorted_[dim] = col;
    std::sort(s.sorted_[dim].begin(), s.sorted_[dim].end());
  }
  return s;
}

double DataSample::Selectivity(size_t dim, const ValueRange& range) const {
  FLOOD_DCHECK(dim < sorted_.size());
  const auto& v = sorted_[dim];
  if (v.empty()) return 0.0;
  if (range.IsEmpty()) return 0.0;
  const auto lo = std::lower_bound(v.begin(), v.end(), range.lo);
  const auto hi = std::upper_bound(v.begin(), v.end(), range.hi);
  return static_cast<double>(hi - lo) / static_cast<double>(v.size());
}

double DataSample::EstimatedQuerySelectivity(const Query& query) const {
  double sel = 1.0;
  for (size_t dim = 0; dim < query.num_dims() && dim < num_dims(); ++dim) {
    if (!query.IsFiltered(dim)) continue;
    sel *= Selectivity(dim, query.range(dim));
  }
  return sel;
}

double DataSample::MeasuredQuerySelectivity(const Query& query) const {
  const size_t n = num_rows();
  if (n == 0) return 0.0;
  size_t matched = 0;
  for (size_t i = 0; i < n; ++i) {
    bool ok = true;
    for (size_t dim = 0; dim < query.num_dims() && dim < num_dims(); ++dim) {
      if (!query.IsFiltered(dim)) continue;
      if (!query.range(dim).Contains(Get(i, dim))) {
        ok = false;
        break;
      }
    }
    if (ok) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(n);
}

double Workload::FilterFrequency(size_t dim) const {
  if (queries_.empty()) return 0.0;
  size_t n = 0;
  for (const auto& q : queries_) {
    if (dim < q.num_dims() && q.IsFiltered(dim)) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(queries_.size());
}

double Workload::AvgSelectivity(size_t dim, const DataSample& sample) const {
  if (queries_.empty()) return 1.0;
  double total = 0.0;
  for (const auto& q : queries_) {
    if (dim < q.num_dims() && q.IsFiltered(dim)) {
      total += sample.Selectivity(dim, q.range(dim));
    } else {
      total += 1.0;
    }
  }
  return total / static_cast<double>(queries_.size());
}

Workload Workload::Sample(size_t n, uint64_t seed) const {
  if (n >= queries_.size()) return *this;
  std::vector<Query> qs = queries_;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = i + static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int64_t>(qs.size() - i) - 1));
    std::swap(qs[i], qs[j]);
  }
  qs.resize(n);
  return Workload(std::move(qs));
}

std::pair<Workload, Workload> Workload::Split(double train_fraction,
                                              uint64_t seed) const {
  std::vector<Query> qs = queries_;
  Rng rng(seed);
  for (size_t i = qs.size(); i > 1; --i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(qs[i - 1], qs[j]);
  }
  const size_t n_train = static_cast<size_t>(
      train_fraction * static_cast<double>(qs.size()));
  Workload train(std::vector<Query>(qs.begin(), qs.begin() + n_train));
  Workload test(std::vector<Query>(qs.begin() + n_train, qs.end()));
  return {std::move(train), std::move(test)};
}

}  // namespace flood
