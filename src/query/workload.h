#ifndef FLOOD_QUERY_WORKLOAD_H_
#define FLOOD_QUERY_WORKLOAD_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "query/query.h"
#include "storage/table.h"

namespace flood {

/// A row-wise random sample of a table, with per-dimension sorted copies.
/// Used wherever the paper samples the dataset (§4.2, §7.7): marginal
/// selectivity estimates, scanned-point estimates, flattening training.
class DataSample {
 public:
  DataSample() = default;

  /// Samples `sample_size` rows uniformly without replacement (or all rows
  /// if the table is smaller).
  static DataSample FromTable(const Table& table, size_t sample_size,
                              uint64_t seed);

  size_t num_rows() const { return rows_.empty() ? 0 : rows_[0].size(); }
  size_t num_dims() const { return rows_.size(); }

  /// Value of sampled row `i` in dimension `dim`.
  Value Get(size_t i, size_t dim) const { return rows_[dim][i]; }

  /// Sorted sample values for a dimension.
  const std::vector<Value>& sorted(size_t dim) const { return sorted_[dim]; }

  /// Fraction of sampled rows whose `dim` value lies in `range`.
  double Selectivity(size_t dim, const ValueRange& range) const;

  /// Product of per-dimension marginal selectivities (independence
  /// assumption; cheap estimate used by the optimizer).
  double EstimatedQuerySelectivity(const Query& query) const;

  /// Fraction of sampled rows matching the full predicate (joint estimate).
  double MeasuredQuerySelectivity(const Query& query) const;

 private:
  // rows_[dim][i]: value of the i-th sampled row in `dim` (column-major).
  std::vector<std::vector<Value>> rows_;
  std::vector<std::vector<Value>> sorted_;
};

/// An ordered collection of queries, presumed drawn from one distribution.
/// Flood trains on one workload sample and is evaluated on another from the
/// same distribution (paper §7.3).
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::vector<Query> queries)
      : queries_(std::move(queries)) {}

  void Add(Query q) { queries_.push_back(std::move(q)); }
  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const Query& operator[](size_t i) const { return queries_[i]; }
  const std::vector<Query>& queries() const { return queries_; }

  auto begin() const { return queries_.begin(); }
  auto end() const { return queries_.end(); }

  /// Fraction of queries that filter on `dim`.
  double FilterFrequency(size_t dim) const;

  /// Average marginal selectivity of `dim` across queries (unfiltered
  /// queries contribute 1.0), estimated on `sample`. Lower = more selective.
  double AvgSelectivity(size_t dim, const DataSample& sample) const;

  /// Random subsample of `n` queries (all queries if n >= size).
  Workload Sample(size_t n, uint64_t seed) const;

  /// Splits into (train, test) with `train_fraction` of queries in train,
  /// after a seeded shuffle.
  std::pair<Workload, Workload> Split(double train_fraction,
                                      uint64_t seed) const;

 private:
  std::vector<Query> queries_;
};

}  // namespace flood

#endif  // FLOOD_QUERY_WORKLOAD_H_
