#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/failpoint.h"

namespace flood {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Connect failures that mean "the server isn't there (yet)" — the one
/// class the RetryPolicy retries. ENOENT: UDS path not created yet;
/// EAGAIN: UDS backlog full on a non-blocking connect.
bool RetryableConnectErrno(int e) {
  return e == ECONNREFUSED || e == ECONNRESET || e == ENOENT || e == EAGAIN;
}

/// Deadline for a timeout knob; `has` is false for "wait forever" (<= 0).
Clock::time_point DeadlineAfter(int64_t timeout_ms, bool* has) {
  *has = timeout_ms > 0;
  return *has ? Clock::now() + std::chrono::milliseconds(timeout_ms)
              : Clock::time_point();
}

/// Remaining milliseconds for poll(2): -1 = infinite, 0 = expired.
int RemainingMs(Clock::time_point deadline, bool has_deadline) {
  if (!has_deadline) return -1;
  const auto left = deadline - Clock::now();
  if (left <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
  return static_cast<int>(std::min<int64_t>(ms + 1, 60'000));
}

/// Waits for `events` on `fd` (used before a Client exists, during
/// connect).
Status PollRaw(const char* site, int fd, short events,
               Clock::time_point deadline, bool has_deadline,
               const std::string& what) {
  for (;;) {
    const int remaining = RemainingMs(deadline, has_deadline);
    if (remaining == 0) return Status::DeadlineExceeded(what + " timed out");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = failpoint::InjectedPoll(site, &pfd, 1, remaining);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::DeadlineExceeded(what + " timed out");
    if (errno == EINTR) continue;
    return Errno("poll(" + what + ")");
  }
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      assembler_(std::move(other.assembler_)),
      options_(other.options_),
      rng_(other.rng_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    assembler_ = std::move(other.assembler_);
    options_ = other.options_;
    rng_ = other.rng_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::Backoff(int attempt) {
  const RetryPolicy& p = options_.retry;
  double ms = static_cast<double>(std::max<int64_t>(p.initial_backoff_ms, 0));
  for (int i = 1; i < attempt; ++i) ms *= p.multiplier;
  ms = std::min(ms, static_cast<double>(std::max<int64_t>(p.max_backoff_ms,
                                                          0)));
  const double jitter = std::clamp(p.jitter, 0.0, 1.0);
  ms *= rng_.Uniform(1.0 - jitter, 1.0 + jitter);
  if (ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
  }
}

StatusOr<Client> Client::ConnectOnce(const std::string& address,
                                     const ClientOptions& options) {
  bool has_deadline = false;
  const Clock::time_point deadline =
      DeadlineAfter(options.connect_timeout_ms, &has_deadline);

  int fd = -1;
  int rc = -1;
  std::string what;
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    struct sockaddr_un addr;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("bad unix socket path: " + path);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket(unix)");
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    what = "connect(" + path + ")";
    rc = failpoint::InjectedConnect("serve.client.connect", fd,
                                    reinterpret_cast<struct sockaddr*>(&addr),
                                    sizeof(addr));
  } else {
    const size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= address.size()) {
      return Status::InvalidArgument(
          "address must be unix:<path> or <ipv4>:<port>, got: " + address);
    }
    const std::string host = address.substr(0, colon);
    const long port = std::atol(address.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument("bad port in address: " + address);
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad IPv4 address: " + host);
    }
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket(tcp)");
    what = "connect(" + address + ")";
    rc = failpoint::InjectedConnect("serve.client.connect", fd,
                                    reinterpret_cast<struct sockaddr*>(&addr),
                                    sizeof(addr));
  }

  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    const int e = errno;
    ::close(fd);
    const std::string msg = what + ": " + std::strerror(e);
    return RetryableConnectErrno(e) ? Status::Unavailable(msg)
                                    : Status::Internal(msg);
  }
  if (rc < 0) {
    // In-progress (EINPROGRESS, or EINTR: the kernel keeps connecting):
    // wait for writability, then read the final outcome from SO_ERROR.
    const Status polled = PollRaw("serve.client.poll", fd, POLLOUT, deadline,
                                  has_deadline, what);
    if (!polled.ok()) {
      ::close(fd);
      return polled;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      const Status status = Errno("getsockopt(SO_ERROR)");
      ::close(fd);
      return status;
    }
    if (err != 0) {
      ::close(fd);
      const std::string msg = what + ": " + std::strerror(err);
      return RetryableConnectErrno(err) ? Status::Unavailable(msg)
                                        : Status::Internal(msg);
    }
  }

  if (address.rfind("unix:", 0) != 0) {
    // Responses are small framed messages; never wait on Nagle.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  // The fd stays non-blocking: WriteAll/ReadFrame implement their own
  // poll-based deadlines.
  return Client(fd, options);
}

StatusOr<Client> Client::Connect(const std::string& address,
                                 ClientOptions options) {
  const int attempts = std::max(1, options.retry.max_attempts);
  Rng rng(options.retry.seed);
  StatusOr<Client> client = ConnectOnce(address, options);
  for (int attempt = 1;
       !client.ok() &&
       client.status().code() == StatusCode::kUnavailable &&
       attempt < attempts;
       ++attempt) {
    // Same backoff math as Client::Backoff, but there is no Client yet.
    const RetryPolicy& p = options.retry;
    double ms =
        static_cast<double>(std::max<int64_t>(p.initial_backoff_ms, 0));
    for (int i = 1; i < attempt; ++i) ms *= p.multiplier;
    ms = std::min(ms, static_cast<double>(
                          std::max<int64_t>(p.max_backoff_ms, 0)));
    const double jitter = std::clamp(p.jitter, 0.0, 1.0);
    ms *= rng.Uniform(1.0 - jitter, 1.0 + jitter);
    if (ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    client = ConnectOnce(address, options);
  }
  return client;
}

Status Client::PollFd(short events, Clock::time_point deadline,
                      bool has_deadline) {
  return PollRaw("serve.client.poll", fd_, events, deadline, has_deadline,
                 events == POLLIN ? "recv" : "send");
}

Status Client::WriteAll(std::string_view bytes) {
  bool has_deadline = false;
  const Clock::time_point deadline =
      DeadlineAfter(options_.send_timeout_ms, &has_deadline);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        failpoint::InjectedSend("serve.client.send", fd_, bytes.data() + sent,
                                bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FLOOD_RETURN_IF_ERROR(PollFd(POLLOUT, deadline, has_deadline));
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> Client::ReadFrame() {
  bool has_deadline = false;
  const Clock::time_point deadline =
      DeadlineAfter(options_.recv_timeout_ms, &has_deadline);
  Frame frame;
  for (;;) {
    switch (assembler_.Next(&frame)) {
      case FrameAssembler::Result::kFrame:
        return frame;
      case FrameAssembler::Result::kBad:
        return Status::Internal("response stream corrupt: " +
                                assembler_.error());
      case FrameAssembler::Result::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const ssize_t n =
        failpoint::InjectedRecv("serve.client.recv", fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FLOOD_RETURN_IF_ERROR(PollFd(POLLIN, deadline, has_deadline));
        continue;
      }
      return Errno("recv");
    }
    assembler_.Feed(buf, static_cast<size_t>(n));
  }
}

Status Client::Ping() {
  const uint64_t id = NextId();
  std::string out;
  AppendPing({id}, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kPong) {
    StatusOr<PongResponse> pong = ParsePong(frame->payload);
    if (!pong.ok()) return pong.status();
    if (pong->request_id != id) {
      return Status::Internal("pong for the wrong request id");
    }
    return Status::OK();
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to Ping");
}

StatusOr<HealthResponse> Client::Health() {
  const uint64_t id = NextId();
  std::string out;
  AppendHealth({id}, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kHealthResult) {
    StatusOr<HealthResponse> resp = ParseHealthResult(frame->payload);
    if (!resp.ok()) return resp.status();
    if (resp->request_id != id) {
      return Status::Internal("health reply for the wrong request id");
    }
    return resp;
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to Health");
}

Status Client::SendRunBatch(uint64_t request_id,
                            std::span<const Query> queries) {
  RunBatchRequest req;
  req.request_id = request_id;
  req.queries.assign(queries.begin(), queries.end());
  std::string out;
  AppendRunBatch(req, &out);
  return WriteAll(out);
}

StatusOr<BatchResultResponse> Client::ReadBatchReply() {
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kBatchResult) {
    return ParseBatchResult(frame->payload);
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    // Normalize transport-level sheds into the reply's typed code so the
    // caller handles kOverloaded/kShuttingDown uniformly.
    BatchResultResponse resp;
    resp.request_id = err->request_id;
    resp.code = err->code;
    resp.message = err->message;
    return resp;
  }
  return Status::Internal("unexpected response frame to RunBatch");
}

StatusOr<BatchResultResponse> Client::RunBatch(
    std::span<const Query> queries) {
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 1;; ++attempt) {
    const uint64_t id = NextId();
    FLOOD_RETURN_IF_ERROR(SendRunBatch(id, queries));
    StatusOr<BatchResultResponse> reply = ReadBatchReply();
    if (!reply.ok()) return reply.status();
    if (reply->request_id != id && reply->request_id != 0) {
      return Status::Internal("batch reply for the wrong request id");
    }
    // Typed sheds of a read-only batch are the one safely-retryable
    // outcome: the server explicitly did not execute it.
    const bool retryable = reply->code == WireCode::kOverloaded ||
                           reply->code == WireCode::kShuttingDown;
    if (!retryable || attempt >= attempts) return reply;
    Backoff(attempt);
  }
}

namespace {

/// Shared ack handling for the three write RPCs.
StatusOr<WriteAckResponse> ExpectWriteAck(StatusOr<Frame> frame,
                                          uint64_t id) {
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kWriteAck) {
    StatusOr<WriteAckResponse> ack = ParseWriteAck(frame->payload);
    if (!ack.ok()) return ack.status();
    if (ack->request_id != id) {
      return Status::Internal("write ack for the wrong request id");
    }
    return ack;
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to a write");
}

}  // namespace

Status Client::Insert(const std::vector<Value>& row) {
  const uint64_t id = NextId();
  InsertRequest req;
  req.request_id = id;
  req.row = row;
  std::string out;
  AppendInsert(req, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<WriteAckResponse> ack = ExpectWriteAck(ReadFrame(), id);
  if (!ack.ok()) return ack.status();
  return StatusFromWireCode(ack->code, ack->message);
}

Status Client::InsertBatch(std::span<const std::vector<Value>> rows) {
  const uint64_t id = NextId();
  InsertBatchRequest req;
  req.request_id = id;
  req.rows.assign(rows.begin(), rows.end());
  std::string out;
  AppendInsertBatch(req, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<WriteAckResponse> ack = ExpectWriteAck(ReadFrame(), id);
  if (!ack.ok()) return ack.status();
  return StatusFromWireCode(ack->code, ack->message);
}

StatusOr<uint64_t> Client::Delete(const std::vector<Value>& key) {
  const uint64_t id = NextId();
  DeleteRequest req;
  req.request_id = id;
  req.key = key;
  std::string out;
  AppendDelete(req, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<WriteAckResponse> ack = ExpectWriteAck(ReadFrame(), id);
  if (!ack.ok()) return ack.status();
  if (ack->code != WireCode::kOk) {
    return StatusFromWireCode(ack->code, ack->message);
  }
  return ack->deleted;
}

StatusOr<std::vector<std::pair<std::string, double>>> Client::Stats() {
  const uint64_t id = NextId();
  std::string out;
  AppendStats({id}, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kStatsResult) {
    StatusOr<StatsResponse> resp = ParseStatsResult(frame->payload);
    if (!resp.ok()) return resp.status();
    if (resp->request_id != id) {
      return Status::Internal("stats reply for the wrong request id");
    }
    return std::move(resp->entries);
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to Stats");
}

StatusOr<MetricsResponse> Client::Metrics() {
  const uint64_t id = NextId();
  std::string out;
  AppendMetrics({id}, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kMetricsResult) {
    StatusOr<MetricsResponse> resp = ParseMetricsResult(frame->payload);
    if (!resp.ok()) return resp.status();
    if (resp->request_id != id) {
      return Status::Internal("metrics reply for the wrong request id");
    }
    return resp;
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to Metrics");
}

}  // namespace serve
}  // namespace flood
