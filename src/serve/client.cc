#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace flood {
namespace serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      assembler_(std::move(other.assembler_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    assembler_ = std::move(other.assembler_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<Client> Client::Connect(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    struct sockaddr_un addr;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("bad unix socket path: " + path);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Errno("socket(unix)");
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      const Status status = Errno("connect(" + path + ")");
      ::close(fd);
      return status;
    }
    return Client(fd);
  }

  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument(
        "address must be unix:<path> or <ipv4>:<port>, got: " + address);
  }
  const std::string host = address.substr(0, colon);
  const long port = std::atol(address.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in address: " + address);
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket(tcp)");
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const Status status = Errno("connect(" + address + ")");
    ::close(fd);
    return status;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Status Client::WriteAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> Client::ReadFrame() {
  Frame frame;
  for (;;) {
    switch (assembler_.Next(&frame)) {
      case FrameAssembler::Result::kFrame:
        return frame;
      case FrameAssembler::Result::kBad:
        return Status::Internal("response stream corrupt: " +
                                assembler_.error());
      case FrameAssembler::Result::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    assembler_.Feed(buf, static_cast<size_t>(n));
  }
}

Status Client::Ping() {
  const uint64_t id = NextId();
  std::string out;
  AppendPing({id}, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kPong) {
    StatusOr<PongResponse> pong = ParsePong(frame->payload);
    if (!pong.ok()) return pong.status();
    if (pong->request_id != id) {
      return Status::Internal("pong for the wrong request id");
    }
    return Status::OK();
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to Ping");
}

Status Client::SendRunBatch(uint64_t request_id,
                            std::span<const Query> queries) {
  RunBatchRequest req;
  req.request_id = request_id;
  req.queries.assign(queries.begin(), queries.end());
  std::string out;
  AppendRunBatch(req, &out);
  return WriteAll(out);
}

StatusOr<BatchResultResponse> Client::ReadBatchReply() {
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kBatchResult) {
    return ParseBatchResult(frame->payload);
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    // Normalize transport-level sheds into the reply's typed code so the
    // caller handles kOverloaded/kShuttingDown uniformly.
    BatchResultResponse resp;
    resp.request_id = err->request_id;
    resp.code = err->code;
    resp.message = err->message;
    return resp;
  }
  return Status::Internal("unexpected response frame to RunBatch");
}

StatusOr<BatchResultResponse> Client::RunBatch(
    std::span<const Query> queries) {
  const uint64_t id = NextId();
  FLOOD_RETURN_IF_ERROR(SendRunBatch(id, queries));
  StatusOr<BatchResultResponse> reply = ReadBatchReply();
  if (!reply.ok()) return reply.status();
  if (reply->request_id != id && reply->request_id != 0) {
    return Status::Internal("batch reply for the wrong request id");
  }
  return reply;
}

namespace {

/// Shared ack handling for the three write RPCs.
StatusOr<WriteAckResponse> ExpectWriteAck(StatusOr<Frame> frame,
                                          uint64_t id) {
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kWriteAck) {
    StatusOr<WriteAckResponse> ack = ParseWriteAck(frame->payload);
    if (!ack.ok()) return ack.status();
    if (ack->request_id != id) {
      return Status::Internal("write ack for the wrong request id");
    }
    return ack;
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to a write");
}

}  // namespace

Status Client::Insert(const std::vector<Value>& row) {
  const uint64_t id = NextId();
  InsertRequest req;
  req.request_id = id;
  req.row = row;
  std::string out;
  AppendInsert(req, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<WriteAckResponse> ack = ExpectWriteAck(ReadFrame(), id);
  if (!ack.ok()) return ack.status();
  return StatusFromWireCode(ack->code, ack->message);
}

Status Client::InsertBatch(std::span<const std::vector<Value>> rows) {
  const uint64_t id = NextId();
  InsertBatchRequest req;
  req.request_id = id;
  req.rows.assign(rows.begin(), rows.end());
  std::string out;
  AppendInsertBatch(req, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<WriteAckResponse> ack = ExpectWriteAck(ReadFrame(), id);
  if (!ack.ok()) return ack.status();
  return StatusFromWireCode(ack->code, ack->message);
}

StatusOr<uint64_t> Client::Delete(const std::vector<Value>& key) {
  const uint64_t id = NextId();
  DeleteRequest req;
  req.request_id = id;
  req.key = key;
  std::string out;
  AppendDelete(req, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<WriteAckResponse> ack = ExpectWriteAck(ReadFrame(), id);
  if (!ack.ok()) return ack.status();
  if (ack->code != WireCode::kOk) {
    return StatusFromWireCode(ack->code, ack->message);
  }
  return ack->deleted;
}

StatusOr<std::vector<std::pair<std::string, double>>> Client::Stats() {
  const uint64_t id = NextId();
  std::string out;
  AppendStats({id}, &out);
  FLOOD_RETURN_IF_ERROR(WriteAll(out));
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kStatsResult) {
    StatusOr<StatsResponse> resp = ParseStatsResult(frame->payload);
    if (!resp.ok()) return resp.status();
    if (resp->request_id != id) {
      return Status::Internal("stats reply for the wrong request id");
    }
    return std::move(resp->entries);
  }
  if (frame->type == MessageType::kError) {
    StatusOr<ErrorResponse> err = ParseError(frame->payload);
    if (!err.ok()) return err.status();
    return StatusFromWireCode(err->code, err->message);
  }
  return Status::Internal("unexpected response frame to Stats");
}

}  // namespace serve
}  // namespace flood
