#ifndef FLOOD_SERVE_CLIENT_H_
#define FLOOD_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"

namespace flood {
namespace serve {

/// Small blocking client for the flood wire protocol, used by the tests,
/// the serving bench, and examples/serve_client. One socket, synchronous
/// request/response by default; the Send*/ReadBatchReply split supports
/// pipelining many requests onto the connection before reading replies
/// (which is what the server's per-connection batching amortizes).
///
/// Not thread-safe: one Client per thread.
class Client {
 public:
  /// `address` is "unix:<path>" for a Unix-domain socket or
  /// "<ipv4>:<port>" for TCP (numeric address, e.g. "127.0.0.1:7878").
  static StatusOr<Client> Connect(const std::string& address);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Round-trips a Ping; OK means the server's event loop is alive (it
  /// answers Ping even while overloaded or draining).
  Status Ping();

  /// Executes a batch of aggregation queries server-side and returns the
  /// per-query results. Transport failures surface as a non-OK Status;
  /// application-level outcomes — including kOverloaded sheds and
  /// kShuttingDown — come back in BatchResultResponse::code, so callers
  /// can distinguish "retry later" from "broken".
  StatusOr<BatchResultResponse> RunBatch(std::span<const Query> queries);

  Status Insert(const std::vector<Value>& row);
  Status InsertBatch(std::span<const std::vector<Value>> rows);
  /// Returns the number of logical rows deleted.
  StatusOr<uint64_t> Delete(const std::vector<Value>& key);

  /// The server's introspection map (serve.* counters + db.* gauges).
  StatusOr<std::vector<std::pair<std::string, double>>> Stats();

  // --- Pipelining ----------------------------------------------------------

  /// Enqueues one RunBatch frame without waiting for the reply. Pair each
  /// call with one ReadBatchReply(); replies must be matched by
  /// request_id, not order.
  Status SendRunBatch(uint64_t request_id, std::span<const Query> queries);

  /// Blocks for the next RunBatch-shaped reply (kBatchResult, or a typed
  /// kError such as an overload shed, normalized into ::code).
  StatusOr<BatchResultResponse> ReadBatchReply();

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status WriteAll(std::string_view bytes);
  /// Blocks until one complete frame arrives (or the peer closes / the
  /// stream goes bad).
  StatusOr<Frame> ReadFrame();

  uint64_t NextId() { return next_id_++; }

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_CLIENT_H_
