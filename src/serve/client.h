#ifndef FLOOD_SERVE_CLIENT_H_
#define FLOOD_SERVE_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "serve/protocol.h"

namespace flood {
namespace serve {

/// Exponential-backoff retry policy for the *idempotent, typed-retryable*
/// outcomes only: connect refusal (the server isn't up yet) and
/// kOverloaded/kShuttingDown sheds of read-only RunBatch requests. Writes
/// are NEVER retried by the client — a transport error on a write is
/// ambiguous (the server may have applied it), so retrying could duplicate
/// it; the caller must decide using its own idempotency information.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retry.
  int max_attempts = 1;
  int64_t initial_backoff_ms = 10;
  int64_t max_backoff_ms = 2000;
  double multiplier = 2.0;
  /// Each delay is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.5;
  /// Seed for the jitter RNG (deterministic schedules in tests).
  uint64_t seed = 0x5EEDULL;
};

/// Per-operation deadlines + retry for a Client. A timeout of 0 or less
/// means "wait forever" (the pre-deadline blocking behaviour).
struct ClientOptions {
  int64_t connect_timeout_ms = 5'000;
  int64_t send_timeout_ms = 5'000;
  int64_t recv_timeout_ms = 10'000;
  RetryPolicy retry;
};

/// Small blocking client for the flood wire protocol, used by the tests,
/// the serving bench, and examples/serve_client. One socket, synchronous
/// request/response by default; the Send*/ReadBatchReply split supports
/// pipelining many requests onto the connection before reading replies
/// (which is what the server's per-connection batching amortizes).
///
/// Every operation honours the ClientOptions deadlines (the socket is
/// non-blocking internally; waits go through poll(2)), so a dead or
/// unresponsive server surfaces as Status kDeadlineExceeded instead of a
/// hang. Connect refusal surfaces as kUnavailable and is the one connect
/// failure the RetryPolicy retries.
///
/// Not thread-safe: one Client per thread.
class Client {
 public:
  /// `address` is "unix:<path>" for a Unix-domain socket or
  /// "<ipv4>:<port>" for TCP (numeric address, e.g. "127.0.0.1:7878").
  /// Retries refused connections per `options.retry`; returns the last
  /// kUnavailable when every attempt is refused, kDeadlineExceeded when
  /// the connect timeout expires (not retried: the server is reachable
  /// but slow, and hammering it won't help).
  static StatusOr<Client> Connect(const std::string& address,
                                  ClientOptions options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Round-trips a Ping; OK means the server's event loop is alive (it
  /// answers Ping even while overloaded or draining).
  Status Ping();

  /// The server's health summary (kHealth is answered inline like Ping,
  /// even while draining — that is the point of a health check).
  StatusOr<HealthResponse> Health();

  /// Executes a batch of aggregation queries server-side and returns the
  /// per-query results. Transport failures surface as a non-OK Status;
  /// application-level outcomes — including kOverloaded sheds and
  /// kShuttingDown — come back in BatchResultResponse::code. Queries are
  /// read-only, so kOverloaded/kShuttingDown replies are retried per the
  /// RetryPolicy (each attempt is a fresh request id); transport errors
  /// are not.
  StatusOr<BatchResultResponse> RunBatch(std::span<const Query> queries);

  Status Insert(const std::vector<Value>& row);
  Status InsertBatch(std::span<const std::vector<Value>> rows);
  /// Returns the number of logical rows deleted.
  StatusOr<uint64_t> Delete(const std::vector<Value>& key);

  /// The server's introspection map (serve.* counters + db.* gauges).
  StatusOr<std::vector<std::pair<std::string, double>>> Stats();

  /// The server's full typed metrics snapshot: every registry metric
  /// (histograms with buckets, sum, count, exact max) plus the same flat
  /// entries Stats() returns — one round-trip for everything the
  /// Prometheus endpoint exposes, in binary.
  StatusOr<MetricsResponse> Metrics();

  // --- Pipelining ----------------------------------------------------------

  /// Enqueues one RunBatch frame without waiting for the reply. Pair each
  /// call with one ReadBatchReply(); replies must be matched by
  /// request_id, not order.
  Status SendRunBatch(uint64_t request_id, std::span<const Query> queries);

  /// Blocks (up to recv_timeout_ms) for the next RunBatch-shaped reply
  /// (kBatchResult, or a typed kError such as an overload shed, normalized
  /// into ::code).
  StatusOr<BatchResultResponse> ReadBatchReply();

 private:
  Client(int fd, const ClientOptions& options)
      : fd_(fd), options_(options), rng_(options.retry.seed) {}

  /// One connect attempt with the connect deadline applied.
  static StatusOr<Client> ConnectOnce(const std::string& address,
                                      const ClientOptions& options);

  /// Sends all of `bytes` within send_timeout_ms.
  Status WriteAll(std::string_view bytes);
  /// Waits (up to recv_timeout_ms) until one complete frame arrives, the
  /// peer closes, or the stream goes bad.
  StatusOr<Frame> ReadFrame();
  /// Waits for `events` on fd_ until `deadline`; kDeadlineExceeded on
  /// expiry.
  Status PollFd(short events, std::chrono::steady_clock::time_point deadline,
                bool has_deadline);

  /// Sleeps the backoff delay before retry attempt `attempt` (1-based).
  void Backoff(int attempt);

  uint64_t NextId() { return next_id_++; }

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameAssembler assembler_;
  ClientOptions options_;
  Rng rng_{0x5EEDULL};
};

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_CLIENT_H_
