#include "serve/engine.h"

#include <utility>

#include "persist/snapshot.h"

namespace flood {
namespace serve {

EngineBatchResult EngineResultFromBatch(const BatchResult& batch) {
  EngineBatchResult out;
  out.status = batch.status;
  out.wall_ms = batch.wall_ms;
  out.results.reserve(batch.results.size());
  for (const QueryResult& qr : batch.results) {
    EngineQueryResult er;
    er.kind = qr.kind == QueryResult::Kind::kSum ? 1 : 0;
    er.skipped_empty = qr.skipped_empty;
    er.count = qr.count;
    er.sum = qr.sum;
    er.total_ns = static_cast<uint64_t>(qr.stats.total_ns);
    out.results.push_back(std::move(er));
  }
  return out;
}

std::vector<std::pair<std::string, double>> DatabaseGauges(
    const Database& db) {
  std::vector<std::pair<std::string, double>> entries;
  auto put = [&entries](const char* key, double value) {
    entries.emplace_back(key, value);
  };
  put("db.base_rows", static_cast<double>(db.base_rows()));
  put("db.num_rows", static_cast<double>(db.num_rows()));
  put("db.pending_writes", static_cast<double>(db.pending_writes()));
  put("db.delta_inserts", static_cast<double>(db.delta_inserts()));
  put("db.delta_tombstones", static_cast<double>(db.delta_tombstones()));
  put("db.compactions", static_cast<double>(db.compactions()));
  put("db.queries_run", static_cast<double>(db.queries_run()));
  put("db.empty_queries_skipped",
      static_cast<double>(db.empty_queries_skipped()));
  put("db.persist_epoch", static_cast<double>(db.persist_epoch()));
  put("db.persist_poisoned", db.persistence_poisoned() ? 1.0 : 0.0);
  put("persist.dir_fsync_failures",
      static_cast<double>(persist::DirFsyncFailures()));
  put("db.num_threads", static_cast<double>(db.num_threads()));
  // Cumulative QueryStats: every counter and timing the execution layer
  // tracks is surfaced here, so the wire Stats map stays a faithful
  // superset of what a local caller can read (metrics_test diffs the key
  // set against QueryStats to catch fields added on one side only).
  const QueryStats qs = db.cumulative_stats();
  put("db.points_scanned", static_cast<double>(qs.points_scanned));
  put("db.points_matched", static_cast<double>(qs.points_matched));
  put("db.points_exact", static_cast<double>(qs.points_exact));
  put("db.cells_visited", static_cast<double>(qs.cells_visited));
  put("db.ranges_scanned", static_cast<double>(qs.ranges_scanned));
  put("db.blocks_skipped", static_cast<double>(qs.blocks_skipped));
  put("db.blocks_exact", static_cast<double>(qs.blocks_exact));
  put("db.simd_blocks", static_cast<double>(qs.simd_blocks));
  put("db.delta_rows_scanned", static_cast<double>(qs.delta_rows_scanned));
  put("db.index_ns", static_cast<double>(qs.index_ns));
  put("db.refine_ns", static_cast<double>(qs.refine_ns));
  put("db.scan_ns", static_cast<double>(qs.scan_ns));
  put("db.delta_ns", static_cast<double>(qs.delta_ns));
  put("db.total_ns", static_cast<double>(qs.total_ns));
  put("db.max_query_ns", static_cast<double>(qs.max_query_ns));
  return entries;
}

void DatabaseEngine::RunBatchAsync(
    std::vector<Query> queries, std::function<void(EngineBatchResult)> on_done) {
  // Keep the query storage alive until the batch finishes: RunBatchAsync
  // copies the span's contents internally, so moving the vector into the
  // callback is not required — but the span must be valid at call time.
  db_->RunBatchAsync(queries, [on_done = std::move(on_done)](
                                  BatchResult batch) mutable {
    on_done(EngineResultFromBatch(batch));
  });
}

Status DatabaseEngine::Insert(const std::vector<Value>& row) {
  return db_->Insert(row);
}

Status DatabaseEngine::InsertBatch(std::span<const std::vector<Value>> rows) {
  return db_->InsertBatch(rows);
}

StatusOr<uint64_t> DatabaseEngine::Delete(const std::vector<Value>& key) {
  auto deleted = db_->Delete(key);
  FLOOD_RETURN_IF_ERROR(deleted.status());
  return static_cast<uint64_t>(*deleted);
}

EngineHealth DatabaseEngine::Health() const {
  EngineHealth h;
  h.ready = true;
  h.persist_poisoned = db_->persistence_poisoned();
  return h;
}

std::vector<std::pair<std::string, double>> DatabaseEngine::Introspect()
    const {
  return DatabaseGauges(*db_);
}

}  // namespace serve
}  // namespace flood
