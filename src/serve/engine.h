#ifndef FLOOD_SERVE_ENGINE_H_
#define FLOOD_SERVE_ENGINE_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/database.h"
#include "common/status.h"
#include "serve/protocol.h"

namespace flood {
namespace serve {

/// One query's outcome inside an engine batch. Unlike QueryResult this
/// carries a per-query WireCode: an engine backed by many shards can fail
/// some queries (the shard that owned them shed or died) while the rest of
/// the batch succeeds — the server maps each reply frame to an error iff
/// its slice contains a non-kOk query (partial shed at frame granularity).
struct EngineQueryResult {
  WireCode code = WireCode::kOk;
  std::string message;       ///< Empty on kOk.
  uint8_t kind = 0;          ///< 0 = COUNT, 1 = SUM (wire encoding).
  bool skipped_empty = false;
  uint64_t count = 0;
  int64_t sum = 0;
  uint64_t total_ns = 0;     ///< Execution time (max across shards).
};

/// Outcome of one engine batch. `status` is the batch-level gate, exactly
/// like BatchResult::status: non-OK means validation failed before any
/// query ran and `results` is empty; otherwise `results[i]` matches
/// queries[i] (each with its own per-query code).
struct EngineBatchResult {
  Status status = Status::OK();
  std::vector<EngineQueryResult> results;
  double wall_ms = 0.0;
};

/// What a kHealth response needs from the engine (the serving loop adds
/// its own draining state on top).
struct EngineHealth {
  bool ready = true;
  bool persist_poisoned = false;
};

/// The execution seam of the serving tier: everything the epoll Server
/// needs from "the thing that runs queries". Database is the canonical
/// implementation (DatabaseEngine); the scatter-gather Router
/// (serve/router.h) is the other — the server cannot tell them apart,
/// which is how the router reuses the whole front end (framing, admission
/// control, drain) without a second event loop.
class BatchEngine {
 public:
  virtual ~BatchEngine() = default;

  /// Submits the batch; `on_done` fires exactly once with the finished
  /// result. Same callback contract as Database::RunBatchAsync: it may run
  /// on an arbitrary worker thread (or inline, before this returns), must
  /// not block, and must not resubmit into this engine from the callback.
  /// Implementations must ALWAYS complete the callback — including on
  /// internal failure or engine shutdown (reply with an error result) —
  /// because the server's drain counts outstanding callbacks.
  virtual void RunBatchAsync(std::vector<Query> queries,
                             std::function<void(EngineBatchResult)> on_done) = 0;

  /// Synchronous writes, called inline from the serving loop (bounded: a
  /// local engine stages into the delta; a remote engine's wire deadlines
  /// apply).
  virtual Status Insert(const std::vector<Value>& row) = 0;
  virtual Status InsertBatch(std::span<const std::vector<Value>> rows) = 0;
  virtual StatusOr<uint64_t> Delete(const std::vector<Value>& key) = 0;

  virtual EngineHealth Health() const = 0;

  /// Flat key->value gauges appended to the server's serve.* counters in
  /// Stats responses (db.* for a database engine, router.*/shard<i>.* for
  /// a router).
  virtual std::vector<std::pair<std::string, double>> Introspect() const = 0;
};

/// Converts a finished Database batch into the engine shape (per-query
/// codes all kOk; a batch-level validation error stays batch-level).
EngineBatchResult EngineResultFromBatch(const BatchResult& batch);

/// The db.* gauge block shared by DatabaseEngine and anything else that
/// exposes one database's state through a Stats map.
std::vector<std::pair<std::string, double>> DatabaseGauges(const Database& db);

/// BatchEngine over one local flood::Database — the single-node serving
/// path, and the per-shard leaf the router composes. Does not own the
/// database; it must outlive the engine.
class DatabaseEngine : public BatchEngine {
 public:
  explicit DatabaseEngine(Database* db) : db_(db) { FLOOD_CHECK(db != nullptr); }

  void RunBatchAsync(std::vector<Query> queries,
                     std::function<void(EngineBatchResult)> on_done) override;
  Status Insert(const std::vector<Value>& row) override;
  Status InsertBatch(std::span<const std::vector<Value>> rows) override;
  StatusOr<uint64_t> Delete(const std::vector<Value>& key) override;
  EngineHealth Health() const override;
  std::vector<std::pair<std::string, double>> Introspect() const override;

  Database* db() const { return db_; }

 private:
  Database* const db_;
};

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_ENGINE_H_
