#include "serve/metrics_summary.h"

#include <cinttypes>
#include <cstdio>

namespace flood {
namespace serve {

namespace {

bool IsDuration(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

/// "0.52ms" for durations, "1234" for plain values.
void AppendValue(bool duration, int64_t v, std::string* out) {
  char buf[64];
  if (duration) {
    std::snprintf(buf, sizeof(buf), "%.3gms",
                  static_cast<double>(v) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  }
  out->append(buf);
}

}  // namespace

std::string FormatMetricsSummary(const MetricsResponse& resp) {
  std::string out;
  char line[256];
  out.append("-- histograms (count  p50 / p95 / p99 / max) --\n");
  for (const obs::MetricSnapshot& m : resp.metrics) {
    if (m.kind != obs::MetricKind::kHistogram) continue;
    const bool dur = IsDuration(m.name);
    std::snprintf(line, sizeof(line), "  %-36s %10" PRIu64 "  ",
                  m.name.c_str(), m.hist.count);
    out.append(line);
    AppendValue(dur, m.hist.Percentile(50), &out);
    out.append(" / ");
    AppendValue(dur, m.hist.Percentile(95), &out);
    out.append(" / ");
    AppendValue(dur, m.hist.Percentile(99), &out);
    out.append(" / ");
    AppendValue(dur, m.hist.count > 0 ? m.hist.max : 0, &out);
    out.push_back('\n');
  }
  out.append("-- counters / gauges --\n");
  for (const obs::MetricSnapshot& m : resp.metrics) {
    if (m.kind == obs::MetricKind::kHistogram) continue;
    std::snprintf(line, sizeof(line), "  %-36s %.0f\n", m.name.c_str(),
                  m.value);
    out.append(line);
  }
  std::snprintf(line, sizeof(line),
                "-- %zu flat introspection entries (see kStats) --\n",
                resp.entries.size());
  out.append(line);
  return out;
}

}  // namespace serve
}  // namespace flood
