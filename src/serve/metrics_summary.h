#ifndef FLOOD_SERVE_METRICS_SUMMARY_H_
#define FLOOD_SERVE_METRICS_SUMMARY_H_

#include <string>

#include "serve/protocol.h"

namespace flood {
namespace serve {

/// One-screen human-readable rendering of a kMetrics snapshot: histograms
/// as count + p50/p95/p99/max (durations in ms for *_ns metrics), then
/// the scalar counters/gauges, then the flat introspection entry count.
/// Used by `flood_serve --check` and `flood_router --check`.
std::string FormatMetricsSummary(const MetricsResponse& resp);

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_METRICS_SUMMARY_H_
