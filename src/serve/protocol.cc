#include "serve/protocol.h"

#include <cstring>

#include "common/macros.h"

namespace flood {
namespace serve {

namespace {

// --- Shared body fragments -------------------------------------------------

void PutQuery(const Query& query, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(query.num_dims()));
  for (size_t d = 0; d < query.num_dims(); ++d) {
    const ValueRange& r = query.range(d);
    w->PutI64(r.lo);
    w->PutI64(r.hi);
  }
  w->PutU8(query.agg().kind == AggSpec::Kind::kSum ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(query.agg().dim));
}

bool GetQuery(ByteReader* r, Query* query) {
  const uint32_t num_dims = r->GetU32();
  // 16 bytes per dim: an impossible count can't drive a large allocation.
  if (num_dims > kMaxWireDims ||
      static_cast<size_t>(num_dims) * 16 > r->remaining()) {
    r->MarkFailed();
    return false;
  }
  Query q(num_dims);
  for (uint32_t d = 0; d < num_dims; ++d) {
    const Value lo = r->GetI64();
    const Value hi = r->GetI64();
    q.SetRange(d, lo, hi);
  }
  const uint8_t agg_kind = r->GetU8();
  const uint32_t agg_dim = r->GetU32();
  if (!r->ok() || agg_kind > 1 || (agg_kind == 1 && agg_dim >= num_dims)) {
    r->MarkFailed();
    return false;
  }
  q.set_agg({agg_kind == 1 ? AggSpec::Kind::kSum : AggSpec::Kind::kCount,
             agg_dim});
  *query = std::move(q);
  return true;
}

void PutRow(const std::vector<Value>& row, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(row.size()));
  for (Value v : row) w->PutI64(v);
}

bool GetRow(ByteReader* r, std::vector<Value>* row) {
  const uint32_t n = r->GetU32();
  if (n > kMaxWireDims || static_cast<size_t>(n) * 8 > r->remaining()) {
    r->MarkFailed();
    return false;
  }
  row->resize(n);
  for (uint32_t i = 0; i < n; ++i) (*row)[i] = r->GetI64();
  return r->ok();
}

/// Builds the payload with `body`, then frames it onto `out`.
template <typename BodyFn>
void AppendWith(MessageType type, std::string* out, BodyFn body) {
  std::string payload;
  ByteWriter w(&payload);
  body(&w);
  AppendFrame(type, payload, out);
}

Status ParseFailed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

/// Finishes a parse: success only if the reader is clean AND fully
/// consumed (trailing garbage inside a CRC-valid payload is still a
/// protocol violation).
template <typename T>
StatusOr<T> Finish(const ByteReader& r, T value, const char* what) {
  if (!r.ok() || r.remaining() != 0) return ParseFailed(what);
  return value;
}

}  // namespace

std::string_view WireCodeToString(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "Ok";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kNotFound:
      return "NotFound";
    case WireCode::kOutOfRange:
      return "OutOfRange";
    case WireCode::kFailedPrecondition:
      return "FailedPrecondition";
    case WireCode::kUnimplemented:
      return "Unimplemented";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireCode::kUnavailable:
      return "Unavailable";
    case WireCode::kOverloaded:
      return "Overloaded";
    case WireCode::kBadFrame:
      return "BadFrame";
    case WireCode::kVersionMismatch:
      return "VersionMismatch";
    case WireCode::kShuttingDown:
      return "ShuttingDown";
  }
  return "UnknownWireCode";
}

WireCode WireCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kOutOfRange:
      return WireCode::kOutOfRange;
    case StatusCode::kFailedPrecondition:
      return WireCode::kFailedPrecondition;
    case StatusCode::kUnimplemented:
      return WireCode::kUnimplemented;
    case StatusCode::kInternal:
      return WireCode::kInternal;
    case StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireCode::kUnavailable;
  }
  return WireCode::kInternal;
}

Status StatusFromWireCode(WireCode code, std::string_view message) {
  const std::string msg(message);
  switch (code) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case WireCode::kNotFound:
      return Status::NotFound(msg);
    case WireCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case WireCode::kFailedPrecondition:
      return Status::FailedPrecondition(msg);
    case WireCode::kUnimplemented:
      return Status::Unimplemented(msg);
    case WireCode::kInternal:
      return Status::Internal(msg);
    case WireCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case WireCode::kUnavailable:
      return Status::Unavailable(msg);
    default:
      return Status::FailedPrecondition(
          std::string(WireCodeToString(code)) +
          (msg.empty() ? "" : ": " + msg));
  }
}

// --- Encoding --------------------------------------------------------------

void AppendFrame(MessageType type, std::string_view payload,
                 std::string* out) {
  FLOOD_CHECK(payload.size() <= kMaxPayloadBytes);
  ByteWriter w(out);
  w.PutU32(kWireMagic);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(0);
  w.PutU8(0);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload.data(), payload.size()));
  w.PutBytes(payload.data(), payload.size());
}

void AppendPing(const PingRequest& req, std::string* out) {
  AppendWith(MessageType::kPing, out,
             [&](ByteWriter* w) { w->PutU64(req.request_id); });
}

void AppendRunBatch(const RunBatchRequest& req, std::string* out) {
  AppendWith(MessageType::kRunBatch, out, [&](ByteWriter* w) {
    w->PutU64(req.request_id);
    w->PutU32(static_cast<uint32_t>(req.queries.size()));
    for (const Query& q : req.queries) PutQuery(q, w);
  });
}

void AppendInsert(const InsertRequest& req, std::string* out) {
  AppendWith(MessageType::kInsert, out, [&](ByteWriter* w) {
    w->PutU64(req.request_id);
    PutRow(req.row, w);
  });
}

void AppendInsertBatch(const InsertBatchRequest& req, std::string* out) {
  AppendWith(MessageType::kInsertBatch, out, [&](ByteWriter* w) {
    w->PutU64(req.request_id);
    w->PutU32(static_cast<uint32_t>(req.rows.size()));
    for (const std::vector<Value>& row : req.rows) PutRow(row, w);
  });
}

void AppendDelete(const DeleteRequest& req, std::string* out) {
  AppendWith(MessageType::kDelete, out, [&](ByteWriter* w) {
    w->PutU64(req.request_id);
    PutRow(req.key, w);
  });
}

void AppendStats(const StatsRequest& req, std::string* out) {
  AppendWith(MessageType::kStats, out,
             [&](ByteWriter* w) { w->PutU64(req.request_id); });
}

void AppendHealth(const HealthRequest& req, std::string* out) {
  AppendWith(MessageType::kHealth, out,
             [&](ByteWriter* w) { w->PutU64(req.request_id); });
}

void AppendMetrics(const MetricsRequest& req, std::string* out) {
  AppendWith(MessageType::kMetrics, out,
             [&](ByteWriter* w) { w->PutU64(req.request_id); });
}

void AppendHealthResult(const HealthResponse& resp, std::string* out) {
  AppendWith(MessageType::kHealthResult, out, [&](ByteWriter* w) {
    w->PutU64(resp.request_id);
    w->PutU8(resp.ready ? 1 : 0);
    w->PutU8(resp.draining ? 1 : 0);
    w->PutU8(resp.persist_poisoned ? 1 : 0);
    w->PutU64(resp.queue_depth);
    w->PutU64(resp.connections_active);
  });
}

void AppendPong(const PongResponse& resp, std::string* out) {
  AppendWith(MessageType::kPong, out,
             [&](ByteWriter* w) { w->PutU64(resp.request_id); });
}

void AppendBatchResult(const BatchResultResponse& resp, std::string* out) {
  AppendWith(MessageType::kBatchResult, out, [&](ByteWriter* w) {
    w->PutU64(resp.request_id);
    w->PutU8(static_cast<uint8_t>(resp.code));
    w->PutString(resp.message);
    w->PutF64(resp.server_wall_ms);
    w->PutU32(static_cast<uint32_t>(resp.results.size()));
    for (const WireQueryResult& r : resp.results) {
      w->PutU8(r.kind);
      w->PutU8(r.skipped_empty ? 1 : 0);
      w->PutU64(r.count);
      w->PutI64(r.sum);
      w->PutU64(r.total_ns);
    }
  });
}

void AppendWriteAck(const WriteAckResponse& resp, std::string* out) {
  AppendWith(MessageType::kWriteAck, out, [&](ByteWriter* w) {
    w->PutU64(resp.request_id);
    w->PutU8(static_cast<uint8_t>(resp.code));
    w->PutString(resp.message);
    w->PutU64(resp.deleted);
  });
}

void AppendStatsResult(const StatsResponse& resp, std::string* out) {
  AppendWith(MessageType::kStatsResult, out, [&](ByteWriter* w) {
    w->PutU64(resp.request_id);
    w->PutU32(static_cast<uint32_t>(resp.entries.size()));
    for (const auto& [key, value] : resp.entries) {
      w->PutString(key);
      w->PutF64(value);
    }
  });
}

void AppendMetricsResult(const MetricsResponse& resp, std::string* out) {
  AppendWith(MessageType::kMetricsResult, out, [&](ByteWriter* w) {
    w->PutU64(resp.request_id);
    w->PutU32(static_cast<uint32_t>(resp.metrics.size()));
    for (const obs::MetricSnapshot& m : resp.metrics) {
      w->PutString(m.name);
      w->PutString(m.help);
      w->PutU8(static_cast<uint8_t>(m.kind));
      if (m.kind == obs::MetricKind::kHistogram) {
        w->PutU64(m.hist.count);
        w->PutI64(m.hist.sum);
        w->PutI64(m.hist.max);
        // Sparse buckets: (index, count) pairs for non-empty buckets only
        // — a fresh histogram costs 4 bytes, never kNumBuckets * 8.
        uint32_t nonempty = 0;
        for (uint64_t c : m.hist.buckets) nonempty += c != 0 ? 1 : 0;
        w->PutU32(nonempty);
        for (uint32_t i = 0; i < obs::kNumBuckets; ++i) {
          if (m.hist.buckets[i] == 0) continue;
          w->PutU32(i);
          w->PutU64(m.hist.buckets[i]);
        }
      } else {
        w->PutF64(m.value);
      }
    }
    w->PutU32(static_cast<uint32_t>(resp.entries.size()));
    for (const auto& [key, value] : resp.entries) {
      w->PutString(key);
      w->PutF64(value);
    }
  });
}

void AppendError(const ErrorResponse& resp, std::string* out) {
  AppendWith(MessageType::kError, out, [&](ByteWriter* w) {
    w->PutU64(resp.request_id);
    w->PutU8(static_cast<uint8_t>(resp.code));
    w->PutString(resp.message);
  });
}

// --- Decoding --------------------------------------------------------------

StatusOr<PingRequest> ParsePing(std::string_view payload) {
  ByteReader r(payload);
  PingRequest req;
  req.request_id = r.GetU64();
  return Finish(r, std::move(req), "Ping");
}

StatusOr<RunBatchRequest> ParseRunBatch(std::string_view payload) {
  ByteReader r(payload);
  RunBatchRequest req;
  req.request_id = r.GetU64();
  const uint32_t n = r.GetU32();
  // >= 9 bytes per query (empty query): bounds the reserve.
  if (static_cast<size_t>(n) * 9 > r.remaining()) {
    return ParseFailed("RunBatch");
  }
  req.queries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetQuery(&r, &req.queries[i])) return ParseFailed("RunBatch");
  }
  return Finish(r, std::move(req), "RunBatch");
}

StatusOr<InsertRequest> ParseInsert(std::string_view payload) {
  ByteReader r(payload);
  InsertRequest req;
  req.request_id = r.GetU64();
  if (!GetRow(&r, &req.row)) return ParseFailed("Insert");
  return Finish(r, std::move(req), "Insert");
}

StatusOr<InsertBatchRequest> ParseInsertBatch(std::string_view payload) {
  ByteReader r(payload);
  InsertBatchRequest req;
  req.request_id = r.GetU64();
  const uint32_t n = r.GetU32();
  if (static_cast<size_t>(n) * 4 > r.remaining()) {
    return ParseFailed("InsertBatch");
  }
  req.rows.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!GetRow(&r, &req.rows[i])) return ParseFailed("InsertBatch");
  }
  return Finish(r, std::move(req), "InsertBatch");
}

StatusOr<DeleteRequest> ParseDelete(std::string_view payload) {
  ByteReader r(payload);
  DeleteRequest req;
  req.request_id = r.GetU64();
  if (!GetRow(&r, &req.key)) return ParseFailed("Delete");
  return Finish(r, std::move(req), "Delete");
}

StatusOr<StatsRequest> ParseStats(std::string_view payload) {
  ByteReader r(payload);
  StatsRequest req;
  req.request_id = r.GetU64();
  return Finish(r, std::move(req), "Stats");
}

StatusOr<HealthRequest> ParseHealth(std::string_view payload) {
  ByteReader r(payload);
  HealthRequest req;
  req.request_id = r.GetU64();
  return Finish(r, std::move(req), "Health");
}

StatusOr<MetricsRequest> ParseMetrics(std::string_view payload) {
  ByteReader r(payload);
  MetricsRequest req;
  req.request_id = r.GetU64();
  return Finish(r, std::move(req), "Metrics");
}

StatusOr<MetricsResponse> ParseMetricsResult(std::string_view payload) {
  ByteReader r(payload);
  MetricsResponse resp;
  resp.request_id = r.GetU64();
  const uint32_t num_metrics = r.GetU32();
  // >= 17 bytes per metric (two empty strings, kind, f64 value).
  if (static_cast<size_t>(num_metrics) * 17 > r.remaining()) {
    return ParseFailed("MetricsResult");
  }
  resp.metrics.resize(num_metrics);
  for (uint32_t i = 0; i < num_metrics; ++i) {
    obs::MetricSnapshot& m = resp.metrics[i];
    m.name = r.GetString();
    m.help = r.GetString();
    const uint8_t kind = r.GetU8();
    if (kind > static_cast<uint8_t>(obs::MetricKind::kHistogram)) {
      return ParseFailed("MetricsResult");
    }
    m.kind = static_cast<obs::MetricKind>(kind);
    if (m.kind == obs::MetricKind::kHistogram) {
      m.hist.count = r.GetU64();
      m.hist.sum = r.GetI64();
      m.hist.max = r.GetI64();
      const uint32_t nonempty = r.GetU32();
      // 12 bytes per sparse bucket (u32 index, u64 count).
      if (static_cast<size_t>(nonempty) * 12 > r.remaining()) {
        return ParseFailed("MetricsResult");
      }
      for (uint32_t b = 0; b < nonempty; ++b) {
        const uint32_t idx = r.GetU32();
        const uint64_t count = r.GetU64();
        if (idx >= obs::kNumBuckets || count == 0) {
          return ParseFailed("MetricsResult");
        }
        m.hist.buckets[idx] = count;
      }
    } else {
      m.value = r.GetF64();
    }
  }
  const uint32_t num_entries = r.GetU32();
  // >= 12 bytes per entry (empty key).
  if (static_cast<size_t>(num_entries) * 12 > r.remaining()) {
    return ParseFailed("MetricsResult");
  }
  resp.entries.resize(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    resp.entries[i].first = r.GetString();
    resp.entries[i].second = r.GetF64();
  }
  return Finish(r, std::move(resp), "MetricsResult");
}

StatusOr<HealthResponse> ParseHealthResult(std::string_view payload) {
  ByteReader r(payload);
  HealthResponse resp;
  resp.request_id = r.GetU64();
  const uint8_t ready = r.GetU8();
  const uint8_t draining = r.GetU8();
  const uint8_t poisoned = r.GetU8();
  resp.queue_depth = r.GetU64();
  resp.connections_active = r.GetU64();
  if (ready > 1 || draining > 1 || poisoned > 1) {
    return ParseFailed("HealthResult");
  }
  resp.ready = ready != 0;
  resp.draining = draining != 0;
  resp.persist_poisoned = poisoned != 0;
  return Finish(r, std::move(resp), "HealthResult");
}

StatusOr<PongResponse> ParsePong(std::string_view payload) {
  ByteReader r(payload);
  PongResponse resp;
  resp.request_id = r.GetU64();
  return Finish(r, std::move(resp), "Pong");
}

StatusOr<BatchResultResponse> ParseBatchResult(std::string_view payload) {
  ByteReader r(payload);
  BatchResultResponse resp;
  resp.request_id = r.GetU64();
  resp.code = static_cast<WireCode>(r.GetU8());
  resp.message = r.GetString();
  resp.server_wall_ms = r.GetF64();
  const uint32_t n = r.GetU32();
  // 26 bytes per result record (u8 kind, u8 skipped, u64, i64, u64).
  if (static_cast<size_t>(n) * 26 > r.remaining()) {
    return ParseFailed("BatchResult");
  }
  resp.results.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    WireQueryResult& res = resp.results[i];
    res.kind = r.GetU8();
    res.skipped_empty = r.GetU8() != 0;
    res.count = r.GetU64();
    res.sum = r.GetI64();
    res.total_ns = r.GetU64();
  }
  return Finish(r, std::move(resp), "BatchResult");
}

StatusOr<WriteAckResponse> ParseWriteAck(std::string_view payload) {
  ByteReader r(payload);
  WriteAckResponse resp;
  resp.request_id = r.GetU64();
  resp.code = static_cast<WireCode>(r.GetU8());
  resp.message = r.GetString();
  resp.deleted = r.GetU64();
  return Finish(r, std::move(resp), "WriteAck");
}

StatusOr<StatsResponse> ParseStatsResult(std::string_view payload) {
  ByteReader r(payload);
  StatsResponse resp;
  resp.request_id = r.GetU64();
  const uint32_t n = r.GetU32();
  // >= 12 bytes per entry (empty key).
  if (static_cast<size_t>(n) * 12 > r.remaining()) {
    return ParseFailed("StatsResult");
  }
  resp.entries.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    resp.entries[i].first = r.GetString();
    resp.entries[i].second = r.GetF64();
  }
  return Finish(r, std::move(resp), "StatsResult");
}

StatusOr<ErrorResponse> ParseError(std::string_view payload) {
  ByteReader r(payload);
  ErrorResponse resp;
  resp.request_id = r.GetU64();
  resp.code = static_cast<WireCode>(r.GetU8());
  resp.message = r.GetString();
  return Finish(r, std::move(resp), "Error");
}

// --- Frame assembly --------------------------------------------------------

void FrameAssembler::Feed(const void* data, size_t n) {
  if (bad_) return;  // Poisoned: the connection is dying anyway.
  buffer_.append(static_cast<const char*>(data), n);
}

void FrameAssembler::Poison(WireCode code, std::string message) {
  bad_ = true;
  error_code_ = code;
  error_ = std::move(message);
  buffer_.clear();
  consumed_ = 0;
}

FrameAssembler::Result FrameAssembler::Next(Frame* frame) {
  if (bad_) return Result::kBad;
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so a pipelining client doesn't trigger an O(n^2) erase-per-frame.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Result::kNeedMore;

  ByteReader header(buffer_.data() + consumed_, kFrameHeaderBytes);
  const uint32_t magic = header.GetU32();
  const uint8_t version = header.GetU8();
  const uint8_t type = header.GetU8();
  header.GetU8();  // reserved
  header.GetU8();
  const uint32_t payload_len = header.GetU32();
  const uint32_t payload_crc = header.GetU32();

  if (magic != kWireMagic) {
    Poison(WireCode::kBadFrame, "bad frame magic (stream desynchronized?)");
    return Result::kBad;
  }
  if (version != kWireVersion) {
    Poison(WireCode::kVersionMismatch,
           "peer speaks protocol version " + std::to_string(version) +
               ", this build speaks " + std::to_string(kWireVersion));
    return Result::kBad;
  }
  if (payload_len > kMaxPayloadBytes) {
    Poison(WireCode::kBadFrame,
           "frame payload length " + std::to_string(payload_len) +
               " exceeds the " + std::to_string(kMaxPayloadBytes) +
               "-byte cap");
    return Result::kBad;
  }
  if (avail < kFrameHeaderBytes + payload_len) return Result::kNeedMore;

  const char* payload = buffer_.data() + consumed_ + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != payload_crc) {
    Poison(WireCode::kBadFrame, "frame payload CRC mismatch");
    return Result::kBad;
  }
  frame->type = static_cast<MessageType>(type);
  frame->payload.assign(payload, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return Result::kFrame;
}

}  // namespace serve
}  // namespace flood
