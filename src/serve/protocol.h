#ifndef FLOOD_SERVE_PROTOCOL_H_
#define FLOOD_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "query/query.h"
#include "storage/column.h"

namespace flood {
namespace serve {

// ---------------------------------------------------------------------------
// Wire format (see src/serve/README.md for the full byte layout).
//
// Every message travels as one frame:
//
//   offset  size  field
//   0       4     magic        0x464C4457 ("WDLF" on the wire, LE)
//   4       1     version      kWireVersion
//   5       1     type         MessageType
//   6       2     reserved     0
//   8       4     payload_len  <= kMaxPayloadBytes
//   12      4     payload_crc  CRC-32 (IEEE) of the payload bytes
//   16      n     payload      type-specific body, ByteWriter-encoded
//
// The fixed header is validated before the payload is buffered (so an
// oversized or garbage length prefix can never balloon memory), and the
// CRC is validated before the payload is parsed. All integers are
// little-endian via common/bytes.h; truncated or corrupt payloads poison
// the bounds-latching ByteReader and are rejected with a typed error —
// never UB, never a crash.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kWireMagic = 0x464C4457;  // "FLDW"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Hard per-frame payload cap: a length prefix above this is treated as
/// stream corruption, not an allocation request.
inline constexpr uint32_t kMaxPayloadBytes = 32u << 20;
/// Sanity cap on query arity over the wire (far above any real table).
inline constexpr uint32_t kMaxWireDims = 1u << 16;

/// Frame/message type. Requests have the high bit clear, responses set.
enum class MessageType : uint8_t {
  kPing = 0x01,
  kRunBatch = 0x02,
  kInsert = 0x03,
  kInsertBatch = 0x04,
  kDelete = 0x05,
  kStats = 0x06,
  kHealth = 0x07,
  kMetrics = 0x08,

  kPong = 0x81,
  kBatchResult = 0x82,
  kWriteAck = 0x83,
  kStatsResult = 0x84,
  kHealthResult = 0x85,
  kMetricsResult = 0x86,
  kError = 0x8F,
};

/// Typed status carried in responses. The low values mirror StatusCode;
/// the high values are serving-layer conditions with no library analogue.
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  /// A per-operation deadline elapsed (client-side; never sent by the
  /// server).
  kDeadlineExceeded = 7,
  /// Transiently unreachable/refusing; retry-safe for idempotent work.
  kUnavailable = 8,
  /// Admission control shed this request: the server's bounded submission
  /// queue (or this connection's in-flight cap) was full. Retry later;
  /// nothing was executed.
  kOverloaded = 16,
  /// The frame failed structural validation (magic/length/CRC/parse); the
  /// server closes the connection after sending this.
  kBadFrame = 17,
  /// The frame's protocol version is not kWireVersion; connection closed.
  kVersionMismatch = 18,
  /// The server is draining (SIGTERM): no new work is admitted, in-flight
  /// work still completes and its responses still flush.
  kShuttingDown = 19,
};

std::string_view WireCodeToString(WireCode code);

WireCode WireCodeFromStatus(const Status& status);
/// Serving-layer codes (kOverloaded, ...) map to FailedPrecondition with
/// the wire-code name prefixed to the message.
Status StatusFromWireCode(WireCode code, std::string_view message);

// --- Request bodies --------------------------------------------------------
// Every request carries a client-chosen request_id echoed verbatim in the
// response; clients that pipeline frames MUST match replies by id, not by
// order. Ping/Stats/writes are answered from the event loop immediately
// (that's what keeps Ping responsive while batches queue), and separately
// submitted batch groups complete in pool order, so responses can
// interleave across — and within — message types.

struct PingRequest {
  uint64_t request_id = 0;
};

struct RunBatchRequest {
  uint64_t request_id = 0;
  std::vector<Query> queries;
};

struct InsertRequest {
  uint64_t request_id = 0;
  std::vector<Value> row;
};

struct InsertBatchRequest {
  uint64_t request_id = 0;
  std::vector<std::vector<Value>> rows;
};

struct DeleteRequest {
  uint64_t request_id = 0;
  std::vector<Value> key;
};

struct StatsRequest {
  uint64_t request_id = 0;
};

/// Lightweight readiness probe for load balancers; answered inline from
/// the event loop (like Ping), including while draining.
struct HealthRequest {
  uint64_t request_id = 0;
};

/// Full typed metrics snapshot (superset of kStats): every registry
/// metric — counters, gauges, and histograms with their buckets — plus
/// the flat Introspect() map as ad-hoc gauges. Answered inline from the
/// event loop, including while draining.
struct MetricsRequest {
  uint64_t request_id = 0;
};

// --- Response bodies -------------------------------------------------------

struct PongResponse {
  uint64_t request_id = 0;
};

/// One query's aggregate result, bit-exact: count/sum are the same
/// integers an in-process RunBatch produces.
struct WireQueryResult {
  uint8_t kind = 0;  ///< 0 = COUNT, 1 = SUM.
  bool skipped_empty = false;
  uint64_t count = 0;
  int64_t sum = 0;
  uint64_t total_ns = 0;  ///< Server-side end-to-end time for this query.
};

struct BatchResultResponse {
  uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;  ///< Empty on kOk.
  std::vector<WireQueryResult> results;
  double server_wall_ms = 0.0;  ///< Wall time of the enclosing server batch.
};

struct WriteAckResponse {
  uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;
  uint64_t deleted = 0;  ///< Rows deleted (kDelete only).
};

struct StatsResponse {
  uint64_t request_id = 0;
  /// Flat introspection map: serve.* counters + db.* gauges (the same
  /// key->double shape as MultiDimIndex::DebugProperties).
  std::vector<std::pair<std::string, double>> entries;
};

/// Server health for routing decisions. `ready` means new work is being
/// admitted (not draining); `persist_poisoned` means durability is degraded
/// (a checkpoint failed or the WAL detached) while reads keep serving —
/// route writes elsewhere, reads are fine.
struct HealthResponse {
  uint64_t request_id = 0;
  bool ready = false;
  bool draining = false;
  bool persist_poisoned = false;
  uint64_t queue_depth = 0;
  uint64_t connections_active = 0;
};

/// The kMetricsResult body: typed registry metrics (histograms travel
/// with their non-empty buckets, sum, count, and exact max) plus the
/// flat Introspect() map — so one round-trip carries everything the
/// Prometheus endpoint exposes, in binary.
struct MetricsResponse {
  uint64_t request_id = 0;
  std::vector<obs::MetricSnapshot> metrics;
  /// Flat introspection entries (serve.* / db.* / router.*), identical
  /// to StatsResponse::entries.
  std::vector<std::pair<std::string, double>> entries;
};

struct ErrorResponse {
  uint64_t request_id = 0;  ///< 0 when the offending frame had no id.
  WireCode code = WireCode::kBadFrame;
  std::string message;
};

// --- Encoding --------------------------------------------------------------
// Each Append* encodes one complete frame (header + payload) onto `out`.
// Encoders never fail; oversized payloads are impossible by construction
// for every real table (kMaxPayloadBytes is checked with FLOOD_CHECK).

void AppendFrame(MessageType type, std::string_view payload,
                 std::string* out);

void AppendPing(const PingRequest& req, std::string* out);
void AppendRunBatch(const RunBatchRequest& req, std::string* out);
void AppendInsert(const InsertRequest& req, std::string* out);
void AppendInsertBatch(const InsertBatchRequest& req, std::string* out);
void AppendDelete(const DeleteRequest& req, std::string* out);
void AppendStats(const StatsRequest& req, std::string* out);
void AppendHealth(const HealthRequest& req, std::string* out);
void AppendMetrics(const MetricsRequest& req, std::string* out);

void AppendPong(const PongResponse& resp, std::string* out);
void AppendBatchResult(const BatchResultResponse& resp, std::string* out);
void AppendWriteAck(const WriteAckResponse& resp, std::string* out);
void AppendStatsResult(const StatsResponse& resp, std::string* out);
void AppendHealthResult(const HealthResponse& resp, std::string* out);
void AppendMetricsResult(const MetricsResponse& resp, std::string* out);
void AppendError(const ErrorResponse& resp, std::string* out);

// --- Decoding --------------------------------------------------------------
// Parsers take one validated frame payload. They fail with
// InvalidArgument (never crash, never over-read) on truncated or
// semantically impossible bodies — the CRC already passed, so a parse
// failure means a buggy or malicious peer, and the connection is closed.

StatusOr<PingRequest> ParsePing(std::string_view payload);
StatusOr<RunBatchRequest> ParseRunBatch(std::string_view payload);
StatusOr<InsertRequest> ParseInsert(std::string_view payload);
StatusOr<InsertBatchRequest> ParseInsertBatch(std::string_view payload);
StatusOr<DeleteRequest> ParseDelete(std::string_view payload);
StatusOr<StatsRequest> ParseStats(std::string_view payload);
StatusOr<HealthRequest> ParseHealth(std::string_view payload);
StatusOr<MetricsRequest> ParseMetrics(std::string_view payload);

StatusOr<PongResponse> ParsePong(std::string_view payload);
StatusOr<BatchResultResponse> ParseBatchResult(std::string_view payload);
StatusOr<WriteAckResponse> ParseWriteAck(std::string_view payload);
StatusOr<StatsResponse> ParseStatsResult(std::string_view payload);
StatusOr<HealthResponse> ParseHealthResult(std::string_view payload);
StatusOr<MetricsResponse> ParseMetricsResult(std::string_view payload);
StatusOr<ErrorResponse> ParseError(std::string_view payload);

// --- Frame assembly --------------------------------------------------------

/// One complete, CRC-validated frame off the stream.
struct Frame {
  MessageType type = MessageType::kPing;
  std::string payload;
};

/// Incremental frame decoder over a byte stream delivered in arbitrary
/// chunks (partial reads, multiple frames per read). Feed() appends raw
/// socket bytes; Next() pops complete frames. The first structural error
/// (bad magic, unknown version, oversized length, CRC mismatch) latches
/// the assembler into a poisoned state — error_code()/error() say why, and
/// the owner terminates the connection; bytes after the error are never
/// interpreted (one corrupt frame cannot smuggle a later "valid" one).
class FrameAssembler {
 public:
  enum class Result {
    kFrame,     ///< *frame was filled with the next complete frame.
    kNeedMore,  ///< No complete frame buffered yet; Feed() more bytes.
    kBad,       ///< Stream poisoned; see error_code()/error().
  };

  void Feed(const void* data, size_t n);
  Result Next(Frame* frame);

  bool bad() const { return bad_; }
  WireCode error_code() const { return error_code_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed (bounded by one frame + one read).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Poison(WireCode code, std::string message);

  std::string buffer_;
  size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
  bool bad_ = false;
  WireCode error_code_ = WireCode::kOk;
  std::string error_;
};

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_PROTOCOL_H_
