#include "serve/router.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace flood {
namespace serve {

// --- Gather ------------------------------------------------------------------

/// One routed batch in flight. Shard replies land in `parts` — disjoint
/// slots, no lock — and `pending` counts down; the thread that delivers
/// the final reply (fetch_sub returns 1) runs the merge with exclusive
/// ownership of the whole struct (the acq_rel countdown orders every
/// shard's writes before the merge reads them).
struct Router::Gather {
  std::function<void(EngineBatchResult)> on_done;
  EngineBatchResult merged;                 ///< Pre-sized, pre-kinded results.
  std::vector<std::vector<size_t>> origin;  ///< origin[s][j] = merged index.
  std::vector<EngineBatchResult> parts;     ///< Reply slot per shard.
  std::vector<size_t> active;               ///< Shards that received work.
  std::atomic<size_t> pending{0};
  Stopwatch wall;
};

Router::Router(ShardMap map,
               std::vector<std::unique_ptr<BatchEngine>> backends)
    : map_(std::move(map)), backends_(std::move(backends)) {
  FLOOD_CHECK(!backends_.empty());
  FLOOD_CHECK(backends_.size() == map_.num_shards());
  for (const auto& b : backends_) FLOOD_CHECK(b != nullptr);
  per_shard_subqueries_.reset(new std::atomic<uint64_t>[backends_.size()]);
  for (size_t s = 0; s < backends_.size(); ++s) per_shard_subqueries_[s] = 0;
}

std::unique_ptr<Router> Router::Over(ShardedDatabase* db) {
  FLOOD_CHECK(db != nullptr);
  std::vector<std::unique_ptr<BatchEngine>> backends;
  backends.reserve(db->num_shards());
  for (size_t s = 0; s < db->num_shards(); ++s) {
    backends.push_back(std::make_unique<DatabaseEngine>(db->shard(s)));
  }
  return std::make_unique<Router>(db->shard_map(), std::move(backends));
}

// --- Scatter-gather ----------------------------------------------------------

void Router::RunBatchAsync(std::vector<Query> queries,
                           std::function<void(EngineBatchResult)> on_done) {
  const size_t num_shards = backends_.size();
  batches_routed_.fetch_add(1, std::memory_order_relaxed);
  queries_routed_.fetch_add(queries.size(), std::memory_order_relaxed);

  auto g = std::make_shared<Gather>();
  g->on_done = std::move(on_done);
  g->merged.results.resize(queries.size());
  g->origin.resize(num_shards);
  g->parts.resize(num_shards);

  // Plan: intersect each query's sort-dim filter with the shard map.
  std::vector<std::vector<Query>> sub(num_shards);
  uint64_t sent = 0;
  uint64_t pruned = 0;
  uint64_t empties = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    EngineQueryResult& m = g->merged.results[i];
    m.kind = q.agg().kind == AggSpec::Kind::kSum ? 1 : 0;
    if (q.IsEmpty()) {
      // Answered right here: an empty range matches nothing on any shard.
      m.skipped_empty = true;
      ++empties;
      continue;
    }
    const auto [first, last] = map_.ShardsForQuery(q);
    pruned += num_shards - (last - first + 1);
    for (size_t s = first; s <= last; ++s) {
      sub[s].push_back(q);
      g->origin[s].push_back(i);
      ++sent;
      per_shard_subqueries_[s].fetch_add(1, std::memory_order_relaxed);
    }
  }
  subqueries_sent_.fetch_add(sent, std::memory_order_relaxed);
  subqueries_pruned_.fetch_add(pruned, std::memory_order_relaxed);
  queries_skipped_empty_.fetch_add(empties, std::memory_order_relaxed);
  obs::GlobalRouterMetrics().subqueries->Add(sent);
  obs::GlobalRouterMetrics().subqueries_pruned->Add(pruned);

  for (size_t s = 0; s < num_shards; ++s) {
    if (!sub[s].empty()) g->active.push_back(s);
  }
  if (g->active.empty()) {
    // Nothing to scatter (all queries empty, or an empty batch).
    g->merged.wall_ms = g->wall.ElapsedMillis();
    g->on_done(std::move(g->merged));
    return;
  }

  // Scatter. pending is set BEFORE any dispatch: a backend may complete
  // inline (a pool-less local shard), and its decrement must not reach
  // zero while later shards are still undispatched.
  g->pending.store(g->active.size(), std::memory_order_relaxed);
  for (const size_t s : g->active) {
    backends_[s]->RunBatchAsync(
        std::move(sub[s]), [this, g, s](EngineBatchResult part) {
          // Per-shard fan-out latency: scatter start -> this shard's reply.
          obs::GlobalRouterMetrics().fanout_ns->Record(g->wall.ElapsedNanos());
          g->parts[s] = std::move(part);
          if (g->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            Finish(g.get());
          }
        });
  }
}

void Router::Finish(Gather* g) {
  for (const size_t s : g->active) {
    EngineBatchResult& part = g->parts[s];
    const std::vector<size_t>& origin = g->origin[s];

    // Normalize sub-batch-level failures (a shard rejected or never ran
    // its whole sub-batch) into per-query codes for the queries that were
    // routed there; queries answered by other shards are untouched.
    WireCode batch_code = WireCode::kOk;
    std::string batch_message;
    if (!part.status.ok()) {
      batch_code = WireCodeFromStatus(part.status);
      batch_message = part.status.message();
    } else if (part.results.size() != origin.size()) {
      batch_code = WireCode::kInternal;
      batch_message = "shard returned " + std::to_string(part.results.size()) +
                      " results for " + std::to_string(origin.size()) +
                      " queries";
    }
    if (batch_code != WireCode::kOk) {
      shard_errors_.fetch_add(1, std::memory_order_relaxed);
      for (const size_t i : origin) {
        EngineQueryResult& m = g->merged.results[i];
        if (m.code == WireCode::kOk) {
          m.code = batch_code;
          m.message = batch_message;
        }
      }
      continue;
    }

    for (size_t j = 0; j < origin.size(); ++j) {
      const EngineQueryResult& er = part.results[j];
      EngineQueryResult& m = g->merged.results[origin[j]];
      if (er.code != WireCode::kOk) {
        // First failing shard wins; partial counts from other shards are
        // moot (the frame carrying this query becomes a typed error).
        if (m.code == WireCode::kOk) {
          m.code = er.code;
          m.message = er.message;
        }
        continue;
      }
      // COUNT/SUM add across shards: every row lives in exactly one.
      // Wrapping uint64 arithmetic keeps adversarial sums defined, like a
      // single database's accumulator.
      m.count += er.count;
      m.sum = static_cast<int64_t>(static_cast<uint64_t>(m.sum) +
                                   static_cast<uint64_t>(er.sum));
      // Shards ran in parallel: the slowest is the critical path.
      m.total_ns = std::max(m.total_ns, er.total_ns);
    }
  }
  g->merged.wall_ms = g->wall.ElapsedMillis();
  g->on_done(std::move(g->merged));
}

// --- Writes ------------------------------------------------------------------

Status Router::RouteKeyShard(const std::vector<Value>& key,
                             size_t* shard) const {
  if (map_.sort_dim() >= key.size()) {
    return Status::InvalidArgument(
        "row/key has " + std::to_string(key.size()) +
        " values but the shard map routes on dimension " +
        std::to_string(map_.sort_dim()));
  }
  *shard = map_.ShardForValue(key[map_.sort_dim()]);
  return Status::OK();
}

Status Router::Insert(const std::vector<Value>& row) {
  size_t shard = 0;
  FLOOD_RETURN_IF_ERROR(RouteKeyShard(row, &shard));
  writes_routed_.fetch_add(1, std::memory_order_relaxed);
  return backends_[shard]->Insert(row);
}

Status Router::InsertBatch(std::span<const std::vector<Value>> rows) {
  std::vector<std::vector<std::vector<Value>>> parts(backends_.size());
  for (const auto& row : rows) {
    size_t shard = 0;
    FLOOD_RETURN_IF_ERROR(RouteKeyShard(row, &shard));
    parts[shard].push_back(row);
  }
  writes_routed_.fetch_add(1, std::memory_order_relaxed);
  // Not atomic across shards: a failure leaves earlier shards' rows
  // applied and reports the first error (same contract as
  // ShardedDatabase::InsertBatch).
  for (size_t s = 0; s < backends_.size(); ++s) {
    if (parts[s].empty()) continue;
    FLOOD_RETURN_IF_ERROR(backends_[s]->InsertBatch(parts[s]));
  }
  return Status::OK();
}

StatusOr<uint64_t> Router::Delete(const std::vector<Value>& key) {
  size_t shard = 0;
  FLOOD_RETURN_IF_ERROR(RouteKeyShard(key, &shard));
  writes_routed_.fetch_add(1, std::memory_order_relaxed);
  return backends_[shard]->Delete(key);
}

// --- Health & introspection ----------------------------------------------------

EngineHealth Router::Health() const {
  EngineHealth merged;
  merged.ready = true;
  merged.persist_poisoned = false;
  for (const auto& backend : backends_) {
    const EngineHealth h = backend->Health();
    merged.ready = merged.ready && h.ready;
    merged.persist_poisoned = merged.persist_poisoned || h.persist_poisoned;
  }
  return merged;
}

RouterCounters Router::counters() const {
  RouterCounters c;
  c.batches_routed = batches_routed_.load(std::memory_order_relaxed);
  c.queries_routed = queries_routed_.load(std::memory_order_relaxed);
  c.subqueries_sent = subqueries_sent_.load(std::memory_order_relaxed);
  c.subqueries_pruned = subqueries_pruned_.load(std::memory_order_relaxed);
  c.queries_skipped_empty =
      queries_skipped_empty_.load(std::memory_order_relaxed);
  c.writes_routed = writes_routed_.load(std::memory_order_relaxed);
  c.shard_errors = shard_errors_.load(std::memory_order_relaxed);
  c.per_shard_subqueries.resize(backends_.size());
  for (size_t s = 0; s < backends_.size(); ++s) {
    c.per_shard_subqueries[s] =
        per_shard_subqueries_[s].load(std::memory_order_relaxed);
  }
  return c;
}

std::vector<std::pair<std::string, double>> Router::Introspect() const {
  const RouterCounters c = counters();
  std::vector<std::pair<std::string, double>> entries;
  entries.emplace_back("router.num_shards",
                       static_cast<double>(backends_.size()));
  entries.emplace_back("router.batches_routed",
                       static_cast<double>(c.batches_routed));
  entries.emplace_back("router.queries_routed",
                       static_cast<double>(c.queries_routed));
  entries.emplace_back("router.subqueries_sent",
                       static_cast<double>(c.subqueries_sent));
  entries.emplace_back("router.subqueries_pruned",
                       static_cast<double>(c.subqueries_pruned));
  entries.emplace_back("router.queries_skipped_empty",
                       static_cast<double>(c.queries_skipped_empty));
  entries.emplace_back("router.writes_routed",
                       static_cast<double>(c.writes_routed));
  entries.emplace_back("router.shard_errors",
                       static_cast<double>(c.shard_errors));
  for (size_t s = 0; s < backends_.size(); ++s) {
    const std::string prefix = "shard" + std::to_string(s) + ".";
    entries.emplace_back(prefix + "subqueries",
                         static_cast<double>(c.per_shard_subqueries[s]));
    for (auto& [key, value] : backends_[s]->Introspect()) {
      entries.emplace_back(prefix + key, value);
    }
  }
  return entries;
}

// --- Remote backend ------------------------------------------------------------

namespace {

/// BatchEngine over one remote flood_serve (see MakeRemoteBackend's
/// contract in router.h). Batches run on the dedicated worker thread —
/// serve::Client is blocking and single-threaded, and the router's
/// scatter must not serialize on a slow shard from the serving loop;
/// control operations (writes, health, stats) share a second connection
/// under a mutex, called inline with the client deadlines as the bound.
class RemoteEngine : public BatchEngine {
 public:
  RemoteEngine(std::string address, ClientOptions options)
      : address_(std::move(address)), options_(options) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~RemoteEngine() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void RunBatchAsync(std::vector<Query> queries,
                     std::function<void(EngineBatchResult)> on_done) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!stopping_) {
        tasks_.push_back({std::move(queries), std::move(on_done)});
        cv_.notify_one();
        return;
      }
    }
    // Stopped: still honour the callback contract.
    on_done(FailAll(queries.size(), WireCode::kUnavailable,
                    "backend is shutting down"));
  }

  Status Insert(const std::vector<Value>& row) override {
    std::lock_guard<std::mutex> lock(control_mu_);
    FLOOD_RETURN_IF_ERROR(EnsureControlLocked());
    const Status status = control_->Insert(row);
    MaybePoisonControlLocked(status);
    return status;
  }

  Status InsertBatch(std::span<const std::vector<Value>> rows) override {
    std::lock_guard<std::mutex> lock(control_mu_);
    FLOOD_RETURN_IF_ERROR(EnsureControlLocked());
    const Status status = control_->InsertBatch(rows);
    MaybePoisonControlLocked(status);
    return status;
  }

  StatusOr<uint64_t> Delete(const std::vector<Value>& key) override {
    std::lock_guard<std::mutex> lock(control_mu_);
    FLOOD_RETURN_IF_ERROR(EnsureControlLocked());
    StatusOr<uint64_t> deleted = control_->Delete(key);
    MaybePoisonControlLocked(deleted.status());
    return deleted;
  }

  EngineHealth Health() const override {
    EngineHealth h;
    std::lock_guard<std::mutex> lock(control_mu_);
    if (!EnsureControlLocked().ok()) {
      h.ready = false;  // Unreachable shard: not ready, routes away.
      return h;
    }
    StatusOr<HealthResponse> resp = control_->Health();
    MaybePoisonControlLocked(resp.status());
    if (!resp.ok()) {
      h.ready = false;
      return h;
    }
    h.ready = resp->ready;
    h.persist_poisoned = resp->persist_poisoned;
    return h;
  }

  std::vector<std::pair<std::string, double>> Introspect() const override {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (EnsureControlLocked().ok()) {
      StatusOr<std::vector<std::pair<std::string, double>>> stats =
          control_->Stats();
      MaybePoisonControlLocked(stats.status());
      if (stats.ok()) return std::move(*stats);
    }
    return {{"unreachable", 1.0}};
  }

 private:
  struct Task {
    std::vector<Query> queries;
    std::function<void(EngineBatchResult)> on_done;
  };

  static EngineBatchResult FailAll(size_t n, WireCode code,
                                   std::string_view message) {
    EngineBatchResult out;
    out.results.resize(n);
    for (EngineQueryResult& r : out.results) {
      r.code = code;
      r.message = std::string(message);
    }
    return out;
  }

  void WorkerLoop() {
    for (;;) {
      Task task;
      bool stopping = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        stopping = stopping_;
        if (tasks_.empty()) return;  // stopping_ must be true here.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      // A task that was already queued when Stop hit is answered with a
      // typed error instead of a blocking RPC — the drain must not wait on
      // a dead shard's deadlines.
      task.on_done(stopping
                       ? FailAll(task.queries.size(), WireCode::kUnavailable,
                                 "backend is shutting down")
                       : Execute(std::move(task.queries)));
    }
  }

  EngineBatchResult Execute(std::vector<Query> queries) {
    if (!batch_client_) {
      StatusOr<Client> client = Client::Connect(address_, options_);
      if (!client.ok()) {
        return FailAll(queries.size(), WireCode::kUnavailable,
                       client.status().message());
      }
      batch_client_.emplace(std::move(*client));
    }
    StatusOr<BatchResultResponse> resp = batch_client_->RunBatch(queries);
    if (!resp.ok()) {
      // Transport-level failure: the stream state is unknown — reconnect
      // on the next batch rather than risking desynchronized frames.
      batch_client_.reset();
      return FailAll(queries.size(), WireCodeFromStatus(resp.status()),
                     resp.status().message());
    }
    if (resp->code != WireCode::kOk) {
      // Typed shard-level reply (kOverloaded, kShuttingDown, ...): the
      // connection is fine, the shard just refused this sub-batch.
      return FailAll(queries.size(), resp->code, resp->message);
    }
    if (resp->results.size() != queries.size()) {
      batch_client_.reset();
      return FailAll(queries.size(), WireCode::kInternal,
                     "shard returned " + std::to_string(resp->results.size()) +
                         " results for " + std::to_string(queries.size()) +
                         " queries");
    }
    EngineBatchResult out;
    out.wall_ms = resp->server_wall_ms;
    out.results.reserve(resp->results.size());
    for (const WireQueryResult& wr : resp->results) {
      EngineQueryResult er;
      er.kind = wr.kind;
      er.skipped_empty = wr.skipped_empty;
      er.count = wr.count;
      er.sum = wr.sum;
      er.total_ns = wr.total_ns;
      out.results.push_back(std::move(er));
    }
    return out;
  }

  Status EnsureControlLocked() const {
    if (control_) return Status::OK();
    StatusOr<Client> client = Client::Connect(address_, options_);
    if (!client.ok()) return client.status();
    control_.emplace(std::move(*client));
    return Status::OK();
  }

  /// Drops the control connection after transport-shaped failures (the
  /// reply stream may be desynchronized); typed application errors keep
  /// it.
  void MaybePoisonControlLocked(const Status& status) const {
    if (status.ok()) return;
    if (status.code() == StatusCode::kUnavailable ||
        status.code() == StatusCode::kDeadlineExceeded ||
        status.code() == StatusCode::kInternal) {
      control_.reset();
    }
  }

  const std::string address_;
  const ClientOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool stopping_ = false;
  std::thread worker_;
  /// Worker-thread-owned; no lock needed.
  std::optional<Client> batch_client_;

  mutable std::mutex control_mu_;
  mutable std::optional<Client> control_;
};

}  // namespace

std::unique_ptr<BatchEngine> MakeRemoteBackend(std::string address,
                                               ClientOptions options) {
  return std::make_unique<RemoteEngine>(std::move(address), options);
}

}  // namespace serve
}  // namespace flood
