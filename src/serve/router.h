#ifndef FLOOD_SERVE_ROUTER_H_
#define FLOOD_SERVE_ROUTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/shard_map.h"
#include "api/sharded_database.h"
#include "common/status.h"
#include "serve/client.h"
#include "serve/engine.h"

namespace flood {
namespace serve {

/// Point-in-time snapshot of the router's routing counters (flattened into
/// Introspect() under "router.*"). The pruning counters are what the
/// router bench and tests assert on: `subqueries_pruned` counts
/// (query, shard) pairs the shard map proved empty — work a naive
/// broadcast router would have done.
struct RouterCounters {
  uint64_t batches_routed = 0;     ///< RunBatchAsync calls planned.
  uint64_t queries_routed = 0;     ///< Queries across those batches.
  uint64_t subqueries_sent = 0;    ///< (query, shard) pairs dispatched.
  uint64_t subqueries_pruned = 0;  ///< (query, shard) pairs skipped by the map.
  uint64_t queries_skipped_empty = 0;  ///< Empty queries answered locally.
  uint64_t writes_routed = 0;      ///< Insert/InsertBatch/Delete routed.
  uint64_t shard_errors = 0;       ///< Failed sub-batches (shed/died shards).
  std::vector<uint64_t> per_shard_subqueries;  ///< Sent, by shard.
};

/// Key-range scatter-gather over N shard backends, behind the unchanged
/// wire protocol: Router is a BatchEngine, so serve::Server fronts it
/// exactly like a single Database — framing, per-connection batching,
/// admission control and drain all reuse the PR 6 loop.
///
/// Planning: each query's sort-dim filter interval is intersected with the
/// ShardMap; only shards whose range overlaps receive the query (the rest
/// are pruned — provably zero matches). Queries that do not filter the
/// sort dimension broadcast to every shard; empty queries are answered
/// locally without touching any shard.
///
/// Gathering: each shard executes its sub-batch asynchronously and the
/// replies land in preallocated per-shard slots (request_id matching is
/// the transport's job — the wire protocol's out-of-order replies and the
/// local pool's completions both end up here); the last shard to finish
/// merges, single-threaded. Merge rules: COUNT/SUM add across shards (each
/// row lives in exactly one shard), total_ns takes the max (shards ran in
/// parallel — the slowest one is the critical path), wall_ms is the
/// scatter-to-last-gather time.
///
/// Failure semantics: a shard that sheds (kOverloaded/kShuttingDown) or
/// dies (transport error -> kUnavailable) fails ONLY the queries routed to
/// it — each affected query carries the shard's code, and the server turns
/// exactly the reply frames containing those queries into typed errors
/// while sibling frames in the same group still get results. The router
/// itself never sheds; admission control stays in the front-end server.
///
/// Writes route to exactly one shard by the row's sort-dim value (no
/// cross-shard transactions: InsertBatch splits per shard and is not
/// atomic across them). Health() fans out: ready iff every shard is ready,
/// poisoned if any shard is. Introspect() returns router.* counters plus
/// every shard's map under a "shard<i>." prefix.
///
/// Thread safety: RunBatchAsync may be called from one thread at a time
/// (the serving loop); completions run concurrently with it. counters(),
/// Health() and Introspect() are safe from any thread.
class Router : public BatchEngine {
 public:
  /// Backends must be non-null, one per shard of `map`, ordered by shard
  /// index. The router owns them.
  Router(ShardMap map, std::vector<std::unique_ptr<BatchEngine>> backends);

  /// Convenience: a router over the shards of an in-process
  /// ShardedDatabase (one DatabaseEngine per shard). The database must
  /// outlive the router.
  static std::unique_ptr<Router> Over(ShardedDatabase* db);

  // --- BatchEngine ----------------------------------------------------------

  void RunBatchAsync(std::vector<Query> queries,
                     std::function<void(EngineBatchResult)> on_done) override;
  Status Insert(const std::vector<Value>& row) override;
  Status InsertBatch(std::span<const std::vector<Value>> rows) override;
  StatusOr<uint64_t> Delete(const std::vector<Value>& key) override;
  EngineHealth Health() const override;
  std::vector<std::pair<std::string, double>> Introspect() const override;

  // --- Introspection ----------------------------------------------------------

  const ShardMap& shard_map() const { return map_; }
  size_t num_shards() const { return backends_.size(); }
  RouterCounters counters() const;

 private:
  /// Shared gather state for one routed batch: per-shard replies land in
  /// disjoint slots, the last finisher (atomic countdown) merges.
  struct Gather;

  /// Merges the gathered per-shard replies and fires on_done; runs on
  /// whichever thread delivered the final shard reply.
  void Finish(Gather* g);

  Status RouteKeyShard(const std::vector<Value>& key, size_t* shard) const;

  ShardMap map_;
  std::vector<std::unique_ptr<BatchEngine>> backends_;

  mutable std::atomic<uint64_t> batches_routed_{0};
  mutable std::atomic<uint64_t> queries_routed_{0};
  mutable std::atomic<uint64_t> subqueries_sent_{0};
  mutable std::atomic<uint64_t> subqueries_pruned_{0};
  mutable std::atomic<uint64_t> queries_skipped_empty_{0};
  mutable std::atomic<uint64_t> writes_routed_{0};
  mutable std::atomic<uint64_t> shard_errors_{0};
  /// Fixed-size array (atomics are not movable): one sent-count per shard.
  std::unique_ptr<std::atomic<uint64_t>[]> per_shard_subqueries_;
};

/// A BatchEngine speaking the wire protocol to one remote flood_serve
/// process — the shard leaf for a multi-process router deployment.
///
/// `address` is "unix:<path>" or "<ipv4>:<port>" (serve::Client grammar).
/// Connections are lazy: creation always succeeds, the first operation
/// connects (use Health() / `flood_router --check` to probe). Two
/// channels per backend: batches run on a dedicated worker thread (the
/// blocking client never stalls the caller), writes/health/stats go over
/// a separate mutex-guarded control connection called inline — bounded by
/// the ClientOptions deadlines. A transport error poisons the affected
/// channel's connection; the next operation reconnects. Destruction
/// answers every queued batch with kUnavailable before joining (the
/// callback contract: on_done always fires).
std::unique_ptr<BatchEngine> MakeRemoteBackend(std::string address,
                                               ClientOptions options = {});

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_ROUTER_H_
