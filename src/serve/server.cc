#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace flood {
namespace serve {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void BumpHwm(std::atomic<uint64_t>& hwm, uint64_t depth) {
  uint64_t seen = hwm.load(std::memory_order_relaxed);
  while (depth > seen &&
         !hwm.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

}  // namespace

/// All connection state is owned by the event loop thread. `dead` marks a
/// connection doomed mid-event-batch: the fd is closed and the maps erased
/// only after the whole epoll batch (and the completion drain) has been
/// processed, so a stale event or completion can never touch a recycled
/// fd's new owner.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  bool is_tcp = false;
  /// Accepted on the metrics listener: speaks HTTP, not the wire protocol.
  bool is_http = false;
  std::string http_buf;  ///< Raw request bytes until the header terminator.
  FrameAssembler assembler;
  std::string outbuf;
  size_t out_pos = 0;
  /// Admitted RunBatch frames not yet answered (per-connection cap).
  size_t inflight_frames = 0;
  /// Submitted batch groups not yet completed (close barrier).
  size_t inflight_groups = 0;
  /// No further reads; close once inflight_groups == 0 and outbuf drained.
  bool closing = false;
  bool dead = false;
  uint32_t events = 0;  ///< Current epoll interest set.
  std::chrono::steady_clock::time_point last_activity;
};

Server::Server(BatchEngine* engine, std::unique_ptr<BatchEngine> owned,
               ServerOptions options)
    : engine_(engine),
      owned_engine_(std::move(owned)),
      options_(std::move(options)) {}

Server::~Server() {
  if (loop_thread_.joinable()) {
    Shutdown();
    Join();
  }
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  if (metrics_listen_fd_ >= 0) ::close(metrics_listen_fd_);
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (shutdown_fd_ >= 0) ::close(shutdown_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

StatusOr<std::unique_ptr<Server>> Server::Create(Database* db,
                                                 ServerOptions options) {
  FLOOD_CHECK(db != nullptr);
  auto engine = std::make_unique<DatabaseEngine>(db);
  BatchEngine* raw = engine.get();
  if (options.uds_path.empty() && !options.listen_tcp) {
    return Status::InvalidArgument(
        "server needs at least one listener (uds_path or listen_tcp)");
  }
  std::unique_ptr<Server> server(
      new Server(raw, std::move(engine), std::move(options)));
  FLOOD_RETURN_IF_ERROR(server->Init());
  return server;
}

StatusOr<std::unique_ptr<Server>> Server::Create(BatchEngine* engine,
                                                 ServerOptions options) {
  FLOOD_CHECK(engine != nullptr);
  if (options.uds_path.empty() && !options.listen_tcp) {
    return Status::InvalidArgument(
        "server needs at least one listener (uds_path or listen_tcp)");
  }
  std::unique_ptr<Server> server(
      new Server(engine, nullptr, std::move(options)));
  FLOOD_RETURN_IF_ERROR(server->Init());
  return server;
}

Status Server::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd(wake)");
  shutdown_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (shutdown_fd_ < 0) return Errno("eventfd(shutdown)");

  auto watch = [this](int fd) -> Status {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Errno("epoll_ctl(ADD)");
    }
    return Status::OK();
  };
  FLOOD_RETURN_IF_ERROR(watch(wake_fd_));
  FLOOD_RETURN_IF_ERROR(watch(shutdown_fd_));

  if (options_.listen_tcp) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                           SOCK_CLOEXEC, 0);
    if (tcp_listen_fd_ < 0) return Errno("socket(tcp)");
    const int one = 1;
    (void)::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.tcp_port);
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) !=
        1) {
      return Status::InvalidArgument("bad tcp_host " + options_.tcp_host);
    }
    if (::bind(tcp_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Errno("bind(" + options_.tcp_host + ":" +
                   std::to_string(options_.tcp_port) + ")");
    }
    if (::listen(tcp_listen_fd_, 128) < 0) return Errno("listen(tcp)");
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_listen_fd_,
                      reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
      return Errno("getsockname");
    }
    tcp_port_ = ntohs(addr.sin_port);
    FLOOD_RETURN_IF_ERROR(watch(tcp_listen_fd_));
  }

  if (!options_.uds_path.empty()) {
    struct sockaddr_un addr;
    if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("uds_path too long: " +
                                     options_.uds_path);
    }
    uds_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK |
                                           SOCK_CLOEXEC, 0);
    if (uds_listen_fd_ < 0) return Errno("socket(unix)");
    ::unlink(options_.uds_path.c_str());  // Stale socket from a crash.
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(uds_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Errno("bind(" + options_.uds_path + ")");
    }
    if (::listen(uds_listen_fd_, 128) < 0) return Errno("listen(unix)");
    FLOOD_RETURN_IF_ERROR(watch(uds_listen_fd_));
  }

  if (!options_.metrics_addr.empty()) {
    const size_t colon = options_.metrics_addr.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("metrics_addr needs host:port, got " +
                                     options_.metrics_addr);
    }
    const std::string host = options_.metrics_addr.substr(0, colon);
    const std::string port_str = options_.metrics_addr.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port > 65535) {
      return Status::InvalidArgument("bad metrics_addr port " + port_str);
    }
    metrics_listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                               SOCK_CLOEXEC, 0);
    if (metrics_listen_fd_ < 0) return Errno("socket(metrics)");
    const int one = 1;
    (void)::setsockopt(metrics_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad metrics_addr host " + host);
    }
    if (::bind(metrics_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Errno("bind(" + options_.metrics_addr + ")");
    }
    if (::listen(metrics_listen_fd_, 16) < 0) return Errno("listen(metrics)");
    socklen_t len = sizeof(addr);
    if (::getsockname(metrics_listen_fd_,
                      reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
      return Errno("getsockname(metrics)");
    }
    metrics_port_ = ntohs(addr.sin_port);
    FLOOD_RETURN_IF_ERROR(watch(metrics_listen_fd_));
    // Pre-register every layer's bundle so the first scrape already
    // exposes the full zero-valued series set (rate() works from t=0)
    // instead of families appearing as code paths first run.
    (void)obs::GlobalDbMetrics();
    (void)obs::GlobalServeMetrics();
    (void)obs::GlobalRouterMetrics();
    (void)obs::GlobalPersistMetrics();
  }
  return Status::OK();
}

Status Server::Run() { return Loop(); }

void Server::Start() {
  FLOOD_CHECK(!started_);
  started_ = true;
  loop_thread_ = std::thread([this] { (void)Loop(); });
}

void Server::Shutdown() {
  // Async-signal-safe: a single write(2) on an eventfd.
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(shutdown_fd_, &one, sizeof(one));
}

Status Server::Join() {
  if (loop_thread_.joinable()) loop_thread_.join();
  return loop_status_;
}

// --- Event loop ------------------------------------------------------------

Status Server::Loop() {
  std::vector<int> doomed;
  while (!loop_done_) {
    int timeout_ms = -1;
    if (options_.idle_timeout_ms > 0) {
      timeout_ms = static_cast<int>(
          std::min<int64_t>(options_.idle_timeout_ms / 2 + 1, 1000));
    }
    if (draining_) timeout_ms = 100;
    if (listeners_paused_) {
      // Wake in time to re-arm the paused listeners.
      timeout_ms = timeout_ms < 0 ? 10 : std::min(timeout_ms, 10);
    }

    struct epoll_event events[64];
    const int n = failpoint::InjectedEpollWait("serve.epoll_wait", epoll_fd_,
                                               events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) {
      // Unrecoverable: the loop can't watch anything anymore. Surface a
      // typed status instead of dying silently.
      counters_.loop_errors.fetch_add(1, std::memory_order_relaxed);
      loop_status_ = Errno("epoll_wait");
      break;
    }

    if (listeners_paused_ &&
        std::chrono::steady_clock::now() >= listener_resume_at_) {
      ResumeListeners();
    }

    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t tickets;
        while (::read(wake_fd_, &tickets, sizeof(tickets)) > 0) {
        }
        // Completions drained below, once per iteration.
        continue;
      }
      if (fd == shutdown_fd_) {
        uint64_t tickets;
        while (::read(shutdown_fd_, &tickets, sizeof(tickets)) > 0) {
        }
        BeginDrain();
        continue;
      }
      if (fd == tcp_listen_fd_ || fd == uds_listen_fd_ ||
          fd == metrics_listen_fd_) {
        HandleAccept(fd);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end() || it->second->dead) continue;
      Connection* conn = it->second.get();
      if (ev & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(conn);
        continue;
      }
      if (ev & (EPOLLIN | EPOLLRDHUP)) HandleReadable(conn);
      if (conn->dead) continue;
      if (ev & EPOLLOUT) HandleWritable(conn);
    }

    DrainCompletions();

    if (options_.idle_timeout_ms > 0) SweepIdle();

    // Bury doomed connections only after every event and completion of
    // this iteration has been dispatched, so nothing touches a recycled
    // fd.
    doomed.clear();
    for (const auto& [fd, conn] : conns_) {
      if (conn->dead) doomed.push_back(fd);
    }
    for (int fd : doomed) {
      auto it = conns_.find(fd);
      (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      ::close(fd);
      by_id_.erase(it->second->id);
      conns_.erase(it);
      counters_.connections_active.fetch_sub(1, std::memory_order_relaxed);
      obs::GlobalServeMetrics().connections->Set(static_cast<int64_t>(
          counters_.connections_active.load(std::memory_order_relaxed)));
    }

    if (draining_ && draining_done()) loop_done_ = true;
  }

  if (!loop_status_.ok()) {
    // The loop can no longer serve sockets, but batches already on the
    // pool still reference this server through their completion callbacks
    // — wait them out (flushing whatever responses still can be flushed)
    // so the server can be destroyed safely after Run()/Join() returns.
    while (counters_.queue_depth.load(std::memory_order_relaxed) != 0) {
      DrainCompletions();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    DrainCompletions();
  }
  return loop_status_;
}

bool Server::draining_done() const {
  if (!conns_.empty()) return false;
  if (counters_.queue_depth.load(std::memory_order_relaxed) != 0) {
    // Batches still on the pool reference this server through their
    // completion callbacks — the drain must outlive them.
    return false;
  }
  std::lock_guard<std::mutex> lock(completions_mu_);
  return completions_.empty();
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  if (tcp_listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, tcp_listen_fd_, nullptr);
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (uds_listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, uds_listen_fd_, nullptr);
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
    ::unlink(options_.uds_path.c_str());
  }
  if (metrics_listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, metrics_listen_fd_, nullptr);
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
  }
  // Final read pass: requests already in a socket buffer at drain time
  // are still answered — executed if admitted, or shed with a typed
  // kShuttingDown (HandleFrame's draining_ branch). MaybeFinish (via
  // ProcessFrames) then closes each connection as soon as it has nothing
  // in flight and nothing left to flush; busy ones close when their
  // completions land.
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (!conn->dead) HandleReadable(conn.get());
  }
}

void Server::HandleAccept(int listener_fd) {
  for (;;) {
    const int fd = failpoint::InjectedAccept4("serve.accept", listener_fd,
                                              nullptr, nullptr,
                                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      counters_.accept_failures.fetch_add(1, std::memory_order_relaxed);
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Resource exhaustion: the pending connection stays in the backlog,
        // so a level-triggered listener would wake us right back into the
        // same failure. Shed politely by cooling the listeners down instead
        // of spinning; existing connections keep being served.
        PauseListeners();
      }
      return;
    }
    if (draining_ || conns_.size() >= options_.max_connections) {
      counters_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->is_tcp = listener_fd != uds_listen_fd_;
    conn->is_http = listener_fd == metrics_listen_fd_;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->events = EPOLLIN | EPOLLRDHUP;
    if (conn->is_tcp) {
      // Responses are small framed messages; never wait on Nagle.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = conn->events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.connections_active.fetch_add(1, std::memory_order_relaxed);
    obs::GlobalServeMetrics().connections->Set(static_cast<int64_t>(
        counters_.connections_active.load(std::memory_order_relaxed)));
    by_id_[conn->id] = conn.get();
    conns_[fd] = std::move(conn);
  }
}

void Server::PauseListeners() {
  if (listeners_paused_ || draining_) return;
  if (tcp_listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, tcp_listen_fd_, nullptr);
  }
  if (uds_listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, uds_listen_fd_, nullptr);
  }
  if (metrics_listen_fd_ >= 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, metrics_listen_fd_, nullptr);
  }
  listeners_paused_ = true;
  listener_resume_at_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
}

void Server::ResumeListeners() {
  if (!listeners_paused_) return;
  listeners_paused_ = false;
  if (draining_) return;  // Drain already closed the listeners.
  auto rearm = [this](int fd) {
    if (fd < 0) return;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  };
  rearm(tcp_listen_fd_);
  rearm(uds_listen_fd_);
  rearm(metrics_listen_fd_);
}

void Server::HandleReadable(Connection* conn) {
  if (conn->is_http) {
    HandleHttpReadable(conn);
    return;
  }
  if (conn->closing) {
    // Reads are done for this connection; swallow and drop.
    char buf[kReadChunk];
    while (::recv(conn->fd, buf, sizeof(buf), 0) > 0) {
    }
    return;
  }
  bool peer_closed = false;
  char buf[kReadChunk];
  for (;;) {
    const ssize_t n =
        failpoint::InjectedRecv("serve.recv", conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
      conn->assembler.Feed(buf, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    counters_.recv_errors.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return;
  }
  ProcessFrames(conn);
  if (peer_closed && !conn->dead) {
    // The peer is gone; any response we could still produce has no reader.
    CloseConnection(conn);
  }
}

void Server::HandleHttpReadable(Connection* conn) {
  char buf[kReadChunk];
  if (conn->closing) {
    // Response already queued; swallow and drop whatever else arrives.
    while (::recv(conn->fd, buf, sizeof(buf), 0) > 0) {
    }
    return;
  }
  constexpr size_t kMaxHttpHeader = 8 * 1024;
  bool peer_closed = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
      conn->http_buf.append(buf, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    counters_.recv_errors.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return;
  }
  const size_t header_end = conn->http_buf.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // Headers still incomplete; a peer that hung up (or blew the cap)
    // will never complete them.
    if (peer_closed || conn->http_buf.size() > kMaxHttpHeader) {
      CloseConnection(conn);
    }
    return;
  }
  const size_t line_end = conn->http_buf.find("\r\n");
  const std::string line = conn->http_buf.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : line.substr(0, sp1);
  std::string path = (sp1 == std::string::npos || sp2 == std::string::npos)
                         ? ""
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string status_line;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status_line = "405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (path == "/metrics" || path == "/") {
    status_line = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::RenderPrometheus(obs::MetricsRegistry::Instance().SnapshotAll(),
                                 Introspect());
    obs::GlobalServeMetrics().scrapes->Add(1);
  } else {
    status_line = "404 Not Found";
    body = "try /metrics\n";
  }
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status_line.c_str(), content_type.c_str(), body.size());
  conn->outbuf.append(header);
  conn->outbuf.append(body);
  conn->closing = true;  // One response per connection, then close.
  FlushOrArm(conn);
  MaybeFinish(conn);
}

void Server::ProcessFrames(Connection* conn) {
  // Per-connection batching: every complete RunBatch frame buffered right
  // now joins ONE RunBatchAsync submission — one reader-lock acquisition
  // for the whole group.
  std::vector<GroupFrame> group;
  std::vector<Query> group_queries;
  Frame frame;
  for (;;) {
    const FrameAssembler::Result r = conn->assembler.Next(&frame);
    if (r == FrameAssembler::Result::kNeedMore) break;
    if (r == FrameAssembler::Result::kBad) {
      counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, 0, conn->assembler.error_code(),
                conn->assembler.error());
      conn->closing = true;
      break;
    }
    counters_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, frame, &group, &group_queries);
    if (conn->dead || conn->closing) break;
  }
  if (!group.empty()) {
    SubmitGroup(conn, std::move(group), std::move(group_queries));
  }
  if (!conn->dead) {
    FlushOrArm(conn);
    MaybeFinish(conn);
  }
}

void Server::HandleFrame(Connection* conn, const Frame& frame,
                         std::vector<GroupFrame>* group,
                         std::vector<Query>* group_queries) {
  switch (frame.type) {
    case MessageType::kPing: {
      StatusOr<PingRequest> req = ParsePing(frame.payload);
      if (!req.ok()) break;
      // Answered inline, never queued: Ping stays responsive under
      // overload and during drain — it is the liveness probe.
      AppendPong({req->request_id}, &conn->outbuf);
      return;
    }
    case MessageType::kRunBatch: {
      StatusOr<RunBatchRequest> req = ParseRunBatch(frame.payload);
      if (!req.ok()) break;
      if (draining_) {
        counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, req->request_id, WireCode::kShuttingDown,
                  "server is draining");
        return;
      }
      const uint64_t depth =
          counters_.queue_depth.load(std::memory_order_relaxed);
      if (depth >= options_.max_inflight_batches ||
          conn->inflight_frames >= options_.max_inflight_per_connection) {
        counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, req->request_id, WireCode::kOverloaded,
                  depth >= options_.max_inflight_batches
                      ? "submission queue full"
                      : "connection in-flight cap reached");
        return;
      }
      GroupFrame gf;
      gf.request_id = req->request_id;
      gf.offset = group_queries->size();
      gf.count = req->queries.size();
      group->push_back(gf);
      ++conn->inflight_frames;
      for (Query& q : req->queries) group_queries->push_back(std::move(q));
      return;
    }
    case MessageType::kInsert: {
      StatusOr<InsertRequest> req = ParseInsert(frame.payload);
      if (!req.ok()) break;
      WriteAckResponse ack;
      ack.request_id = req->request_id;
      if (draining_) {
        ack.code = WireCode::kShuttingDown;
        ack.message = "server is draining";
        counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        const Status status = engine_->Insert(req->row);
        ack.code = WireCodeFromStatus(status);
        ack.message = status.message();
        counters_.writes_applied.fetch_add(1, std::memory_order_relaxed);
      }
      AppendWriteAck(ack, &conn->outbuf);
      return;
    }
    case MessageType::kInsertBatch: {
      StatusOr<InsertBatchRequest> req = ParseInsertBatch(frame.payload);
      if (!req.ok()) break;
      WriteAckResponse ack;
      ack.request_id = req->request_id;
      if (draining_) {
        ack.code = WireCode::kShuttingDown;
        ack.message = "server is draining";
        counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        const Status status = engine_->InsertBatch(req->rows);
        ack.code = WireCodeFromStatus(status);
        ack.message = status.message();
        counters_.writes_applied.fetch_add(1, std::memory_order_relaxed);
      }
      AppendWriteAck(ack, &conn->outbuf);
      return;
    }
    case MessageType::kDelete: {
      StatusOr<DeleteRequest> req = ParseDelete(frame.payload);
      if (!req.ok()) break;
      WriteAckResponse ack;
      ack.request_id = req->request_id;
      if (draining_) {
        ack.code = WireCode::kShuttingDown;
        ack.message = "server is draining";
        counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      } else {
        StatusOr<uint64_t> deleted = engine_->Delete(req->key);
        if (deleted.ok()) {
          ack.deleted = *deleted;
        } else {
          ack.code = WireCodeFromStatus(deleted.status());
          ack.message = deleted.status().message();
        }
        counters_.writes_applied.fetch_add(1, std::memory_order_relaxed);
      }
      AppendWriteAck(ack, &conn->outbuf);
      return;
    }
    case MessageType::kStats: {
      StatusOr<StatsRequest> req = ParseStats(frame.payload);
      if (!req.ok()) break;
      StatsResponse resp;
      resp.request_id = req->request_id;
      resp.entries = Introspect();
      AppendStatsResult(resp, &conn->outbuf);
      return;
    }
    case MessageType::kMetrics: {
      StatusOr<MetricsRequest> req = ParseMetrics(frame.payload);
      if (!req.ok()) break;
      // Answered inline like Stats: a full typed snapshot (every registry
      // histogram with its buckets) plus the flat Introspect() map.
      MetricsResponse resp;
      resp.request_id = req->request_id;
      resp.metrics = obs::MetricsRegistry::Instance().SnapshotAll();
      resp.entries = Introspect();
      AppendMetricsResult(resp, &conn->outbuf);
      return;
    }
    case MessageType::kHealth: {
      StatusOr<HealthRequest> req = ParseHealth(frame.payload);
      if (!req.ok()) break;
      // Like Ping: answered inline from the loop, even while draining or
      // overloaded — health must stay observable exactly when the server
      // is unhealthy.
      counters_.health_checks.fetch_add(1, std::memory_order_relaxed);
      const EngineHealth health = engine_->Health();
      HealthResponse resp;
      resp.request_id = req->request_id;
      resp.draining = draining_;
      resp.ready = !draining_ && health.ready;
      resp.persist_poisoned = health.persist_poisoned;
      resp.queue_depth = counters_.queue_depth.load(std::memory_order_relaxed);
      resp.connections_active =
          counters_.connections_active.load(std::memory_order_relaxed);
      AppendHealthResult(resp, &conn->outbuf);
      return;
    }
    default:
      // Response-typed or unknown frames from a client are a protocol
      // violation.
      break;
  }
  counters_.bad_frames.fetch_add(1, std::memory_order_relaxed);
  SendError(conn, 0, WireCode::kBadFrame,
            "unparseable or unexpected frame (type " +
                std::to_string(static_cast<int>(frame.type)) + ")");
  conn->closing = true;
}

void Server::SubmitGroup(Connection* conn, std::vector<GroupFrame> frames,
                         std::vector<Query> queries) {
  counters_.batches_submitted.fetch_add(1, std::memory_order_relaxed);
  counters_.queries_executed.fetch_add(queries.size(),
                                       std::memory_order_relaxed);
  obs::GlobalServeMetrics().frames->Add(frames.size());
  obs::GlobalServeMetrics().batch_queries->Record(
      static_cast<int64_t>(queries.size()));
  const uint64_t depth =
      counters_.queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  BumpHwm(counters_.queue_depth_hwm, depth);
  ++conn->inflight_groups;

  const uint64_t conn_id = conn->id;
  const Stopwatch submitted;  // Group frame latency is measured from here.
  // The callback runs on an engine worker (a pool thread, a router shard
  // completion, or inline when there is no pool): it only touches the
  // completion queue and the eventfd — all socket and connection state
  // stays loop-owned.
  engine_->RunBatchAsync(
      std::move(queries), [this, conn_id, submitted,
                           frames = std::move(frames)](
                              EngineBatchResult batch) mutable {
        {
          std::lock_guard<std::mutex> lock(completions_mu_);
          completions_.push_back(
              {conn_id, std::move(frames), std::move(batch), submitted});
        }
        const uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
      });
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    counters_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    // Group timings: end-to-end frame latency (submit -> drained), engine
    // execution time, and their difference — the queue wait (pool +
    // completion-drain delay). Recorded even if the connection died.
    const int64_t frame_ns = c.submitted.ElapsedNanos();
    const int64_t exec_ns = static_cast<int64_t>(c.batch.wall_ms * 1e6);
    obs::GlobalServeMetrics().frame_ns->Record(frame_ns);
    obs::GlobalServeMetrics().exec_ns->Record(exec_ns);
    obs::GlobalServeMetrics().queue_wait_ns->Record(
        frame_ns > exec_ns ? frame_ns - exec_ns : 0);
    auto it = by_id_.find(c.conn_id);
    if (it == by_id_.end() || it->second->dead) continue;  // Conn is gone.
    Connection* conn = it->second;
    FLOOD_CHECK(conn->inflight_groups > 0);
    --conn->inflight_groups;
    for (const GroupFrame& gf : c.frames) {
      FLOOD_CHECK(conn->inflight_frames > 0);
      --conn->inflight_frames;
      BatchResultResponse resp;
      resp.request_id = gf.request_id;
      resp.server_wall_ms = c.batch.wall_ms;
      if (!c.batch.status.ok()) {
        // One malformed query fails its whole group — all frames of the
        // group came from this same connection.
        resp.code = WireCodeFromStatus(c.batch.status);
        resp.message = c.batch.status.message();
      } else {
        // Partial shed at frame granularity: a multi-shard engine can fail
        // some queries (their shard shed or died) while the rest of the
        // group succeeds — a frame whose slice contains any failed query
        // becomes a typed error reply, sibling frames still get results.
        for (size_t i = 0; i < gf.count && resp.code == WireCode::kOk; ++i) {
          const EngineQueryResult& er = c.batch.results[gf.offset + i];
          if (er.code != WireCode::kOk) {
            resp.code = er.code;
            resp.message = er.message;
          }
        }
        if (resp.code == WireCode::kOk) {
          resp.results.reserve(gf.count);
          for (size_t i = 0; i < gf.count; ++i) {
            const EngineQueryResult& er = c.batch.results[gf.offset + i];
            WireQueryResult wr;
            wr.kind = er.kind;
            wr.skipped_empty = er.skipped_empty;
            wr.count = er.count;
            wr.sum = er.sum;
            wr.total_ns = er.total_ns;
            resp.results.push_back(wr);
          }
        }
      }
      AppendBatchResult(resp, &conn->outbuf);
    }
    FlushOrArm(conn);
    MaybeFinish(conn);
  }
}

void Server::SendError(Connection* conn, uint64_t request_id, WireCode code,
                       std::string_view message) {
  ErrorResponse resp;
  resp.request_id = request_id;
  resp.code = code;
  resp.message = std::string(message);
  AppendError(resp, &conn->outbuf);
}

void Server::FlushOrArm(Connection* conn) {
  if (conn->dead) return;
  while (conn->out_pos < conn->outbuf.size()) {
    const ssize_t n = failpoint::InjectedSend(
        "serve.send", conn->fd, conn->outbuf.data() + conn->out_pos,
        conn->outbuf.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      counters_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                    std::memory_order_relaxed);
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    counters_.send_errors.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return;
  }
  uint32_t want = EPOLLIN | EPOLLRDHUP;
  if (conn->out_pos < conn->outbuf.size()) {
    want |= EPOLLOUT;
  } else {
    conn->outbuf.clear();
    conn->out_pos = 0;
  }
  if (want != conn->events) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = want;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->events = want;
    }
  }
}

void Server::HandleWritable(Connection* conn) {
  FlushOrArm(conn);
  MaybeFinish(conn);
}

void Server::MaybeFinish(Connection* conn) {
  // `closing` is per-connection (protocol violation); `draining_` is the
  // server-wide shutdown — either way, close as soon as nothing is in
  // flight and every response has been flushed.
  if (conn->dead || (!conn->closing && !draining_)) return;
  if (conn->inflight_groups == 0 && conn->out_pos >= conn->outbuf.size()) {
    CloseConnection(conn);
  }
}

void Server::CloseConnection(Connection* conn) {
  // Deferred burial: see Connection::dead.
  conn->dead = true;
}

void Server::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->dead || conn->inflight_groups > 0) continue;
    if (now - conn->last_activity > limit) {
      counters_.connections_closed_idle.fetch_add(1,
                                                  std::memory_order_relaxed);
      CloseConnection(conn.get());
    }
  }
}

// --- Introspection ---------------------------------------------------------

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  c.connections_active =
      counters_.connections_active.load(std::memory_order_relaxed);
  c.connections_rejected =
      counters_.connections_rejected.load(std::memory_order_relaxed);
  c.connections_closed_idle =
      counters_.connections_closed_idle.load(std::memory_order_relaxed);
  c.frames_decoded = counters_.frames_decoded.load(std::memory_order_relaxed);
  c.bad_frames = counters_.bad_frames.load(std::memory_order_relaxed);
  c.requests_shed = counters_.requests_shed.load(std::memory_order_relaxed);
  c.batches_submitted =
      counters_.batches_submitted.load(std::memory_order_relaxed);
  c.queries_executed =
      counters_.queries_executed.load(std::memory_order_relaxed);
  c.writes_applied = counters_.writes_applied.load(std::memory_order_relaxed);
  c.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  c.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  c.queue_depth = counters_.queue_depth.load(std::memory_order_relaxed);
  c.queue_depth_hwm =
      counters_.queue_depth_hwm.load(std::memory_order_relaxed);
  c.loop_errors = counters_.loop_errors.load(std::memory_order_relaxed);
  c.accept_failures =
      counters_.accept_failures.load(std::memory_order_relaxed);
  c.recv_errors = counters_.recv_errors.load(std::memory_order_relaxed);
  c.send_errors = counters_.send_errors.load(std::memory_order_relaxed);
  c.health_checks = counters_.health_checks.load(std::memory_order_relaxed);
  return c;
}

std::vector<std::pair<std::string, double>> Server::Introspect() const {
  const ServerCounters c = counters();
  std::vector<std::pair<std::string, double>> entries;
  auto put = [&entries](const char* key, double value) {
    entries.emplace_back(key, value);
  };
  put("serve.connections_accepted",
      static_cast<double>(c.connections_accepted));
  put("serve.connections_active", static_cast<double>(c.connections_active));
  put("serve.connections_rejected",
      static_cast<double>(c.connections_rejected));
  put("serve.connections_closed_idle",
      static_cast<double>(c.connections_closed_idle));
  put("serve.frames_decoded", static_cast<double>(c.frames_decoded));
  put("serve.bad_frames", static_cast<double>(c.bad_frames));
  put("serve.requests_shed", static_cast<double>(c.requests_shed));
  put("serve.batches_submitted", static_cast<double>(c.batches_submitted));
  put("serve.queries_executed", static_cast<double>(c.queries_executed));
  put("serve.writes_applied", static_cast<double>(c.writes_applied));
  put("serve.bytes_in", static_cast<double>(c.bytes_in));
  put("serve.bytes_out", static_cast<double>(c.bytes_out));
  put("serve.queue_depth", static_cast<double>(c.queue_depth));
  put("serve.queue_depth_hwm", static_cast<double>(c.queue_depth_hwm));
  put("serve.loop_errors", static_cast<double>(c.loop_errors));
  put("serve.accept_failures", static_cast<double>(c.accept_failures));
  put("serve.recv_errors", static_cast<double>(c.recv_errors));
  put("serve.send_errors", static_cast<double>(c.send_errors));
  put("serve.health_checks", static_cast<double>(c.health_checks));
  // Engine gauges, same map: one Stats request observes the whole stack
  // (db.* for a database engine, router.*/shard<i>.* for a router).
  for (auto& entry : engine_->Introspect()) {
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace serve
}  // namespace flood
