#ifndef FLOOD_SERVE_SERVER_H_
#define FLOOD_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/database.h"
#include "common/status.h"
#include "common/timer.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace flood {
namespace serve {

/// Listener + runtime knobs for a Server. At least one of `uds_path` /
/// `listen_tcp` must be set.
struct ServerOptions {
  /// Unix-domain socket path ("" = no UDS listener). An existing socket
  /// file at this path is unlinked first (stale from a crashed server).
  std::string uds_path;
  /// Enables the TCP listener on `tcp_host`:`tcp_port`.
  bool listen_tcp = false;
  std::string tcp_host = "127.0.0.1";
  /// 0 = kernel-assigned; read the resolved port back via tcp_port().
  uint16_t tcp_port = 0;

  /// Accepted connections beyond this are closed immediately at accept.
  size_t max_connections = 1024;
  /// Admission control: the bounded submission queue. At most this many
  /// batch groups may be submitted-but-unanswered across all connections;
  /// RunBatch frames arriving beyond it are shed with kOverloaded instead
  /// of queueing unboundedly. Ping/Stats stay served from the event loop,
  /// so an overloaded server remains observable.
  size_t max_inflight_batches = 64;
  /// Per-connection cap on submitted-but-unanswered RunBatch frames; the
  /// excess is shed with kOverloaded (one hog can't monopolize the queue).
  size_t max_inflight_per_connection = 8;
  /// Connections idle (no bytes read or written) longer than this are
  /// closed. 0 disables the sweep.
  int64_t idle_timeout_ms = 60'000;

  /// Prometheus scrape endpoint: "host:port" (e.g. "127.0.0.1:9100",
  /// port 0 = kernel-assigned, read back via metrics_port()). "" (the
  /// default) disables it. The listener lives inside the same epoll loop
  /// as the wire protocol — no extra thread — and serves GET /metrics
  /// as text exposition v0.0.4 (one response per connection, then
  /// close). See docs/metrics.md.
  std::string metrics_addr;
};

/// Snapshot of the per-server counters (also flattened into the Stats wire
/// response and Introspect(), keys "serve.*").
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_rejected = 0;   ///< Closed at accept: table full.
  uint64_t connections_closed_idle = 0;
  uint64_t frames_decoded = 0;
  uint64_t bad_frames = 0;             ///< Poisoned streams (CRC, magic, ...).
  uint64_t requests_shed = 0;          ///< kOverloaded + kShuttingDown sheds.
  uint64_t batches_submitted = 0;      ///< RunBatchAsync calls issued.
  uint64_t queries_executed = 0;       ///< Queries inside submitted batches.
  uint64_t writes_applied = 0;         ///< Insert/InsertBatch/Delete frames.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t queue_depth = 0;            ///< Inflight batch groups right now.
  uint64_t queue_depth_hwm = 0;        ///< High-water mark since start.
  uint64_t loop_errors = 0;            ///< epoll_wait failures (fatal).
  uint64_t accept_failures = 0;        ///< accept4 errors (EMFILE, ...).
  uint64_t recv_errors = 0;            ///< recv errors that closed a conn.
  uint64_t send_errors = 0;            ///< send errors that closed a conn.
  uint64_t health_checks = 0;          ///< kHealth frames answered.
};

/// Non-blocking epoll serving loop in front of one BatchEngine — a local
/// flood::Database (the common case, via Create(Database*)) or the
/// scatter-gather Router over many shards (serve/router.h); the loop is
/// identical either way.
///
/// One thread owns every socket and all connection state; query execution
/// happens behind BatchEngine::RunBatchAsync (the database's own
/// ThreadPool, or the router's shard fan-out), whose completion callback
/// posts the finished batch back to the loop through an eventfd — the
/// loop never blocks on execution, execution never touches a socket.
///
/// Per-connection batching: each time a connection becomes readable, ALL
/// complete RunBatch frames buffered on it are concatenated into ONE
/// RunBatchAsync submission (one shared-lock acquisition, one shard pass),
/// and the combined result is split back into one response frame per
/// request. This is the reader-lock amortization that makes many small
/// pipelined requests cheap — bench_serving measures it directly.
///
/// Admission control: see ServerOptions::max_inflight_batches. Shedding
/// produces a typed kOverloaded error response; the connection stays open
/// and usable.
///
/// Drain: Shutdown() (async-signal-safe: one write to an eventfd, so it
/// can be called from a SIGTERM handler) stops accepting, sheds new
/// request frames with kShuttingDown, lets every in-flight batch finish,
/// flushes every response, closes, and Run()/the Start() thread returns.
///
/// The engine (and the Database behind it) must outlive the server and
/// must not be moved while it runs (the server holds a pointer and keeps
/// async batches in flight).
class Server {
 public:
  /// Binds and listens on the configured endpoints (no thread started
  /// yet). Errors: no listener configured, bind/listen failures, UDS path
  /// too long. This overload wraps `db` in an owned DatabaseEngine — the
  /// single-node serving path.
  static StatusOr<std::unique_ptr<Server>> Create(Database* db,
                                                  ServerOptions options);

  /// As above over any BatchEngine (e.g. a Router). The engine is not
  /// owned and must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Create(BatchEngine* engine,
                                                  ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the event loop on the calling thread until a drain completes
  /// (returns OK) or the loop itself fails (typed Internal with the errno,
  /// e.g. an epoll_wait failure — never a silent exit). Even on failure,
  /// in-flight batches are waited out before returning, so no completion
  /// callback can outlive the server.
  Status Run();

  /// Runs the event loop on a background thread; pair with Shutdown() +
  /// Join(). Calling Start() twice is an error (FLOOD_CHECK).
  void Start();

  /// Initiates the drain. Thread- and async-signal-safe; idempotent.
  void Shutdown();

  /// Waits for the Start() thread to finish and returns its Run() status.
  /// OK when called without a Start() thread.
  Status Join();

  /// Resolved TCP port (after Create; meaningful when listen_tcp).
  uint16_t tcp_port() const { return tcp_port_; }
  const std::string& uds_path() const { return options_.uds_path; }
  /// Resolved metrics HTTP port (after Create; meaningful when
  /// metrics_addr was set).
  uint16_t metrics_port() const { return metrics_port_; }

  /// Point-in-time counter snapshot; safe from any thread while running.
  ServerCounters counters() const;

  /// The counters as a flat key->value map ("serve.queue_depth_hwm", ...)
  /// plus the engine's gauges ("db.pending_writes", ... for a database,
  /// "router.*"/"shard<i>.*" for a router) — the same shape as the PR 5
  /// persistence telemetry and MultiDimIndex::DebugProperties, and exactly
  /// what the Stats wire request returns.
  std::vector<std::pair<std::string, double>> Introspect() const;

 private:
  struct Connection;

  /// A client RunBatch frame inside a submitted batch group: which reply
  /// id it gets and which slice of the group's combined results is its.
  struct GroupFrame {
    uint64_t request_id = 0;
    size_t offset = 0;
    size_t count = 0;
  };

  /// One finished RunBatchAsync group, posted from a worker back to the
  /// event loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::vector<GroupFrame> frames;
    EngineBatchResult batch;
    /// Started at SubmitGroup: elapsed at drain time is the group's
    /// end-to-end frame latency (flood_serve_frame_ns).
    Stopwatch submitted;
  };

  Server(BatchEngine* engine, std::unique_ptr<BatchEngine> owned,
         ServerOptions options);
  Status Init();

  Status Loop();
  void HandleAccept(int listener_fd);
  /// Accept-storm mitigation: on EMFILE/ENFILE-class accept failures the
  /// listeners leave the epoll set for a cooldown instead of spinning on a
  /// level-triggered event they can't clear; ResumeListeners() re-arms
  /// them once the cooldown elapses.
  void PauseListeners();
  void ResumeListeners();
  void HandleReadable(Connection* conn);
  /// Minimal HTTP/1.0-style handling for metrics-listener connections:
  /// buffer until the header terminator, answer GET / or /metrics with
  /// the Prometheus exposition, anything else with 404/405, then close.
  void HandleHttpReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void ProcessFrames(Connection* conn);
  void HandleFrame(Connection* conn, const Frame& frame,
                   std::vector<GroupFrame>* group,
                   std::vector<Query>* group_queries);
  void SubmitGroup(Connection* conn, std::vector<GroupFrame> frames,
                   std::vector<Query> queries);
  void DrainCompletions();
  void BeginDrain();
  void SweepIdle();
  void SendError(Connection* conn, uint64_t request_id, WireCode code,
                 std::string_view message);
  void FlushOrArm(Connection* conn);
  void CloseConnection(Connection* conn);
  /// Closes `conn` now if it is closing/draining with nothing pending.
  void MaybeFinish(Connection* conn);
  bool draining_done() const;

  BatchEngine* const engine_;
  /// Set by the Create(Database*) convenience: the DatabaseEngine adapter
  /// the server owns on the caller's behalf. engine_ points at it.
  std::unique_ptr<BatchEngine> owned_engine_;
  ServerOptions options_;

  int epoll_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int uds_listen_fd_ = -1;
  int metrics_listen_fd_ = -1;  ///< Prometheus HTTP listener (optional).
  int wake_fd_ = -1;      ///< eventfd: batch completions ready.
  int shutdown_fd_ = -1;  ///< eventfd: Shutdown() was called.
  uint16_t tcp_port_ = 0;
  uint16_t metrics_port_ = 0;

  /// Event-loop-owned connection state (no locking: only Loop() touches
  /// it). `by_id_` maps the generation-safe ids completions carry.
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<uint64_t, Connection*> by_id_;
  uint64_t next_conn_id_ = 1;
  bool draining_ = false;
  bool loop_done_ = false;
  /// Loop-thread-owned; read by Run()/Join() only after the loop exits
  /// (synchronized by the thread join).
  Status loop_status_ = Status::OK();
  bool listeners_paused_ = false;
  std::chrono::steady_clock::time_point listener_resume_at_;

  /// Pool workers push, the loop (woken by wake_fd_) pops. Mutable: the
  /// drain-progress check is const.
  mutable std::mutex completions_mu_;
  std::vector<Completion> completions_;

  /// Counters are atomics: written by the loop (and completion callbacks),
  /// read by counters()/Introspect() from any thread.
  struct AtomicCounters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_active{0};
    std::atomic<uint64_t> connections_rejected{0};
    std::atomic<uint64_t> connections_closed_idle{0};
    std::atomic<uint64_t> frames_decoded{0};
    std::atomic<uint64_t> bad_frames{0};
    std::atomic<uint64_t> requests_shed{0};
    std::atomic<uint64_t> batches_submitted{0};
    std::atomic<uint64_t> queries_executed{0};
    std::atomic<uint64_t> writes_applied{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> queue_depth{0};
    std::atomic<uint64_t> queue_depth_hwm{0};
    std::atomic<uint64_t> loop_errors{0};
    std::atomic<uint64_t> accept_failures{0};
    std::atomic<uint64_t> recv_errors{0};
    std::atomic<uint64_t> send_errors{0};
    std::atomic<uint64_t> health_checks{0};
  };
  AtomicCounters counters_;

  std::thread loop_thread_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace flood

#endif  // FLOOD_SERVE_SERVER_H_
