#include "storage/column.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "common/math_util.h"

namespace flood {
namespace {

/// Unpacks `n` deltas of compile-time width `W` starting at absolute bit
/// offset `bit` of `words`, adding `base`. Branch-free: the cross-word
/// spill is always OR-ed in. `(x << 1) << (63 - shift)` equals
/// `x << (64 - shift)` for shift in [1, 63] and, at shift == 0, leaves
/// only bit 63 polluted — which the W-bit mask (W < 64) discards.
/// `words` must have one readable word past the last encoded bit
/// (FromValues allocates the slack).
template <uint32_t W>
void UnpackBlock(const uint64_t* words, uint64_t bit, Value base, size_t n,
                 Value* out) {
  // Deltas are added to the base in uint64 (wrapping, hence well-defined)
  // arithmetic: a width-64 block can hold kValueMin and kValueMax together.
  const uint64_t ubase = static_cast<uint64_t>(base);
  if constexpr (W == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = base;
  } else if constexpr (W == 64) {
    // 128 * 64 bits per block keeps 64-bit-wide blocks word-aligned.
    const uint64_t* p = words + (bit >> 6);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<Value>(ubase + p[i]);
    }
  } else {
    constexpr uint64_t kMask = (uint64_t{1} << W) - 1;
    for (size_t i = 0; i < n; ++i, bit += W) {
      const size_t word = static_cast<size_t>(bit >> 6);
      const uint32_t shift = static_cast<uint32_t>(bit & 63);
      const uint64_t lo = words[word] >> shift;
      const uint64_t hi = (words[word + 1] << 1) << (63 - shift);
      out[i] = static_cast<Value>(ubase + ((lo | hi) & kMask));
    }
  }
}

using UnpackFn = void (*)(const uint64_t*, uint64_t, Value, size_t, Value*);

template <uint32_t... Ws>
constexpr std::array<UnpackFn, sizeof...(Ws)> MakeUnpackTable(
    std::integer_sequence<uint32_t, Ws...>) {
  return {&UnpackBlock<Ws>...};
}

/// One specialized unpacker per bit width 0..64.
constexpr std::array<UnpackFn, 65> kUnpackers =
    MakeUnpackTable(std::make_integer_sequence<uint32_t, 65>{});

}  // namespace

Column Column::FromValues(std::vector<Value> values, Encoding encoding) {
  Column col;
  col.encoding_ = encoding;
  col.size_ = values.size();

  const size_t n = values.size();
  const size_t num_blocks = (n + kBlockSize - 1) / kBlockSize;
  col.block_min_.reserve(num_blocks);
  col.block_max_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * kBlockSize;
    const size_t end = std::min(n, begin + kBlockSize);
    Value mn = values[begin];
    Value mx = values[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    col.block_min_.push_back(mn);
    col.block_max_.push_back(mx);
  }

  if (encoding == Encoding::kPlain) {
    col.plain_ = std::move(values);
    return col;
  }

  col.block_width_.reserve(num_blocks);
  col.block_bit_offset_.reserve(num_blocks);
  uint64_t total_bits = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    // Delta fits in the unsigned difference; int64 subtraction could
    // overflow for extreme ranges, so widen through uint64.
    const uint64_t max_delta = static_cast<uint64_t>(col.block_max_[b]) -
                               static_cast<uint64_t>(col.block_min_[b]);
    const uint32_t width = static_cast<uint32_t>(BitWidth(max_delta));
    col.block_width_.push_back(width);
    col.block_bit_offset_.push_back(total_bits);
    total_bits += static_cast<uint64_t>(kBlockSize) * width;
  }

  col.words_.assign((total_bits + 63) / 64 + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = i / kBlockSize;
    const uint32_t width = col.block_width_[b];
    if (width == 0) continue;
    const uint64_t delta = static_cast<uint64_t>(values[i]) -
                           static_cast<uint64_t>(col.block_min_[b]);
    const uint64_t bit = col.block_bit_offset_[b] + (i % kBlockSize) * width;
    const size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    col.words_[word] |= delta << shift;
    if (shift + width > 64) {
      col.words_[word + 1] |= delta >> (64 - shift);
    }
  }
  return col;
}

size_t Column::DecodeBlockInto(size_t block, Value* out) const {
  FLOOD_DCHECK(block < NumBlocks());
  const size_t begin = block * kBlockSize;
  const size_t n = std::min(kBlockSize, size_ - begin);
  if (encoding_ == Encoding::kPlain) {
    std::memcpy(out, plain_.data() + begin, n * sizeof(Value));
    return n;
  }
  kUnpackers[block_width_[block]](words_.data(), block_bit_offset_[block],
                                  block_min_[block], n, out);
  return n;
}

std::vector<Value> Column::Decode() const {
  std::vector<Value> out(size_);
  ForEach(0, size_, [&out](size_t i, Value v) { out[i] = v; });
  return out;
}

size_t Column::MemoryUsageBytes() const {
  const size_t zone_maps =
      (block_min_.size() + block_max_.size()) * sizeof(Value);
  if (encoding_ == Encoding::kPlain) {
    return plain_.size() * sizeof(Value) + zone_maps;
  }
  return zone_maps + block_width_.size() * sizeof(uint32_t) +
         block_bit_offset_.size() * sizeof(uint64_t) +
         words_.size() * sizeof(uint64_t);
}

PrefixSums::PrefixSums(const std::vector<Value>& values) {
  sums_.resize(values.size() + 1);
  sums_[0] = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    sums_[i + 1] = sums_[i] + values[i];
  }
}

}  // namespace flood
