#include "storage/column.h"

#include <algorithm>

#include "common/math_util.h"

namespace flood {

Column Column::FromValues(std::vector<Value> values, Encoding encoding) {
  Column col;
  col.encoding_ = encoding;
  col.size_ = values.size();
  if (encoding == Encoding::kPlain) {
    col.plain_ = std::move(values);
    return col;
  }

  const size_t n = values.size();
  const size_t num_blocks = (n + kBlockSize - 1) / kBlockSize;
  col.block_min_.reserve(num_blocks);
  col.block_width_.reserve(num_blocks);
  col.block_bit_offset_.reserve(num_blocks);

  uint64_t total_bits = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * kBlockSize;
    const size_t end = std::min(n, begin + kBlockSize);
    Value mn = values[begin];
    Value mx = values[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    // Delta fits in the unsigned difference; int64 subtraction could
    // overflow for extreme ranges, so widen through uint64.
    const uint64_t max_delta =
        static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
    const uint32_t width = static_cast<uint32_t>(BitWidth(max_delta));
    col.block_min_.push_back(mn);
    col.block_width_.push_back(width);
    col.block_bit_offset_.push_back(total_bits);
    total_bits += static_cast<uint64_t>(kBlockSize) * width;
  }

  col.words_.assign((total_bits + 63) / 64 + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = i / kBlockSize;
    const uint32_t width = col.block_width_[b];
    if (width == 0) continue;
    const uint64_t delta = static_cast<uint64_t>(values[i]) -
                           static_cast<uint64_t>(col.block_min_[b]);
    const uint64_t bit = col.block_bit_offset_[b] + (i % kBlockSize) * width;
    const size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    col.words_[word] |= delta << shift;
    if (shift + width > 64) {
      col.words_[word + 1] |= delta >> (64 - shift);
    }
  }
  return col;
}

std::vector<Value> Column::Decode() const {
  std::vector<Value> out(size_);
  ForEach(0, size_, [&out](size_t i, Value v) { out[i] = v; });
  return out;
}

size_t Column::MemoryUsageBytes() const {
  if (encoding_ == Encoding::kPlain) return plain_.size() * sizeof(Value);
  return block_min_.size() * sizeof(Value) +
         block_width_.size() * sizeof(uint32_t) +
         block_bit_offset_.size() * sizeof(uint64_t) +
         words_.size() * sizeof(uint64_t);
}

PrefixSums::PrefixSums(const std::vector<Value>& values) {
  sums_.resize(values.size() + 1);
  sums_[0] = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    sums_[i + 1] = sums_[i] + values[i];
  }
}

}  // namespace flood
