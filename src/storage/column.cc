#include "storage/column.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "common/math_util.h"

namespace flood {
namespace {

/// Unpacks `n` deltas of compile-time width `W` starting at absolute bit
/// offset `bit` of `words`, adding `base`. Branch-free: the cross-word
/// spill is always OR-ed in. `(x << 1) << (63 - shift)` equals
/// `x << (64 - shift)` for shift in [1, 63] and, at shift == 0, leaves
/// only bit 63 polluted — which the W-bit mask (W < 64) discards.
/// `words` must have one readable word past the last encoded bit
/// (FromValues allocates the slack).
template <uint32_t W>
void UnpackBlock(const uint64_t* words, uint64_t bit, Value base, size_t n,
                 Value* out) {
  // Deltas are added to the base in uint64 (wrapping, hence well-defined)
  // arithmetic: a width-64 block can hold kValueMin and kValueMax together.
  const uint64_t ubase = static_cast<uint64_t>(base);
  if constexpr (W == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = base;
  } else if constexpr (W == 64) {
    // 128 * 64 bits per block keeps 64-bit-wide blocks word-aligned.
    const uint64_t* p = words + (bit >> 6);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<Value>(ubase + p[i]);
    }
  } else {
    constexpr uint64_t kMask = (uint64_t{1} << W) - 1;
    for (size_t i = 0; i < n; ++i, bit += W) {
      const size_t word = static_cast<size_t>(bit >> 6);
      const uint32_t shift = static_cast<uint32_t>(bit & 63);
      const uint64_t lo = words[word] >> shift;
      const uint64_t hi = (words[word + 1] << 1) << (63 - shift);
      out[i] = static_cast<Value>(ubase + ((lo | hi) & kMask));
    }
  }
}

using UnpackFn = void (*)(const uint64_t*, uint64_t, Value, size_t, Value*);

template <uint32_t... Ws>
constexpr std::array<UnpackFn, sizeof...(Ws)> MakeUnpackTable(
    std::integer_sequence<uint32_t, Ws...>) {
  return {&UnpackBlock<Ws>...};
}

/// One specialized unpacker per bit width 0..64.
constexpr std::array<UnpackFn, 65> kUnpackers =
    MakeUnpackTable(std::make_integer_sequence<uint32_t, 65>{});

}  // namespace

Column Column::FromValues(std::vector<Value> values, Encoding encoding) {
  Column col;
  col.encoding_ = encoding;
  col.size_ = values.size();

  const size_t n = values.size();
  const size_t num_blocks = (n + kBlockSize - 1) / kBlockSize;
  col.block_min_.reserve(num_blocks);
  col.block_max_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * kBlockSize;
    const size_t end = std::min(n, begin + kBlockSize);
    Value mn = values[begin];
    Value mx = values[begin];
    for (size_t i = begin + 1; i < end; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    col.block_min_.push_back(mn);
    col.block_max_.push_back(mx);
  }

  if (encoding == Encoding::kPlain) {
    col.plain_ = std::move(values);
    return col;
  }

  col.block_width_.reserve(num_blocks);
  col.block_bit_offset_.reserve(num_blocks);
  uint64_t total_bits = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    // Delta fits in the unsigned difference; int64 subtraction could
    // overflow for extreme ranges, so widen through uint64.
    const uint64_t max_delta = static_cast<uint64_t>(col.block_max_[b]) -
                               static_cast<uint64_t>(col.block_min_[b]);
    const uint32_t width = static_cast<uint32_t>(BitWidth(max_delta));
    col.block_width_.push_back(width);
    col.block_bit_offset_.push_back(total_bits);
    total_bits += static_cast<uint64_t>(kBlockSize) * width;
  }

  col.words_.assign((total_bits + 63) / 64 + kDecodeSlackWords, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = i / kBlockSize;
    const uint32_t width = col.block_width_[b];
    if (width == 0) continue;
    const uint64_t delta = static_cast<uint64_t>(values[i]) -
                           static_cast<uint64_t>(col.block_min_[b]);
    const uint64_t bit = col.block_bit_offset_[b] + (i % kBlockSize) * width;
    const size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    col.words_[word] |= delta << shift;
    if (shift + width > 64) {
      col.words_[word + 1] |= delta >> (64 - shift);
    }
  }
  return col;
}

size_t Column::DecodeBlockInto(size_t block, Value* out) const {
  FLOOD_DCHECK(block < NumBlocks());
  const size_t begin = block * kBlockSize;
  const size_t n = std::min(kBlockSize, size_ - begin);
  if (encoding_ == Encoding::kPlain) {
    std::memcpy(out, plain_.data() + begin, n * sizeof(Value));
    return n;
  }
  kUnpackers[block_width_[block]](words_.data(), block_bit_offset_[block],
                                  block_min_[block], n, out);
  return n;
}

std::vector<Value> Column::Decode() const {
  std::vector<Value> out(size_);
  ForEach(0, size_, [&out](size_t i, Value v) { out[i] = v; });
  return out;
}

size_t Column::MemoryUsageBytes() const {
  const size_t zone_maps =
      (block_min_.size() + block_max_.size()) * sizeof(Value);
  if (encoding_ == Encoding::kPlain) {
    return plain_.size() * sizeof(Value) + zone_maps;
  }
  return zone_maps + block_width_.size() * sizeof(uint32_t) +
         block_bit_offset_.size() * sizeof(uint64_t) +
         words_.size() * sizeof(uint64_t);
}

namespace {

/// Reads a u64 element count and pre-validates it against the bytes left
/// in `r` (each element occupies at least `elem_bytes`), so corrupt counts
/// can never drive a huge allocation.
bool ReadCount(ByteReader* r, size_t elem_bytes, size_t* out) {
  const uint64_t n = r->GetU64();
  if (!r->ok() || n > r->remaining() / elem_bytes) {
    r->MarkFailed();
    return false;
  }
  *out = static_cast<size_t>(n);
  return true;
}

template <typename T, typename GetFn>
bool ReadVector(ByteReader* r, size_t n, std::vector<T>* out, GetFn get) {
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) out->push_back(get(r));
  return r->ok();
}

}  // namespace

void Column::AppendTo(ByteWriter* w) const {
  w->PutU8(encoding_ == Encoding::kPlain ? 0 : 1);
  w->PutU64(size_);
  for (Value v : block_min_) w->PutI64(v);
  for (Value v : block_max_) w->PutI64(v);
  if (encoding_ == Encoding::kPlain) {
    for (Value v : plain_) w->PutI64(v);
    return;
  }
  // Bit widths fit a byte; bit offsets are recomputed from them on read.
  uint64_t total_bits = 0;
  for (uint32_t width : block_width_) {
    w->PutU8(static_cast<uint8_t>(width));
    total_bits += static_cast<uint64_t>(kBlockSize) * width;
  }
  // The on-disk page carries exactly one slack word (the original format);
  // any extra in-memory decode slack is zero-filled and re-grown on read.
  const size_t serialized_words = (total_bits + 63) / 64 + 1;
  FLOOD_DCHECK(serialized_words <= words_.size());
  w->PutU64(serialized_words);
  for (size_t i = 0; i < serialized_words; ++i) w->PutU64(words_[i]);
}

StatusOr<Column> Column::ReadFrom(ByteReader* r) {
  const auto fail = [] {
    return Status::InvalidArgument("truncated or corrupt column pages");
  };
  const uint8_t encoding = r->GetU8();
  const uint64_t size = r->GetU64();
  if (!r->ok() || encoding > 1) return fail();
  // A size near 2^64 would wrap NumBlocks() to 0 and sail past every
  // per-block bound below; any genuine column needs at least one zone-map
  // byte pair per block, so bound size by the bytes actually present.
  if (size / kBlockSize > r->remaining() / 16) return fail();

  Column col;
  col.encoding_ = encoding == 0 ? Encoding::kPlain : Encoding::kBlockDelta;
  col.size_ = static_cast<size_t>(size);
  const size_t num_blocks = col.NumBlocks();
  // Zone maps alone need 16 bytes per block; reject impossible sizes
  // before any allocation sized from them.
  if (num_blocks > r->remaining() / 16) return fail();
  const auto get_i64 = [](ByteReader* br) { return br->GetI64(); };
  if (!ReadVector(r, num_blocks, &col.block_min_, get_i64) ||
      !ReadVector(r, num_blocks, &col.block_max_, get_i64)) {
    return fail();
  }

  if (col.encoding_ == Encoding::kPlain) {
    if (col.size_ > r->remaining() / sizeof(Value)) return fail();
    if (!ReadVector(r, col.size_, &col.plain_, get_i64)) return fail();
    return col;
  }

  if (num_blocks > r->remaining()) return fail();
  uint64_t total_bits = 0;
  col.block_width_.reserve(num_blocks);
  col.block_bit_offset_.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t width = r->GetU8();
    if (width > 64) return fail();
    col.block_width_.push_back(width);
    col.block_bit_offset_.push_back(total_bits);
    total_bits += static_cast<uint64_t>(kBlockSize) * width;
  }
  size_t num_words = 0;
  if (!ReadCount(r, sizeof(uint64_t), &num_words)) return fail();
  // The word count is implied by the widths (FromValues invariant,
  // including the one-word slack the unpackers rely on); a mismatch means
  // the pages are inconsistent.
  if (num_words != (total_bits + 63) / 64 + 1) return fail();
  const auto get_u64 = [](ByteReader* br) { return br->GetU64(); };
  if (!ReadVector(r, num_words, &col.words_, get_u64)) return fail();
  // Re-grow the in-memory decode slack the SIMD packed filter relies on
  // (the page stores one slack word; see AppendTo).
  col.words_.resize((total_bits + 63) / 64 + kDecodeSlackWords, 0);
  return col;
}

PrefixSums::PrefixSums(const std::vector<Value>& values) {
  sums_.resize(values.size() + 1);
  sums_[0] = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    sums_[i + 1] = sums_[i] + values[i];
  }
}

}  // namespace flood
