#ifndef FLOOD_STORAGE_COLUMN_H_
#define FLOOD_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/macros.h"
#include "common/status.h"

namespace flood {

/// Attribute values are 64-bit signed integers (paper §7.1: strings are
/// dictionary-encoded and decimals are scaled to integers before indexing).
using Value = int64_t;
using RowId = uint64_t;

inline constexpr Value kValueMin = INT64_MIN;
inline constexpr Value kValueMax = INT64_MAX;

/// An immutable in-memory column.
///
/// Supports two encodings:
///  * kPlain: a flat array of 64-bit values.
///  * kBlockDelta: the paper's block-delta compression (§7.1) — values are
///    grouped into blocks of 128; each value is stored as the delta to the
///    block minimum, bit-packed with the narrowest width that fits the
///    block. Element access stays O(1).
///
/// Both encodings carry a per-block zone map (min/max value per block of
/// kBlockSize rows) so scan kernels can skip or exact-accept whole blocks
/// without decoding; see ScanRange in query/scan_util.h.
class Column {
 public:
  enum class Encoding { kPlain, kBlockDelta };

  static constexpr size_t kBlockSize = 128;

  /// Readable (zeroed) words kept past the last encoded bit of `words_`.
  /// The width-specialized unpackers need one; the SIMD packed filter's
  /// byte-granular 64-bit lane loads need a second (query/simd.h). The
  /// slack is in-memory only — AppendTo serializes exactly one slack word,
  /// so the on-disk format is unchanged.
  static constexpr size_t kDecodeSlackWords = 2;

  Column() = default;

  /// Builds a column from `values` using the requested encoding.
  static Column FromValues(std::vector<Value> values,
                           Encoding encoding = Encoding::kBlockDelta);

  /// Number of values.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Encoding encoding() const { return encoding_; }

  /// Random access; constant time under both encodings.
  Value Get(size_t i) const {
    FLOOD_DCHECK(i < size_);
    if (encoding_ == Encoding::kPlain) return plain_[i];
    return GetBlockDelta(i);
  }

  /// Calls f(index, value) for every index in [begin, end). Decodes
  /// block-wise, which is considerably faster than repeated Get() for
  /// sequential scans.
  template <typename F>
  void ForEach(size_t begin, size_t end, F&& f) const {
    FLOOD_DCHECK(begin <= end && end <= size_);
    if (encoding_ == Encoding::kPlain) {
      for (size_t i = begin; i < end; ++i) f(i, plain_[i]);
      return;
    }
    size_t i = begin;
    while (i < end) {
      const size_t block = i / kBlockSize;
      const size_t block_end = std::min(end, (block + 1) * kBlockSize);
      // uint64 (wrapping) addition: a width-64 block can pair kValueMin
      // with kValueMax, where signed addition would overflow.
      const uint64_t base = static_cast<uint64_t>(block_min_[block]);
      const uint32_t width = block_width_[block];
      const uint64_t bit_base = block_bit_offset_[block];
      for (; i < block_end; ++i) {
        const uint64_t bit = bit_base + (i % kBlockSize) * width;
        f(i, static_cast<Value>(base + ExtractBits(bit, width)));
      }
    }
  }

  /// Number of kBlockSize-row blocks (the last one may be partial).
  size_t NumBlocks() const { return (size_ + kBlockSize - 1) / kBlockSize; }

  /// Zone map: smallest / largest value inside block `b`. Valid for both
  /// encodings.
  Value BlockMin(size_t b) const {
    FLOOD_DCHECK(b < block_min_.size());
    return block_min_[b];
  }
  Value BlockMax(size_t b) const {
    FLOOD_DCHECK(b < block_max_.size());
    return block_max_[b];
  }

  /// Decodes all values of block `block` into `out` (capacity >=
  /// kBlockSize) and returns how many were written (kBlockSize except for
  /// a trailing partial block). Branch-free width-specialized bit
  /// unpacking: one indirect call per 128 values instead of a div/mod and
  /// shift-mask per value.
  size_t DecodeBlockInto(size_t block, Value* out) const;

  /// The raw bit-packed deltas of one kBlockDelta block, for kernels that
  /// filter without materializing values (the SIMD packed path): value i of
  /// the block is the `width`-bit unsigned delta at absolute bit
  /// `bit_offset + i * width` of `bytes`, added to `base`. `bytes` stays
  /// readable for kDecodeSlackWords past the column's last encoded bit.
  struct PackedBlock {
    const uint8_t* bytes = nullptr;
    uint64_t bit_offset = 0;
    Value base = 0;
    uint32_t width = 0;
  };

  /// Fills `out` for block `b`. Returns false under kPlain (no packed
  /// representation; scan the decoded values instead).
  bool GetPackedBlock(size_t b, PackedBlock* out) const {
    FLOOD_DCHECK(b < NumBlocks());
    if (encoding_ == Encoding::kPlain) return false;
    out->bytes = reinterpret_cast<const uint8_t*>(words_.data());
    out->bit_offset = block_bit_offset_[b];
    out->base = block_min_[b];
    out->width = block_width_[b];
    return true;
  }

  /// Software-prefetches block `b`'s encoded bytes (packed words or plain
  /// values) into cache — issued by scan kernels for the next
  /// zone-map-surviving block while the current one filters.
  void PrefetchBlock(size_t b) const {
    FLOOD_DCHECK(b < NumBlocks());
    const size_t begin = b * kBlockSize;
    const char* p;
    size_t bytes;
    if (encoding_ == Encoding::kPlain) {
      p = reinterpret_cast<const char*>(plain_.data() + begin);
      bytes = std::min(kBlockSize, size_ - begin) * sizeof(Value);
    } else {
      const uint64_t bit = block_bit_offset_[b];
      p = reinterpret_cast<const char*>(words_.data()) + (bit >> 3);
      bytes = (static_cast<size_t>(block_width_[b]) * kBlockSize + 7) / 8;
    }
    for (size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(p + off, /*rw=*/0, /*locality=*/2);
    }
  }

  /// Materializes the column into a flat vector.
  std::vector<Value> Decode() const;

  /// Heap footprint of the encoded representation, in bytes.
  size_t MemoryUsageBytes() const;

  /// Appends the encoded representation (raw pages: zone maps + either the
  /// plain values or the bit-packed words) to `w`. The round-trip through
  /// ReadFrom is bit-exact — no re-encoding — so a restored column returns
  /// identical values in identical storage order at identical cost.
  void AppendTo(ByteWriter* w) const;

  /// Parses AppendTo output from `r`. Every length and width is validated
  /// against the remaining input before any allocation, so truncated or
  /// corrupt pages yield InvalidArgument, never UB.
  static StatusOr<Column> ReadFrom(ByteReader* r);

 private:
  Value GetBlockDelta(size_t i) const {
    const size_t block = i / kBlockSize;
    const uint32_t width = block_width_[block];
    const uint64_t bit =
        block_bit_offset_[block] + (i % kBlockSize) * width;
    // uint64 (wrapping) addition; see ForEach.
    return static_cast<Value>(static_cast<uint64_t>(block_min_[block]) +
                              ExtractBits(bit, width));
  }

  /// Reads `width` bits starting at absolute bit offset `bit` from words_.
  uint64_t ExtractBits(uint64_t bit, uint32_t width) const {
    if (width == 0) return 0;
    const size_t word = bit >> 6;
    const uint32_t shift = static_cast<uint32_t>(bit & 63);
    uint64_t v = words_[word] >> shift;
    if (shift + width > 64) {
      v |= words_[word + 1] << (64 - shift);
    }
    if (width == 64) return v;
    return v & ((uint64_t{1} << width) - 1);
  }

  Encoding encoding_ = Encoding::kPlain;
  size_t size_ = 0;

  // kPlain storage.
  std::vector<Value> plain_;

  // Zone maps, both encodings. block_min_ doubles as the delta base under
  // kBlockDelta.
  std::vector<Value> block_min_;
  std::vector<Value> block_max_;

  // kBlockDelta storage.
  std::vector<uint32_t> block_width_;
  std::vector<uint64_t> block_bit_offset_;
  std::vector<uint64_t> words_;
};

/// Prefix-sum side column enabling O(1) SUM over exact ranges (§7.1
/// optimization 2). sums[i] = sum of values[0..i).
class PrefixSums {
 public:
  PrefixSums() = default;

  /// Builds prefix sums over `values`.
  explicit PrefixSums(const std::vector<Value>& values);

  /// Sum of values in [begin, end).
  int64_t RangeSum(size_t begin, size_t end) const {
    FLOOD_DCHECK(begin <= end && end < sums_.size());
    return sums_[end] - sums_[begin];
  }

  bool empty() const { return sums_.size() <= 1; }
  size_t MemoryUsageBytes() const { return sums_.size() * sizeof(int64_t); }

 private:
  std::vector<int64_t> sums_;
};

}  // namespace flood

#endif  // FLOOD_STORAGE_COLUMN_H_
