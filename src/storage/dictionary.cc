#include "storage/dictionary.h"

#include <algorithm>
#include <numeric>

namespace flood {

Value Dictionary::Encode(std::string_view s) {
  auto it = code_of_.find(std::string(s));
  if (it != code_of_.end()) return it->second;
  const Value code = static_cast<Value>(strings_.size());
  strings_.emplace_back(s);
  code_of_.emplace(strings_.back(), code);
  return code;
}

Value Dictionary::Lookup(std::string_view s) const {
  auto it = code_of_.find(std::string(s));
  if (it == code_of_.end()) return -1;
  return it->second;
}

const std::string& Dictionary::Decode(Value code) const {
  FLOOD_CHECK(code >= 0 && static_cast<size_t>(code) < strings_.size());
  return strings_[static_cast<size_t>(code)];
}

std::vector<Value> Dictionary::Finalize() {
  const size_t n = strings_.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return strings_[a] < strings_[b];
  });
  // order[rank] = old code; invert to old -> new.
  std::vector<Value> mapping(n);
  std::vector<std::string> sorted(n);
  for (size_t rank = 0; rank < n; ++rank) {
    mapping[order[rank]] = static_cast<Value>(rank);
    sorted[rank] = std::move(strings_[order[rank]]);
  }
  strings_ = std::move(sorted);
  code_of_.clear();
  for (size_t i = 0; i < n; ++i) {
    code_of_.emplace(strings_[i], static_cast<Value>(i));
  }
  return mapping;
}

void Dictionary::AppendTo(ByteWriter* w) const {
  w->PutU64(strings_.size());
  for (const std::string& s : strings_) w->PutString(s);
}

StatusOr<Dictionary> Dictionary::ReadFrom(ByteReader* r) {
  const uint64_t n = r->GetU64();
  // Each entry costs at least its 4-byte length prefix.
  if (!r->ok() || n > r->remaining() / 4) {
    return Status::InvalidArgument("truncated or corrupt dictionary pages");
  }
  Dictionary dict;
  dict.strings_.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    dict.strings_.push_back(r->GetString());
    if (!r->ok()) {
      return Status::InvalidArgument("truncated or corrupt dictionary pages");
    }
    dict.code_of_.emplace(dict.strings_.back(), static_cast<Value>(i));
  }
  return dict;
}

size_t Dictionary::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& s : strings_) bytes += s.size() + sizeof(std::string);
  bytes += code_of_.size() * (sizeof(Value) + sizeof(void*) * 2);
  return bytes;
}

}  // namespace flood
