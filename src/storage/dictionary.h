#ifndef FLOOD_STORAGE_DICTIONARY_H_
#define FLOOD_STORAGE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/column.h"

namespace flood {

/// Order-preserving-insertion dictionary encoder for string attributes
/// (paper §7.1: "any string values are dictionary encoded prior to
/// evaluation"). Codes are dense integers assigned in first-seen order;
/// call Finalize() to re-map codes into lexicographic order so that range
/// predicates over the encoded column are meaningful.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `s`, inserting it if unseen.
  Value Encode(std::string_view s);

  /// Returns the code for `s`, or -1 if it was never inserted.
  Value Lookup(std::string_view s) const;

  /// Returns the string for `code`. Requires a valid code.
  const std::string& Decode(Value code) const;

  /// Re-assigns codes in lexicographic string order and returns the mapping
  /// old_code -> new_code. Apply the mapping to any already-encoded column.
  std::vector<Value> Finalize();

  size_t size() const { return strings_.size(); }
  size_t MemoryUsageBytes() const;

  /// Appends the dictionary pages (strings in code order; the reverse map
  /// is rebuilt on read) to `w`.
  void AppendTo(ByteWriter* w) const;

  /// Parses AppendTo output. Truncated or corrupt input returns
  /// InvalidArgument.
  static StatusOr<Dictionary> ReadFrom(ByteReader* r);

 private:
  std::unordered_map<std::string, Value> code_of_;
  std::vector<std::string> strings_;
};

}  // namespace flood

#endif  // FLOOD_STORAGE_DICTIONARY_H_
