#include "storage/table.h"

#include <algorithm>

namespace flood {

StatusOr<Table> Table::FromColumns(std::vector<std::vector<Value>> columns,
                                   Column::Encoding encoding,
                                   std::vector<std::string> names) {
  if (columns.empty()) {
    return Status::InvalidArgument("table requires at least one column");
  }
  const size_t n = columns[0].size();
  for (const auto& c : columns) {
    if (c.size() != n) {
      return Status::InvalidArgument("columns must have equal length");
    }
  }
  if (!names.empty() && names.size() != columns.size()) {
    return Status::InvalidArgument("names must match number of columns");
  }

  Table t;
  t.num_rows_ = n;
  t.columns_.reserve(columns.size());
  t.min_.reserve(columns.size());
  t.max_.reserve(columns.size());
  for (size_t d = 0; d < columns.size(); ++d) {
    Value mn = kValueMax;
    Value mx = kValueMin;
    for (Value v : columns[d]) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    if (n == 0) {
      mn = 0;
      mx = 0;
    }
    t.min_.push_back(mn);
    t.max_.push_back(mx);
    t.columns_.push_back(Column::FromValues(std::move(columns[d]), encoding));
  }
  if (names.empty()) {
    for (size_t d = 0; d < t.columns_.size(); ++d) {
      t.names_.push_back("dim" + std::to_string(d));
    }
  } else {
    t.names_ = std::move(names);
  }
  return t;
}

Table Table::Reorder(const std::vector<RowId>& perm) const {
  FLOOD_CHECK(perm.size() == num_rows_);
  std::vector<std::vector<Value>> cols(num_dims());
  for (size_t d = 0; d < num_dims(); ++d) {
    const std::vector<Value> src = columns_[d].Decode();
    std::vector<Value>& dst = cols[d];
    dst.resize(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      dst[i] = src[static_cast<size_t>(perm[i])];
    }
  }
  StatusOr<Table> t =
      FromColumns(std::move(cols), columns_[0].encoding(), names_);
  FLOOD_CHECK(t.ok());
  return std::move(t).value();
}

void Table::AppendTo(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(num_dims()));
  w->PutU64(num_rows_);
  for (size_t d = 0; d < num_dims(); ++d) {
    w->PutString(names_[d]);
    columns_[d].AppendTo(w);
  }
}

StatusOr<Table> Table::ReadFrom(ByteReader* r) {
  const uint32_t num_dims = r->GetU32();
  const uint64_t num_rows = r->GetU64();
  // A column stores at least 9 bytes (encoding + size), a name 4.
  if (!r->ok() || num_dims == 0 || num_dims > r->remaining() / 13) {
    return Status::InvalidArgument("truncated or corrupt table pages");
  }
  Table t;
  t.num_rows_ = static_cast<size_t>(num_rows);
  for (uint32_t d = 0; d < num_dims; ++d) {
    t.names_.push_back(r->GetString());
    StatusOr<Column> col = Column::ReadFrom(r);
    if (!col.ok()) return col.status();
    if (col->size() != t.num_rows_) {
      return Status::InvalidArgument("column length mismatch in table pages");
    }
    // Table min/max are the fold of the column's block zone maps.
    Value mn = kValueMax;
    Value mx = kValueMin;
    for (size_t b = 0; b < col->NumBlocks(); ++b) {
      mn = std::min(mn, col->BlockMin(b));
      mx = std::max(mx, col->BlockMax(b));
    }
    if (t.num_rows_ == 0) {
      mn = 0;
      mx = 0;
    }
    t.min_.push_back(mn);
    t.max_.push_back(mx);
    t.columns_.push_back(std::move(*col));
  }
  return t;
}

size_t Table::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.MemoryUsageBytes();
  return bytes;
}

}  // namespace flood
