#ifndef FLOOD_STORAGE_TABLE_H_
#define FLOOD_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace flood {

/// An immutable in-memory columnar table: `num_dims()` columns of equal
/// length. This is the substrate every index in this repository builds on.
///
/// Indexes are *clustered*: they define a row order and are built over a
/// reordered copy of the table (see Reorder()).
class Table {
 public:
  Table() = default;

  /// Builds a table from per-dimension value vectors. All vectors must have
  /// equal length. Column names are optional ("dim0", "dim1", ... if empty).
  static StatusOr<Table> FromColumns(
      std::vector<std::vector<Value>> columns,
      Column::Encoding encoding = Column::Encoding::kBlockDelta,
      std::vector<std::string> names = {});

  size_t num_rows() const { return num_rows_; }
  size_t num_dims() const { return columns_.size(); }

  const Column& column(size_t dim) const {
    FLOOD_DCHECK(dim < columns_.size());
    return columns_[dim];
  }

  const std::string& name(size_t dim) const { return names_[dim]; }

  /// Value of `dim` at row `row` (O(1)).
  Value Get(RowId row, size_t dim) const {
    return columns_[dim].Get(static_cast<size_t>(row));
  }

  /// Materializes one column as a flat vector (used at index build time).
  std::vector<Value> DecodeColumn(size_t dim) const {
    return columns_[dim].Decode();
  }

  /// Minimum/maximum value in a dimension (precomputed at construction).
  Value min_value(size_t dim) const { return min_[dim]; }
  Value max_value(size_t dim) const { return max_[dim]; }

  /// Returns a copy of this table with rows permuted so that new row i is
  /// old row perm[i]. `perm` must be a permutation of [0, num_rows).
  Table Reorder(const std::vector<RowId>& perm) const;

  /// Total bytes across encoded columns.
  size_t MemoryUsageBytes() const;

  /// Bytes the table would occupy as raw uncompressed 64-bit values.
  size_t UncompressedBytes() const {
    return num_rows_ * num_dims() * sizeof(Value);
  }

  /// Appends the table (names + encoded column pages) to `w`. Bit-exact
  /// round-trip through ReadFrom: storage order, encodings, and zone maps
  /// are preserved, never re-encoded.
  void AppendTo(ByteWriter* w) const;

  /// Parses AppendTo output; per-dimension min/max are rebuilt from the
  /// restored zone maps. Truncated/corrupt input returns InvalidArgument.
  static StatusOr<Table> ReadFrom(ByteReader* r);

 private:
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
  std::vector<std::string> names_;
  std::vector<Value> min_;
  std::vector<Value> max_;
};

}  // namespace flood

#endif  // FLOOD_STORAGE_TABLE_H_
