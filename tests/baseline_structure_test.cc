#include <gtest/gtest.h>

#include "baselines/clustered_index.h"
#include "baselines/grid_file.h"
#include "baselines/hyperoctree.h"
#include "baselines/kd_tree.h"
#include "baselines/r_tree.h"
#include "baselines/ub_tree.h"
#include "baselines/zorder_index.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

BuildContext Ctx(const Table& t) {
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 1000, 3);
  return ctx;
}

TEST(ClusteredStructureTest, DataSortedBySortDim) {
  const Table t = MakeTable(DataShape::kSkewed, 5000, 3, 1);
  ClusteredColumnIndex::Options o;
  o.sort_dim = 1;
  ClusteredColumnIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  EXPECT_EQ(index.sort_dim(), 1u);
  Value prev = kValueMin;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    const Value v = index.data().Get(r, 1);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(KdTreeStructureTest, LeafSizesRespectPageBudget) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 2);
  KdTreeIndex::Options o;
  o.page_size = 256;
  KdTreeIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  // n/page lower bound; duplicates can force larger leaves on other shapes.
  EXPECT_GE(index.num_leaves(), 20'000u / 256u);
}

TEST(HyperoctreeStructureTest, LeafCountScalesWithPageSize) {
  const Table t = MakeTable(DataShape::kClustered, 20'000, 3, 3);
  HyperoctreeIndex::Options small;
  small.page_size = 128;
  HyperoctreeIndex::Options large;
  large.page_size = 4096;
  HyperoctreeIndex a(small);
  HyperoctreeIndex b(large);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(a.Build(t, ctx).ok());
  ASSERT_TRUE(b.Build(t, ctx).ok());
  EXPECT_GT(a.num_leaves(), b.num_leaves());
  EXPECT_GT(a.IndexSizeBytes(), b.IndexSizeBytes());
}

TEST(RTreeStructureTest, HeightAndLeaves) {
  const Table t = MakeTable(DataShape::kUniform, 30'000, 3, 4);
  RTreeIndex::Options o;
  o.leaf_capacity = 128;
  o.fanout = 8;
  RTreeIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  EXPECT_GE(index.num_leaves(), 30'000u / 128u);
  EXPECT_GE(index.height(), 3);  // ~235 leaves at fanout 8.
}

TEST(GridFileStructureTest, BucketsPartitionRows) {
  const Table t = MakeTable(DataShape::kUniform, 10'000, 3, 5);
  GridFileIndex::Options o;
  o.page_size = 512;
  GridFileIndex index(o);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index.Build(t, ctx).ok());
  EXPECT_GT(index.num_buckets(), 1u);
}

TEST(GridFileStructureTest, BudgetTripsOnPathologicalSkew) {
  // A dimension where most mass piles on a single value with a huge
  // outlier range forces midpoint splits to keep missing the mass; the
  // directory budget must trip rather than hang (paper: N/A entries).
  Rng rng(6);
  const size_t n = 30'000;
  std::vector<Value> spike(n);
  std::vector<Value> other(n);
  for (size_t i = 0; i < n; ++i) {
    // 99.9% of values identical; rare huge outliers.
    spike[i] = rng.NextDouble() < 0.999 ? 0 : rng.UniformInt(1, int64_t{1} << 60);
    other[i] = rng.UniformInt(0, 1000);
  }
  StatusOr<Table> t = Table::FromColumns({spike, other});
  ASSERT_TRUE(t.ok());
  GridFileIndex::Options o;
  o.page_size = 64;
  o.max_directory_entries = 1 << 12;
  GridFileIndex index(o);
  const BuildContext ctx = Ctx(*t);
  const Status s = index.Build(*t, ctx);
  // Either it finishes within budget or fails cleanly — never hangs/crashes.
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ZOrderStructureTest, PageSizeControlsMetadataFootprint) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 7);
  ZOrderIndex::Options small;
  small.page_size = 128;
  ZOrderIndex::Options large;
  large.page_size = 2048;
  ZOrderIndex a(small);
  ZOrderIndex b(large);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(a.Build(t, ctx).ok());
  ASSERT_TRUE(b.Build(t, ctx).ok());
  EXPECT_GT(a.IndexSizeBytes(), b.IndexSizeBytes());
}

TEST(UbTreeStructureTest, SkippingScansFewerPointsThanZOrderOnSparseBoxes) {
  // A query box tiny in both dims: the Z curve enters/exits repeatedly, so
  // BIGMIN skipping should visit far fewer points than the naive z-range.
  const Table t = MakeTable(DataShape::kUniform, 50'000, 2, 8);
  UbTreeIndex ub;
  ZOrderIndex::Options zo;
  zo.page_size = 256;
  ZOrderIndex z(zo);
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(ub.Build(t, ctx).ok());
  ASSERT_TRUE(z.Build(t, ctx).ok());
  Query q = QueryBuilder(2)
                .Range(0, 500'000, 520'000)
                .Range(1, 500'000, 520'000)
                .Build();
  QueryStats ub_stats;
  QueryStats z_stats;
  CountVisitor v1;
  CountVisitor v2;
  ub.Execute(q, v1, &ub_stats);
  z.Execute(q, v2, &z_stats);
  EXPECT_EQ(v1.count(), v2.count());
  EXPECT_LT(ub_stats.points_scanned, z_stats.points_scanned + 1);
}

TEST(BaselineSizeTest, IndexSizesArePositiveAndOrdered) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 9);
  const BuildContext ctx = Ctx(t);
  UbTreeIndex ub;
  ASSERT_TRUE(ub.Build(t, ctx).ok());
  // UB-tree stores per-point keys: by far the largest.
  ZOrderIndex z;
  ASSERT_TRUE(z.Build(t, ctx).ok());
  EXPECT_GT(ub.IndexSizeBytes(), z.IndexSizeBytes());
  EXPECT_GT(z.IndexSizeBytes(), 0u);
}

}  // namespace
}  // namespace flood
