// Structural checks on the baseline indexes (leaf budgets, directory
// behavior, metadata footprints), driven entirely through the
// IndexRegistry and the generic DebugProperties() introspection — no
// concrete baseline headers.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "api/index_registry.h"
#include "query/visitor.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

BuildContext Ctx(const Table& t) {
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(t, 1000, 3);
  return ctx;
}

std::unique_ptr<MultiDimIndex> Make(const std::string& name,
                                    const IndexOptions& opts = {}) {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create(name, opts);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return index.ok() ? std::move(*index) : nullptr;
}

std::map<std::string, double> Props(const MultiDimIndex& index) {
  std::map<std::string, double> props;
  for (const auto& [key, value] : index.DebugProperties()) {
    props[key] = value;
  }
  return props;
}

TEST(ClusteredStructureTest, DataSortedBySortDim) {
  const Table t = MakeTable(DataShape::kSkewed, 5000, 3, 1);
  std::unique_ptr<MultiDimIndex> index =
      Make("clustered", IndexOptions().SetInt("sort_dim", 1));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  EXPECT_EQ(Props(*index)["sort_dim"], 1.0);
  EXPECT_EQ(index->Describe(), "Clustered[sort_dim=1]");
  Value prev = kValueMin;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    const Value v = index->data().Get(r, 1);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(KdTreeStructureTest, LeafSizesRespectPageBudget) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 2);
  std::unique_ptr<MultiDimIndex> index =
      Make("kdtree", IndexOptions().SetInt("page_size", 256));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  // n/page lower bound; duplicates can force larger leaves on other shapes.
  EXPECT_GE(Props(*index)["num_leaves"], 20'000.0 / 256.0);
}

TEST(HyperoctreeStructureTest, LeafCountScalesWithPageSize) {
  const Table t = MakeTable(DataShape::kClustered, 20'000, 3, 3);
  std::unique_ptr<MultiDimIndex> a =
      Make("octree", IndexOptions().SetInt("page_size", 128));
  std::unique_ptr<MultiDimIndex> b =
      Make("octree", IndexOptions().SetInt("page_size", 4096));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(a->Build(t, ctx).ok());
  ASSERT_TRUE(b->Build(t, ctx).ok());
  EXPECT_GT(Props(*a)["num_leaves"], Props(*b)["num_leaves"]);
  EXPECT_GT(a->IndexSizeBytes(), b->IndexSizeBytes());
}

TEST(RTreeStructureTest, HeightAndLeaves) {
  const Table t = MakeTable(DataShape::kUniform, 30'000, 3, 4);
  std::unique_ptr<MultiDimIndex> index = Make(
      "rtree",
      IndexOptions().SetInt("leaf_capacity", 128).SetInt("fanout", 8));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  EXPECT_GE(Props(*index)["num_leaves"], 30'000.0 / 128.0);
  EXPECT_GE(Props(*index)["height"], 3.0);  // ~235 leaves at fanout 8.
}

TEST(GridFileStructureTest, BucketsPartitionRows) {
  const Table t = MakeTable(DataShape::kUniform, 10'000, 3, 5);
  std::unique_ptr<MultiDimIndex> index =
      Make("grid_file", IndexOptions().SetInt("page_size", 512));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(index->Build(t, ctx).ok());
  EXPECT_GT(Props(*index)["num_buckets"], 1.0);
}

TEST(GridFileStructureTest, BudgetTripsOnPathologicalSkew) {
  // A dimension where most mass piles on a single value with a huge
  // outlier range forces midpoint splits to keep missing the mass; the
  // directory budget must trip rather than hang (paper: N/A entries).
  Rng rng(6);
  const size_t n = 30'000;
  std::vector<Value> spike(n);
  std::vector<Value> other(n);
  for (size_t i = 0; i < n; ++i) {
    // 99.9% of values identical; rare huge outliers.
    spike[i] = rng.NextDouble() < 0.999 ? 0 : rng.UniformInt(1, int64_t{1} << 60);
    other[i] = rng.UniformInt(0, 1000);
  }
  StatusOr<Table> t = Table::FromColumns({spike, other});
  ASSERT_TRUE(t.ok());
  std::unique_ptr<MultiDimIndex> index =
      Make("grid_file", IndexOptions()
                            .SetInt("page_size", 64)
                            .SetInt("max_directory_entries", 1 << 12));
  const BuildContext ctx = Ctx(*t);
  const Status s = index->Build(*t, ctx);
  // Either it finishes within budget or fails cleanly — never hangs/crashes.
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(ZOrderStructureTest, PageSizeControlsMetadataFootprint) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 7);
  std::unique_ptr<MultiDimIndex> a =
      Make("zorder", IndexOptions().SetInt("page_size", 128));
  std::unique_ptr<MultiDimIndex> b =
      Make("zorder", IndexOptions().SetInt("page_size", 2048));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(a->Build(t, ctx).ok());
  ASSERT_TRUE(b->Build(t, ctx).ok());
  EXPECT_GT(Props(*a)["num_pages"], Props(*b)["num_pages"]);
  EXPECT_GT(a->IndexSizeBytes(), b->IndexSizeBytes());
}

TEST(UbTreeStructureTest, SkippingScansFewerPointsThanZOrderOnSparseBoxes) {
  // A query box tiny in both dims: the Z curve enters/exits repeatedly, so
  // BIGMIN skipping should visit far fewer points than the naive z-range.
  const Table t = MakeTable(DataShape::kUniform, 50'000, 2, 8);
  std::unique_ptr<MultiDimIndex> ub = Make("ubtree");
  std::unique_ptr<MultiDimIndex> z =
      Make("zorder", IndexOptions().SetInt("page_size", 256));
  const BuildContext ctx = Ctx(t);
  ASSERT_TRUE(ub->Build(t, ctx).ok());
  ASSERT_TRUE(z->Build(t, ctx).ok());
  Query q = QueryBuilder(2)
                .Range(0, 500'000, 520'000)
                .Range(1, 500'000, 520'000)
                .Build();
  QueryStats ub_stats;
  QueryStats z_stats;
  CountVisitor v1;
  CountVisitor v2;
  ub->Execute(q, v1, &ub_stats);
  z->Execute(q, v2, &z_stats);
  EXPECT_EQ(v1.count(), v2.count());
  EXPECT_LT(ub_stats.points_scanned, z_stats.points_scanned + 1);
}

TEST(BaselineSizeTest, IndexSizesArePositiveAndOrdered) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 9);
  const BuildContext ctx = Ctx(t);
  std::unique_ptr<MultiDimIndex> ub = Make("ubtree");
  ASSERT_TRUE(ub->Build(t, ctx).ok());
  // UB-tree stores per-point keys: by far the largest.
  std::unique_ptr<MultiDimIndex> z = Make("zorder");
  ASSERT_TRUE(z->Build(t, ctx).ok());
  EXPECT_GT(ub->IndexSizeBytes(), z->IndexSizeBytes());
  EXPECT_GT(z->IndexSizeBytes(), 0u);
}

}  // namespace
}  // namespace flood
