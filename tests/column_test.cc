#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "data/distributions.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace flood {
namespace {

using Encoding = Column::Encoding;

class ColumnRoundTripTest
    : public ::testing::TestWithParam<std::tuple<Encoding, size_t>> {};

TEST_P(ColumnRoundTripTest, UniformValues) {
  const auto [encoding, n] = GetParam();
  Rng rng(42);
  std::vector<Value> values = UniformColumn(n, -1'000'000, 1'000'000, rng);
  const Column col = Column::FromValues(values, encoding);
  ASSERT_EQ(col.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(col.Get(i), values[i]) << i;
  EXPECT_EQ(col.Decode(), values);
}

TEST_P(ColumnRoundTripTest, SkewedValues) {
  const auto [encoding, n] = GetParam();
  Rng rng(43);
  std::vector<Value> values = LognormalColumn(n, 8.0, 2.0, 1.0, rng);
  const Column col = Column::FromValues(values, encoding);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(col.Get(i), values[i]) << i;
}

TEST_P(ColumnRoundTripTest, ConstantValues) {
  const auto [encoding, n] = GetParam();
  std::vector<Value> values(n, 7777);
  const Column col = Column::FromValues(values, encoding);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(col.Get(i), 7777) << i;
}

TEST_P(ColumnRoundTripTest, ExtremeValues) {
  const auto [encoding, n] = GetParam();
  Rng rng(44);
  std::vector<Value> values(n);
  for (auto& v : values) {
    const double roll = rng.NextDouble();
    if (roll < 0.3) {
      v = kValueMin;
    } else if (roll < 0.6) {
      v = kValueMax;
    } else {
      v = rng.UniformInt(kValueMin, kValueMax);
    }
  }
  const Column col = Column::FromValues(values, encoding);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(col.Get(i), values[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, ColumnRoundTripTest,
    ::testing::Combine(::testing::Values(Encoding::kPlain,
                                         Encoding::kBlockDelta),
                       ::testing::Values(size_t{1}, size_t{127}, size_t{128},
                                         size_t{129}, size_t{1000},
                                         size_t{4096})),
    [](const auto& info) {
      const Encoding enc = std::get<0>(info.param);
      const size_t n = std::get<1>(info.param);
      return std::string(enc == Encoding::kPlain ? "Plain" : "BlockDelta") +
             "_" + std::to_string(n);
    });

TEST(ColumnTest, ForEachMatchesGet) {
  Rng rng(45);
  std::vector<Value> values = UniformColumn(5000, 0, 1000, rng);
  const Column col = Column::FromValues(values, Encoding::kBlockDelta);
  // Sub-range not aligned to block boundaries.
  size_t calls = 0;
  col.ForEach(100, 4321, [&](size_t i, Value v) {
    EXPECT_EQ(v, values[i]);
    ++calls;
  });
  EXPECT_EQ(calls, 4321u - 100u);
}

TEST(ColumnTest, ForEachEmptyRange) {
  const Column col =
      Column::FromValues({1, 2, 3}, Encoding::kBlockDelta);
  size_t calls = 0;
  col.ForEach(2, 2, [&](size_t, Value) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(ColumnTest, BlockDeltaCompressesNarrowData) {
  Rng rng(46);
  // Values in a narrow band: deltas fit in few bits.
  std::vector<Value> values = UniformColumn(100'000, 1'000'000, 1'000'255,
                                            rng);
  const Column compressed =
      Column::FromValues(values, Encoding::kBlockDelta);
  const Column plain = Column::FromValues(values, Encoding::kPlain);
  EXPECT_LT(compressed.MemoryUsageBytes(), plain.MemoryUsageBytes() / 4);
}

class ColumnBlockTest : public ::testing::TestWithParam<Encoding> {};

TEST_P(ColumnBlockTest, DecodeBlockIntoMatchesGet) {
  const Encoding enc = GetParam();
  Rng rng(47);
  // 4 full blocks plus a partial tail; wide value range.
  std::vector<Value> values =
      UniformColumn(4 * Column::kBlockSize + 61, -1'000'000'000,
                    1'000'000'000, rng);
  const Column col = Column::FromValues(values, enc);
  Value buf[Column::kBlockSize];
  size_t covered = 0;
  for (size_t b = 0; b < col.NumBlocks(); ++b) {
    const size_t n = col.DecodeBlockInto(b, buf);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[i], values[b * Column::kBlockSize + i]) << b << ":" << i;
    }
    covered += n;
  }
  EXPECT_EQ(covered, values.size());
}

TEST_P(ColumnBlockTest, DecodeBlockIntoAllWidths) {
  const Encoding enc = GetParam();
  Rng rng(48);
  for (uint32_t w = 0; w <= 64; ++w) {
    std::vector<Value> values(Column::kBlockSize + 17);
    const uint64_t mask =
        w == 0 ? 0 : (w >= 64 ? ~uint64_t{0} : (uint64_t{1} << w) - 1);
    const Value base = w >= 64 ? kValueMin : -123'456;
    for (size_t i = 0; i < values.size(); ++i) {
      uint64_t delta = rng.Next() & mask;
      if (i == 0) delta = 0;
      if (i == 1) delta = mask;  // Pin the block's delta width to w.
      values[i] = static_cast<Value>(static_cast<uint64_t>(base) + delta);
    }
    const Column col = Column::FromValues(values, enc);
    Value buf[Column::kBlockSize];
    for (size_t b = 0; b < col.NumBlocks(); ++b) {
      const size_t n = col.DecodeBlockInto(b, buf);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(buf[i], values[b * Column::kBlockSize + i])
            << "w=" << w << " " << b << ":" << i;
      }
    }
  }
}

TEST_P(ColumnBlockTest, ZoneMapsCoverBlockExtremes) {
  const Encoding enc = GetParam();
  Rng rng(49);
  std::vector<Value> values =
      UniformColumn(3 * Column::kBlockSize + 5, -500, 500, rng);
  const Column col = Column::FromValues(values, enc);
  ASSERT_EQ(col.NumBlocks(), 4u);
  for (size_t b = 0; b < col.NumBlocks(); ++b) {
    const size_t begin = b * Column::kBlockSize;
    const size_t end = std::min(values.size(), begin + Column::kBlockSize);
    const auto [mn, mx] =
        std::minmax_element(values.begin() + static_cast<ptrdiff_t>(begin),
                            values.begin() + static_cast<ptrdiff_t>(end));
    EXPECT_EQ(col.BlockMin(b), *mn) << b;
    EXPECT_EQ(col.BlockMax(b), *mx) << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, ColumnBlockTest,
                         ::testing::Values(Encoding::kPlain,
                                           Encoding::kBlockDelta),
                         [](const auto& info) {
                           return info.param == Encoding::kPlain
                                      ? "Plain"
                                      : "BlockDelta";
                         });

TEST(ColumnTest, EmptyColumn) {
  const Column col = Column::FromValues({}, Encoding::kBlockDelta);
  EXPECT_EQ(col.size(), 0u);
  EXPECT_TRUE(col.empty());
  EXPECT_TRUE(col.Decode().empty());
}

// Serialization (the snapshot substrate): AppendTo -> ReadFrom must be
// bit-exact across encodings, value shapes, and partial trailing blocks.
TEST(ColumnSerializeTest, AppendReadRoundTripIsExact) {
  Rng rng(44);
  for (const Encoding encoding : {Encoding::kPlain, Encoding::kBlockDelta}) {
    for (const size_t n : {size_t{1}, size_t{127}, size_t{128}, size_t{129},
                           size_t{5000}}) {
      std::vector<Value> values = UniformColumn(n, -1'000'000, 1'000'000,
                                                rng);
      values[0] = kValueMin;  // Exercise the width-64 extreme-range path.
      if (n > 1) values[1] = kValueMax;
      const Column col = Column::FromValues(values, encoding);

      std::string bytes;
      ByteWriter w(&bytes);
      col.AppendTo(&w);
      ByteReader r(bytes);
      StatusOr<Column> restored = Column::ReadFrom(&r);
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(r.remaining(), 0u);
      ASSERT_EQ(restored->size(), n);
      EXPECT_EQ(restored->encoding(), encoding);
      EXPECT_EQ(restored->Decode(), values);
      EXPECT_EQ(restored->MemoryUsageBytes(), col.MemoryUsageBytes());
      for (size_t b = 0; b < col.NumBlocks(); ++b) {
        EXPECT_EQ(restored->BlockMin(b), col.BlockMin(b));
        EXPECT_EQ(restored->BlockMax(b), col.BlockMax(b));
      }
    }
  }
}

TEST(ColumnSerializeTest, TruncatedAndCorruptPagesAreRejected) {
  Rng rng(45);
  std::vector<Value> values = UniformColumn(1000, 0, 1 << 20, rng);
  const Column col = Column::FromValues(values, Encoding::kBlockDelta);
  std::string bytes;
  ByteWriter w(&bytes);
  col.AppendTo(&w);

  for (const size_t len : {size_t{0}, size_t{5}, bytes.size() / 2,
                           bytes.size() - 1}) {
    ByteReader r(bytes.data(), len);
    EXPECT_FALSE(Column::ReadFrom(&r).ok()) << len;
  }
  // An impossible bit width must be rejected structurally.
  std::string mutated = bytes;
  const size_t width_offset = 1 + 8 + 2 * 8 * col.NumBlocks();
  mutated[width_offset] = 65;
  ByteReader r(mutated);
  EXPECT_FALSE(Column::ReadFrom(&r).ok());

  // A near-2^64 size would wrap the block count to zero and bypass every
  // per-block bound; it must be rejected before any allocation.
  for (const uint64_t size :
       {~uint64_t{0}, ~uint64_t{0} - 100, uint64_t{1} << 60}) {
    std::string huge;
    ByteWriter hw(&huge);
    hw.PutU8(1);  // kBlockDelta.
    hw.PutU64(size);
    hw.PutU64(0);  // A few plausible trailing bytes.
    ByteReader hr(huge);
    EXPECT_FALSE(Column::ReadFrom(&hr).ok()) << size;
  }
}

TEST(PrefixSumsTest, RangeSums) {
  PrefixSums sums({1, 2, 3, 4, 5});
  EXPECT_EQ(sums.RangeSum(0, 5), 15);
  EXPECT_EQ(sums.RangeSum(1, 3), 5);
  EXPECT_EQ(sums.RangeSum(2, 2), 0);
  EXPECT_EQ(sums.RangeSum(4, 5), 5);
}

TEST(PrefixSumsTest, NegativeValues) {
  PrefixSums sums({-5, 10, -3});
  EXPECT_EQ(sums.RangeSum(0, 3), 2);
  EXPECT_EQ(sums.RangeSum(0, 1), -5);
}

TEST(PrefixSumsTest, EmptyIsEmpty) {
  PrefixSums sums;
  EXPECT_TRUE(sums.empty());
  PrefixSums sums2(std::vector<Value>{});
  EXPECT_TRUE(sums2.empty());
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary dict;
  const Value a = dict.Encode("apple");
  const Value b = dict.Encode("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Encode("apple"), a);  // Idempotent.
  EXPECT_EQ(dict.Decode(a), "apple");
  EXPECT_EQ(dict.Decode(b), "banana");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupMissingReturnsMinusOne) {
  Dictionary dict;
  dict.Encode("x");
  EXPECT_EQ(dict.Lookup("y"), -1);
  EXPECT_EQ(dict.Lookup("x"), 0);
}

TEST(DictionaryTest, FinalizeOrdersLexicographically) {
  Dictionary dict;
  const Value zebra = dict.Encode("zebra");
  const Value apple = dict.Encode("apple");
  const Value mango = dict.Encode("mango");
  const std::vector<Value> mapping = dict.Finalize();
  // After finalize, codes sort like strings.
  EXPECT_EQ(mapping[static_cast<size_t>(apple)], 0);
  EXPECT_EQ(mapping[static_cast<size_t>(mango)], 1);
  EXPECT_EQ(mapping[static_cast<size_t>(zebra)], 2);
  EXPECT_EQ(dict.Decode(0), "apple");
  EXPECT_EQ(dict.Decode(2), "zebra");
  EXPECT_EQ(dict.Lookup("mango"), 1);
}

}  // namespace
}  // namespace flood
