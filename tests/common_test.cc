#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/inline_vec.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace flood {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(29);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(23);
  ZipfGenerator zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50'000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
  // All samples in range (counts vector would have thrown otherwise).
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 50'000);
}

TEST(ZipfTest, SkewGrowsWithExponent) {
  Rng rng(31);
  ZipfGenerator flat(100, 0.2);
  ZipfGenerator steep(100, 2.0);
  int flat_zero = 0;
  int steep_zero = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (flat.Sample(rng) == 0) ++flat_zero;
    if (steep.Sample(rng) == 0) ++steep_zero;
  }
  EXPECT_GT(steep_zero, flat_zero * 2);
}

TEST(MathTest, MeanAndQuantile) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  std::vector<int> v{5, 1, 4, 2, 3};
  EXPECT_EQ(Quantile(v, 0.0), 1);
  EXPECT_EQ(Quantile(v, 0.5), 3);
  EXPECT_EQ(Quantile(v, 1.0), 5);
}

TEST(MathTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(~uint64_t{0}), 64);
}

TEST(MathTest, Clamp) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-1, 0, 10), 0);
  EXPECT_EQ(Clamp(11, 0, 10), 10);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 3), 0);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100'000; ++i) x = x + std::sqrt(i);
  EXPECT_GT(sw.ElapsedNanos(), 0);
  const int64_t first = sw.ElapsedNanos();
  EXPECT_GE(sw.ElapsedNanos(), first);
}

TEST(TimerTest, RestartResets) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100'000; ++i) x = x + std::sqrt(i);
  const int64_t before = sw.ElapsedNanos();
  sw.Restart();
  EXPECT_LT(sw.ElapsedNanos(), before);
}

TEST(InlineVecTest, StaysInlineUnderCapacity) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i * 10);
}

TEST(InlineVecTest, SpillsToHeapPreservingContents) {
  InlineVec<uint64_t, 2> v;
  for (uint64_t i = 0; i < 100; ++i) v.push_back(i * i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * i);
  EXPECT_EQ(v.back(), 99u * 99u);
}

TEST(InlineVecTest, RangeForAndClear) {
  InlineVec<size_t, 8> v;
  for (size_t i = 0; i < 20; ++i) v.push_back(i);
  size_t sum = 0;
  for (size_t x : v) sum += x;
  EXPECT_EQ(sum, 190u);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7u);
}

}  // namespace
}  // namespace flood
