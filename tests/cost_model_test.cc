#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"
#include "data/datasets.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;

Workload SmallWorkload(const Table& t, size_t n, uint64_t seed) {
  Workload w;
  for (size_t i = 0; i < n; ++i) w.Add(testing::RandomQuery(t, seed + i));
  return w;
}

TEST(CostFeaturesTest, FromStatsComputesRatios) {
  QueryStats stats;
  stats.cells_visited = 10;
  stats.points_scanned = 1000;
  stats.points_exact = 400;
  stats.ranges_scanned = 5;
  GridLayout layout = GridLayout::Default(3, 100);
  Query q = QueryBuilder(3).Range(0, 0, 5).Range(2, 0, 5).Build();
  const auto f =
      CostModel::Features::FromStats(stats, q, layout, /*table_rows=*/5000);
  EXPECT_DOUBLE_EQ(f.nc, 10.0);
  EXPECT_DOUBLE_EQ(f.ns, 1000.0);
  EXPECT_DOUBLE_EQ(f.dims_filtered, 2.0);
  EXPECT_DOUBLE_EQ(f.avg_visited_per_cell, 100.0);
  EXPECT_DOUBLE_EQ(f.exact_fraction, 0.4);
  EXPECT_DOUBLE_EQ(f.avg_run_length, 200.0);
  EXPECT_DOUBLE_EQ(f.sort_filtered, 1.0);  // dim2 is Default()'s sort dim.
  EXPECT_EQ(f.ToVector().size(), 9u);
}

TEST(CostModelTest, DefaultModelPredictsEquationOne) {
  const CostModel model = CostModel::Default();
  CostModel::Features f;
  f.nc = 10;
  f.ns = 1000;
  f.sort_filtered = 1;
  const double with_refine = model.PredictQueryTimeNs(f);
  f.sort_filtered = 0;
  const double without = model.PredictQueryTimeNs(f);
  EXPECT_GT(with_refine, without);  // w_r only applies when sort filtered.
  EXPECT_GT(without, 0.0);
  // Doubling Ns should increase predicted time.
  CostModel::Features f2 = f;
  f2.ns = 2000;
  EXPECT_GT(model.PredictQueryTimeNs(f2), model.PredictQueryTimeNs(f));
}

TEST(CostModelTest, GenerateExamplesProducesPlausibleWeights) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 21);
  const Workload w = SmallWorkload(t, 20, 500);
  CostModel::CalibrationOptions opts;
  opts.num_layouts = 3;
  opts.max_queries = 20;
  opts.max_cells = 1 << 10;
  const auto examples = CostModel::GenerateExamples(t, w, opts);
  ASSERT_TRUE(examples.ok()) << examples.status().ToString();
  EXPECT_GT(examples->size(), 20u);
  for (const auto& ex : *examples) {
    EXPECT_GE(ex.wp, 0.0);
    EXPECT_GE(ex.wr, 0.0);
    EXPECT_GE(ex.ws, 0.0);
    EXPECT_LT(ex.ws, 1e6) << "per-point scan cost should be well under 1ms";
    EXPECT_GT(ex.features.nc, 0.0);
  }
}

TEST(CostModelTest, CalibrateTrainsAllPredictorFamilies) {
  const Table t = MakeTable(DataShape::kUniform, 15'000, 3, 22);
  const Workload w = SmallWorkload(t, 15, 600);
  for (CostModel::Predictor p :
       {CostModel::Predictor::kConstant, CostModel::Predictor::kLinear,
        CostModel::Predictor::kForest}) {
    CostModel::CalibrationOptions opts;
    opts.num_layouts = 2;
    opts.max_queries = 15;
    opts.max_cells = 1 << 10;
    opts.predictor = p;
    const auto model = CostModel::Calibrate(t, w, opts);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(model->predictor(), p);
    CostModel::Features f;
    f.nc = 50;
    f.ns = 5000;
    f.total_cells = 1024;
    f.avg_cell_size = 15;
    f.sort_filtered = 1;
    f.avg_visited_per_cell = 100;
    f.avg_run_length = 100;
    const double cost = model->PredictQueryTimeNs(f);
    EXPECT_TRUE(std::isfinite(cost));
    EXPECT_GT(cost, 0.0);
  }
}

TEST(CostModelTest, RejectsEmptyInputs) {
  const Table t = MakeTable(DataShape::kUniform, 100, 2, 23);
  CostModel::CalibrationOptions opts;
  EXPECT_FALSE(CostModel::Calibrate(t, Workload(), opts).ok());
}

TEST(CostMonitorTest, SignalsDegradation) {
  CostMonitor monitor(/*degradation_threshold=*/2.0, /*ewma_alpha=*/0.5);
  monitor.Rebase(100.0);
  EXPECT_FALSE(monitor.ShouldRetrain());
  monitor.Observe(110);
  EXPECT_FALSE(monitor.ShouldRetrain());
  for (int i = 0; i < 20; ++i) monitor.Observe(1000);
  EXPECT_TRUE(monitor.ShouldRetrain());
  monitor.Rebase(1000.0);  // Retrained: new baseline.
  EXPECT_FALSE(monitor.ShouldRetrain());
}

}  // namespace
}  // namespace flood
