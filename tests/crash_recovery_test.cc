// Crash safety of the WAL (src/persist): a child process opens a database
// over a deterministic table with a WAL, acknowledges each committed
// insert over a pipe, and is SIGKILLed mid-stream. The parent then reopens
// table + WAL and verifies that every acknowledged write survived and that
// no torn or partial record was applied (the replay path is checksum-
// validated and every restored row must match the child's value pattern).
// Runs under ASan/UBSan in CI like every other test (the child never exits
// normally, so no sanitizer shutdown races).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "persist/wal.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::DataShape;
using testing::MakeTable;
using testing::TempFile;

/// Row i staged by the child: a recognizable pattern so the parent can
/// verify integrity of every replayed record, not just the count.
std::vector<Value> ChildRow(uint64_t i) {
  return {static_cast<Value>(i), static_cast<Value>(i * 7 + 3)};
}

void RunKillRecovery(Durability durability, size_t acks_to_wait) {
  const Table base = MakeTable(DataShape::kUniform, 400, 2, 93);
  TempFile wal(durability == Durability::kSync ? "sync.wal" : "async.wal");
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.wal_path = wal.path();
  options.durability = durability;

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: insert forever, acknowledging each row only after its WAL
    // commit returned. Never exits normally — the parent SIGKILLs it.
    ::close(fds[0]);
    StatusOr<Database> db = Database::Open(base, options);
    if (!db.ok()) ::_exit(2);
    for (uint64_t i = 0;; ++i) {
      if (!db->Insert(ChildRow(i)).ok()) ::_exit(3);
      if (::write(fds[1], &i, sizeof(i)) != sizeof(i)) ::_exit(4);
    }
  }
  ::close(fds[1]);

  // Collect acknowledgements, then kill the child mid-write-stream.
  uint64_t last_acked = 0;
  size_t acks = 0;
  while (acks < acks_to_wait) {
    uint64_t i = 0;
    const ssize_t n = ::read(fds[0], &i, sizeof(i));
    ASSERT_EQ(n, static_cast<ssize_t>(sizeof(i)))
        << "child died before producing acks";
    last_acked = i;
    ++acks;
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ::close(fds[0]);

  // Recovery: every acknowledged insert must be visible; commits that
  // raced the SIGKILL may or may not have landed, but whatever replays
  // must be an intact prefix of the child's stream.
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const size_t recovered = db->delta_inserts();
  EXPECT_GE(recovered, last_acked + 1);
  for (uint64_t i = 0; i < recovered; ++i) {
    EXPECT_EQ(db->GetRow(base.num_rows() + i), ChildRow(i)) << i;
  }
  EXPECT_EQ(db->Run(QueryBuilder(2).Count().Build()).count,
            base.num_rows() + recovered);

  // The post-recovery log keeps accepting writes, and they stack on top
  // of the replayed ones at the next reopen.
  ASSERT_TRUE(db->Insert(ChildRow(recovered)).ok());
  db = StatusOr<Database>(Status::Internal("closed"));  // Drop the fd.
  StatusOr<Database> again = Database::Open(base, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->delta_inserts(), recovered + 1);
}

TEST(CrashRecoveryTest, SigkillLosesNoAcknowledgedWriteAsync) {
  RunKillRecovery(Durability::kAsync, 150);
}

TEST(CrashRecoveryTest, SigkillLosesNoAcknowledgedWriteSync) {
  RunKillRecovery(Durability::kSync, 40);
}

}  // namespace
}  // namespace flood
