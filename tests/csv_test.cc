#include <gtest/gtest.h>

#include <sstream>

#include "core/flood_index.h"
#include "data/csv.h"
#include "query/executor.h"

namespace flood {
namespace {

TEST(CsvReadTest, IntegerColumns) {
  const auto csv = ReadCsvString("a,b\n1,10\n2,20\n-3,30\n");
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  EXPECT_EQ(csv->table.num_rows(), 3u);
  EXPECT_EQ(csv->table.num_dims(), 2u);
  EXPECT_EQ(csv->table.name(0), "a");
  EXPECT_EQ(csv->table.Get(2, 0), -3);
  EXPECT_EQ(csv->table.Get(1, 1), 20);
  EXPECT_EQ(csv->dictionaries[0].size(), 0u);  // Pure integer.
}

TEST(CsvReadTest, StringColumnsDictionaryEncodedLexicographically) {
  const auto csv =
      ReadCsvString("city,pop\nzurich,400\namsterdam,800\nboston,650\n");
  ASSERT_TRUE(csv.ok());
  const Dictionary& dict = csv->dictionaries[0];
  ASSERT_EQ(dict.size(), 3u);
  // Codes sort like strings: amsterdam < boston < zurich.
  EXPECT_EQ(dict.Lookup("amsterdam"), 0);
  EXPECT_EQ(dict.Lookup("boston"), 1);
  EXPECT_EQ(dict.Lookup("zurich"), 2);
  EXPECT_EQ(csv->table.Get(0, 0), 2);  // zurich
  EXPECT_EQ(csv->table.Get(1, 0), 0);  // amsterdam
  // Encoded range predicates behave like string ranges.
  EXPECT_LT(csv->table.Get(1, 0), csv->table.Get(2, 0));
}

TEST(CsvReadTest, QuotedFieldsAndEscapes) {
  const auto csv = ReadCsvString(
      "name,n\n\"doe, jane\",1\n\"say \"\"hi\"\"\",2\n");
  ASSERT_TRUE(csv.ok());
  const Dictionary& dict = csv->dictionaries[0];
  EXPECT_NE(dict.Lookup("doe, jane"), -1);
  EXPECT_NE(dict.Lookup("say \"hi\""), -1);
}

TEST(CsvReadTest, QuotedNewlineInsideField) {
  const auto csv = ReadCsvString("note,n\n\"line1\nline2\",5\n");
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->table.num_rows(), 1u);
  EXPECT_NE(csv->dictionaries[0].Lookup("line1\nline2"), -1);
}

TEST(CsvReadTest, NoHeaderAndCustomDelimiter) {
  CsvOptions opts;
  opts.has_header = false;
  opts.delimiter = '\t';
  const auto csv = ReadCsvString("1\t2\n3\t4\n", opts);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->table.num_rows(), 2u);
  EXPECT_EQ(csv->column_names[0], "col0");
  EXPECT_EQ(csv->table.Get(1, 1), 4);
}

TEST(CsvReadTest, EmptyCellsUseNullValue) {
  CsvOptions opts;
  opts.null_value = -1;
  const auto csv = ReadCsvString("a,b\n1,\n,2\n", opts);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->table.Get(0, 1), -1);
  EXPECT_EQ(csv->table.Get(1, 0), -1);
}

TEST(CsvReadTest, Errors) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n").ok());          // Header only.
  EXPECT_FALSE(ReadCsvString("a,b\n1,2\n3\n").ok());  // Ragged row.
  EXPECT_FALSE(ReadCsvFile("/nonexistent/x.csv").ok());
}

TEST(CsvRoundTripTest, WriteThenReadBack) {
  const auto csv = ReadCsvString(
      "city,visits\nboston,10\nnyc,30\nboston,20\n");
  ASSERT_TRUE(csv.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(csv->table, csv->dictionaries, out).ok());
  const auto again = ReadCsvString(out.str());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->table.num_rows(), csv->table.num_rows());
  for (RowId r = 0; r < csv->table.num_rows(); ++r) {
    for (size_t c = 0; c < csv->table.num_dims(); ++c) {
      EXPECT_EQ(again->table.Get(r, c), csv->table.Get(r, c));
    }
  }
}

TEST(CsvIntegrationTest, IngestThenIndexThenQuery) {
  // End-to-end: CSV -> table -> Flood -> query with a string predicate.
  std::string csv_text = "region,amount\n";
  const char* regions[] = {"east", "north", "south", "west"};
  for (int i = 0; i < 400; ++i) {
    csv_text += regions[i % 4];
    csv_text += "," + std::to_string(i) + "\n";
  }
  const auto csv = ReadCsvString(csv_text);
  ASSERT_TRUE(csv.ok());

  FloodIndex::Options o;
  o.layout.dim_order = {0, 1};
  o.layout.columns = {4};
  FloodIndex index(o);
  BuildContext ctx;
  ctx.sample = DataSample::FromTable(csv->table, 400, 1);
  ASSERT_TRUE(index.Build(csv->table, ctx).ok());

  const Value north = csv->dictionaries[0].Lookup("north");
  ASSERT_NE(north, -1);
  Query q = QueryBuilder(2).Equals(0, north).Count().Build();
  EXPECT_EQ(ExecuteAggregate(index, q, nullptr).count, 100u);
}

}  // namespace
}  // namespace flood
