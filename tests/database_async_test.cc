// Database::RunBatchAsync: the future- and callback-based batch APIs the
// serving tier executes on. Checks result parity with synchronous
// RunBatch, completion on the pool (not the caller), the single-threaded
// synchronous fallback, and — the load-bearing part — many async batches
// in flight concurrently with Insert/Delete/Compact traffic through the
// same reader-writer seam.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "api/database.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::MakeTable;
using testing::OracleResult;
using testing::RandomQuery;

Database OpenDb(const Table& table, size_t threads) {
  DatabaseOptions options;
  options.index_name = "kdtree";  // Cheap to build; delta-aware like all.
  options.num_threads = threads;
  StatusOr<Database> db = Database::Open(table, std::move(options));
  FLOOD_CHECK(db.ok());
  return std::move(*db);
}

std::vector<Query> MakeQueries(const Table& table, size_t n,
                               uint64_t seed) {
  std::vector<Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query q = RandomQuery(table, seed + i);
    if (i % 3 == 0) q.set_agg({AggSpec::Kind::kSum, i % table.num_dims()});
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(DatabaseAsyncTest, FutureMatchesSynchronousRunBatch) {
  const Table table = MakeTable(DataShape::kUniform, 20'000, 3, 31);
  Database db = OpenDb(table, 4);
  const std::vector<Query> queries = MakeQueries(table, 64, 100);

  const BatchResult sync = db.RunBatch(queries);
  std::future<BatchResult> fut = db.RunBatchAsync(queries);
  const BatchResult async = fut.get();

  ASSERT_TRUE(sync.status.ok());
  ASSERT_TRUE(async.status.ok());
  ASSERT_EQ(async.results.size(), sync.results.size());
  for (size_t i = 0; i < sync.results.size(); ++i) {
    EXPECT_EQ(async.results[i].count, sync.results[i].count) << i;
    EXPECT_EQ(async.results[i].sum, sync.results[i].sum) << i;
    EXPECT_EQ(async.results[i].kind, sync.results[i].kind) << i;
  }
  EXPECT_EQ(async.empty_skipped, sync.empty_skipped);
}

TEST(DatabaseAsyncTest, SingleThreadedDatabaseCompletesSynchronously) {
  const Table table = MakeTable(DataShape::kUniform, 5'000, 3, 32);
  Database db = OpenDb(table, 1);  // No pool at all.
  const std::vector<Query> queries = MakeQueries(table, 16, 200);

  std::future<BatchResult> fut = db.RunBatchAsync(queries);
  // The contract: with num_threads == 1 the future is ready on return.
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const BatchResult batch = fut.get();
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.results.size(), queries.size());
}

TEST(DatabaseAsyncTest, CallbackFiresOffCallerThreadExactlyOnce) {
  const Table table = MakeTable(DataShape::kClustered, 10'000, 3, 33);
  Database db = OpenDb(table, 4);
  const std::vector<Query> queries = MakeQueries(table, 32, 300);

  std::promise<void> done;
  std::atomic<int> calls{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id completer;
  db.RunBatchAsync(queries, [&](BatchResult batch) {
    EXPECT_TRUE(batch.status.ok());
    completer = std::this_thread::get_id();
    if (calls.fetch_add(1) == 0) done.set_value();
  });
  done.get_future().wait();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_NE(completer, caller);
}

TEST(DatabaseAsyncTest, ValidationFailureCompletesWithoutExecuting) {
  const Table table = MakeTable(DataShape::kUniform, 1'000, 3, 34);
  Database db = OpenDb(table, 4);
  std::vector<Query> queries = {Query(2)};  // Arity mismatch: 2 != 3.

  std::future<BatchResult> fut = db.RunBatchAsync(queries);
  const BatchResult batch = fut.get();
  EXPECT_FALSE(batch.status.ok());
  EXPECT_TRUE(batch.results.empty());
}

TEST(DatabaseAsyncTest, ManyConcurrentAsyncBatchesMatchOracle) {
  const Table table = MakeTable(DataShape::kSkewed, 15'000, 3, 35);
  Database db = OpenDb(table, 4);

  constexpr size_t kBatches = 24;
  constexpr size_t kPerBatch = 20;
  std::vector<std::vector<Query>> batches;
  std::vector<std::future<BatchResult>> futures;
  for (size_t b = 0; b < kBatches; ++b) {
    batches.push_back(MakeQueries(table, kPerBatch, 1000 + b * 97));
  }
  for (size_t b = 0; b < kBatches; ++b) {
    futures.push_back(db.RunBatchAsync(batches[b]));
  }
  for (size_t b = 0; b < kBatches; ++b) {
    const BatchResult batch = futures[b].get();
    ASSERT_TRUE(batch.status.ok());
    ASSERT_EQ(batch.results.size(), kPerBatch);
    for (size_t i = 0; i < kPerBatch; ++i) {
      const size_t sum_dim = batches[b][i].agg().kind == AggSpec::Kind::kSum
                                 ? batches[b][i].agg().dim
                                 : 0;
      const OracleResult oracle =
          BruteForce(table, batches[b][i], sum_dim);
      EXPECT_EQ(batch.results[i].count, oracle.count)
          << "batch " << b << " query " << i;
      if (batches[b][i].agg().kind == AggSpec::Kind::kSum) {
        EXPECT_EQ(batch.results[i].sum, oracle.sum)
            << "batch " << b << " query " << i;
      }
    }
  }
}

TEST(DatabaseAsyncTest, AsyncBatchesInterleavedWithWritesAndCompaction) {
  // The serving-tier scenario: async read batches racing Insert/Delete and
  // explicit Compact through the shared_mutex seam. Results must always be
  // internally consistent (a batch sees some prefix of the writes), and
  // the row count at quiescence must be exact.
  const Table table = MakeTable(DataShape::kUniform, 12'000, 3, 36);
  Database db = OpenDb(table, 4);
  const size_t base_rows = db.num_rows();

  // A query that matches every row, twice per batch: any torn read
  // (different snapshots inside ONE batch's shard pass) shows up as two
  // different counts for the same in-flight batch... which is legal for
  // *separate* queries in a batch, so assert monotonicity instead: counts
  // never decrease (inserts only, no deletes yet) across submission order.
  Query all(3);
  std::vector<Query> probe = {all, all};

  constexpr size_t kInserts = 400;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (size_t i = 0; i < kInserts; ++i) {
      const Value v = static_cast<Value>(2'000'000 + i);
      ASSERT_TRUE(db.Insert({v, v, v}).ok());
      if (i == kInserts / 2) {
        ASSERT_TRUE(db.Compact().ok());  // Mid-stream retrain.
      }
    }
    writer_done.store(true);
  });

  uint64_t last_count = 0;
  while (!writer_done.load()) {
    std::future<BatchResult> fut = db.RunBatchAsync(probe);
    const BatchResult batch = fut.get();
    ASSERT_TRUE(batch.status.ok());
    ASSERT_EQ(batch.results.size(), 2u);
    // Each query individually sees >= what any earlier batch saw.
    for (const QueryResult& r : batch.results) {
      EXPECT_GE(r.count, last_count);
      EXPECT_GE(r.count, static_cast<uint64_t>(base_rows));
      EXPECT_LE(r.count, static_cast<uint64_t>(base_rows + kInserts));
    }
    last_count = std::max(last_count, batch.results[1].count);
  }
  writer.join();

  // Quiescent: the final async batch must see every insert, and a final
  // compaction must not change the answer.
  const BatchResult final_batch = db.RunBatchAsync(probe).get();
  ASSERT_TRUE(final_batch.status.ok());
  EXPECT_EQ(final_batch.results[0].count, base_rows + kInserts);
  ASSERT_TRUE(db.Compact().ok());
  const BatchResult compacted = db.RunBatchAsync(probe).get();
  EXPECT_EQ(compacted.results[0].count, base_rows + kInserts);
}

TEST(DatabaseAsyncTest, AsyncBatchesInterleavedWithDeletes) {
  const size_t n = 8'000;
  const Table table = MakeTable(DataShape::kDuplicates, n, 2, 37);
  Database db = OpenDb(table, 4);

  Query all(2);
  std::vector<Query> probe = {all};

  // Delete rows by key from one thread while async batches run: counts
  // must be monotonically non-increasing and exact at quiescence.
  const std::vector<std::vector<Value>> rows = testing::RowsOf(table);
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> deleted_total{0};
  std::thread writer([&] {
    for (size_t i = 0; i < 50; ++i) {
      const StatusOr<size_t> deleted = db.Delete(rows[i * 37 % n]);
      ASSERT_TRUE(deleted.ok());
      deleted_total.fetch_add(*deleted);
    }
    writer_done.store(true);
  });

  uint64_t last = n;
  while (!writer_done.load()) {
    const BatchResult batch = db.RunBatchAsync(probe).get();
    ASSERT_TRUE(batch.status.ok());
    EXPECT_LE(batch.results[0].count, last);
    last = batch.results[0].count;
  }
  writer.join();

  const BatchResult final_batch = db.RunBatchAsync(probe).get();
  EXPECT_EQ(final_batch.results[0].count, n - deleted_total.load());
}

}  // namespace
}  // namespace flood
