// Tests of the public API layer: the IndexRegistry catalogue and the
// flood::Database facade (typed results, batching, early exits, training
// workload plumbing, telemetry).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::MakeTable;
using testing::RandomQuery;

Workload SumWorkload(const Table& t, size_t n, uint64_t seed) {
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    Query q = RandomQuery(t, seed + i);
    q.set_agg({AggSpec::Kind::kSum, 2});
    w.Add(q);
  }
  return w;
}

TEST(IndexRegistryTest, AllBuiltinsRegistered) {
  const std::vector<std::string> names = IndexRegistry::Global().Names();
  for (const char* expected :
       {"flood", "kdtree", "rtree", "grid_file", "zorder", "octree",
        "ubtree", "clustered", "full_scan"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing from registry: " << expected;
  }
  EXPECT_GE(names.size(), 9u);  // Future indexes self-register on top.
}

TEST(IndexRegistryTest, LookupIsCaseAndSeparatorInsensitiveWithAliases) {
  auto& registry = IndexRegistry::Global();
  // Legacy display names (bench tables) resolve onto the canonical keys.
  for (const char* name : {"FullScan", "Clustered", "RStarTree", "ZOrder",
                           "UBtree", "Hyperoctree", "KdTree", "GridFile",
                           "Flood", "KD-TREE", "grid_file"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    EXPECT_TRUE(registry.Create(name).ok()) << name;
  }
  StatusOr<std::string> canonical = registry.Resolve("RStarTree");
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(*canonical, "rtree");
}

TEST(IndexRegistryTest, UnknownNameIsNotFound) {
  StatusOr<std::unique_ptr<MultiDimIndex>> index =
      IndexRegistry::Global().Create("btree");
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kNotFound);
  // The error lists what *is* registered, for discoverability.
  EXPECT_NE(index.status().message().find("btree"), std::string::npos);
  EXPECT_NE(index.status().message().find("flood"), std::string::npos);
}

TEST(IndexRegistryTest, FactoryRejectsBadOptions) {
  auto& registry = IndexRegistry::Global();
  EXPECT_FALSE(
      registry.Create("flood", IndexOptions().Set("flatten_mode", "wavelet"))
          .ok());
  EXPECT_FALSE(
      registry.Create("flood", IndexOptions().Set("layout", "not-a-layout"))
          .ok());
  // Malformed numeric/boolean values are rejected, not silently replaced
  // by the defaults.
  StatusOr<std::unique_ptr<MultiDimIndex>> typo =
      registry.Create("kdtree", IndexOptions().Set("page_size", "4k"));
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      registry.Create("flood", IndexOptions().Set("learn_layout", "maybe"))
          .ok());
  // Well-formed values still pass through.
  EXPECT_TRUE(
      registry.Create("kdtree", IndexOptions().SetInt("page_size", 2048))
          .ok());
}

TEST(DatabaseTest, OpenFailsOnUnknownIndexName) {
  const Table t = MakeTable(DataShape::kUniform, 500, 3, 11);
  StatusOr<Database> db =
      Database::Open(t, DatabaseOptions{.index_name = "btree"});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound);
}

// Every registered index, built through Database::Open with a training
// workload, must agree with full_scan on COUNT and SUM.
TEST(DatabaseTest, RegistryRoundTripMatchesFullScan) {
  const Table t = MakeTable(DataShape::kUniform, 3000, 3, 12);
  const Workload train = SumWorkload(t, 10, 500);

  DatabaseOptions scan_options;
  scan_options.index_name = "full_scan";
  StatusOr<Database> oracle = Database::Open(t, std::move(scan_options));
  ASSERT_TRUE(oracle.ok());

  for (const std::string& name : IndexRegistry::Global().Names()) {
    DatabaseOptions options;
    options.index_name = name;
    options.training_workload = train;
    StatusOr<Database> db = Database::Open(t, std::move(options));
    ASSERT_TRUE(db.ok()) << name << ": " << db.status().ToString();
    EXPECT_EQ(db->index_name(), name);
    EXPECT_EQ(db->num_rows(), t.num_rows());
    if (name != "full_scan") {  // A full scan has no index structure.
      EXPECT_GT(db->IndexSizeBytes(), 0u) << name;
    }

    for (uint64_t seed = 0; seed < 10; ++seed) {
      Query q = RandomQuery(t, 4000 + seed * 7);
      q.set_agg({AggSpec::Kind::kCount, 0});
      EXPECT_EQ(db->Run(q).count, oracle->Run(q).count)
          << name << " COUNT mismatch on " << q.ToString();
      q.set_agg({AggSpec::Kind::kSum, 2});
      const QueryResult sum = db->Run(q);
      EXPECT_EQ(sum.kind, QueryResult::Kind::kSum);
      EXPECT_EQ(sum.sum, oracle->Run(q).sum)
          << name << " SUM mismatch on " << q.ToString();
    }
  }
}

TEST(DatabaseTest, CollectReturnsExactlyTheMatchingRows) {
  const Table t = MakeTable(DataShape::kClustered, 2000, 3, 13);
  DatabaseOptions options;
  options.index_name = "flood";
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  const Query q = RandomQuery(t, 99);
  const QueryResult r = db->Collect(q);
  EXPECT_EQ(r.kind, QueryResult::Kind::kRows);
  EXPECT_EQ(r.rows.size(), BruteForce(t, q, 0).count);
  EXPECT_EQ(r.count, r.rows.size());
  for (RowId row : r.rows) {
    EXPECT_TRUE(q.Matches(db->data(), row));
  }
}

TEST(DatabaseTest, RunBatchMatchesSequentialRuns) {
  const Table t = MakeTable(DataShape::kSkewed, 4000, 3, 14);
  DatabaseOptions options;
  options.index_name = "zorder";
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Query q = RandomQuery(t, 6000 + seed);
    if (seed % 3 == 0) q.set_agg({AggSpec::Kind::kSum, 1});
    queries.push_back(q);
  }
  Query empty(3);
  empty.SetRange(0, 10, 5);  // Inverted.
  queries.push_back(empty);

  std::vector<QueryResult> sequential;
  for (const Query& q : queries) sequential.push_back(db->Run(q));

  const BatchResult batch = db->RunBatch(queries);
  ASSERT_EQ(batch.results.size(), queries.size());
  EXPECT_EQ(batch.empty_skipped, 1u);
  uint64_t scanned = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch.results[i].count, sequential[i].count) << i;
    EXPECT_EQ(batch.results[i].sum, sequential[i].sum) << i;
    scanned += batch.results[i].stats.points_scanned;
  }
  // Aggregate stats are the sum of the per-query stats.
  EXPECT_EQ(batch.stats.points_scanned, scanned);
  EXPECT_GE(batch.AvgLatencyMs(), 0.0);

  // The Workload overload matches the span overload.
  const BatchResult via_workload = db->RunBatch(Workload(queries));
  ASSERT_EQ(via_workload.results.size(), batch.results.size());
  for (size_t i = 0; i < batch.results.size(); ++i) {
    EXPECT_EQ(via_workload.results[i].count, batch.results[i].count);
  }
}

// Satellite: Query::IsEmpty() short-circuits before the index is touched,
// for Flood and a baseline alike.
class EmptyQueryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EmptyQueryTest, ZeroResultWithoutDispatch) {
  const Table t = MakeTable(DataShape::kUniform, 1000, 3, 15);
  DatabaseOptions options;
  options.index_name = GetParam();
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  Query q(3);
  q.SetRange(1, 100, 50);  // Inverted: empty.
  q.set_agg({AggSpec::Kind::kSum, 2});
  const QueryResult r = db->Run(q);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.sum, 0);
  // No dispatch: every counter (including timings) stays zero.
  EXPECT_EQ(r.stats.points_scanned, 0u);
  EXPECT_EQ(r.stats.cells_visited, 0u);
  EXPECT_EQ(r.stats.total_ns, 0);
  EXPECT_EQ(db->empty_queries_skipped(), 1u);
  EXPECT_EQ(db->queries_run(), 1u);
}

INSTANTIATE_TEST_SUITE_P(FloodAndBaseline, EmptyQueryTest,
                         ::testing::Values("flood", "kdtree"));

// Satellite: DatabaseOptions carries the training workload through
// BuildContext (DimsBySelectivity and the layout optimizer), so the chosen
// Flood layout must differ with vs. without it.
TEST(DatabaseTest, TrainingWorkloadShapesFloodLayout) {
  const Table t = MakeTable(DataShape::kUniform, 20'000, 3, 16);
  // Queries filter dim 1 only — with this knowledge the optimizer grids
  // dim 1 finely; without it the uniform default is used.
  Workload train;
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const Value lo = rng.UniformInt(0, 900'000);
    train.Add(QueryBuilder(3).Range(1, lo, lo + 20'000).Count().Build());
  }

  DatabaseOptions with;
  with.index_name = "flood";
  with.training_workload = train;
  StatusOr<Database> trained = Database::Open(t, std::move(with));
  ASSERT_TRUE(trained.ok());

  StatusOr<Database> untrained =
      Database::Open(t, DatabaseOptions{.index_name = "flood"});
  ASSERT_TRUE(untrained.ok());

  EXPECT_NE(trained->Describe(), untrained->Describe())
      << "training workload did not influence the learned layout";
  // Results stay identical either way.
  const Query q = RandomQuery(t, 321);
  EXPECT_EQ(trained->Run(q).count, untrained->Run(q).count);
}

TEST(DatabaseTest, TelemetryAccumulatesAcrossRuns) {
  const Table t = MakeTable(DataShape::kUniform, 1000, 2, 18);
  DatabaseOptions options;
  options.index_name = "full_scan";
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  const Query q = QueryBuilder(2).Range(0, 0, 500'000).Build();
  (void)db->Run(q);
  (void)db->Run(q);
  EXPECT_EQ(db->queries_run(), 2u);
  EXPECT_EQ(db->cumulative_stats().points_scanned, 2 * t.num_rows());
  EXPECT_GT(db->cumulative_stats().total_ns, 0);
  EXPECT_EQ(db->index_display_name(), "FullScan");
  EXPECT_EQ(db->Describe(), "FullScan");  // Default Describe = name().
}

TEST(DatabaseTest, IntrospectionForwardsToIndex) {
  const Table t = MakeTable(DataShape::kUniform, 2000, 2, 21);
  DatabaseOptions options;
  options.index_name = "rtree";
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  const auto props = db->IndexProperties();
  ASSERT_FALSE(props.empty());
  bool has_leaves = false;
  for (const auto& [key, value] : props) {
    if (key == "num_leaves") has_leaves = value > 0;
  }
  EXPECT_TRUE(has_leaves);
  EXPECT_EQ(db->Describe(), "RStarTree");
}

// Tentpole: RunBatch with num_threads=4 must be indistinguishable from the
// serial path — identical per-query counts/sums, identical Collect row ids,
// and identical merged counter stats — on every registered index.
TEST(DatabaseTest, ParallelRunBatchMatchesSerialOnEveryIndex) {
  const Table t = MakeTable(DataShape::kClustered, 3000, 3, 31);
  const Workload train = SumWorkload(t, 10, 600);

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Query q = RandomQuery(t, 7000 + seed);
    if (seed % 3 == 0) q.set_agg({AggSpec::Kind::kSum, 1});
    queries.push_back(q);
  }
  Query empty(3);
  empty.SetRange(2, 9, 4);  // Inverted.
  queries.push_back(empty);

  for (const std::string& name : IndexRegistry::Global().Names()) {
    DatabaseOptions serial_options;
    serial_options.index_name = name;
    serial_options.training_workload = train;
    serial_options.num_threads = 1;
    StatusOr<Database> serial = Database::Open(t, std::move(serial_options));
    ASSERT_TRUE(serial.ok()) << name << ": " << serial.status().ToString();
    EXPECT_EQ(serial->num_threads(), 1u);

    DatabaseOptions parallel_options;
    parallel_options.index_name = name;
    parallel_options.training_workload = train;
    parallel_options.num_threads = 4;
    StatusOr<Database> parallel =
        Database::Open(t, std::move(parallel_options));
    ASSERT_TRUE(parallel.ok()) << name;
    EXPECT_EQ(parallel->num_threads(), 4u);

    const BatchResult s = serial->RunBatch(queries);
    const BatchResult p = parallel->RunBatch(queries);
    ASSERT_TRUE(s.status.ok());
    ASSERT_TRUE(p.status.ok());
    ASSERT_EQ(s.results.size(), queries.size()) << name;
    ASSERT_EQ(p.results.size(), queries.size()) << name;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(p.results[i].count, s.results[i].count) << name << " #" << i;
      EXPECT_EQ(p.results[i].sum, s.results[i].sum) << name << " #" << i;
      EXPECT_EQ(p.results[i].kind, s.results[i].kind) << name << " #" << i;
      EXPECT_EQ(p.results[i].skipped_empty, s.results[i].skipped_empty);
    }
    // Merged counter stats are identical (timings legitimately differ).
    EXPECT_EQ(p.stats.points_scanned, s.stats.points_scanned) << name;
    EXPECT_EQ(p.stats.points_matched, s.stats.points_matched) << name;
    EXPECT_EQ(p.stats.points_exact, s.stats.points_exact) << name;
    EXPECT_EQ(p.stats.cells_visited, s.stats.cells_visited) << name;
    EXPECT_EQ(p.stats.ranges_scanned, s.stats.ranges_scanned) << name;
    EXPECT_EQ(p.stats.queries, s.stats.queries) << name;
    EXPECT_EQ(p.empty_skipped, s.empty_skipped) << name;
    EXPECT_EQ(p.empty_skipped, 1u) << name;
    EXPECT_EQ(parallel->queries_run(), serial->queries_run()) << name;
    EXPECT_EQ(parallel->empty_queries_skipped(), 1u) << name;
    EXPECT_EQ(parallel->cumulative_stats().points_scanned,
              serial->cumulative_stats().points_scanned)
        << name;

    // Row-id retrieval agrees between the two databases too.
    const Query probe = RandomQuery(t, 909);
    EXPECT_EQ(parallel->Collect(probe).rows, serial->Collect(probe).rows)
        << name;
  }
}

// Satellite: arity mismatches no longer have to abort the process — TryRun
// returns a clean error, and a bad query fails the whole batch before any
// worker starts.
TEST(DatabaseTest, ArityMismatchIsACleanError) {
  const Table t = MakeTable(DataShape::kUniform, 800, 3, 41);
  DatabaseOptions options;
  options.index_name = "kdtree";
  options.num_threads = 4;
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());

  const Query wrong_arity(5);  // Table has 3 dims.
  StatusOr<QueryResult> run = db->TryRun(wrong_arity);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(db->TryCollect(wrong_arity).ok());
  // The failed attempt leaves telemetry untouched.
  EXPECT_EQ(db->queries_run(), 0u);

  std::vector<Query> batch_queries;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    batch_queries.push_back(RandomQuery(t, 8000 + seed));
  }
  batch_queries.push_back(wrong_arity);
  const BatchResult batch = db->RunBatch(batch_queries);
  ASSERT_FALSE(batch.status.ok());
  EXPECT_EQ(batch.status.code(), StatusCode::kInvalidArgument);
  // Rejected before any worker started: nothing ran at all.
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(db->queries_run(), 0u);

  // Valid queries still execute on the same database afterwards.
  EXPECT_TRUE(db->TryRun(RandomQuery(t, 42)).ok());
}

// Satellite: AvgLatencyMs divides by attempted queries (incl. skipped);
// AvgExecutedLatencyMs divides by executed only. Plus the new latency
// distribution and throughput accessors.
TEST(DatabaseTest, BatchLatencyAndThroughputAccounting) {
  const Table t = MakeTable(DataShape::kUniform, 2000, 3, 51);
  DatabaseOptions options;
  options.index_name = "clustered";
  options.num_threads = 2;
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    queries.push_back(RandomQuery(t, 9000 + seed));
  }
  for (int i = 0; i < 4; ++i) {
    Query empty(3);
    empty.SetRange(0, 7, 3);  // Inverted.
    queries.push_back(empty);
  }
  const BatchResult batch = db->RunBatch(queries);
  ASSERT_TRUE(batch.status.ok());
  EXPECT_EQ(batch.attempted(), 16u);
  EXPECT_EQ(batch.empty_skipped, 4u);
  EXPECT_EQ(batch.executed(), 12u);
  EXPECT_EQ(batch.stats.queries, 12u);

  // Same numerator, smaller denominator for the executed-only average.
  EXPECT_GT(batch.AvgExecutedLatencyMs(), batch.AvgLatencyMs());
  EXPECT_NEAR(batch.AvgExecutedLatencyMs() * 12, batch.AvgLatencyMs() * 16,
              1e-9);

  // Percentiles are ordered, bounded by the slowest query, and computed
  // over executed queries only.
  EXPECT_GT(batch.P50LatencyMs(), 0.0);
  EXPECT_LE(batch.P50LatencyMs(), batch.P95LatencyMs());
  EXPECT_LE(batch.P95LatencyMs(), batch.P99LatencyMs());
  EXPECT_NEAR(batch.LatencyPercentileMs(100.0),
              static_cast<double>(batch.stats.max_query_ns) / 1e6, 1e-9);

  EXPECT_GT(batch.wall_ms, 0.0);
  EXPECT_GT(batch.Qps(), 0.0);

  // Empty batch: every accessor degrades to zero instead of dividing by 0.
  const BatchResult none = db->RunBatch(std::span<const Query>{});
  EXPECT_EQ(none.AvgLatencyMs(), 0.0);
  EXPECT_EQ(none.AvgExecutedLatencyMs(), 0.0);
  EXPECT_EQ(none.P99LatencyMs(), 0.0);
}

TEST(DatabaseTest, RetrainPreservesResults) {
  const Table t = MakeTable(DataShape::kClustered, 5000, 3, 19);
  DatabaseOptions options;
  options.index_name = "flood";
  StatusOr<Database> db = Database::Open(t, std::move(options));
  ASSERT_TRUE(db.ok());
  const Query q = RandomQuery(t, 777);
  const uint64_t before = db->Run(q).count;

  Workload shifted;
  Rng rng(20);
  for (int i = 0; i < 20; ++i) {
    const Value lo = rng.UniformInt(0, 900'000);
    shifted.Add(QueryBuilder(3).Range(2, lo, lo + 10'000).Count().Build());
  }
  ASSERT_TRUE(db->Retrain(shifted).ok());
  EXPECT_EQ(db->Run(q).count, before);
}

}  // namespace
}  // namespace flood
