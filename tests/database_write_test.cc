// Write path of the flood::Database facade (PR 4): DeltaBuffer-staged
// Insert/InsertBatch/Delete merged into every query, compaction
// (Compact/Retrain/auto_retrain_fraction), and the reader-writer seam
// under concurrent writers and RunBatch readers (the TSan surface).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "api/index_registry.h"
#include "tests/test_util.h"

namespace flood {
namespace {

using testing::BruteForce;
using testing::DataShape;
using testing::MakeTable;
using testing::RandomQuery;
using testing::RowsOf;

Table TableFromRows(const std::vector<std::vector<Value>>& rows) {
  std::vector<std::vector<Value>> cols(rows.front().size());
  for (const std::vector<Value>& row : rows) {
    for (size_t d = 0; d < row.size(); ++d) cols[d].push_back(row[d]);
  }
  StatusOr<Table> t = Table::FromColumns(std::move(cols));
  FLOOD_CHECK(t.ok());
  return std::move(t).value();
}

/// Sorted multiset of the *values* of the collected rows, resolved through
/// GetRow — the id spaces of two databases differ (storage order, delta
/// offsets), but the logical row multisets must match.
std::vector<std::vector<Value>> CollectedTuples(Database& db,
                                                const Query& q) {
  const QueryResult r = db.Collect(q);
  std::vector<std::vector<Value>> tuples;
  tuples.reserve(r.rows.size());
  for (RowId row : r.rows) tuples.push_back(db.GetRow(row));
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// Acceptance criterion: insert-then-query returns identical results to
// build-from-scratch on every registered index routed through the facade,
// under both serial and num_threads=0 batch execution.
TEST(DatabaseWriteTest, InsertThenQueryEqualsBuildFromScratchOnEveryIndex) {
  const Table base = MakeTable(DataShape::kClustered, 2000, 3, 61);
  const Table extra = MakeTable(DataShape::kUniform, 300, 3, 62);
  const std::vector<std::vector<Value>> extra_rows = RowsOf(extra);

  std::vector<std::vector<Value>> all_rows = RowsOf(base);
  all_rows.insert(all_rows.end(), extra_rows.begin(), extra_rows.end());
  const Table combined = TableFromRows(all_rows);

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Query q = RandomQuery(combined, 7100 + seed * 3);
    if (seed % 3 == 0) q.set_agg({AggSpec::Kind::kSum, 1});
    queries.push_back(q);
  }

  for (const std::string& name : IndexRegistry::Global().Names()) {
    for (const size_t num_threads : {size_t{1}, size_t{0}}) {
      DatabaseOptions options;
      options.index_name = name;
      options.num_threads = num_threads;
      StatusOr<Database> db = Database::Open(base, options);
      ASSERT_TRUE(db.ok()) << name << ": " << db.status().ToString();
      ASSERT_TRUE(db->InsertBatch(extra_rows).ok()) << name;
      EXPECT_EQ(db->delta_inserts(), extra_rows.size()) << name;
      EXPECT_EQ(db->num_rows(), combined.num_rows()) << name;

      StatusOr<Database> scratch = Database::Open(combined, options);
      ASSERT_TRUE(scratch.ok()) << name << ": "
                                << scratch.status().ToString();

      const BatchResult staged = db->RunBatch(queries);
      const BatchResult rebuilt = scratch->RunBatch(queries);
      ASSERT_TRUE(staged.status.ok()) << name;
      ASSERT_TRUE(rebuilt.status.ok()) << name;
      ASSERT_EQ(staged.results.size(), queries.size()) << name;
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(staged.results[i].count, rebuilt.results[i].count)
            << name << " t=" << num_threads << " #" << i << " "
            << queries[i].ToString();
        EXPECT_EQ(staged.results[i].sum, rebuilt.results[i].sum)
            << name << " t=" << num_threads << " #" << i;
      }
      // Collect agrees on the logical row multiset.
      const Query probe = RandomQuery(combined, 419);
      EXPECT_EQ(CollectedTuples(*db, probe),
                CollectedTuples(*scratch, probe))
          << name << " t=" << num_threads;

      // ... and the oracle agrees with both.
      const testing::OracleResult oracle =
          BruteForce(combined, queries[0], queries[0].agg().dim);
      EXPECT_EQ(staged.results[0].count, oracle.count) << name;
    }
  }
}

TEST(DatabaseWriteTest, DeltaRowsScannedIsAccounted) {
  const Table base = MakeTable(DataShape::kUniform, 1000, 2, 63);
  StatusOr<Database> db =
      Database::Open(base, DatabaseOptions{.index_name = "flood"});
  ASSERT_TRUE(db.ok());
  const Query q = QueryBuilder(2).Range(0, 0, kValueMax).Build();

  // No staged writes: no delta scanning.
  EXPECT_EQ(db->Run(q).stats.delta_rows_scanned, 0u);

  ASSERT_TRUE(db->Insert({1, 2}).ok());
  ASSERT_TRUE(db->Insert({3, 4}).ok());
  const QueryResult r = db->Run(q);
  EXPECT_EQ(r.stats.delta_rows_scanned, 2u);
  EXPECT_EQ(r.count, base.num_rows() + 2);

  // Tombstones are delta-side rows too.
  const std::vector<Value> victim = db->GetRow(0);
  StatusOr<size_t> deleted = db->Delete(victim);
  ASSERT_TRUE(deleted.ok());
  ASSERT_GE(*deleted, 1u);
  const QueryResult r2 = db->Run(q);
  EXPECT_EQ(r2.stats.delta_rows_scanned, 2u + db->delta_tombstones());
  EXPECT_EQ(r2.count, base.num_rows() + 2 - *deleted);
}

TEST(DatabaseWriteTest, DeleteTombstonesBaseRowsAndErasesStagedInserts) {
  const Table base = MakeTable(DataShape::kDuplicates, 1500, 2, 64);
  StatusOr<Database> db =
      Database::Open(base, DatabaseOptions{.index_name = "kdtree"});
  ASSERT_TRUE(db.ok());

  // A key with known duplicates in the base table.
  const std::vector<Value> key = db->GetRow(5);
  Query eq(2);
  for (size_t d = 0; d < 2; ++d) eq.SetEquals(d, key[d]);
  const uint64_t base_matches = db->Run(eq).count;
  ASSERT_GE(base_matches, 1u);

  // Stage two more copies, then delete the key entirely.
  ASSERT_TRUE(db->Insert(key).ok());
  ASSERT_TRUE(db->Insert(key).ok());
  EXPECT_EQ(db->Run(eq).count, base_matches + 2);

  StatusOr<size_t> deleted = db->Delete(key);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, base_matches + 2);
  EXPECT_EQ(db->delta_inserts(), 0u);
  EXPECT_EQ(db->delta_tombstones(), base_matches);
  EXPECT_EQ(db->Run(eq).count, 0u);
  EXPECT_TRUE(db->Collect(eq).rows.empty());
  EXPECT_EQ(db->num_rows(), base.num_rows() - base_matches);

  // Double delete is a no-op (tombstones refuse duplicates).
  StatusOr<size_t> again = db->Delete(key);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(db->Run(eq).count, 0u);

  // SUM subtracts the tombstoned rows' values.
  Query sum_all = QueryBuilder(2).Sum(1).Build();
  const Table remaining = [&] {
    std::vector<std::vector<Value>> rows;
    for (std::vector<Value>& row : RowsOf(base)) {
      if (row != key) rows.push_back(std::move(row));
    }
    return TableFromRows(rows);
  }();
  EXPECT_EQ(db->Run(sum_all).sum, BruteForce(remaining, sum_all, 1).sum);
}

TEST(DatabaseWriteTest, CompactionEquivalence) {
  const Table base = MakeTable(DataShape::kSkewed, 2500, 3, 65);
  const Table extra = MakeTable(DataShape::kSkewed, 400, 3, 66);

  DatabaseOptions options;
  options.index_name = "flood";
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertBatch(RowsOf(extra)).ok());
  const std::vector<Value> victim = db->GetRow(3);
  ASSERT_TRUE(db->Delete(victim).ok());

  // Snapshot answers before compaction...
  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Query q = RandomQuery(base, 7300 + seed);
    if (seed % 2 == 0) q.set_agg({AggSpec::Kind::kSum, 2});
    queries.push_back(q);
  }
  const BatchResult before = db->RunBatch(queries);
  ASSERT_TRUE(before.status.ok());
  const size_t logical_rows = db->num_rows();

  // ... compaction drains the delta into the base index ...
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->compactions(), 1u);
  EXPECT_EQ(db->base_rows(), logical_rows);
  EXPECT_EQ(db->num_rows(), logical_rows);

  // ... and answers are unchanged, now without delta scanning.
  const BatchResult after = db->RunBatch(queries);
  ASSERT_TRUE(after.status.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(after.results[i].count, before.results[i].count) << i;
    EXPECT_EQ(after.results[i].sum, before.results[i].sum) << i;
    EXPECT_EQ(after.results[i].stats.delta_rows_scanned, 0u) << i;
  }
}

// A row's full lifecycle across a compaction: staged insert -> compacted
// into the base -> deleted again. The delete must take the tombstone path
// (the staged copy no longer exists to erase) and the next compaction must
// remove it physically.
TEST(DatabaseWriteTest, DeleteAfterCompactTombstonesCompactedRow) {
  const Table base = MakeTable(DataShape::kUniform, 800, 2, 75);
  StatusOr<Database> db =
      Database::Open(base, DatabaseOptions{.index_name = "flood"});
  ASSERT_TRUE(db.ok());

  // A row guaranteed absent from the base table (values are in [0, 1e6]).
  const std::vector<Value> row = {2'000'001, 7};
  Query eq(2);
  eq.SetEquals(0, row[0]);
  eq.SetEquals(1, row[1]);
  ASSERT_TRUE(db->Insert(row).ok());
  EXPECT_EQ(db->Run(eq).count, 1u);

  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->base_rows(), base.num_rows() + 1);

  // The staged copy is gone; this delete must tombstone the base copy.
  StatusOr<size_t> deleted = db->Delete(row);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  EXPECT_EQ(db->delta_inserts(), 0u);
  EXPECT_EQ(db->delta_tombstones(), 1u);
  EXPECT_EQ(db->Run(eq).count, 0u);
  EXPECT_TRUE(db->Collect(eq).rows.empty());
  EXPECT_EQ(db->num_rows(), base.num_rows());

  // SUM over everything no longer sees the tombstoned row's value.
  const Query sum_all = QueryBuilder(2).Sum(1).Build();
  EXPECT_EQ(db->Run(sum_all).sum, BruteForce(base, sum_all, 1).sum);

  // The next compaction removes it physically; answers are unchanged.
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->base_rows(), base.num_rows());
  EXPECT_EQ(db->delta_tombstones(), 0u);
  EXPECT_EQ(db->Run(eq).count, 0u);
  EXPECT_EQ(db->Run(sum_all).sum, BruteForce(base, sum_all, 1).sum);
}

TEST(DatabaseWriteTest, RetrainDrainsDeltaAndPreservesResults) {
  const Table base = MakeTable(DataShape::kClustered, 3000, 3, 67);
  StatusOr<Database> db =
      Database::Open(base, DatabaseOptions{.index_name = "flood"});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Insert({1, 2, 3}).ok());
  const Query q = RandomQuery(base, 808);
  const uint64_t staged_count = db->Run(q).count;

  Workload shifted;
  Rng rng(68);
  for (int i = 0; i < 20; ++i) {
    const Value lo = rng.UniformInt(0, 900'000);
    shifted.Add(QueryBuilder(3).Range(2, lo, lo + 10'000).Count().Build());
  }
  ASSERT_TRUE(db->Retrain(shifted).ok());
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->base_rows(), base.num_rows() + 1);
  EXPECT_EQ(db->Run(q).count, staged_count);
}

TEST(DatabaseWriteTest, AutoRetrainCompactsPastThreshold) {
  const Table base = MakeTable(DataShape::kUniform, 1000, 2, 69);
  DatabaseOptions options;
  options.index_name = "flood";
  options.auto_retrain_fraction = 0.05;  // Compact past 50 staged rows.
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());

  // Run some queries so compaction has a recorded workload to relearn on.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    (void)db->Run(RandomQuery(base, 7400 + seed));
  }
  EXPECT_EQ(db->RecordedWorkload().size(), 5u);

  Rng rng(70);
  size_t inserted = 0;
  while (db->compactions() == 0 && inserted < 200) {
    ASSERT_TRUE(
        db->Insert({rng.UniformInt(0, 1'000'000), rng.UniformInt(0, 100)})
            .ok());
    ++inserted;
  }
  EXPECT_EQ(db->compactions(), 1u);
  EXPECT_GT(inserted, 50u);
  EXPECT_LE(inserted, 52u);  // Triggered right past the threshold.
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->base_rows(), base.num_rows() + inserted);

  const Query q = QueryBuilder(2).Range(0, 0, kValueMax).Build();
  EXPECT_EQ(db->Run(q).count, base.num_rows() + inserted);
}

TEST(DatabaseWriteTest, FailedAutoCompactionBacksOffAndSurfacesStatus) {
  // 20 identical rows: deleting the key would compact to an empty table,
  // so the triggered auto-compaction must fail, keep the staged writes
  // (reads stay correct), surface its error, and back off.
  const std::vector<std::vector<Value>> rows(20,
                                             std::vector<Value>{7, 8});
  const Table base = TableFromRows(rows);
  DatabaseOptions options;
  options.index_name = "full_scan";
  options.auto_retrain_fraction = 0.1;
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());

  StatusOr<size_t> deleted = db->Delete({7, 8});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 20u);
  EXPECT_EQ(db->compactions(), 0u);
  EXPECT_EQ(db->delta_tombstones(), 20u);  // No write was lost.
  EXPECT_EQ(db->last_auto_compact_status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->Run(QueryBuilder(2).Count().Build()).count, 0u);

  // The next write doesn't pay another O(base) attempt (backoff), but an
  // explicit Compact of the now non-empty logical table drains fine.
  ASSERT_TRUE(db->Insert({1, 2}).ok());
  EXPECT_EQ(db->compactions(), 0u);
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->num_rows(), 1u);
  EXPECT_EQ(db->Run(QueryBuilder(2).Count().Build()).count, 1u);
}

TEST(DatabaseWriteTest, WriteArityMismatchIsACleanError) {
  const Table base = MakeTable(DataShape::kUniform, 500, 3, 71);
  StatusOr<Database> db =
      Database::Open(base, DatabaseOptions{.index_name = "full_scan"});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Insert({1, 2}).code(), StatusCode::kInvalidArgument);
  const std::vector<std::vector<Value>> ragged = {{1, 2, 3}, {4, 5}};
  EXPECT_EQ(db->InsertBatch(ragged).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db->Delete({1}).status().code(), StatusCode::kInvalidArgument);
  // Nothing was staged by the failed calls.
  EXPECT_EQ(db->pending_writes(), 0u);
}

// TSan surface: concurrent writers (Insert + Delete) against RunBatch
// readers on the delta seam. Correctness bound: every query observes a
// count between the initial and final row counts, and after the writers
// join, the facade agrees with a from-scratch oracle.
TEST(DatabaseWriteTest, ConcurrentInsertAndRunBatchIsSafe) {
  const Table base = MakeTable(DataShape::kUniform, 2000, 2, 72);
  DatabaseOptions options;
  options.index_name = "flood";
  options.num_threads = 2;  // RunBatch itself fans out.
  StatusOr<Database> db = Database::Open(base, options);
  ASSERT_TRUE(db.ok());

  constexpr size_t kInserts = 300;
  const Table extra = MakeTable(DataShape::kUniform, kInserts, 2, 73);
  const std::vector<std::vector<Value>> extra_rows = RowsOf(extra);

  const Query all = QueryBuilder(2).Range(0, 0, kValueMax).Build();
  std::vector<Query> batch(8, all);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const std::vector<Value>& row : extra_rows) {
      FLOOD_CHECK(db->Insert(row).ok());
    }
    done.store(true, std::memory_order_release);
  });

  uint64_t last = 0;
  while (!done.load(std::memory_order_acquire)) {
    const BatchResult r = db->RunBatch(batch);
    ASSERT_TRUE(r.status.ok());
    for (const QueryResult& qr : r.results) {
      // Monotone under insert-only writes; never past the final count.
      EXPECT_GE(qr.count, base.num_rows());
      EXPECT_LE(qr.count, base.num_rows() + kInserts);
      EXPECT_GE(qr.count, last);
    }
    last = r.results.back().count;
  }
  writer.join();
  EXPECT_EQ(db->Run(all).count, base.num_rows() + kInserts);

  // A concurrent Compact against readers is also clean.
  std::thread compactor([&] { FLOOD_CHECK(db->Compact().ok()); });
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(db->Run(all).count, base.num_rows() + kInserts);
  }
  compactor.join();
  EXPECT_EQ(db->pending_writes(), 0u);
  EXPECT_EQ(db->Run(all).count, base.num_rows() + kInserts);
}

}  // namespace
}  // namespace flood
