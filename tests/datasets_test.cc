#include <gtest/gtest.h>

#include "data/datasets.h"
#include "query/workload.h"

namespace flood {
namespace {

class DatasetTest
    : public ::testing::TestWithParam<BenchDataset (*)(size_t, uint64_t)> {};

TEST_P(DatasetTest, ShapeAndDeterminism) {
  BenchDataset a = GetParam()(5000, 42);
  BenchDataset b = GetParam()(5000, 42);
  EXPECT_EQ(a.table.num_rows(), 5000u);
  EXPECT_GE(a.table.num_dims(), 6u);
  EXPECT_FALSE(a.olap_specs.empty());
  EXPECT_FALSE(a.key_dims.empty());
  // Deterministic generation.
  for (size_t dim = 0; dim < a.table.num_dims(); ++dim) {
    for (RowId r = 0; r < 100; ++r) {
      ASSERT_EQ(a.table.Get(r, dim), b.table.Get(r, dim));
    }
  }
  // Specs reference valid dims.
  for (const auto& spec : a.olap_specs) {
    for (size_t dim : spec.range_dims) EXPECT_LT(dim, a.table.num_dims());
    for (size_t dim : spec.eq_dims) EXPECT_LT(dim, a.table.num_dims());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetTest,
    ::testing::Values(&MakeSalesDataset, &MakeOsmDataset,
                      &MakePerfmonDataset, &MakeTpchDataset),
    [](const auto& info) {
      if (info.param == &MakeSalesDataset) return std::string("Sales");
      if (info.param == &MakeOsmDataset) return std::string("Osm");
      if (info.param == &MakePerfmonDataset) return std::string("Perfmon");
      return std::string("Tpch");
    });

TEST(DatasetTest, UniformDatasetDims) {
  const BenchDataset ds = MakeUniformDataset(1000, 9, 1);
  EXPECT_EQ(ds.table.num_dims(), 9u);
  EXPECT_EQ(ds.table.num_rows(), 1000u);
}

TEST(WorkloadGenTest, SelectivityHitsTarget) {
  const BenchDataset ds = MakeTpchDataset(60'000, 7);
  const Workload w = MakeWorkload(ds, WorkloadKind::kOlapSkewed, 60, 8);
  const DataSample sample = DataSample::FromTable(ds.table, 30'000, 9);
  double total = 0;
  for (const Query& q : w) total += sample.MeasuredQuerySelectivity(q);
  const double avg = total / static_cast<double>(w.size());
  // Paper target 0.1%; generator should land within ~4x either way.
  EXPECT_GT(avg, 0.00025);
  EXPECT_LT(avg, 0.004);
}

TEST(WorkloadGenTest, OltpWorkloadsArePointLookups) {
  const BenchDataset ds = MakeSalesDataset(20'000, 11);
  const Workload w = MakeWorkload(ds, WorkloadKind::kOltpSingleKey, 20, 12);
  for (const Query& q : w) {
    EXPECT_EQ(q.NumFiltered(), 1u);
    const size_t dim = ds.key_dims[0];
    EXPECT_TRUE(q.IsFiltered(dim));
    EXPECT_EQ(q.range(dim).lo, q.range(dim).hi);  // Equality.
  }
  const Workload w2 = MakeWorkload(ds, WorkloadKind::kOltpTwoKey, 20, 13);
  for (const Query& q : w2) EXPECT_EQ(q.NumFiltered(), 2u);
}

TEST(WorkloadGenTest, FewerDimsUsesStrictSubset) {
  const BenchDataset ds = MakeOsmDataset(20'000, 14);
  const size_t cutoff = (ds.table.num_dims() + 1) / 2;
  const Workload w = MakeWorkload(ds, WorkloadKind::kFewerDims, 30, 15);
  for (const Query& q : w) {
    for (size_t dim = cutoff; dim < q.num_dims(); ++dim) {
      EXPECT_FALSE(q.IsFiltered(dim));
    }
  }
}

TEST(WorkloadGenTest, ManyDimsFiltersEverything) {
  const BenchDataset ds = MakeTpchDataset(20'000, 16);
  const Workload w = MakeWorkload(ds, WorkloadKind::kManyDims, 10, 17);
  for (const Query& q : w) {
    EXPECT_EQ(q.NumFiltered(), ds.table.num_dims());
  }
}

TEST(WorkloadGenTest, SingleTypeIsHomogeneous) {
  const BenchDataset ds = MakePerfmonDataset(20'000, 18);
  const Workload w = MakeWorkload(ds, WorkloadKind::kSingleType, 25, 19);
  const auto& spec = ds.olap_specs[0];
  for (const Query& q : w) {
    for (size_t dim : spec.range_dims) EXPECT_TRUE(q.IsFiltered(dim));
    for (size_t dim : spec.eq_dims) EXPECT_TRUE(q.IsFiltered(dim));
  }
}

TEST(WorkloadGenTest, RandomWorkloadsVaryAcrossSeeds) {
  const BenchDataset ds = MakeTpchDataset(20'000, 20);
  const Workload a = MakeRandomWorkload(ds, 20, 10, 100);
  const Workload b = MakeRandomWorkload(ds, 20, 10, 200);
  // Different seeds should produce observably different filter patterns.
  size_t differing = 0;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t dim = 0; dim < ds.table.num_dims(); ++dim) {
      if (a[i].IsFiltered(dim) != b[i].IsFiltered(dim)) {
        ++differing;
        break;
      }
    }
  }
  EXPECT_GT(differing, 5u);
}

TEST(WorkloadGenTest, DimensionSweepCoversPrefixes) {
  const BenchDataset ds = MakeUniformDataset(20'000, 6, 21);
  const Workload w = MakeDimensionSweepWorkload(ds, 100, 22);
  std::vector<bool> seen(ds.table.num_dims() + 1, false);
  for (const Query& q : w) {
    const size_t k = q.NumFiltered();
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, ds.table.num_dims());
    seen[k] = true;
    // Filters occupy the first k dims.
    for (size_t dim = 0; dim < k; ++dim) EXPECT_TRUE(q.IsFiltered(dim));
  }
  size_t count = 0;
  for (bool s : seen) count += s ? 1 : 0;
  EXPECT_GE(count, 4u);  // Most prefix lengths exercised.
}

}  // namespace
}  // namespace flood
